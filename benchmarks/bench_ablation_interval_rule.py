"""Ablation: the adaptive interval rule's thresholds (paper §4.2.1).

The paper trains a decision tree and reports the learned rule
``turnOnLazy ⇔ E/V ≤ 10 or trend ≥ 0.07``. Rather than re-training on
our own labels (circular), this ablation grid-searches the rule family
directly: every (ev_threshold, trend_threshold) cell is a policy, run on
a mixed workload basket (one graph per class × {PageRank, SSSP}) and
scored by total modeled time. Criterion: the paper's (10, 0.07) cell
performs within 10% of the best cell in the grid — i.e. the published
thresholds are (near-)optimal in our reproduction too, which is the
strongest statement a reproduction can make about a learned component.
"""

import math

import pytest

from repro.algorithms import PageRankDeltaProgram, SSSPProgram
from repro.bench.harness import get_partitioned, get_prepared_graph
from repro.bench.reporting import format_table
from repro.core import AdaptiveIntervalModel, LazyBlockAsyncEngine

EV_GRID = (0.0, 5.0, 10.0, 30.0)  # 0 ⇒ E/V arm never fires; 30 ⇒ always
TREND_GRID = (-1.0, 0.0, 0.07, 0.5, math.inf)  # -1 ⇒ always; inf ⇒ never
WORKLOADS = (
    ("road-usa-mini", "sssp"),
    ("web-uk-mini", "pagerank"),
    ("twitter-mini", "pagerank"),
)
MACHINES = 24


def _run_policy(ev_t, trend_t):
    total = 0.0
    model = AdaptiveIntervalModel(ev_threshold=ev_t, trend_threshold=trend_t)
    for graph_name, alg in WORKLOADS:
        if alg == "sssp":
            prog = SSSPProgram(0)
            g = get_prepared_graph(graph_name, symmetric=False, weighted=True)
        else:
            prog = PageRankDeltaProgram(tolerance=1e-3)
            g = get_prepared_graph(graph_name, symmetric=False, weighted=False)
        pg = get_partitioned(g, MACHINES)
        r = LazyBlockAsyncEngine(pg, prog, interval_model=model).run()
        total += r.stats.modeled_time_s
    return total


def grid_search():
    scores = {}
    for ev_t in EV_GRID:
        for trend_t in TREND_GRID:
            scores[(ev_t, trend_t)] = _run_policy(ev_t, trend_t)
    return scores


def test_ablation_interval_rule(benchmark, run_once):
    scores = run_once(benchmark, grid_search)
    rows = [
        [ev_t] + [round(scores[(ev_t, t)], 4) for t in TREND_GRID]
        for ev_t in EV_GRID
    ]
    print()
    print(
        format_table(
            ["ev_thresh \\ trend"] + [str(t) for t in TREND_GRID],
            rows,
            title=(
                "Ablation — interval-rule threshold grid "
                "(total modeled seconds over the workload basket)"
            ),
        )
    )
    best = min(scores.values())
    paper = scores[(10.0, 0.07)]
    benchmark.extra_info["paper_cell"] = paper
    benchmark.extra_info["best_cell"] = best
    # the paper's published thresholds are near-optimal in the grid
    assert paper <= 1.10 * best, (paper, best)
    # and clearly better than never-lazy (both arms off)
    never = scores[(0.0, math.inf)]
    assert paper < 0.8 * never, (paper, never)
