"""Serving-layer gate: warm sessions amortize the pipeline, bit-exactly.

The serving layer's pitch is that a resident :class:`GraphSession` +
:class:`GraphService` turn per-query cost from "the whole pipeline"
(dataset prep, vertex-cut partitioning, CSR planning — what every cold
``repro.run`` pays) into "one engine run" (what a warm session pays),
while answers stay *bit-identical* to fresh runs (the oracle is
``tests/unit/test_serve.py`` / ``tests/integration/
test_session_equivalence.py``). This harness prices the claim on a
point-query workload (powerlaw 20k vertices / 150k edges, 8 machines,
lazy-block, BFS-distance + PPR point queries):

* ``cold`` — one fresh ``repro.run`` per query (the pre-session shape);
* ``warm`` — the same distinct cache-miss queries served by a resident
  ``GraphService`` (cache hits excluded: this prices the *session*, not
  the LRU);
* ``serving`` — an open-loop load run: queries submitted on a fixed
  Poisson-free arrival schedule regardless of completion, reporting
  achieved queries/sec, p50/p95 latency, and the cache hit rate under a
  Zipf-ish repeating source mix.

* ``telemetry_overhead`` — the warm workload twice more through fresh
  services, once bare and once with the full observability plane on
  (``trace_out`` + ``telemetry_out``), comparing warm p50 latency.

and writes ``BENCH_serving.json``. The acceptance gates — enforced by
CI on the serving-smoke job — are **warm ≥ 5× faster than cold per
query**, unconditional bit-identity of one served answer vs a fresh
run, and **telemetry-on warm p50 within 5 % of telemetry-off**. The
open-loop section is host-speed dependent, so its sustained-rate
check is *skipped honestly* (recorded as ``skipped (...)``, never
silently passed) when the host cannot sustain the offered rate.

Run:   ``python benchmarks/bench_serving.py --out BENCH_serving.json``
Check: ``python benchmarks/bench_serving.py --quick --check BENCH_serving.json``
"""

import argparse
import json
import os
import random
import statistics
import sys
import tempfile
import time

import numpy as np

import repro
from repro.graph.generators import powerlaw_graph
from repro.serve import GraphService
from repro.session import GraphSession

NUM_VERTICES = 20_000
NUM_EDGES = 150_000
MACHINES = 8
ENGINE = "lazy-block"
DEFAULT_GATE = 5.0
#: distinct cache-miss sources priced cold vs warm
MISS_SOURCES = (0, 101, 202, 303)
QUICK_MISS_SOURCES = (0, 101)
#: open-loop source pool (repetition drives cache hits)
POOL = tuple(range(10))
OFFERED_QPS = 15.0
LOAD_SECONDS = 4.0
QUICK_LOAD_SECONDS = 1.5
#: max warm-p50 regression with the observability plane on
TELEMETRY_OVERHEAD_GATE_PCT = 5.0
#: alternating off/on rounds over the miss sources (drift-cancelling)
OVERHEAD_ROUNDS = 6
QUICK_OVERHEAD_ROUNDS = 3


def _graph():
    return powerlaw_graph(NUM_VERTICES, NUM_EDGES, seed=3)


def measure(quick: bool, gate_sources=None) -> dict:
    graph = _graph()
    sources = gate_sources or (QUICK_MISS_SOURCES if quick else MISS_SOURCES)
    load_s = QUICK_LOAD_SECONDS if quick else LOAD_SECONDS
    report = {
        "config": {
            "graph": f"powerlaw({NUM_VERTICES}, {NUM_EDGES})",
            "machines": MACHINES,
            "engine": ENGINE,
            "workload": "bfs point queries (distinct sources)",
            "miss_sources": list(sources),
            "offered_qps": OFFERED_QPS,
            "load_seconds": load_s,
            "host_cpus": os.cpu_count() or 1,
            "statistic": "median per query",
            "quick": bool(quick),
        },
    }

    # cold: every query pays the full pipeline (fresh run() per query)
    cold_runs, cold_values = [], {}
    for s in sources:
        t0 = time.perf_counter()
        result = repro.run(
            graph, "bfs", engine=ENGINE, machines=MACHINES, seed=0, source=s
        )
        cold_runs.append(time.perf_counter() - t0)
        cold_values[s] = result.values
    report["cold"] = {
        "median_s": statistics.median(cold_runs),
        "runs_s": [round(t, 4) for t in sorted(cold_runs)],
    }

    with GraphSession.open(graph, machines=MACHINES, seed=0) as session:
        with GraphService(session, engine=ENGINE, max_wait=0.0) as svc:
            # warm the session: the first query pays the lazy graph prep
            # + partitioning + CSR planning once; everything after rides
            # the cached artifacts (that amortization is the claim)
            svc.query("bfs", sources=[NUM_VERTICES - 1])
            # warm: same distinct queries against the resident session;
            # all are cache misses, so this prices one engine run each
            warm_runs = []
            for s in sources:
                served = svc.query("bfs", sources=[s])
                assert not served.cached
                warm_runs.append(served.latency_s)
                if not np.array_equal(served.result.values, cold_values[s]):
                    report["bit_identical"] = False
            report.setdefault("bit_identical", True)
            report["warm"] = {
                "median_s": statistics.median(warm_runs),
                "runs_s": [round(t, 4) for t in sorted(warm_runs)],
            }
            report["speedup"] = (
                report["cold"]["median_s"] / report["warm"]["median_s"]
            )
            report["serving"] = _open_loop_load(svc, load_s)
        report["telemetry_overhead"] = _telemetry_overhead(
            session, sources, QUICK_OVERHEAD_ROUNDS if quick else OVERHEAD_ROUNDS
        )
    return report


def _telemetry_overhead(session, sources, rounds: int) -> dict:
    """Warm p50 with the telemetry ticker off vs on.

    Each round opens one bare service, one with ``telemetry_out`` (the
    always-on production health plane — this is the gated comparison),
    and one with ``trace_out`` as well (full request tracing with
    per-run engine span streams — a per-investigation debug tool, so
    its cost is reported but not gated). All services serve the same
    distinct-source workload against the same warm session (all engine
    runs — the cache is per-service, so nothing hits), and rounds
    alternate modes so host drift cancels instead of biasing one.
    """
    lat: dict = {"off": {}, "telemetry": {}, "trace": {}}
    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmp:
        for r in range(rounds):
            for mode in ("off", "telemetry", "trace"):
                kwargs = {}
                if mode in ("telemetry", "trace"):
                    kwargs["telemetry_out"] = os.path.join(
                        tmp, f"{mode}{r}.telemetry.jsonl"
                    )
                if mode == "trace":
                    kwargs["trace_out"] = os.path.join(
                        tmp, f"{mode}{r}.trace.jsonl"
                    )
                with GraphService(
                    session, engine=ENGINE, max_wait=0.0, **kwargs
                ) as svc:
                    for s in sources:
                        served = svc.query("bfs", sources=[s])
                        assert not served.cached
                        lat[mode][(r, s)] = served.latency_s

    def p50(mode):
        return statistics.median(lat[mode].values())

    def paired_overhead_pct(mode):
        # per source, take the best (min) latency across rounds in each
        # mode and compare those: host noise is additive and positive
        # (scheduler preemptions, cache evictions), so the per-source
        # min converges on the true cost where a p50-vs-p50 comparison
        # keeps the jitter; the median across sources then summarizes
        per_source = {}
        for (r, s), v in lat[mode].items():
            per_source[s] = min(v, per_source.get(s, float("inf")))
        per_source_off = {}
        for (r, s), v in lat["off"].items():
            per_source_off[s] = min(v, per_source_off.get(s, float("inf")))
        ratios = [v / per_source_off[s] for s, v in per_source.items()]
        return 100.0 * (statistics.median(ratios) - 1.0)

    return {
        "queries_per_mode": len(lat["off"]),
        "statistic": "median over sources of best-of-rounds on/off ratio",
        "p50_off_ms": round(p50("off") * 1e3, 3),
        "p50_on_ms": round(p50("telemetry") * 1e3, 3),
        "overhead_pct": round(paired_overhead_pct("telemetry"), 2),
        "gate_pct": TELEMETRY_OVERHEAD_GATE_PCT,
        # full request tracing streams every engine span; informational
        "trace_p50_ms": round(p50("trace") * 1e3, 3),
        "trace_overhead_pct": round(paired_overhead_pct("trace"), 2),
    }


def _open_loop_load(svc: GraphService, duration_s: float) -> dict:
    """Fixed-rate open-loop submission: arrivals never wait on answers."""
    rng = random.Random(17)
    interarrival = 1.0 / OFFERED_QPS
    futures = []
    start = time.perf_counter()
    next_at = start
    while next_at - start < duration_s:
        now = time.perf_counter()
        if now < next_at:
            time.sleep(next_at - now)
        # Zipf-ish repetition: low pool indices dominate -> cache hits
        source = POOL[min(int(rng.expovariate(0.45)), len(POOL) - 1)]
        if rng.random() < 0.2:
            futures.append(svc.submit("ppr", sources=[source]))
        else:
            futures.append(svc.submit("bfs", sources=[source]))
        next_at += interarrival
    served = [f.result(timeout=600) for f in futures]
    elapsed = time.perf_counter() - start
    latencies = sorted(s.latency_s for s in served)
    stats = svc.stats()
    quantile = (
        lambda q: latencies[min(int(q * len(latencies)), len(latencies) - 1)]
    )
    return {
        "queries": len(served),
        "duration_s": round(elapsed, 3),
        "achieved_qps": len(served) / elapsed,
        "p50_ms": round(quantile(0.50) * 1e3, 3),
        "p95_ms": round(quantile(0.95) * 1e3, 3),
        "cache_hit_rate": stats["serve.cache_hit_rate"],
        "fused_queries": stats.get("serve.fused_queries", 0.0),
        "engine_runs": stats["serve.runs"],
    }


def apply_gate(report: dict, gate: float) -> bool:
    """Speedup + bit-identity + telemetry-overhead gates; the
    sustained-rate check is skipped honestly on slow hosts."""
    serving = report["serving"]
    sustained = serving["achieved_qps"] >= 0.5 * OFFERED_QPS
    overhead = report["telemetry_overhead"]
    acceptance = {
        "bit_identical": report["bit_identical"],
        "gate_speedup": gate,
        "speedup_ok": report["speedup"] >= gate,
        "telemetry_overhead_ok": (
            overhead["overhead_pct"] <= overhead["gate_pct"]
        ),
    }
    if sustained:
        acceptance["sustained"] = True
    else:
        acceptance["sustained"] = (
            f"skipped (host sustained {serving['achieved_qps']:.1f} qps "
            f"of {OFFERED_QPS:.0f} offered)"
        )
    ok = (
        report["bit_identical"]
        and acceptance["speedup_ok"]
        and acceptance["telemetry_overhead_ok"]
    )
    acceptance["all_ok"] = ok
    report["acceptance"] = acceptance
    return ok


def check_baseline(report: dict, path: str) -> list:
    """Compare against the committed baseline (config + identity)."""
    with open(path) as fh:
        base = json.load(fh)
    failures = []
    if not base.get("bit_identical", False):
        failures.append(f"baseline {path} was not bit-identical")
    if not base.get("acceptance", {}).get("speedup_ok", False):
        failures.append(f"baseline {path} did not pass the speedup gate")
    for key in ("graph", "machines", "engine", "workload", "offered_qps"):
        if base["config"].get(key) != report["config"].get(key):
            failures.append(
                f"config drift vs baseline: {key} = "
                f"{report['config'].get(key)!r} vs {base['config'].get(key)!r}"
                " (re-generate BENCH_serving.json)"
            )
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", help="write the JSON report here")
    ap.add_argument(
        "--quick", action="store_true",
        help="fewer cold runs + a shorter load window (CI smoke)",
    )
    ap.add_argument(
        "--gate", type=float, default=DEFAULT_GATE,
        help=f"min warm-vs-cold per-query speedup (default {DEFAULT_GATE})",
    )
    ap.add_argument(
        "--check", metavar="BASELINE",
        help="fail on config drift vs a committed BENCH_serving.json",
    )
    args = ap.parse_args(argv)
    report = measure(quick=args.quick)
    ok = apply_gate(report, args.gate)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    failures = [] if ok else ["acceptance gate failed (see report)"]
    if args.check:
        failures += check_baseline(report, args.check)
    serving = report["serving"]
    print(
        f"cold {report['cold']['median_s']:.3f}s vs warm "
        f"{report['warm']['median_s']:.3f}s per query: speedup "
        f"{report['speedup']:.1f}x; open-loop "
        f"{serving['achieved_qps']:.1f} qps, p50 {serving['p50_ms']:.1f}ms, "
        f"p95 {serving['p95_ms']:.1f}ms, hit rate "
        f"{serving['cache_hit_rate']:.2f}; telemetry overhead "
        f"{report['telemetry_overhead']['overhead_pct']:+.1f}% "
        f"(gate {report['telemetry_overhead']['gate_pct']:.0f}%); "
        f"bit_identical={report['bit_identical']}, "
        f"gate={report['acceptance']['all_ok']}",
        file=sys.stderr,
    )
    for f in failures:
        print("FAILURE:", f, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
