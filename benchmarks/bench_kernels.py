"""Host-performance benchmarks for the hot simulation kernels.

Unlike the figure benches (which measure *modeled* cluster quantities
once), these use pytest-benchmark as intended — repeated timing of the
vectorized kernels that dominate the simulator's host runtime — so a
regression in the NumPy code paths (scatter-reduce, coherency staging,
greedy partitioning) shows up as a wall-clock regression here.
"""

import numpy as np
import pytest

from repro.algorithms import ConnectedComponentsProgram, PageRankDeltaProgram
from repro.core import CoherencyExchanger
from repro.core.transmission import build_lazy_graph
from repro.graph.generators import erdos_renyi_graph, powerlaw_graph
from repro.partition.coordinated_cut import coordinated_cut
from repro.runtime.machine_runtime import MachineRuntime


@pytest.fixture(scope="module")
def big_machine():
    """A single-machine runtime over a 200k-edge graph."""
    g = erdos_renyi_graph(20_000, 200_000, seed=1)
    pg = build_lazy_graph(g, 1, seed=1)
    return MachineRuntime(pg.machines[0], PageRankDeltaProgram())


def test_scatter_kernel_throughput(benchmark, big_machine):
    """Full-graph scatter: ~200k edge messages per call."""
    rt = big_machine
    idx = np.arange(rt.mg.num_local_vertices)
    deltas = np.ones(idx.size)

    def go():
        edges = rt.scatter(idx, deltas, track_delta=True)
        rt.msg[:] = rt.algebra.identity
        rt.has_msg[:] = False
        rt.clear_deltas(np.arange(rt.mg.num_local_vertices))
        return edges

    edges = benchmark(go)
    assert edges == rt.mg.num_local_edges
    # vectorized scatter should stay well above 1M edges/s on any host
    benchmark.extra_info["edges_per_call"] = edges


def test_take_ready_kernel(benchmark, big_machine):
    rt = big_machine
    rt.has_msg[:] = True
    rt.msg[:] = 1.0

    def go():
        idx, accum = rt.take_ready()
        rt.has_msg[:] = True
        rt.msg[:] = 1.0
        return idx.size

    n = benchmark(go)
    assert n == rt.mg.num_local_vertices


@pytest.fixture(scope="module")
def exchange_setup():
    g = powerlaw_graph(5_000, 60_000, seed=2)
    pg = build_lazy_graph(g, 16, seed=1)
    prog = ConnectedComponentsProgram()
    rts = [MachineRuntime(mg, prog) for mg in pg.machines]
    ex = CoherencyExchanger(pg, prog, rts)
    return pg, rts, ex


def test_coherency_exchange_kernel(benchmark, exchange_setup):
    """One full delta exchange over a 16-machine skewed layout."""
    pg, rts, ex = exchange_setup

    def go():
        for rt in rts:  # arm every replicated vertex with a delta
            rep = rt.mg.num_replicas > 1
            rt.delta_msg[rep] = 0.0
            rt.has_delta[rep] = True
        report = ex.exchange()
        for rt in rts:  # consume deliveries so the next round re-arms
            rt.msg[:] = rt.algebra.identity
            rt.has_msg[:] = False
        # reset the subsumption snapshot so every round ships again
        if ex._shared is not None:
            for mi, rt in enumerate(rts):
                ex._shared[mi][:] = rt.values()
        return report.messages

    msgs = benchmark(go)
    assert msgs > 0
    benchmark.extra_info["messages_per_exchange"] = msgs


def test_coordinated_cut_kernel(benchmark):
    """The greedy partitioner is the one deliberate Python loop; keep an
    eye on its throughput (edges placed per second)."""
    g = powerlaw_graph(3_000, 40_000, seed=3)
    assignment = benchmark(coordinated_cut, g, 16, 7)
    assert assignment.size == g.num_edges
