"""Host-performance benchmarks for the hot simulation kernels.

Two entry points share this file:

* **pytest-benchmark tests** (below) — repeated timing of the
  vectorized kernels that dominate the simulator's host runtime, so a
  regression in the NumPy code paths (scatter-reduce, coherency
  staging, greedy partitioning) shows up as a wall-clock regression;
* **the regression harness** (``python benchmarks/bench_kernels.py
  --out BENCH_kernels.json``) — measures the kernel layer old-vs-new
  (``mode="generic"`` pins the historical per-call-flatten +
  ``ufunc.at`` path) per monoid and per frontier density, verifies
  bit-identity of buffers and of full modeled-cluster runs, and writes
  the committed ``BENCH_kernels.json``. ``--check <baseline.json>``
  exits non-zero when the new-path times regress more than 2× against
  the committed baseline (the CI smoke job).
"""

import argparse
import json
import sys
import time

import numpy as np

import pytest

from repro import kernels
from repro.algorithms import (
    ConnectedComponentsProgram,
    PageRankDeltaProgram,
    SSSPProgram,
)
from repro.core import CoherencyExchanger
from repro.core.transmission import build_lazy_graph
from repro.graph.generators import (
    attach_uniform_weights,
    erdos_renyi_graph,
    powerlaw_graph,
)
from repro.partition.coordinated_cut import coordinated_cut
from repro.runtime.machine_runtime import MachineRuntime


@pytest.fixture(scope="module")
def big_machine():
    """A single-machine runtime over a 200k-edge graph."""
    g = erdos_renyi_graph(20_000, 200_000, seed=1)
    pg = build_lazy_graph(g, 1, seed=1)
    return MachineRuntime(pg.machines[0], PageRankDeltaProgram())


def test_scatter_kernel_throughput(benchmark, big_machine):
    """Full-graph scatter: ~200k edge messages per call."""
    rt = big_machine
    idx = np.arange(rt.mg.num_local_vertices)
    deltas = np.ones(idx.size)

    def go():
        edges = rt.scatter(idx, deltas, track_delta=True)
        rt.msg[:] = rt.algebra.identity
        rt.has_msg[:] = False
        rt.clear_deltas(np.arange(rt.mg.num_local_vertices))
        return edges

    edges = benchmark(go)
    assert edges == rt.mg.num_local_edges
    # vectorized scatter should stay well above 1M edges/s on any host
    benchmark.extra_info["edges_per_call"] = edges


def test_take_ready_kernel(benchmark, big_machine):
    rt = big_machine
    rt.has_msg[:] = True
    rt.msg[:] = 1.0

    def go():
        idx, accum = rt.take_ready()
        rt.has_msg[:] = True
        rt.msg[:] = 1.0
        return idx.size

    n = benchmark(go)
    assert n == rt.mg.num_local_vertices


@pytest.fixture(scope="module")
def exchange_setup():
    g = powerlaw_graph(5_000, 60_000, seed=2)
    pg = build_lazy_graph(g, 16, seed=1)
    prog = ConnectedComponentsProgram()
    rts = [MachineRuntime(mg, prog) for mg in pg.machines]
    ex = CoherencyExchanger(pg, prog, rts)
    return pg, rts, ex


def test_coherency_exchange_kernel(benchmark, exchange_setup):
    """One full delta exchange over a 16-machine skewed layout."""
    pg, rts, ex = exchange_setup

    def go():
        for rt in rts:  # arm every replicated vertex with a delta
            rep = rt.mg.num_replicas > 1
            rt.delta_msg[rep] = 0.0
            rt.has_delta[rep] = True
        report = ex.exchange()
        for rt in rts:  # consume deliveries so the next round re-arms
            rt.msg[:] = rt.algebra.identity
            rt.has_msg[:] = False
        # reset the subsumption snapshot so every round ships again
        if ex._shared is not None:
            for mi, rt in enumerate(rts):
                ex._shared[mi][:] = rt.values()
        return report.messages

    msgs = benchmark(go)
    assert msgs > 0
    benchmark.extra_info["messages_per_exchange"] = msgs


def test_coordinated_cut_kernel(benchmark):
    """The greedy partitioner is the one deliberate Python loop; keep an
    eye on its throughput (edges placed per second)."""
    g = powerlaw_graph(3_000, 40_000, seed=3)
    assignment = benchmark(coordinated_cut, g, 16, 7)
    assert assignment.size == g.num_edges


# ======================================================================
# BENCH_kernels.json regression harness (CLI)
# ======================================================================
DENSITIES = (1.0, 0.6, 0.25, 0.05)


def _best_of(fn, reps):
    ts = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        ts.append(time.perf_counter() - t0)
    return min(ts)


def _reset(rt):
    rt.msg[:] = rt.algebra.identity
    rt.has_msg[:] = False
    rt.delta_msg[:] = rt.algebra.identity
    rt.has_delta[:] = False


def _bits(a):
    return a.view(np.int64) if a.dtype == np.float64 else a


def bench_raw_kernels(n, m, reps):
    """Raw scatter_reduce vs ufunc.at on synthetic scatters.

    Honest numbers: on NumPy ≥ 1.25 the indexed ``ufunc.at`` loops make
    the plan-less specializations roughly break even — the speedups come
    from the plan-aware sweep paths measured in ``scatter_path``.
    """
    from repro.api.vertex_program import MIN_ALGEBRA, SUM_ALGEBRA

    rng = np.random.default_rng(0)
    idx = rng.integers(0, n, m)
    vals = rng.random(m)
    counts = np.bincount(idx, minlength=n).astype(np.int64)
    out = {"n": n, "m": m, "cases": {}}

    def run_mode(alg, **cfg):
        with kernels.configured(**cfg):
            buf = np.full(n, alg.identity)
            label = kernels.scatter_reduce(alg, buf, idx, vals)
            t = _best_of(
                lambda: kernels.scatter_reduce(
                    alg, np.full(n, alg.identity), idx, vals
                ),
                reps,
            )
        return buf, label, t

    base_sum, _, t_at = run_mode(SUM_ALGEBRA, mode="generic")
    spec_sum, _, t_bc = run_mode(SUM_ALGEBRA, sum_spec="always")
    # counts-hint path (what a CSRPlan full sweep provides for free)
    buf = np.full(n, 0.0)
    kernels.scatter_reduce(SUM_ALGEBRA, buf, idx, vals, counts=counts)
    t_hint = _best_of(
        lambda: kernels.scatter_reduce(
            SUM_ALGEBRA, np.full(n, 0.0), idx, vals, counts=counts
        ),
        reps,
    )
    out["cases"]["sum"] = {
        "ufunc_at_ms": t_at * 1e3,
        "bincount_ms": t_bc * 1e3,
        "bincount_counts_hint_ms": t_hint * 1e3,
        "identical": bool(
            np.array_equal(_bits(base_sum), _bits(spec_sum))
            and np.array_equal(_bits(base_sum), _bits(buf))
        ),
    }
    base_min, _, t_at = run_mode(MIN_ALGEBRA, mode="generic")
    spec_min, _, t_sr = run_mode(MIN_ALGEBRA, minmax_spec="always")
    out["cases"]["min"] = {
        "ufunc_at_ms": t_at * 1e3,
        "sort_reduceat_ms": t_sr * 1e3,
        "identical": bool(np.array_equal(_bits(base_min), _bits(spec_min))),
    }
    return out


def bench_scatter_path(n, m, reps):
    """End-to-end MachineRuntime.scatter, old path vs kernel layer.

    ``mode="generic"`` reproduces the pre-kernel code exactly (per-call
    flatten + ``edge_message`` + ``ufunc.at``); ``mode="auto"`` is the
    frontier-adaptive sweep with fused transforms and shared folds.
    Buffers are compared bit-for-bit between the modes at every density.
    """
    cases = {}
    for name, prog, weighted in (
        ("pagerank/sum", PageRankDeltaProgram(), False),
        ("cc/min", ConnectedComponentsProgram(), False),
        ("sssp/min", SSSPProgram(), True),
    ):
        g = erdos_renyi_graph(n, m, seed=1)
        if weighted:
            g = attach_uniform_weights(g, seed=2)
        pg = build_lazy_graph(g, 1, seed=1)
        rt = MachineRuntime(pg.machines[0], prog)
        nloc = rt.mg.num_local_vertices
        rng = np.random.default_rng(7)
        per_density = {}
        for density in DENSITIES:
            k = max(1, int(nloc * density))
            if density >= 1.0:
                idx = np.arange(nloc)
            else:
                idx = np.sort(rng.choice(nloc, size=k, replace=False))
            deltas = np.ones(idx.size)
            snap = {}
            for mode in ("generic", "auto"):
                with kernels.configured(mode=mode):
                    rt.scatter(idx, deltas, track_delta=True)
                snap[mode] = (
                    rt.msg.copy(), rt.delta_msg.copy(),
                    rt.has_msg.copy(), rt.has_delta.copy(),
                )
                _reset(rt)
            identical = all(
                np.array_equal(_bits(a), _bits(b))
                for a, b in zip(snap["generic"], snap["auto"])
            )
            times = {}
            for mode in ("generic", "auto"):
                def go():
                    with kernels.configured(mode=mode):
                        rt.scatter(idx, deltas, track_delta=True)
                    _reset(rt)
                times[mode] = _best_of(go, reps)
            per_density[str(density)] = {
                "old_ms": times["generic"] * 1e3,
                "new_ms": times["auto"] * 1e3,
                "speedup": times["generic"] / times["auto"],
                "identical": bool(identical),
                "frontier_edges": int(
                    (rt.out_indptr[idx + 1] - rt.out_indptr[idx]).sum()
                ),
            }
        cases[name] = per_density
    return {"n": n, "m": m, "densities": cases}


def bench_engine_matrix(machines, quick):
    """Full modeled-cluster runs, generic vs auto, must be bit-identical.

    Compares final values bit-for-bit and the whole RunStats dict
    (supersteps, coherency points, messages, modeled seconds, …) except
    the ``extra.kernel_*`` observability metrics, which legitimately
    differ between kernel modes.
    """
    from repro.run_api import ENGINE_NAMES, run

    algos = ("pagerank", "cc") if quick else ("pagerank", "cc", "sssp", "kcore")
    engines = ENGINE_NAMES[:2] if quick else ENGINE_NAMES

    def strip(d):
        d = dict(d)
        for key in ("metrics", "extra"):
            d[key] = {
                k: v
                for k, v in d.get(key, {}).items()
                if not k.startswith(("kernel_", "extra.kernel_"))
            }
        return d

    combos = {}
    ok = True
    for engine in engines:
        for algo in algos:
            outs = {}
            for mode in ("generic", "auto"):
                with kernels.configured(mode=mode):
                    res = run(
                        "road-ca-mini", algo, engine=engine,
                        machines=machines, seed=3,
                    )
                outs[mode] = (res.values, strip(res.stats.to_dict()))
            v_id = bool(
                np.array_equal(
                    _bits(outs["generic"][0]), _bits(outs["auto"][0])
                )
            )
            s_id = outs["generic"][1] == outs["auto"][1]
            ok = ok and v_id and s_id
            st = outs["auto"][1]
            combos[f"{engine}/{algo}"] = {
                "values_identical": v_id,
                "stats_identical": bool(s_id),
                "supersteps": st.get("supersteps"),
                "coherency_points": st.get("coherency_points"),
                "comm_messages": st.get("comm_messages"),
            }
    return {"identical": bool(ok), "combos": combos}


def run_harness(args):
    # --quick trims repetitions and the engine matrix but keeps the graph
    # size, so its times stay comparable against a committed full baseline
    if args.quick:
        n, m, reps, machines = 20_000, 200_000, 5, 2
    else:
        n, m, reps, machines = 20_000, 200_000, 11, 4
    report = {
        "schema": "bench-kernels/v1",
        "numpy": np.__version__,
        "quick": bool(args.quick),
        "config_defaults": {
            k: getattr(kernels.get_config(), k)
            for k in (
                "mode", "min_specialize", "sum_spec", "minmax_spec",
                "dense_sweep_fraction", "dense_min_edges",
            )
        },
        "raw_kernels": bench_raw_kernels(n, m, reps),
        "scatter_path": bench_scatter_path(n, m, reps),
        "engine_matrix": bench_engine_matrix(machines, args.quick),
    }
    sum_full = report["scatter_path"]["densities"]["pagerank/sum"]["1.0"]
    report["acceptance"] = {
        "sum_full_sweep_speedup": sum_full["speedup"],
        "sum_full_sweep_speedup_ok": sum_full["speedup"] >= 3.0,
        "all_bit_identical": bool(
            report["engine_matrix"]["identical"]
            and all(
                d["identical"]
                for case in report["scatter_path"]["densities"].values()
                for d in case.values()
            )
            and all(
                c.get("identical", True)
                for c in report["raw_kernels"]["cases"].values()
            )
        ),
    }
    out = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(out + "\n")
        print(f"wrote {args.out}")
    else:
        print(out)
    failures = []
    if not report["acceptance"]["all_bit_identical"]:
        failures.append("bit-identity violated")
    if args.check:
        with open(args.check) as fh:
            base = json.load(fh)
        for case, dens in base["scatter_path"]["densities"].items():
            for d, vals in dens.items():
                new = report["scatter_path"]["densities"][case][d]["new_ms"]
                # 2x ratio gate with a 0.5 ms absolute floor: sub-ms
                # cells (sparse low-density frontiers) jitter well past
                # 2x from timer noise alone on shared CI hosts
                if new > 2.0 * vals["new_ms"] + 0.5:
                    failures.append(
                        f"{case}@density={d}: {new:.3f}ms vs baseline "
                        f"{vals['new_ms']:.3f}ms (>2x)"
                    )
    for f in failures:
        print("REGRESSION:", f, file=sys.stderr)
    return 1 if failures else 0


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", help="write the JSON report here")
    ap.add_argument(
        "--quick", action="store_true",
        help="small graph / few reps (CI smoke)",
    )
    ap.add_argument(
        "--check", metavar="BASELINE",
        help="fail (exit 1) if new-path times regress >2x vs this JSON",
    )
    return run_harness(ap.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
