"""Fig 8(b): communication time vs traffic for the two exchange modes.

The paper fits a linear curve for all-to-all and a polynomial for
mirrors-to-master and uses them to switch modes dynamically (§4.2.2).
This bench (1) sweeps the model curves over a volume range and checks
the fit shapes and the single crossover, and (2) validates the dynamic
switch end-to-end: on every evaluation graph the dynamic policy's
modeled time is within a hair of the better fixed mode.
"""

import pytest

from repro.bench.configs import ExperimentConfig
from repro.bench.harness import run_config
from repro.bench.reporting import format_series, format_table
from repro.cluster.network import CommMode, NetworkModel

VOLUMES_MB = [0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0]


def curve_rows():
    net = NetworkModel()
    a2a = [round(net.a2a_time(v * 1e6, 48), 5) for v in VOLUMES_MB]
    m2m = [round(net.m2m_time(v * 1e6, 48), 5) for v in VOLUMES_MB]
    return net, a2a, m2m


def test_fig8b_fitted_curves(benchmark, run_once):
    net, a2a, m2m = run_once(benchmark, curve_rows)
    print()
    print(
        format_series(
            "volume_MB",
            VOLUMES_MB,
            {"T_a2a": a2a, "T_m2m": m2m},
            title="Fig 8(b) — fitted communication-time curves",
        )
    )
    # linear a2a: constant second difference ~ 0
    diffs = [b - a for a, b in zip(a2a, a2a[1:])]
    # m2m polynomial with negative quadratic: marginal cost shrinks
    m2m_margins = [
        (m2m[i + 1] - m2m[i]) / (VOLUMES_MB[i + 1] - VOLUMES_MB[i])
        for i in range(len(m2m) - 1)
    ]
    assert all(
        m2m_margins[i + 1] <= m2m_margins[i] + 1e-9
        for i in range(len(m2m_margins) - 1)
    )
    # a2a cheaper at small volume, m2m cheaper at large (equal volumes)
    assert a2a[0] < m2m[0]
    assert a2a[-1] > m2m[-1]


def dynamic_vs_fixed():
    rows = []
    for graph in ("road-usa-mini", "twitter-mini", "web-uk-mini"):
        per = {}
        for mode in ("a2a", "m2m", "dynamic"):
            r = run_config(
                ExperimentConfig(
                    graph, "pagerank", engine="lazy-block",
                    policy_opts={"mode": mode},
                )
            )
            per[mode] = r.stats.modeled_time_s
            rows.append([graph, mode, round(r.stats.modeled_time_s, 4),
                         round(r.stats.comm_bytes / 1e6, 3)])
        rows[-1].append(None)
    return rows


def test_fig8b_dynamic_switch_end_to_end(benchmark, run_once):
    rows = run_once(benchmark, dynamic_vs_fixed)
    print()
    print(
        format_table(
            ["graph", "mode", "time_s", "traffic_MB"],
            [r[:4] for r in rows],
            title="Fig 8(b) — dynamic switching vs fixed modes (PageRank)",
        )
    )
    by_graph = {}
    for graph, mode, t, _ in (r[:4] for r in rows):
        by_graph.setdefault(graph, {})[mode] = t
    for graph, per in by_graph.items():
        best_fixed = min(per["a2a"], per["m2m"])
        # dynamic switching tracks the better fixed mode within 10%
        assert per["dynamic"] <= best_fixed * 1.10, (graph, per)
