"""Dynamic-graph gate: warm-started re-convergence beats from-scratch.

The dynamic-graph layer's pitch is that after ``session.apply(batch)``
an ``incremental=True`` run warm-starts from the previous fixpoint —
reseeding only the vertices the mutation actually disturbed and
injecting boundary corrections — instead of re-deriving every value
from cold init. For small batches the disturbed region is a sliver of
the graph, so re-convergence should take a handful of supersteps where
a cold run takes dozens. This harness prices that claim on a powerlaw
graph (20k vertices / 150k edges, 8 machines, lazy-block) over a
seeded stream of small mutation batches (a few inserts + removals
each):

* ``bfs`` — idempotent MIN program: the warm fixpoint must be
  **bit-identical** to the from-scratch fixpoint on the patched graph;
* ``pagerank`` — invertible SUM program: warm and cold fixpoints must
  agree to O(tolerance), the same band any two asynchronous execution
  orders share.

For each batch the session runs incremental-then-cold back to back in
the same session (same patched graph artifacts, same derived weights),
recording supersteps, modeled time, and λ drift of the patched
vertex-cut. The acceptance gates — enforced by CI on the
dynamic-smoke job — are equivalence as above plus, per algorithm,
**≥5× fewer supersteps or ≥3× lower modeled time** summed over the
stream.

The harness emits the same JSONL event shape as ``repro mutate``
(``--events PATH``), so ``repro analyze --mutations PATH`` renders the
stream, and the report's per-algorithm totals come from the same
:func:`repro.obs.mutation_report.analyze_mutation_stream` rollup.

Run:   ``python benchmarks/bench_dynamic.py --out BENCH_dynamic.json``
Check: ``python benchmarks/bench_dynamic.py --quick --check BENCH_dynamic.json``
"""

import argparse
import json
import sys

import numpy as np

from repro.graph.generators import powerlaw_graph
from repro.graph.mutation import MutationBatch, apply_batch
from repro.obs.mutation_report import analyze_mutation_stream
from repro.session import GraphSession

NUM_VERTICES = 20_000
NUM_EDGES = 150_000
MACHINES = 8
ENGINE = "lazy-block"
BATCH_EDGES = 4  # inserts and removals per batch (a "small" batch)
NUM_BATCHES = 5
QUICK_NUM_BATCHES = 2
PAGERANK_TOL = 1e-4
#: SUM fixpoints agree to O(tolerance) per run, but the stream
#: warm-starts each batch from the previous *approximate* fixpoint, so
#: the inc-vs-cold gap accumulates termination slack across batches;
#: 200x bounds a multi-batch stream where a single run sits near 50x
BAND_FACTOR = 200.0
SUPERSTEP_GATE = 5.0
MODELED_TIME_GATE = 3.0

ALGORITHMS = [
    ("bfs", {"source": 0}, "exact"),
    ("pagerank", {"tolerance": PAGERANK_TOL}, "band"),
]


def _graph():
    return powerlaw_graph(NUM_VERTICES, NUM_EDGES, seed=3)


def mutation_stream(graph, num_batches: int):
    """Deterministic small batches valid against the evolving graph."""
    rng = np.random.default_rng(23)
    cur = graph
    batches = []
    for _ in range(num_batches):
        batch = MutationBatch()
        eids = rng.choice(cur.num_edges, size=BATCH_EDGES, replace=False)
        for e in eids:
            batch.remove_edge(int(cur.src[e]), int(cur.dst[e]))
        ends = rng.integers(0, cur.num_vertices, size=2 * BATCH_EDGES)
        for i in range(BATCH_EDGES):
            batch.add_edge(int(ends[2 * i]), int(ends[2 * i + 1]))
        batches.append(batch)
        cur, _ = apply_batch(cur, batch)
    return batches


def _run_event(result, mode: str, algorithm: str) -> dict:
    ev = {
        "event": "run",
        "mode": mode,
        "algorithm": algorithm,
        "supersteps": result.stats.supersteps,
        "modeled_time_s": result.stats.modeled_time_s,
    }
    if mode == "incremental":
        ev["warm_start"] = int(result.stats.extra.get("warm_start", 0.0))
        ev["reseeded"] = int(result.stats.extra.get("warm_reseeded", 0.0))
        ev["injections"] = int(
            result.stats.extra.get("warm_injections", 0.0)
        )
    return ev


def measure_algorithm(graph, batches, alg, params, equivalence):
    """One session: baseline, then apply/incremental/cold per batch."""
    events = []
    max_err = 0.0
    with GraphSession.open(graph, machines=MACHINES, seed=0) as sess:
        base = sess.run(alg, engine=ENGINE, **params)
        events.append(_run_event(base, "baseline", alg))
        for batch in batches:
            applied = sess.apply(batch)
            events.append({"event": "apply", **applied.to_dict()})
            inc = sess.run(alg, engine=ENGINE, incremental=True, **params)
            cold = sess.run(alg, engine=ENGINE, **params)
            events.append(_run_event(inc, "incremental", alg))
            events.append(_run_event(cold, "cold", alg))
            if equivalence == "exact":
                if not np.array_equal(inc.values, cold.values):
                    max_err = float("inf")
            else:
                max_err = max(
                    max_err,
                    float(np.max(np.abs(inc.values - cold.values))),
                )
    analysis = analyze_mutation_stream(events)
    band = (
        0.0 if equivalence == "exact" else BAND_FACTOR * params["tolerance"]
    )
    return events, {
        "algorithm": alg,
        "equivalence": equivalence,
        "max_error": max_err,
        "error_band": band,
        "equivalent": max_err <= band,
        "totals": analysis["totals"],
    }


def measure(quick: bool) -> dict:
    graph = _graph()
    num_batches = QUICK_NUM_BATCHES if quick else NUM_BATCHES
    batches = mutation_stream(graph, num_batches)
    report = {
        "config": {
            "graph": f"powerlaw({NUM_VERTICES}, {NUM_EDGES})",
            "machines": MACHINES,
            "engine": ENGINE,
            "batch_edges": BATCH_EDGES,
            "num_batches": num_batches,
            "algorithms": [a for a, _, _ in ALGORITHMS],
            "quick": bool(quick),
        },
        "algorithms": {},
    }
    all_events = []
    for alg, params, equivalence in ALGORITHMS:
        events, section = measure_algorithm(
            graph, batches, alg, params, equivalence
        )
        report["algorithms"][alg] = section
        all_events.extend(events)
    return report, all_events


def apply_gate(report: dict) -> bool:
    """Equivalence + (superstep OR modeled-time) speedup per algorithm."""
    acceptance = {
        "gate_superstep_speedup": SUPERSTEP_GATE,
        "gate_modeled_time_speedup": MODELED_TIME_GATE,
    }
    ok = True
    for alg, section in report["algorithms"].items():
        totals = section["totals"]
        ss = totals.get("superstep_speedup") or 0.0
        mt = totals.get("modeled_time_speedup") or 0.0
        alg_ok = section["equivalent"] and (
            ss >= SUPERSTEP_GATE or mt >= MODELED_TIME_GATE
        )
        acceptance[alg] = {
            "equivalent": section["equivalent"],
            "superstep_speedup": round(ss, 2),
            "modeled_time_speedup": round(mt, 2),
            "ok": alg_ok,
        }
        ok = ok and alg_ok
    acceptance["all_ok"] = ok
    report["acceptance"] = acceptance
    return ok


def check_baseline(report: dict, path: str) -> list:
    """Compare against the committed baseline (config + gate state)."""
    with open(path) as fh:
        base = json.load(fh)
    failures = []
    if not base.get("acceptance", {}).get("all_ok", False):
        failures.append(f"baseline {path} did not pass its own gate")
    for key in ("graph", "machines", "engine", "batch_edges", "algorithms"):
        if base["config"].get(key) != report["config"].get(key):
            failures.append(
                f"config drift vs baseline: {key} = "
                f"{report['config'].get(key)!r} vs {base['config'].get(key)!r}"
                " (re-generate BENCH_dynamic.json)"
            )
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", help="write the JSON report here")
    ap.add_argument(
        "--events", metavar="PATH",
        help="also write the repro-mutate-shaped JSONL event stream "
        "(feed to `repro analyze --mutations PATH`)",
    )
    ap.add_argument(
        "--quick", action="store_true",
        help="shorter mutation stream (CI smoke)",
    )
    ap.add_argument(
        "--check", metavar="BASELINE",
        help="fail on config drift vs a committed BENCH_dynamic.json",
    )
    args = ap.parse_args(argv)
    report, events = measure(quick=args.quick)
    ok = apply_gate(report)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    if args.events:
        with open(args.events, "w", encoding="utf-8") as fh:
            for ev in events:
                fh.write(json.dumps(ev) + "\n")
        print(f"wrote {args.events}")
    failures = [] if ok else ["acceptance gate failed (see report)"]
    if args.check:
        failures += check_baseline(report, args.check)
    for alg, acc in report["acceptance"].items():
        if not isinstance(acc, dict):
            continue
        print(
            f"{alg}: equivalent={acc['equivalent']}, superstep speedup "
            f"{acc['superstep_speedup']:.1f}x (gate {SUPERSTEP_GATE:.0f}x), "
            f"modeled-time speedup {acc['modeled_time_speedup']:.1f}x "
            f"(gate {MODELED_TIME_GATE:.0f}x), ok={acc['ok']}",
            file=sys.stderr,
        )
    for f in failures:
        print("FAILURE:", f, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
