"""§5.3's size-independence claim.

"the speedup rate of our approach largely depends on the replication
factor λ of input graphs, and is independent of the graph sizes and the
number of iterations."

We generate the same graph *class* at three sizes (road lattices of
increasing side; R-MAT socials of increasing vertex count at fixed E/V)
and compare the lazy speedup across sizes. Criterion: within a class,
the speedup varies far less than it does *between* classes — size and
iteration count (which grows with the road diameter) are not the
drivers; λ/class structure is.
"""

import numpy as np
import pytest

from repro.algorithms import ConnectedComponentsProgram
from repro.bench.reporting import format_table
from repro.core import LazyBlockAsyncEngine, build_lazy_graph
from repro.graph.generators import powerlaw_graph, road_grid_graph
from repro.powergraph import PowerGraphSyncEngine

MACHINES = 24


def _speedup(graph):
    sym = graph.symmetrized()
    pg = build_lazy_graph(sym, MACHINES, seed=1)
    sync = PowerGraphSyncEngine(pg, ConnectedComponentsProgram()).run()
    lazy = LazyBlockAsyncEngine(pg, ConnectedComponentsProgram()).run()
    assert np.array_equal(sync.values, lazy.values)
    return (
        sync.stats.modeled_time_s / lazy.stats.modeled_time_s,
        sync.stats.supersteps,
        pg.replication_factor,
    )


def sweep():
    rows = []
    classes = {"road": [], "social": []}
    for side in (36, 54, 72):
        g = road_grid_graph(side, side, extra_edge_fraction=0.25, seed=2)
        sp, iters, lam = _speedup(g)
        rows.append(["road", f"{side}x{side}", g.num_edges, iters, round(lam, 2), round(sp, 2)])
        classes["road"].append(sp)
    for n in (1200, 2000, 3200):
        g = powerlaw_graph(n, 12 * n, seed=2)
        sp, iters, lam = _speedup(g)
        rows.append(["social", f"n={n}", g.num_edges, iters, round(lam, 2), round(sp, 2)])
        classes["social"].append(sp)
    return rows, classes


def test_size_independence(benchmark, run_once):
    rows, classes = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["class", "size", "#E", "supersteps", "lambda", "lazy speedup (CC)"],
            rows,
            title="§5.3 — speedup vs graph size within a class (CC, 24 machines)",
        )
    )
    road = np.array(classes["road"])
    social = np.array(classes["social"])
    benchmark.extra_info["road"] = road.tolist()
    benchmark.extra_info["social"] = social.tolist()
    # within-class spread is bounded...
    assert road.max() <= 1.8 * road.min(), road
    assert social.max() <= 1.8 * social.min(), social
    # ...while the between-class gap (λ-driven) is the dominant effect
    assert road.min() > 1.5 * social.max(), (road, social)
