"""Policy ablation: the coherency controllers vs the paper rule.

Two entry points share this file (same shape as ``bench_kernels.py``):

* **pytest-benchmark test** (below) — one deterministic sweep of the
  controller matrix on the small workload, asserting the acceptance
  criteria so a behavioural regression in the policy layer fails the
  benchmark suite;
* **the ablation harness** (``python benchmarks/bench_policy_ablation.py
  --out BENCH_policy.json``) — runs PageRank on road-ca-mini/8 machines
  under every shipped controller on both lazy engines, with the tracer
  and coherency lens on, and records per-row: coherency points, syncs,
  traffic, the max deviation from the single-machine
  ``pagerank_reference`` fixpoint, and the LensAuditor verdict.

Acceptance (attached to the report and enforced by ``--check`` / the
pytest test): the ``staleness`` and ``batched`` controllers cut the
LazyVertexAsync coherency-point count by at least 20% against the
``paper`` baseline, every controller's final values stay within the
repo's PageRank validation tolerance of the reference fixpoint, and
every audited run is clean — pending mass drains at each exchange and
replicas agree (zero drift) after convergence.
"""

import argparse
import json
import sys

import numpy as np

import pytest

from repro.algorithms import PageRankDeltaProgram
from repro.algorithms.reference import pagerank_reference
from repro.core.policy import get_policy
from repro.obs.audit import LensAuditor
from repro.obs.report import trace_from_tracer
from repro.obs.tracer import Tracer
from repro.run_api import prepare_graph, run

GRAPH = "road-ca-mini"
MACHINES = 8
LAZY_VERTEX_POLICIES = ("paper", "staleness", "batched")
LAZY_BLOCK_POLICIES = ("paper", "staleness")
#: the repo's validation-standard PageRank tolerance (``repro validate``)
VALUE_TOL = 5e-2
CUT_TARGET = 0.20
DRIFT_ATOL = 1e-9


def _reference():
    """The exact single-machine PageRank fixpoint for the workload."""
    g = prepare_graph(GRAPH, PageRankDeltaProgram(), seed=0)
    return pagerank_reference(g)


def _measure(engine, policy_name, reference):
    """One audited run: stats, value deviation and the auditor verdict."""
    tracer = Tracer()
    result = run(
        GRAPH, "pagerank", engine=engine, machines=MACHINES,
        policy=policy_name, tracer=tracer, lens=True,
    )
    trace = trace_from_tracer(tracer)
    anomalies = LensAuditor(trace).audit()
    finals = [i for i in trace.instants if i.get("name") == "lens-final"]
    drift = float((finals[-1].get("attrs") or {}).get("drift", 0.0))
    stats = result.stats
    return {
        "policy": get_policy(policy_name).to_dict(),
        "coherency_points": int(stats.coherency_points),
        "supersteps": int(stats.supersteps),
        "global_syncs": int(stats.global_syncs),
        "comm_bytes": float(stats.comm_bytes),
        "comm_messages": int(stats.comm_messages),
        "modeled_time_s": float(stats.modeled_time_s),
        "converged": bool(stats.converged),
        "max_dev_from_reference": float(
            np.max(np.abs(result.values - reference))
        ),
        "final_drift": drift,
        "anomalies": [str(a) for a in anomalies],
    }


def run_matrix(quick=False):
    """The full controller × engine matrix plus its acceptance verdict."""
    reference = _reference()
    rows = {}
    for policy in LAZY_VERTEX_POLICIES:
        rows[f"lazy-vertex/{policy}"] = _measure(
            "lazy-vertex", policy, reference
        )
    if not quick:
        for policy in LAZY_BLOCK_POLICIES:
            rows[f"lazy-block/{policy}"] = _measure(
                "lazy-block", policy, reference
            )

    base = rows["lazy-vertex/paper"]["coherency_points"]
    cuts = {}
    for policy in ("staleness", "batched"):
        points = rows[f"lazy-vertex/{policy}"]["coherency_points"]
        cuts[policy] = 1.0 - points / base if base else 0.0
    acceptance = {
        "baseline_coherency_points": base,
        "cut_fraction": cuts,
        "cut_ok": all(c >= CUT_TARGET for c in cuts.values()),
        "values_ok": all(
            r["max_dev_from_reference"] <= VALUE_TOL for r in rows.values()
        ),
        "audits_clean": all(
            not r["anomalies"] and r["final_drift"] <= DRIFT_ATOL
            for r in rows.values()
        ),
        "all_converged": all(r["converged"] for r in rows.values()),
    }
    acceptance["ok"] = (
        acceptance["cut_ok"]
        and acceptance["values_ok"]
        and acceptance["audits_clean"]
        and acceptance["all_converged"]
    )
    return {
        "schema": "bench-policy/v1",
        "workload": {
            "graph": GRAPH, "algorithm": "pagerank", "machines": MACHINES,
        },
        "quick": bool(quick),
        "rows": rows,
        "acceptance": acceptance,
    }


# ======================================================================
# pytest-benchmark entry point
# ======================================================================
def test_policy_ablation(benchmark, run_once):
    report = run_once(benchmark, run_matrix, quick=True)
    acc = report["acceptance"]
    benchmark.extra_info["cut_fraction"] = acc["cut_fraction"]
    assert acc["audits_clean"], report["rows"]
    assert acc["values_ok"], report["rows"]
    assert acc["cut_ok"], acc["cut_fraction"]


# ======================================================================
# BENCH_policy.json harness (CLI)
# ======================================================================
def run_harness(args):
    report = run_matrix(quick=args.quick)
    out = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(out + "\n")
        print(f"wrote {args.out}")
    else:
        print(out)
    failures = []
    acc = report["acceptance"]
    if not acc["cut_ok"]:
        failures.append(
            f"coherency-point cut below {CUT_TARGET:.0%}: "
            f"{acc['cut_fraction']}"
        )
    if not acc["values_ok"]:
        failures.append("final values drifted past the validation tolerance")
    if not acc["audits_clean"]:
        failures.append("LensAuditor flagged anomalies or residual drift")
    if not acc["all_converged"]:
        failures.append("a controller failed to converge the workload")
    if args.check:
        with open(args.check) as fh:
            base = json.load(fh)
        # the simulator is deterministic: any drift in the coherency-point
        # counts against the committed baseline is a behaviour change
        for label, row in base["rows"].items():
            new = report["rows"].get(label)
            if new is None:
                continue  # baseline row not run (e.g. --quick)
            if new["coherency_points"] != row["coherency_points"]:
                failures.append(
                    f"{label}: {new['coherency_points']} coherency points "
                    f"vs baseline {row['coherency_points']}"
                )
    for f in failures:
        print("REGRESSION:", f, file=sys.stderr)
    return 1 if failures else 0


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", help="write the JSON report here")
    ap.add_argument(
        "--quick", action="store_true",
        help="lazy-vertex rows only (CI smoke)",
    )
    ap.add_argument(
        "--check", metavar="BASELINE",
        help="fail (exit 1) if coherency-point counts drift vs this JSON",
    )
    return run_harness(ap.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
