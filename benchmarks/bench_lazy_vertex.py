"""Extension evaluation: LazyVertexAsync (paper Algorithm 2).

The paper defines the barrier-free LazyVertexAsync engine but leaves its
implementation to future work ("LazyGraph has implemented LazyBlockAsync
... and will implement LazyVertexAsync based on the Async engine in the
future", §4). We implemented it; this bench evaluates it the way the
paper would have:

* zero global synchronizations (its defining property) while matching
  LazyBlockAsync's converged values;
* the delta-age knob trades coherency traffic against staleness;
* on latency-dominated road workloads the barrier-free engine is
  competitive with LazyBlockAsync; on traffic-dominated skewed graphs
  the unbatched fine-grained exchanges cost it the lead — mirroring the
  paper's sync-vs-async trade (§2.2 ISSUE III).
"""

import numpy as np
import pytest

from repro.bench.configs import ExperimentConfig
from repro.bench.harness import run_config
from repro.bench.reporting import format_table

GRAPHS = ("road-usa-mini", "web-uk-mini", "twitter-mini")


def sweep():
    rows = []
    per = {}
    for graph in GRAPHS:
        block = run_config(
            ExperimentConfig(graph, "sssp", engine="lazy-block")
        )
        vertex = run_config(
            ExperimentConfig(graph, "sssp", engine="lazy-vertex")
        )
        sync = run_config(
            ExperimentConfig(graph, "sssp", engine="powergraph-sync")
        )
        rows.append(
            [
                graph,
                round(sync.stats.modeled_time_s, 4),
                round(block.stats.modeled_time_s, 4),
                round(vertex.stats.modeled_time_s, 4),
                block.stats.global_syncs,
                vertex.stats.global_syncs,
                int(vertex.stats.extra.get("termination_probes", 0)),
            ]
        )
        per[graph] = (sync, block, vertex)
    return rows, per


def test_lazy_vertex_vs_block(benchmark, run_once):
    rows, per = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["graph", "sync_s", "block_s", "vertex_s", "block syncs",
             "vertex syncs", "probes"],
            rows,
            title="Algorithm 2 (LazyVertexAsync) vs Algorithm 1 — SSSP, 48 machines",
        )
    )
    for graph, (sync, block, vertex) in per.items():
        # barrier-free by construction
        assert vertex.stats.global_syncs == 0, graph
        # same answer as Algorithm 1
        a = np.nan_to_num(block.values, posinf=1e18)
        b = np.nan_to_num(vertex.values, posinf=1e18)
        assert np.array_equal(a, b), graph
        # and it still beats the eager baseline
        assert vertex.stats.modeled_time_s < sync.stats.modeled_time_s, graph
