"""Fig 10: normalized number of global synchronizations (lazy / Sync).

The paper's explanation of Fig 9: LazyGraph drastically reduces global
synchronizations — a structural ≥3× saving (3 barriers per eager
superstep vs 1 per coherency point) multiplied by lazy stage batching.
Shape criteria:

* every cell < 1 (always fewer synchronizations);
* every cell ≤ ~1/3 + ε (the structural saving is realized);
* the sync reduction correlates with the Fig 9 speedup across cells
  ("the strong correlation between Fig.9 and Fig.10").
"""

import numpy as np
import pytest

from repro.bench.configs import FIG9_ALGORITHMS, FIG9_GRAPHS
from repro.bench.harness import compare_lazy_vs_sync
from repro.bench.reporting import format_table


def matrix():
    return {
        (a, g): compare_lazy_vs_sync(g, a, machines=48)
        for a in FIG9_ALGORITHMS
        for g in FIG9_GRAPHS
    }


def test_fig10_normalized_syncs(benchmark, run_once):
    cells = run_once(benchmark, matrix)
    rows = [
        [g] + [round(cells[(a, g)]["norm_syncs"], 3) for a in FIG9_ALGORITHMS]
        for g in FIG9_GRAPHS
    ]
    print()
    print(
        format_table(
            ["graph"] + list(FIG9_ALGORITHMS),
            rows,
            title="Fig 10 — normalized global synchronizations (lazy / Sync)",
        )
    )
    norm = np.array(
        [[cells[(a, g)]["norm_syncs"] for g in FIG9_GRAPHS] for a in FIG9_ALGORITHMS]
    )
    benchmark.extra_info["norm_syncs"] = {
        a: dict(zip(FIG9_GRAPHS, map(float, row)))
        for a, row in zip(FIG9_ALGORITHMS, norm)
    }
    assert norm.max() < 1.0
    assert norm.max() <= 0.55  # structural 3-to-1 saving plus batching

    # correlation with Fig 9 speedups: fewer syncs <-> bigger speedup
    speeds = np.array(
        [[cells[(a, g)]["speedup"] for g in FIG9_GRAPHS] for a in FIG9_ALGORITHMS]
    ).ravel()
    inv = 1.0 / norm.ravel()
    corr = np.corrcoef(np.log(inv), np.log(speeds))[0, 1]
    benchmark.extra_info["log_corr_with_speedup"] = float(corr)
    assert corr > 0.4, corr
