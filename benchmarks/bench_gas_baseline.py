"""Ablation: classic full-gather GAS baseline vs the delta baseline.

The paper's §3.1: PowerGraph runs *standard* PageRank while LazyGraph
requires the push-style PageRank-Delta. Our Fig 9 conservatively runs
the same delta program on both systems; this bench quantifies the
baseline-formulation choice by also running the classic pull-style GAS
programs on the eager engine. Criteria:

* both baselines converge to the same values (sanity);
* full-gather PageRank re-traverses more edges than the delta form
  (it recomputes whole gather aggregates on every activation);
* the two baselines' modeled times agree within ~35%, i.e. the Fig 9
  speedups do not hinge on which eager formulation is the denominator.
"""

import numpy as np
import pytest

from repro.algorithms import PageRankDeltaProgram, SSSPProgram
from repro.bench.harness import get_partitioned, get_prepared_graph
from repro.bench.reporting import format_table
from repro.powergraph import (
    GASPageRank,
    GASSSSP,
    PowerGraphGASSyncEngine,
    PowerGraphSyncEngine,
)

GRAPHS = ("twitter-mini", "web-uk-mini", "road-usa-mini")


def compare():
    rows = []
    checks = []
    for name in GRAPHS:
        g = get_prepared_graph(name, symmetric=False, weighted=False)
        pg = get_partitioned(g, 48)
        gas = PowerGraphGASSyncEngine(pg, GASPageRank(tolerance=1e-3)).run()
        delta = PowerGraphSyncEngine(pg, PageRankDeltaProgram(tolerance=1e-3)).run()
        rows.append(
            [
                name,
                "pagerank",
                round(gas.stats.modeled_time_s, 3),
                round(delta.stats.modeled_time_s, 3),
                gas.stats.edge_traversals,
                delta.stats.edge_traversals,
            ]
        )
        checks.append((name, "pagerank", gas, delta))

        gw = get_prepared_graph(name, symmetric=False, weighted=True)
        pgw = get_partitioned(gw, 48)
        gas = PowerGraphGASSyncEngine(pgw, GASSSSP(0)).run()
        delta = PowerGraphSyncEngine(pgw, SSSPProgram(0)).run()
        rows.append(
            [
                name,
                "sssp",
                round(gas.stats.modeled_time_s, 3),
                round(delta.stats.modeled_time_s, 3),
                gas.stats.edge_traversals,
                delta.stats.edge_traversals,
            ]
        )
        checks.append((name, "sssp", gas, delta))
    return rows, checks


def test_gas_vs_delta_baseline(benchmark, run_once):
    rows, checks = run_once(benchmark, compare)
    print()
    print(
        format_table(
            ["graph", "algorithm", "gas_time_s", "delta_time_s", "gas_edges", "delta_edges"],
            rows,
            title="Ablation — classic GAS vs delta formulation on the eager engine",
        )
    )
    for name, alg, gas, delta in checks:
        same = np.allclose(
            np.nan_to_num(gas.values, posinf=1e18),
            np.nan_to_num(delta.values, posinf=1e18),
            atol=5e-2,
            rtol=5e-2,
        )
        assert same, (name, alg)
        if alg == "pagerank":
            # full gather redoes aggregate work the delta form avoids
            assert gas.stats.edge_traversals >= delta.stats.edge_traversals, name
        # baseline choice shifts eager time by well under 2x — the Fig 9
        # comparison does not hinge on the formulation
        ratio = gas.stats.modeled_time_s / delta.stats.modeled_time_s
        assert 0.5 <= ratio <= 2.0, (name, alg, ratio)
