"""Observability-overhead gate: sharded collection must stay cheap.

The sharded observability plane (:mod:`repro.obs.shards`) buffers every
per-machine event locally and merges at barriers. Its pitch is that the
discipline costs (almost) nothing on the host clock — otherwise nobody
leaves tracing on. This harness measures, per engine, the median host
wall time of the same run in three modes:

* ``off``        — ``trace=False`` (NullTracer; the baseline);
* ``sharded``    — tracing on, buffered per-machine collectors merged at
  barriers (the default);
* ``passthrough``— tracing on, collectors in legacy passthrough mode
  (every event written to the global tracer inline; the oracle path).

and writes ``BENCH_obs.json``. The acceptance gate — enforced by CI and
by this script's exit status — is that **sharded collection adds less
than 10% host-time overhead versus ``trace=False``**.

Run: ``python benchmarks/bench_obs_overhead.py --out BENCH_obs.json``.
"""

import argparse
import json
import statistics
import sys
import time

from repro.core.transmission import build_lazy_graph
from repro.graph.generators import powerlaw_graph
from repro.obs.tracer import Tracer
from repro.runtime.registry import get_engine

ENGINES = ("lazy-block", "powergraph-sync")
MODES = ("off", "sharded", "passthrough")
NUM_VERTICES = 50_000
NUM_EDGES = 600_000
MACHINES = 8
DEFAULT_GATE_PCT = 10.0


def _run_once(spec, pg, mode: str) -> float:
    program = spec.make_program("pagerank", tolerance=1e-3)
    if mode == "off":
        engine = spec.cls(pg, program)
    else:
        engine = spec.cls(pg, program, tracer=Tracer())
        if mode == "passthrough":
            engine.shards.set_buffered(False)
    t0 = time.perf_counter()
    engine.run()
    return time.perf_counter() - t0


def measure(repeats: int = 5) -> dict:
    graph = powerlaw_graph(NUM_VERTICES, NUM_EDGES, seed=3)
    pg = build_lazy_graph(graph, MACHINES, seed=1)
    out = {
        "config": {
            "graph": f"powerlaw({NUM_VERTICES}, {NUM_EDGES})",
            "machines": MACHINES,
            "algorithm": "pagerank",
            "repeats": repeats,
            "statistic": "median (1 warmup run discarded)",
        },
        "engines": {},
    }
    for name in ENGINES:
        spec = get_engine(name)
        rows = {}
        for mode in MODES:
            _run_once(spec, pg, mode)  # warmup (JIT-less, but caches)
            times = sorted(_run_once(spec, pg, mode) for _ in range(repeats))
            rows[mode] = {
                "median_s": statistics.median(times),
                "runs_s": [round(t, 4) for t in times],
            }
        base = rows["off"]["median_s"]
        sharded_pct = 100.0 * (rows["sharded"]["median_s"] - base) / base
        passthrough_pct = (
            100.0 * (rows["passthrough"]["median_s"] - base) / base
        )
        out["engines"][name] = {
            **rows,
            "sharded_overhead_pct": round(sharded_pct, 2),
            "passthrough_overhead_pct": round(passthrough_pct, 2),
        }
    return out


def apply_gate(report: dict, gate_pct: float) -> bool:
    ok = True
    acceptance = {"threshold_pct": gate_pct}
    for name, row in report["engines"].items():
        passed = row["sharded_overhead_pct"] < gate_pct
        acceptance[f"{name}_sharded_lt_threshold"] = passed
        ok = ok and passed
    acceptance["all_ok"] = ok
    report["acceptance"] = acceptance
    return ok


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", help="write the JSON report here")
    ap.add_argument(
        "--repeats", type=int, default=5,
        help="timed runs per (engine, mode) after one warmup (default 5)",
    )
    ap.add_argument(
        "--gate", type=float, default=DEFAULT_GATE_PCT,
        help="max sharded overhead vs trace=False, percent (default 10)",
    )
    args = ap.parse_args(argv)
    report = measure(repeats=args.repeats)
    ok = apply_gate(report, args.gate)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    print(text)
    for name, row in report["engines"].items():
        print(
            f"{name}: sharded {row['sharded_overhead_pct']:+.2f}% / "
            f"passthrough {row['passthrough_overhead_pct']:+.2f}% "
            f"vs trace=False",
            file=sys.stderr,
        )
    if not ok:
        print(
            f"GATE FAILED: sharded collection overhead exceeds "
            f"{args.gate:.1f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
