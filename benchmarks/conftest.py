"""Benchmark-suite configuration.

The benchmark modules reproduce the paper's tables/figures on the
deterministic cluster simulator. Host wall-clock (what pytest-benchmark
measures) is how long the *simulation* takes; the reproduced quantities
— modeled cluster time, synchronizations, traffic — are printed as
paper-style tables and attached to each benchmark's ``extra_info``.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

import pytest

from repro.utils.timer import Timer


def once(benchmark, fn, *args, **kwargs):
    """Measure ``fn`` exactly once (runs are deterministic simulations)."""
    timer = Timer()

    def timed(*a, **kw):
        with timer:
            return fn(*a, **kw)

    result = benchmark.pedantic(
        timed, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["host_elapsed_s"] = timer.elapsed
    return result


@pytest.fixture()
def run_once():
    return once
