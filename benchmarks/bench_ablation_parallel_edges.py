"""Ablation: the parallel-edges budget (paper §4.1's ``textra``).

The edge splitter prices its budget by the extra execution time a user
grants (``[PEhigh·(P−1) + PElow·(P/3)] / P = TEPS·textra``). Sweeping
``textra`` from 0 (no splitting) upward measures both halves of the
trade the paper describes: split edges turn remote messages into local
writes (delta-exchange volume shrinks), while their copies add local
edge work and extra replicas.

Criteria:

* correctness is invariant across the sweep (same converged values);
* the number of split edges grows monotonically with ``textra``;
* splitting reduces the exchanged coherency volume on the skewed social
  workload (hub↔hub edges dominate its delta traffic).
"""

import numpy as np
import pytest

from repro.algorithms import KCoreProgram
from repro.bench.harness import get_prepared_graph
from repro.bench.reporting import format_table
from repro.core import LazyBlockAsyncEngine, build_lazy_graph
from repro.partition.edge_splitter import EdgeSplitConfig

MACHINES = 24
TEXTRAS = (0.0, 0.05, 0.1, 0.2, 0.5)


def sweep():
    g = get_prepared_graph("livejournal-mini", symmetric=True, weighted=False)
    rows = []
    runs = []
    for textra in TEXTRAS:
        cfg = EdgeSplitConfig(textra=textra) if textra else None
        pg = build_lazy_graph(g, MACHINES, split_config=cfg, seed=1)
        r = LazyBlockAsyncEngine(pg, KCoreProgram(k=10)).run()
        rows.append(
            [
                textra,
                int(pg.parallel_eids.size),
                round(pg.replication_factor, 2),
                round(r.stats.comm_bytes / 1e3, 1),
                round(r.stats.modeled_time_s, 4),
                r.stats.edge_traversals,
            ]
        )
        runs.append((pg, r))
    return rows, runs


def test_ablation_parallel_edges(benchmark, run_once):
    rows, runs = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["textra", "split edges", "lambda", "exchange_KB", "time_s", "edge_work"],
            rows,
            title="Ablation — parallel-edges budget (k-core on livejournal-mini)",
        )
    )
    # correctness invariant across the sweep
    base_values = runs[0][1].values
    for pg, r in runs[1:]:
        assert np.array_equal(r.values, base_values)
    # budget monotone in textra
    splits = [row[1] for row in rows]
    assert splits == sorted(splits)
    assert splits[0] == 0 and splits[-1] > 0
    # generous splitting reduces exchanged bytes vs no splitting
    assert rows[-1][3] < rows[0][3], rows
    benchmark.extra_info["exchange_kb"] = {r[0]: r[3] for r in rows}
