"""Fig 11: normalized communication traffic (lazy / Sync).

Delta batching between coherency points plus the subsumption filter for
idempotent algebras reduce LazyGraph's bytes on the wire for most
cells; the exception — documented in EXPERIMENTS.md — is *weighted*
SSSP, where regional label corrections make the lazy engine ship more
(the speedup there is carried by the Fig 10 sync reduction instead).
Shape criteria:

* k-core and CC traffic < 1 everywhere (monotone peeling / idempotent
  label propagation batch perfectly);
* PageRank traffic ≤ ~1 everywhere (parity or better);
* the all-cell median is < 1 (LazyGraph reduces traffic overall).
"""

import numpy as np
import pytest

from repro.bench.configs import FIG9_ALGORITHMS, FIG9_GRAPHS
from repro.bench.harness import compare_lazy_vs_sync
from repro.bench.reporting import format_table


def matrix():
    return {
        (a, g): compare_lazy_vs_sync(g, a, machines=48)
        for a in FIG9_ALGORITHMS
        for g in FIG9_GRAPHS
    }


def test_fig11_normalized_traffic(benchmark, run_once):
    cells = run_once(benchmark, matrix)
    rows = [
        [g]
        + [round(cells[(a, g)]["norm_traffic"], 3) for a in FIG9_ALGORITHMS]
        for g in FIG9_GRAPHS
    ]
    print()
    print(
        format_table(
            ["graph"] + list(FIG9_ALGORITHMS),
            rows,
            title="Fig 11 — normalized communication traffic (lazy / Sync)",
        )
    )
    norm = {
        a: np.array([cells[(a, g)]["norm_traffic"] for g in FIG9_GRAPHS])
        for a in FIG9_ALGORITHMS
    }
    benchmark.extra_info["norm_traffic"] = {
        a: dict(zip(FIG9_GRAPHS, map(float, v))) for a, v in norm.items()
    }

    assert norm["kcore"].max() < 1.0
    assert norm["cc"].max() < 1.0
    assert norm["pagerank"].max() <= 1.25

    all_cells = np.concatenate(list(norm.values()))
    assert np.median(all_cells) < 1.0
