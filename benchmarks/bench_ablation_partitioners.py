"""Ablation: partitioner choice — λ and its effect on the lazy speedup.

The paper evaluates everything under coordinated vertex-cut (§5.1) and
ties the speedup to the resulting λ (§5.3). This ablation varies the
partitioner on a fixed workload to probe that causal link directly:
*within a single graph and algorithm*, layouts with lower λ should give
LazyGraph a larger edge over the eager engine.

Findings (asserted):

* coordinated-cut clearly beats the locality-blind vertex-cuts (grid,
  hybrid, random) on λ for every graph class — why the paper uses it.
  (The oblivious variant can edge it out at mini scale: its per-loader
  chunks align with generator id-locality.)
* on the road graph — the λ-sensitive regime — the low-λ layouts
  (coordinated/oblivious, λ≈1–2) give several-fold larger lazy speedups
  than the high-λ layouts (λ≥3);
* on high-E/V graphs the speedup is insensitive to the partitioner
  (fixed-cost savings dominate), which sharpens the paper's §5.3 claim:
  λ drives the speedup *across input graphs*, through the workload's
  structure, not through layout alone.
"""

import numpy as np
import pytest

from repro.algorithms import ConnectedComponentsProgram
from repro.bench.harness import get_prepared_graph
from repro.bench.reporting import format_table
from repro.core import LazyBlockAsyncEngine, build_lazy_graph
from repro.powergraph import PowerGraphSyncEngine

PARTITIONERS = ("coordinated", "oblivious", "grid", "hybrid", "random")
GRAPHS = ("road-usa-mini", "web-uk-mini", "youtube-mini")
MACHINES = 24


def sweep():
    rows = []
    per_graph = {}
    for graph_name in GRAPHS:
        g = get_prepared_graph(graph_name, symmetric=True, weighted=False)
        lams, speeds = [], []
        for method in PARTITIONERS:
            pg = build_lazy_graph(g, MACHINES, partitioner=method, seed=1)
            sync = PowerGraphSyncEngine(pg, ConnectedComponentsProgram()).run()
            lazy = LazyBlockAsyncEngine(pg, ConnectedComponentsProgram()).run()
            assert np.array_equal(sync.values, lazy.values)
            speedup = sync.stats.modeled_time_s / lazy.stats.modeled_time_s
            lams.append(pg.replication_factor)
            speeds.append(speedup)
            rows.append(
                [graph_name, method, round(pg.replication_factor, 2),
                 round(speedup, 2)]
            )
        per_graph[graph_name] = (lams, speeds)
    return rows, per_graph


def _spearman(xs, ys):
    rx = np.argsort(np.argsort(xs)).astype(float)
    ry = np.argsort(np.argsort(ys)).astype(float)
    rx -= rx.mean()
    ry -= ry.mean()
    return float((rx * ry).sum() / np.sqrt((rx**2).sum() * (ry**2).sum()))


def test_ablation_partitioners(benchmark, run_once):
    rows, per_graph = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["graph", "partitioner", "lambda", "lazy speedup (CC)"],
            rows,
            title=f"Ablation — partitioner choice ({MACHINES} machines)",
        )
    )
    for graph_name, (lams, speeds) in per_graph.items():
        by_lam = dict(zip(PARTITIONERS, lams))
        by_speed = dict(zip(PARTITIONERS, speeds))
        # coordinated clearly beats the locality-blind vertex-cuts
        for blind in ("grid", "random"):
            assert by_lam["coordinated"] < by_lam[blind], (graph_name, by_lam)
        rho = _spearman(lams, speeds)
        benchmark.extra_info[f"spearman_{graph_name}"] = rho
    # road: the λ-sensitive regime — low-λ layouts win by a lot
    road_lam, road_speed = per_graph["road-usa-mini"]
    by = dict(zip(PARTITIONERS, zip(road_lam, road_speed)))
    low = max(by["coordinated"][1], by["oblivious"][1])
    high = max(by["grid"][1], by["random"][1], by["hybrid"][1])
    assert low > 2.0 * high, by
    # high-E/V graphs: speedup insensitive to layout (within ±30%)
    for name in ("web-uk-mini", "youtube-mini"):
        _, speeds = per_graph[name]
        assert max(speeds) <= 1.3 * min(speeds), (name, speeds)
