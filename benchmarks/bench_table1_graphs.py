"""Table 1: the evaluation graphs — V, E, E/V and λ (coordinated cut, P=48).

Regenerates the paper's dataset table for the mini analogs and checks
the structural claims the rest of the evaluation leans on:

* E/V tracks the paper per graph;
* λ ordering by class: road < web / community-social < skewed-social;
* the paper's λ ordering is preserved rank-for-rank (allowing ties
  between the adjacent google/youtube pair, which the paper also lists
  0.23 apart).
"""

import pytest

from repro.bench.reporting import format_table
from repro.graph.datasets import dataset_info, dataset_names, load_dataset
from repro.bench.harness import get_partitioned, get_prepared_graph

MACHINES = 48  # the paper's Table 1 is "coordinated-cut on 48 partitions"


def _lambda(name: str) -> float:
    g = get_prepared_graph(name, symmetric=False, weighted=False)
    return get_partitioned(g, MACHINES).replication_factor


def table_rows():
    rows = []
    for name in dataset_names():
        info = dataset_info(name)
        g = load_dataset(name)
        rows.append(
            [
                name,
                info.category,
                g.num_vertices,
                g.num_edges,
                round(g.ev_ratio, 2),
                round(_lambda(name), 2),
                info.paper_ev_ratio,
                info.paper_lambda,
            ]
        )
    return rows


def test_table1(benchmark, run_once):
    rows = run_once(benchmark, table_rows)
    print()
    print(
        format_table(
            ["graph", "class", "#V", "#E", "E/V", "lambda", "paper E/V", "paper lambda"],
            rows,
            title="Table 1 — evaluation graphs (coordinated cut, 48 partitions)",
        )
    )
    lam = {r[0]: r[5] for r in rows}
    ev = {r[0]: r[4] for r in rows}
    benchmark.extra_info["lambda"] = lam

    # E/V within 35% of Table 1 for every analog
    for r in rows:
        assert r[4] == pytest.approx(r[6], rel=0.35), r[0]

    # class ordering of λ: road lowest, heavy social highest
    assert max(lam["road-usa-mini"], lam["road-ca-mini"]) < min(
        lam["web-google-mini"], lam["youtube-mini"]
    )
    assert max(lam["web-uk-mini"], lam["web-google-mini"]) < min(
        lam["twitter-mini"], lam["enwiki-mini"]
    )

    # paper rank order preserved (google/youtube are a near-tie in the
    # paper too, so compare with a small tolerance)
    paper_order = sorted(lam, key=lambda n: dataset_info(n).paper_lambda)
    ours = [lam[n] for n in paper_order]
    for a, b in zip(ours, ours[1:]):
        assert b >= a - 0.4, (paper_order, ours)


def test_table1_road_ev(benchmark, run_once):
    """Road analogs keep the near-constant-degree signature."""
    def go():
        return {
            name: load_dataset(name).ev_ratio
            for name in ("road-usa-mini", "road-ca-mini")
        }

    evs = run_once(benchmark, go)
    for name, ev in evs.items():
        assert 2.0 < ev < 3.5, name
