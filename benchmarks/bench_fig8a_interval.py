"""Fig 8(a): adaptive interval strategy vs the simple strategy on SSSP.

The paper compares its adaptive input-behaviour-interval model against a
"simple" strategy where lazy mode is always on and every local
computation stage runs to convergence. We run SSSP on one graph per
class and additionally include the never-lazy strategy as the other
endpoint of the spectrum. Shape criterion: adaptive ≥ simple on modeled
time on every graph (the paper shows the adaptive strategy winning), and
both lazy strategies beat never-lazy's sync count.
"""

import pytest

from repro.bench.configs import ExperimentConfig
from repro.bench.harness import run_config
from repro.bench.reporting import format_table

GRAPHS = ("road-usa-mini", "web-uk-mini", "twitter-mini")
STRATEGIES = ("adaptive", "simple", "never")


def sweep():
    rows = []
    results = {}
    for graph in GRAPHS:
        per = {}
        for strategy in STRATEGIES:
            r = run_config(
                ExperimentConfig(
                    graph, "sssp", engine="lazy-block",
                    policy_opts={"interval": strategy},
                )
            )
            per[strategy] = r
            rows.append(
                [
                    graph,
                    strategy,
                    round(r.stats.modeled_time_s, 4),
                    r.stats.global_syncs,
                    round(r.stats.comm_bytes / 1e6, 4),
                    r.stats.local_iterations,
                ]
            )
        results[graph] = per
    return rows, results


def test_fig8a_interval_strategies(benchmark, run_once):
    rows, results = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["graph", "strategy", "time_s", "syncs", "traffic_MB", "local_iters"],
            rows,
            title="Fig 8(a) — interval strategy on SSSP (48 machines)",
        )
    )
    for graph, per in results.items():
        adaptive = per["adaptive"].stats
        simple = per["simple"].stats
        never = per["never"].stats
        benchmark.extra_info[graph] = {
            s: per[s].stats.modeled_time_s for s in STRATEGIES
        }
        # the adaptive strategy does help (or at worst ties) vs simple
        assert adaptive.modeled_time_s <= simple.modeled_time_s * 1.05, graph
        # both lazy strategies synchronize far less than never-lazy
        assert adaptive.global_syncs < never.global_syncs, graph
        assert simple.global_syncs <= never.global_syncs, graph
        # and all converge to the same distances
        import numpy as np

        a, s, n = (per[k].values for k in STRATEGIES)
        assert np.allclose(
            np.nan_to_num(a, posinf=1e18), np.nan_to_num(s, posinf=1e18)
        )
        assert np.allclose(
            np.nan_to_num(a, posinf=1e18), np.nan_to_num(n, posinf=1e18)
        )
