"""Process-backend speedup gate: real wall-clock parallelism, bit-exact.

The execution-backend layer's pitch is that ``backend="process"`` buys
host wall-clock speedup while staying *bit-identical* to the serial
backend (same values, same RunStats, same traces — the equivalence
matrix in ``tests/integration/test_backend_equivalence.py`` is the
oracle). This harness prices the claim on the dense-sweep PageRank
workload (powerlaw 50k vertices / 600k edges, 8 machines, lazy-block):

* ``serial``  — the inline lockstep backend (the baseline);
* ``process`` — the shared-memory worker pool at ``--workers`` workers,
  with the pool spawn cost (``startup_s``) reported separately from the
  steady-state ``run()`` wall time it amortizes over.

and writes ``BENCH_parallel.json``. The acceptance gate — enforced by
CI on multi-core runners — is **speedup ≥ 1.8× at 4 workers**. Hosts
with fewer cores than workers cannot express the parallelism, so the
gate is *skipped honestly* there (recorded as ``skipped (N cores)``,
never silently passed). Bit-identity of the two backends' values is
asserted unconditionally on every host.

Run:   ``python benchmarks/bench_parallel.py --out BENCH_parallel.json``
Check: ``python benchmarks/bench_parallel.py --quick --check BENCH_parallel.json``
"""

import argparse
import json
import os
import statistics
import sys
import time

import numpy as np

from repro.core.transmission import build_lazy_graph
from repro.graph.generators import powerlaw_graph
from repro.runtime.process_backend import ProcessBackend
from repro.runtime.registry import get_engine

NUM_VERTICES = 50_000
NUM_EDGES = 600_000
MACHINES = 8
ENGINE = "lazy-block"
DEFAULT_WORKERS = 4
DEFAULT_GATE = 1.8


def _run_once(spec, pg, workers=None):
    """One fresh engine run; returns (run_s, startup_s, values)."""
    program = spec.make_program("pagerank", tolerance=1e-3)
    backend = ProcessBackend(workers=workers) if workers else None
    engine = spec.cls(pg, program, backend=backend)
    startup_s = backend.startup_s if backend else 0.0
    t0 = time.perf_counter()
    result = engine.run()
    return time.perf_counter() - t0, startup_s, result.values


def measure(workers: int, repeats: int) -> dict:
    graph = powerlaw_graph(NUM_VERTICES, NUM_EDGES, seed=3)
    pg = build_lazy_graph(graph, MACHINES, seed=1)
    spec = get_engine(ENGINE)
    host_cpus = os.cpu_count() or 1
    report = {
        "config": {
            "graph": f"powerlaw({NUM_VERTICES}, {NUM_EDGES})",
            "machines": MACHINES,
            "engine": ENGINE,
            "algorithm": "pagerank(tolerance=1e-3)",
            "workers": workers,
            "repeats": repeats,
            "host_cpus": host_cpus,
            "statistic": "median (1 warmup run discarded)",
        },
    }
    values = {}
    for mode, w in (("serial", None), ("process", workers)):
        _, _, vals = _run_once(spec, pg, w)  # warmup; keep the values
        values[mode] = vals
        runs, startups = [], []
        for _ in range(repeats):
            run_s, startup_s, _ = _run_once(spec, pg, w)
            runs.append(run_s)
            startups.append(startup_s)
        report[mode] = {
            "median_s": statistics.median(runs),
            "runs_s": [round(t, 4) for t in sorted(runs)],
        }
        if w:
            report[mode]["startup_median_s"] = statistics.median(startups)
    report["bit_identical"] = bool(
        np.array_equal(values["serial"], values["process"])
    )
    report["speedup"] = (
        report["serial"]["median_s"] / report["process"]["median_s"]
    )
    return report


def apply_gate(report: dict, gate: float) -> bool:
    """Speedup gate, skipped honestly on hosts too small to express it."""
    cfg = report["config"]
    measurable = cfg["host_cpus"] >= cfg["workers"]
    acceptance = {
        "bit_identical": report["bit_identical"],
        "gate_speedup": gate,
        "measurable": measurable,
    }
    if measurable:
        acceptance["speedup_ok"] = report["speedup"] >= gate
        ok = report["bit_identical"] and acceptance["speedup_ok"]
    else:
        acceptance["speedup_ok"] = (
            f"skipped ({cfg['host_cpus']} host cores < "
            f"{cfg['workers']} workers)"
        )
        ok = report["bit_identical"]
    acceptance["all_ok"] = ok
    report["acceptance"] = acceptance
    return ok


def check_baseline(report: dict, path: str) -> list:
    """Compare against the committed baseline (config + identity)."""
    with open(path) as fh:
        base = json.load(fh)
    failures = []
    if not base.get("bit_identical", False):
        failures.append(f"baseline {path} was not bit-identical")
    for key in ("graph", "machines", "engine", "algorithm", "workers"):
        if base["config"].get(key) != report["config"].get(key):
            failures.append(
                f"config drift vs baseline: {key} = "
                f"{report['config'].get(key)!r} vs {base['config'].get(key)!r}"
                " (re-generate BENCH_parallel.json)"
            )
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", help="write the JSON report here")
    ap.add_argument(
        "--quick", action="store_true",
        help="1 timed repeat after warmup (same graph; CI smoke)",
    )
    ap.add_argument(
        "--repeats", type=int, default=3,
        help="timed runs per backend after one warmup (default 3)",
    )
    ap.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS,
        help=f"process-backend worker count (default {DEFAULT_WORKERS})",
    )
    ap.add_argument(
        "--gate", type=float, default=DEFAULT_GATE,
        help=f"min speedup vs serial when measurable (default {DEFAULT_GATE})",
    )
    ap.add_argument(
        "--check", metavar="BASELINE",
        help="fail on config drift vs a committed BENCH_parallel.json",
    )
    args = ap.parse_args(argv)
    repeats = 1 if args.quick else args.repeats
    report = measure(workers=args.workers, repeats=repeats)
    report["config"]["quick"] = bool(args.quick)
    ok = apply_gate(report, args.gate)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    failures = [] if ok else ["acceptance gate failed (see report)"]
    if args.check:
        failures += check_baseline(report, args.check)
    print(
        f"serial {report['serial']['median_s']:.3f}s vs process "
        f"{report['process']['median_s']:.3f}s @ {args.workers} workers "
        f"(+{report['process']['startup_median_s']:.3f}s spawn): "
        f"speedup {report['speedup']:.2f}x, "
        f"bit_identical={report['bit_identical']}, "
        f"gate={report['acceptance']['speedup_ok']}",
        file=sys.stderr,
    )
    for f in failures:
        print("FAILURE:", f, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
