"""Fig 9: LazyGraph speedup over PowerGraph Sync — 4 algorithms × 8 graphs.

The paper's headline figure: on 48 machines LazyGraph beats PowerGraph
Sync on every (algorithm, graph) cell, 1.25×–10.69× overall, with
per-algorithm averages of 3.95 (k-core), 3.1 (PageRank), 4.57 (SSSP)
and 3.91 (CC), the largest wins on road graphs and the smallest on
twitter. Shape criteria asserted here:

* every cell ≥ 1 (LazyGraph never loses);
* the overall range spans at least [1.2, 5];
* per algorithm, the best road-graph speedup exceeds the twitter one;
* speedup anti-correlates with the replication factor λ (paper §5.3) —
  Spearman rank correlation over graphs is negative for each algorithm.
"""

import numpy as np
import pytest

from repro.bench.configs import FIG9_ALGORITHMS, FIG9_GRAPHS
from repro.bench.harness import compare_lazy_vs_sync, get_partitioned, get_prepared_graph
from repro.bench.reporting import format_table


def lambda_of(graph_name):
    g = get_prepared_graph(graph_name, symmetric=False, weighted=False)
    return get_partitioned(g, 48).replication_factor


def full_matrix():
    cells = {}
    for alg in FIG9_ALGORITHMS:
        for graph in FIG9_GRAPHS:
            cells[(alg, graph)] = compare_lazy_vs_sync(graph, alg, machines=48)
    return cells


def _spearman(xs, ys):
    def ranks(v):
        order = np.argsort(v)
        r = np.empty(len(v))
        r[order] = np.arange(len(v))
        return r

    rx, ry = ranks(np.asarray(xs)), ranks(np.asarray(ys))
    rx -= rx.mean()
    ry -= ry.mean()
    return float((rx * ry).sum() / np.sqrt((rx**2).sum() * (ry**2).sum()))


def test_fig9_speedups(benchmark, run_once):
    cells = run_once(benchmark, full_matrix)
    lams = {g: lambda_of(g) for g in FIG9_GRAPHS}
    rows = [
        [g, round(lams[g], 2)]
        + [round(cells[(a, g)]["speedup"], 2) for a in FIG9_ALGORITHMS]
        for g in FIG9_GRAPHS
    ]
    print()
    print(
        format_table(
            ["graph", "lambda"] + list(FIG9_ALGORITHMS),
            rows,
            title="Fig 9 — LazyGraph speedup over PowerGraph Sync (48 machines)",
        )
    )
    speedups = np.array(
        [[cells[(a, g)]["speedup"] for g in FIG9_GRAPHS] for a in FIG9_ALGORITHMS]
    )
    benchmark.extra_info["speedups"] = {
        a: dict(zip(FIG9_GRAPHS, map(float, row)))
        for a, row in zip(FIG9_ALGORITHMS, speedups)
    }

    # LazyGraph wins every cell
    assert speedups.min() >= 1.0, speedups

    # the range is paper-like: small wins exist, large wins exist
    assert speedups.min() <= 2.5
    assert speedups.max() >= 4.0

    # road beats twitter per algorithm (largest vs smallest in the paper)
    for i, alg in enumerate(FIG9_ALGORITHMS):
        road = max(
            speedups[i][FIG9_GRAPHS.index("road-usa-mini")],
            speedups[i][FIG9_GRAPHS.index("road-ca-mini")],
        )
        twitter = speedups[i][FIG9_GRAPHS.index("twitter-mini")]
        assert road > twitter * 0.95, alg

    # §5.3: speedup anti-correlates with λ for the iterative algorithms.
    # (k-core's speedup is dominated by cascade locality, as in the
    # paper where web graphs beat road graphs on k-core.)
    lam_vec = [lams[g] for g in FIG9_GRAPHS]
    for i, alg in enumerate(FIG9_ALGORITHMS):
        rho = _spearman(lam_vec, speedups[i])
        benchmark.extra_info[f"spearman_{alg}"] = rho
        if alg != "kcore":
            assert rho < 0, (alg, rho)


def test_fig9_average_speedups(benchmark, run_once):
    from repro.bench.expectations import PAPER_MEAN_SPEEDUPS

    cells = run_once(benchmark, full_matrix)
    averages = {
        a: float(np.mean([cells[(a, g)]["speedup"] for g in FIG9_GRAPHS]))
        for a in FIG9_ALGORITHMS
    }
    print()
    print(
        format_table(
            ["algorithm", "mean speedup", "paper mean"],
            [
                [a, round(averages[a], 2), PAPER_MEAN_SPEEDUPS[a]]
                for a in FIG9_ALGORITHMS
            ],
            title="Fig 9 — per-algorithm average speedup",
        )
    )
    benchmark.extra_info.update(averages)
    # every per-algorithm average is a clear win
    for a, mean in averages.items():
        assert mean >= 1.5, (a, mean)
