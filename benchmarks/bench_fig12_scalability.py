"""Fig 12: scalability with machine count — Lazy vs Sync vs Async.

(a–f): PageRank and SSSP times over 8..48 machines on one graph per
class (web / road / social). (g, h): speedups over Sync on 16 and 24
machines. Shape criteria from the paper:

* LazyGraph is fastest at every machine count on every workload;
* LazyGraph's advantage over Sync does not erode as machines are added
  (it "has a good scalability");
* PowerGraph Async degrades with machine count on the high-diameter
  road workloads (paper: "gets performance degradation ... when the
  machine number is larger than 16") while Lazy does not degrade as
  fast;
* on 16 and 24 machines, LazyAsync's speedup over Sync exceeds Async's
  (Fig 12(g, h): "LazyAsync has a better scalability than Async").
"""

import numpy as np
import pytest

from repro.bench.configs import FIG12_GRAPHS, FIG12_MACHINES, ExperimentConfig
from repro.bench.harness import run_config
from repro.bench.reporting import format_series, format_table

ENGINES = ("powergraph-sync", "powergraph-async", "lazy-block")
ALGORITHMS = ("pagerank", "sssp")


def sweep():
    out = {}
    for graph in FIG12_GRAPHS:
        for alg in ALGORITHMS:
            for P in FIG12_MACHINES:
                for engine in ENGINES:
                    r = run_config(
                        ExperimentConfig(graph, alg, engine=engine, machines=P)
                    )
                    out[(graph, alg, engine, P)] = r.stats.modeled_time_s
    return out


@pytest.fixture(scope="module")
def times():
    return sweep()


def test_fig12_curves(benchmark, run_once, times):
    run_once(benchmark, lambda: times)
    for graph in FIG12_GRAPHS:
        for alg in ALGORITHMS:
            series = {
                engine: [
                    round(times[(graph, alg, engine, P)], 4)
                    for P in FIG12_MACHINES
                ]
                for engine in ENGINES
            }
            print()
            print(
                format_series(
                    "machines",
                    list(FIG12_MACHINES),
                    series,
                    title=f"Fig 12 — {alg} on {graph}",
                )
            )
            lazy = np.array(series["lazy-block"])
            sync = np.array(series["powergraph-sync"])
            # LazyGraph wins at every machine count
            assert np.all(lazy <= sync), (graph, alg)
            # and its advantage survives scaling: at 48 machines the
            # speedup keeps most of its 8-machine value and stays a win
            # (tiny-frontier workloads lose some ratio to log-P latency)
            assert (sync[-1] / lazy[-1]) >= 0.55 * (sync[0] / lazy[0]), (
                graph,
                alg,
            )
            assert sync[-1] / lazy[-1] >= 1.2, (graph, alg)


def test_fig12_async_degrades_on_road(benchmark, run_once, times):
    """Async loses ground beyond 16 machines on the road graph."""
    run_once(benchmark, lambda: times)
    for alg in ALGORITHMS:
        async_t = {
            P: times[("road-usa-mini", alg, "powergraph-async", P)]
            for P in FIG12_MACHINES
        }
        lazy_t = {
            P: times[("road-usa-mini", alg, "lazy-block", P)]
            for P in FIG12_MACHINES
        }
        # adding machines past 16 does not help Async on road workloads
        assert async_t[48] >= async_t[16] * 0.9, (alg, async_t)
        # while Lazy stays strictly faster than Async there
        for P in (16, 24, 32, 40, 48):
            assert lazy_t[P] < async_t[P], (alg, P)


def test_fig12gh_speedups_on_16_and_24(benchmark, run_once, times):
    run_once(benchmark, lambda: times)
    rows = []
    for P in (16, 24):
        for graph in FIG12_GRAPHS:
            for alg in ALGORITHMS:
                sync = times[(graph, alg, "powergraph-sync", P)]
                rows.append(
                    [
                        P,
                        graph,
                        alg,
                        round(sync / times[(graph, alg, "lazy-block", P)], 2),
                        round(
                            sync / times[(graph, alg, "powergraph-async", P)], 2
                        ),
                    ]
                )
    print()
    print(
        format_table(
            ["machines", "graph", "algorithm", "lazy speedup", "async speedup"],
            rows,
            title="Fig 12(g,h) — speedup over PowerGraph Sync",
        )
    )
    # LazyAsync beats Async on every row (better scalability)
    for row in rows:
        assert row[3] > row[4], row
