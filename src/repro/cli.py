"""Command-line interface: ``python -m repro <command>``.

Mirrors how the paper's toolkits are driven from the shell:

* ``run``      — one algorithm × graph × engine, prints the stats line;
* ``compare``  — lazy vs PowerGraph Sync (a Fig 9/10/11 row);
* ``datasets`` — the Table 1 registry;
* ``info``     — structural properties of one graph;
* ``sweep``    — machine-count scaling series (a Fig 12 panel);
* ``report``   — per-phase breakdown of a recorded execution trace,
  with LensAuditor anomaly flags (``--strict`` exits 3 on anomalies);
* ``analyze``  — critical-path / straggler analysis of a recorded trace
  (per-superstep gating machine/channel, load imbalance vs λ);
  ``--serve`` switches to request-waterfall / cost-attribution analysis
  of a merged serve trace;
* ``dashboard``— render a recorded trace as an offline HTML dashboard;
* ``top``      — live (or one-shot) text view of a service telemetry
  file written by ``serve --telemetry-out``;
* ``slo``      — threshold gate over a telemetry file (p95 latency,
  cache hit rate, queue depth); exits 4 on violation.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

from repro.algorithms import program_names
from repro.bench.harness import compare_lazy_vs_sync
from repro.bench.reporting import format_series, format_table
from repro.graph.datasets import dataset_info, dataset_names, load_dataset
from repro.graph.properties import compute_properties
from repro.core.policy import get_policy, policy_names
from repro.obs.sinks import TRACE_FORMATS
from repro.run_api import run
from repro.runtime.backend import BACKEND_NAMES
from repro.runtime.registry import engine_names

POLICY_NAMES = policy_names()

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LazyGraph (PPoPP'18) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument(
            "--graph", default="road-ca-mini",
            help="dataset name (default: road-ca-mini)",
        )
        p.add_argument(
            "--algorithm", "--algo",
            required=True,
            choices=list(program_names()),
        )
        p.add_argument("--machines", type=int, default=48)
        p.add_argument("--partitioner", default="coordinated")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--k", type=int, help="k-core K")
        p.add_argument("--source", type=int, help="SSSP/BFS source vertex")
        p.add_argument("--tolerance", type=float, help="PageRank/PPR tolerance")
        p.add_argument(
            "--seeds", help="comma-separated PPR seed vertices (e.g. 0,7,42)"
        )
        p.add_argument(
            "--sources",
            help="comma-separated source vertices (msbfs / serving queries)",
        )

    p_run = sub.add_parser("run", help="run one engine and print its stats")
    add_common(p_run)
    p_run.add_argument(
        "--engine", default="lazy-block", choices=list(engine_names())
    )
    p_run.add_argument(
        "--policy", choices=list(POLICY_NAMES),
        help="named coherency policy (controller + interval + wire mode "
             "+ max_delta_age in one knob; lazy engines)",
    )
    p_run.add_argument(
        "--policy-opt", action="append", metavar="K=V", default=[],
        help="override one policy field or controller option, e.g. "
             "--policy-opt max_delta_age=4 --policy-opt mass_floor=0.3 "
             "(repeatable)",
    )
    p_run.add_argument("--top", type=int, default=0, help="print top-N vertices")
    p_run.add_argument(
        "--trace", action="store_true",
        help="record and plot the per-superstep convergence trace",
    )
    p_run.add_argument(
        "--trace-out", metavar="PATH",
        help="write the structured execution trace to PATH",
    )
    p_run.add_argument(
        "--trace-format", default="jsonl", choices=list(TRACE_FORMATS),
        help="trace file format: jsonl or chrome (chrome://tracing)",
    )
    p_run.add_argument(
        "--lens", action="store_true",
        help="enable the coherency lens (lazy engines): replica "
             "staleness/divergence probes + the decision audit log",
    )
    p_run.add_argument(
        "--lens-rollup-after", type=int, metavar="N",
        help="lens sampling: after superstep N, probe only every "
             "--lens-rollup-every supersteps (implies --lens)",
    )
    p_run.add_argument(
        "--lens-rollup-every", type=int, metavar="K",
        help="lens sampling: probe cadence after the rollup point "
             "(default 100; implies --lens)",
    )
    p_run.add_argument(
        "--backend", choices=list(BACKEND_NAMES),
        help="execution backend: serial (inline lockstep, default) or "
             "process (shared-memory worker pool, bit-identical results)",
    )
    p_run.add_argument(
        "--workers", type=int, metavar="N",
        help="worker-process count for --backend process "
             "(default: host CPU count, capped at the machine count)",
    )

    def add_serving(p):
        p.add_argument(
            "--engine", default="lazy-block", choices=list(engine_names())
        )
        p.add_argument(
            "--policy", choices=list(POLICY_NAMES),
            help="named coherency policy every query runs under",
        )
        p.add_argument(
            "--max-batch", type=int, default=8,
            help="max queries fused per batching window (default 8)",
        )
        p.add_argument(
            "--max-wait", type=float, default=0.002,
            help="seconds to wait for batchable stragglers (default 0.002)",
        )
        p.add_argument(
            "--cache-size", type=int, default=128,
            help="LRU capacity in distinct query keys (0 disables)",
        )
        p.add_argument(
            "--batch-mode", default="fused", choices=["fused", "exact"],
            help="fuse compatible point queries into one multi-source "
                 "sweep (fused, default) or only share identical queries "
                 "(exact)",
        )
        p.add_argument("--backend", choices=list(BACKEND_NAMES))
        p.add_argument("--workers", type=int, metavar="N")
        p.add_argument(
            "--top", type=int, default=0,
            help="include the top-N vertices in each answer",
        )
        p.add_argument(
            "--trace-out", metavar="PATH",
            help="write the merged request trace (service spans joined "
                 "to engine run spans) to PATH; analyze with "
                 "'repro analyze --serve PATH'",
        )
        p.add_argument(
            "--telemetry-out", metavar="PATH",
            help="append service telemetry ticks (queue depth, hit "
                 "rate, latency quantiles, worker heartbeats) to PATH; "
                 "view with 'repro top', gate with 'repro slo'",
        )
        p.add_argument(
            "--telemetry-interval", type=float, default=1.0, metavar="S",
            help="telemetry sampling interval in seconds (default 1.0)",
        )
        p.add_argument(
            "--telemetry-window", type=float, default=60.0, metavar="S",
            help="sliding-window horizon for per-class latency "
                 "quantiles (default 60)",
        )

    p_srv = sub.add_parser(
        "serve",
        help="resident query service: one request per stdin line, one "
             "JSON answer per line",
    )
    p_srv.add_argument("--graph", default="road-ca-mini")
    p_srv.add_argument("--machines", type=int, default=48)
    p_srv.add_argument("--partitioner", default="coordinated")
    p_srv.add_argument("--seed", type=int, default=0)
    add_serving(p_srv)

    p_qry = sub.add_parser(
        "query",
        help="run one query through a resident session/service "
             "(--repeat shows warm-session + cache behavior)",
    )
    add_common(p_qry)
    add_serving(p_qry)
    p_qry.add_argument(
        "--repeat", type=int, default=1,
        help="issue the query N times back-to-back (default 1)",
    )
    p_qry.add_argument(
        "--json", action="store_true",
        help="print one JSON record per query (request id, latency, "
             "cache-hit flag) instead of the human table",
    )

    p_mut = sub.add_parser(
        "mutate",
        help="apply mutation batches to a resident graph and re-converge "
             "incrementally; emits one JSONL event per apply/run",
    )
    p_mut.add_argument("--graph", default="road-ca-mini")
    p_mut.add_argument("--machines", type=int, default=48)
    p_mut.add_argument("--partitioner", default="coordinated")
    p_mut.add_argument("--seed", type=int, default=0)
    p_mut.add_argument(
        "--engine", default="lazy-block", choices=list(engine_names())
    )
    p_mut.add_argument(
        "--algorithm", "--algo", choices=list(program_names()),
        help="algorithm to re-converge after each batch (a cold "
             "baseline run records the fixpoint first)",
    )
    p_mut.add_argument("--k", type=int, help="k-core K")
    p_mut.add_argument("--source", type=int, help="SSSP/BFS source vertex")
    p_mut.add_argument(
        "--tolerance", type=float, help="PageRank/PPR tolerance"
    )
    p_mut.add_argument(
        "--seeds", help="comma-separated PPR seed vertices (e.g. 0,7,42)"
    )
    p_mut.add_argument(
        "--sources", help="comma-separated msbfs source vertices"
    )
    p_mut.add_argument(
        "--batch", action="append", default=[], metavar="PATH",
        help="JSON mutation batch file, applied in order (repeatable); "
             "'-' reads one JSON batch per stdin line",
    )
    p_mut.add_argument(
        "--batch-json", action="append", default=[], metavar="JSON",
        help="inline JSON mutation batch (repeatable), e.g. "
             "'{\"add_edges\": [[0, 9]], \"remove_edges\": [[3, 4]]}'",
    )
    p_mut.add_argument(
        "--repartition-threshold", type=float, metavar="X",
        help="repartition the worst-replicated vertices when lambda "
             "exceeds baseline*X (e.g. 1.2)",
    )
    p_mut.add_argument(
        "--compare-cold", action="store_true",
        help="also re-run from scratch after each batch and report the "
             "superstep / modeled-time ratio",
    )
    p_mut.add_argument(
        "--out", metavar="PATH",
        help="also write the JSONL events to PATH (analyze with "
             "'repro analyze --mutations PATH')",
    )

    p_cmp = sub.add_parser("compare", help="lazy vs PowerGraph Sync")
    add_common(p_cmp)

    sub.add_parser("datasets", help="list the Table 1 dataset registry")

    p_info = sub.add_parser("info", help="structural properties of a graph")
    p_info.add_argument("--graph", required=True)

    p_sweep = sub.add_parser("sweep", help="machine-count scaling series")
    add_common(p_sweep)
    p_sweep.add_argument(
        "--machine-counts",
        default="8,16,24,32,40,48",
        help="comma-separated machine counts",
    )

    p_fig = sub.add_parser(
        "figures", help="regenerate every table/figure to a results dir"
    )
    p_fig.add_argument("--out", default="results", help="output directory")

    p_exp = sub.add_parser(
        "experiment", help="run a JSON experiment file and print the results"
    )
    p_exp.add_argument("--config", required=True, help="study .json file")

    p_val = sub.add_parser(
        "validate",
        help="check lazy ≡ eager ≡ reference on a graph file (paper §3.5)",
    )
    p_val.add_argument(
        "--graph-file", required=True,
        help="edge list / SNAP .txt / DIMACS .gr / .npz graph file",
    )
    p_val.add_argument(
        "--algorithm", default="all",
        choices=["all", "pagerank", "sssp", "cc", "kcore", "bfs"],
    )
    p_val.add_argument("--machines", type=int, default=8)
    p_val.add_argument("--seed", type=int, default=0)

    p_ana = sub.add_parser(
        "analyze",
        help="critical-path / straggler analysis of a recorded trace",
    )
    p_ana.add_argument("trace", help="trace file written by run --trace-out")
    p_ana.add_argument(
        "--json", action="store_true",
        help="print the full analysis as JSON instead of text",
    )
    p_ana.add_argument(
        "--json-out", metavar="PATH",
        help="also write the JSON analysis to PATH",
    )
    p_ana.add_argument(
        "--max-rows", type=int, default=40,
        help="per-superstep rows shown in the text table (default 40)",
    )
    p_ana.add_argument(
        "--serve", action="store_true",
        help="analyze a merged serve trace (serve --trace-out): "
             "per-request waterfalls, engine-run cost attribution, and "
             "the cost-by-query-class table",
    )
    p_ana.add_argument(
        "--run-id", type=int, metavar="N",
        help="narrow a merged serve trace to engine run N before the "
             "critical-path analysis (run ids: analyze --serve)",
    )
    p_ana.add_argument(
        "--mutations", action="store_true",
        help="analyze a mutation-stream JSONL (repro mutate --out / "
             "bench_dynamic): supersteps-to-reconverge and lambda drift "
             "per applied batch",
    )

    p_rep = sub.add_parser(
        "report",
        help="per-phase time breakdown of a recorded trace (jsonl or chrome)",
    )
    p_rep.add_argument("trace", help="trace file written by run --trace-out")
    p_rep.add_argument(
        "--strict", action="store_true",
        help="exit with code 3 when the LensAuditor flags any anomaly",
    )

    p_dash = sub.add_parser(
        "dashboard",
        help="render a recorded trace as a self-contained HTML dashboard",
    )
    p_dash.add_argument(
        "trace", nargs="?",
        help="trace file written by run --trace-out",
    )
    p_dash.add_argument(
        "--compare", nargs=2, metavar=("A", "B"),
        help="overlay two traces (convergence, traffic, decision "
             "timelines) instead of rendering one",
    )
    p_dash.add_argument(
        "--labels", nargs=2, metavar=("LA", "LB"),
        help="series labels for --compare (default: the file names)",
    )
    p_dash.add_argument(
        "-o", "--out", default="run.html", help="output HTML path",
    )

    p_top = sub.add_parser(
        "top",
        help="text view of a service telemetry file "
             "(serve --telemetry-out); --follow tails it live",
    )
    p_top.add_argument(
        "telemetry", help="telemetry JSONL written by serve --telemetry-out"
    )
    p_top.add_argument(
        "--follow", action="store_true",
        help="block and re-render on every new tick (Ctrl-C to stop)",
    )
    p_top.add_argument(
        "--ticks", type=int, default=0, metavar="N",
        help="with --follow: exit after N ticks (0 = until interrupted)",
    )

    p_slo = sub.add_parser(
        "slo",
        help="gate a telemetry file against SLO thresholds "
             "(exits 4 on violation; CI-friendly)",
    )
    p_slo.add_argument(
        "telemetry", help="telemetry JSONL written by serve --telemetry-out"
    )
    p_slo.add_argument(
        "--p95-ms", type=float, metavar="MS",
        help="max cumulative p95 latency in milliseconds",
    )
    p_slo.add_argument(
        "--min-hit-rate", type=float, metavar="X",
        help="min cumulative cache hit rate in [0, 1]",
    )
    p_slo.add_argument(
        "--max-queue-depth", type=int, metavar="N",
        help="max sampled queue depth over all ticks",
    )
    return parser


def _algorithm_params(args) -> dict:
    params = {}
    if args.k is not None:
        params["k"] = args.k
    if args.source is not None:
        params["source"] = args.source
    if args.tolerance is not None:
        params["tolerance"] = args.tolerance
    if getattr(args, "seeds", None):
        params["seeds"] = [int(s) for s in args.seeds.split(",") if s]
    if getattr(args, "sources", None):
        params["sources"] = [int(s) for s in args.sources.split(",") if s]
    return params


def _coerce_opt(value: str):
    """K=V values: int, then float, then the literal string."""
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            pass
    return value


def _resolve_cli_policy(args):
    """Build the run's CoherencyPolicy from --policy / --policy-opt."""
    if not args.policy and not args.policy_opt:
        return None
    policy = get_policy(args.policy or "paper")
    opts = {}
    for item in args.policy_opt:
        if "=" not in item:
            raise SystemExit(f"--policy-opt expects K=V, got {item!r}")
        key, _, value = item.partition("=")
        opts[key] = _coerce_opt(value)
    return policy.apply_opts(opts) if opts else policy


def _lens_cli_opts(args) -> dict:
    opts = {}
    if getattr(args, "lens_rollup_after", None) is not None:
        opts["rollup_after"] = args.lens_rollup_after
    if getattr(args, "lens_rollup_every", None) is not None:
        opts["rollup_every"] = args.lens_rollup_every
    return opts


def _cmd_run(args) -> int:
    kwargs = _algorithm_params(args)
    result = run(
        args.graph,
        args.algorithm,
        engine=args.engine,
        machines=args.machines,
        partitioner=args.partitioner,
        policy=_resolve_cli_policy(args),
        seed=args.seed,
        trace=getattr(args, "trace", False),
        trace_out=getattr(args, "trace_out", None),
        trace_format=getattr(args, "trace_format", None) or "jsonl",
        lens=getattr(args, "lens", False),
        lens_opts=_lens_cli_opts(args) or None,
        backend=getattr(args, "backend", None),
        workers=getattr(args, "workers", None),
        **kwargs,
    )
    print(f"{result.engine}/{result.algorithm} on {args.graph} "
          f"({args.machines} machines): {result.stats.summary()}")
    if getattr(args, "trace_out", None):
        print(f"trace written to {args.trace_out} "
              f"({getattr(args, 'trace_format', None) or 'jsonl'})")
    if getattr(args, "trace", False):
        from repro.bench.plots import timeline_plot

        print(timeline_plot(result.stats.timeline))
    if args.top:
        order = np.argsort(result.values)[::-1][: args.top]
        rows = [[int(v), round(float(result.values[v]), 4)] for v in order]
        print(format_table(["vertex", "value"], rows, title=f"top {args.top}"))
    return 0


def _open_service(args):
    """A (session, service) pair from serve/query arguments."""
    from repro.serve import GraphService
    from repro.session import GraphSession

    session = GraphSession.open(
        args.graph, machines=args.machines,
        partitioner=args.partitioner, seed=args.seed,
    )
    service = GraphService(
        session,
        engine=args.engine,
        policy=args.policy,
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        cache_size=args.cache_size,
        batch_mode=args.batch_mode,
        backend=args.backend,
        workers=args.workers,
        trace_out=getattr(args, "trace_out", None),
        telemetry_out=getattr(args, "telemetry_out", None),
        telemetry_interval=getattr(args, "telemetry_interval", 1.0),
        telemetry_window=getattr(args, "telemetry_window", 60.0),
    )
    return session, service


def _served_row(served, top: int = 0) -> dict:
    """One served answer as a JSON-serializable record."""
    row = {
        "request_id": served.request_id,
        "algorithm": served.result.algorithm,
        "engine": served.result.engine,
        "sources": list(served.request.sources),
        "sources_served": list(served.sources_served),
        "cached": served.cached,
        "batched": served.batched,
        "batch_size": served.batch_size,
        "latency_s": round(served.latency_s, 6),
        "engine_cost_s": round(served.engine_cost_s, 9),
        "supersteps": served.result.stats.supersteps,
        "modeled_time_s": round(served.result.stats.modeled_time_s, 6),
        "converged": served.result.stats.converged,
    }
    if top:
        values = served.result.values
        order = np.argsort(values)[::-1][:top]
        row["top"] = [[int(v), float(values[v])] for v in order]
    return row


def _parse_query_line(line: str) -> dict:
    """One stdin request: JSON object, or ``<algorithm> [srcs] [k=v...]``.

    A JSON object with a ``mutate`` key — or a line of the form
    ``mutate {...batch json...}`` — is a graph mutation; everything
    else is a query.
    """
    import json

    if line.startswith("{"):
        obj = json.loads(line)
        if "mutate" in obj:
            return {"mutate": obj["mutate"]}
        return {
            "algorithm": obj["algorithm"],
            "sources": obj.get("sources", ()),
            "params": obj.get("params", {}),
        }
    parts = line.split(None, 1)
    if parts[0] == "mutate":
        if len(parts) < 2 or not parts[1].lstrip().startswith("{"):
            raise ValueError(
                "mutate verb takes a JSON batch: mutate "
                '{"add_edges": [[0, 9]], ...}'
            )
        return {"mutate": json.loads(parts[1])}
    parts = line.split()
    algorithm, sources, params = parts[0], (), {}
    for token in parts[1:]:
        if "=" in token:
            key, _, value = token.partition("=")
            params[key] = _coerce_opt(value)
        else:
            sources = tuple(int(s) for s in token.split(",") if s)
    return {"algorithm": algorithm, "sources": sources, "params": params}


def _cmd_serve(args) -> int:
    import json

    session, service = _open_service(args)
    with session, service:
        print(
            f"serving {args.graph} ({args.machines} machines, engine "
            f"{args.engine}, batch={args.batch_mode}); one request per "
            f"line: '<algorithm> [src,src,...] [k=v ...]' or JSON",
            file=sys.stderr,
        )
        from repro.graph.mutation import MutationBatch

        pending = []
        errors = 0
        for line in sys.stdin:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                req = _parse_query_line(line)
                if "mutate" in req:
                    fut = service.submit_mutation(
                        MutationBatch.from_dict(req["mutate"])
                    )
                    pending.append(("mutate", fut))
                else:
                    fut = service.submit(
                        req["algorithm"], req["sources"], **req["params"]
                    )
                    pending.append(("query", fut))
            except Exception as exc:
                errors += 1
                print(json.dumps({"error": str(exc), "line": line}))
                continue
        for kind, fut in pending:
            try:
                if kind == "mutate":
                    applied = fut.result()
                    print(json.dumps({"mutate": applied.to_dict()}))
                else:
                    print(json.dumps(_served_row(fut.result(), top=args.top)))
            except Exception as exc:
                errors += 1
                print(json.dumps({"error": str(exc)}))
        print(json.dumps(service.stats()), file=sys.stderr)
    return 1 if errors else 0


def _cmd_query(args) -> int:
    import json

    params = _algorithm_params(args)
    sources = params.pop("sources", [])
    session, service = _open_service(args)
    with session, service:
        rows = []
        for i in range(max(1, args.repeat)):
            served = service.query(args.algorithm, sources, **params)
            if args.json:
                print(json.dumps(_served_row(served, top=args.top)))
                continue
            rows.append(
                [
                    i,
                    served.request_id,
                    round(served.latency_s * 1e3, 3),
                    served.cached,
                    served.batched,
                    served.result.stats.supersteps,
                ]
            )
        if args.json:
            print(json.dumps(service.stats()), file=sys.stderr)
            return 0
        print(
            format_table(
                ["#", "req", "latency_ms", "cached", "batched", "supersteps"],
                rows,
                title=f"{args.algorithm}{list(sources) or ''} on "
                      f"{args.graph} ({args.machines} machines)",
            )
        )
        if args.top:
            values = served.result.values
            order = np.argsort(values)[::-1][: args.top]
            print(
                format_table(
                    ["vertex", "value"],
                    [[int(v), round(float(values[v]), 4)] for v in order],
                    title=f"top {args.top}",
                )
            )
        stats = service.stats()
        print(
            f"runs={stats.get('serve.runs', 0):.0f} "
            f"cache_hit_rate={stats['serve.cache_hit_rate']:.2f} "
            f"(session reused the prepared graph/partition across "
            f"{max(1, args.repeat)} queries)"
        )
    return 0


def _cmd_mutate(args) -> int:
    import json

    from repro.graph.mutation import MutationBatch
    from repro.session import GraphSession

    batches = []
    try:
        for text in args.batch_json:
            batches.append(MutationBatch.from_dict(json.loads(text)))
        for path in args.batch:
            if path == "-":
                for line in sys.stdin:
                    line = line.strip()
                    if line and not line.startswith("#"):
                        batches.append(
                            MutationBatch.from_dict(json.loads(line))
                        )
            else:
                with open(path, "r", encoding="utf-8") as fh:
                    batches.append(MutationBatch.from_dict(json.load(fh)))
    except Exception as exc:
        print(f"mutate: bad batch: {exc}", file=sys.stderr)
        return 2
    if not batches:
        print(
            "mutate: no batches given (--batch / --batch-json)",
            file=sys.stderr,
        )
        return 2

    params = _algorithm_params(args) if args.algorithm else {}
    events = []

    def emit(event):
        events.append(event)
        print(json.dumps(event))

    def run_record(result, mode):
        rec = {
            "event": "run",
            "mode": mode,
            "graph_version": session.graph_version,
            "algorithm": args.algorithm,
            "supersteps": result.stats.supersteps,
            "modeled_time_s": result.stats.modeled_time_s,
        }
        if mode == "incremental":
            extra = result.stats.extra
            rec["warm_start"] = int(extra.get("warm_start", 0))
            rec["reseeded"] = int(extra.get("warm_reseeded", 0))
            rec["injections"] = int(extra.get("warm_injections", 0))
        return rec

    session = GraphSession.open(
        args.graph, machines=args.machines,
        partitioner=args.partitioner, seed=args.seed,
        repartition_threshold=args.repartition_threshold,
    )
    with session:
        if args.algorithm:
            baseline = session.run(
                args.algorithm, engine=args.engine, **params
            )
            emit(run_record(baseline, "baseline"))
        for batch in batches:
            applied = session.apply(batch)
            emit({"event": "apply", **applied.to_dict()})
            if args.algorithm:
                inc = session.run(
                    args.algorithm, engine=args.engine,
                    incremental=True, **params,
                )
                rec = run_record(inc, "incremental")
                if args.compare_cold:
                    cold = session.run(
                        args.algorithm, engine=args.engine, **params
                    )
                    rec["cold_supersteps"] = cold.stats.supersteps
                    rec["cold_modeled_time_s"] = cold.stats.modeled_time_s
                emit(rec)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event) + "\n")
        print(f"mutation stream written to {args.out}", file=sys.stderr)
    return 0


def _cmd_compare(args) -> int:
    row = compare_lazy_vs_sync(
        args.graph,
        args.algorithm,
        machines=args.machines,
        partitioner=args.partitioner,
        seed=args.seed,
        params=_algorithm_params(args),
    )
    print(
        format_table(
            ["metric", "value"],
            [
                ["speedup (lazy vs sync)", round(row["speedup"], 3)],
                ["sync time (s)", round(row["sync_time_s"], 4)],
                ["lazy time (s)", round(row["lazy_time_s"], 4)],
                ["normalized syncs", round(row["norm_syncs"], 3)],
                ["normalized traffic", round(row["norm_traffic"], 3)],
            ],
            title=f"{args.algorithm} on {args.graph}, {args.machines} machines",
        )
    )
    return 0


def _cmd_datasets(_args) -> int:
    rows = []
    for name in dataset_names():
        info = dataset_info(name)
        g = load_dataset(name)
        rows.append(
            [name, info.category, g.num_vertices, g.num_edges,
             round(g.ev_ratio, 2), info.paper_name]
        )
    print(
        format_table(
            ["name", "class", "#V", "#E", "E/V", "paper graph"],
            rows,
            title="registered datasets (Table 1 analogs)",
        )
    )
    return 0


def _cmd_info(args) -> int:
    g = load_dataset(args.graph)
    p = compute_properties(g)
    rows = [[k, getattr(p, k)] for k in (
        "num_vertices", "num_edges", "ev_ratio", "max_out_degree",
        "max_in_degree", "mean_degree", "degree_gini",
        "num_weak_components", "giant_component_fraction",
        "diameter_estimate",
    )]
    rows = [[k, round(v, 4) if isinstance(v, float) else v] for k, v in rows]
    print(format_table(["property", "value"], rows, title=args.graph))
    return 0


def _cmd_sweep(args) -> int:
    counts = [int(x) for x in args.machine_counts.split(",") if x]
    kwargs = _algorithm_params(args)
    series = {"powergraph-sync": [], "lazy-block": []}
    for P in counts:
        for engine in series:
            r = run(
                args.graph, args.algorithm, engine=engine, machines=P,
                partitioner=args.partitioner, seed=args.seed, **kwargs,
            )
            series[engine].append(round(r.stats.modeled_time_s, 4))
    print(
        format_series(
            "machines", counts, series,
            title=f"{args.algorithm} on {args.graph} — modeled seconds",
        )
    )
    return 0


def _load_graph_file(path: str):
    from repro.graph.io import load_dimacs, load_edge_list, load_npz

    if path.endswith(".gr"):
        return load_dimacs(path)
    if path.endswith(".npz"):
        return load_npz(path)
    return load_edge_list(path)


def _cmd_validate(args) -> int:
    from repro.algorithms import (
        bfs_reference,
        cc_reference,
        kcore_reference,
        pagerank_reference,
        make_program,
        sssp_reference,
    )
    from repro.run_api import prepare_graph

    graph = _load_graph_file(args.graph_file)
    print(f"loaded {graph!r}")
    algorithms = (
        ["pagerank", "sssp", "cc", "kcore", "bfs"]
        if args.algorithm == "all"
        else [args.algorithm]
    )
    references = {
        "pagerank": lambda g: pagerank_reference(g),
        "sssp": lambda g: sssp_reference(g, 0),
        "cc": cc_reference,
        "kcore": lambda g: kcore_reference(g, 3),
        "bfs": lambda g: bfs_reference(g, 0),
    }
    params = {"kcore": {"k": 3}, "sssp": {"source": 0}, "bfs": {"source": 0}}
    rows = []
    failures = 0
    for alg in algorithms:
        prog = make_program(alg, **params.get(alg, {}))
        g = prepare_graph(graph, prog, seed=args.seed)
        ref = references[alg](g)
        verdicts = []
        for engine in ("powergraph-sync", "lazy-block"):
            result = run(
                g, make_program(alg, **params.get(alg, {})),
                engine=engine, machines=args.machines, seed=args.seed,
            )
            got = np.nan_to_num(result.values, posinf=1e18)
            want = np.nan_to_num(ref, posinf=1e18)
            tol = 5e-2 if alg == "pagerank" else 0.0
            ok = bool(np.allclose(got, want, atol=tol, rtol=tol))
            verdicts.append(ok)
            failures += not ok
        rows.append([alg, *("OK" if v else "MISMATCH" for v in verdicts)])
    print(
        format_table(
            ["algorithm", "eager vs reference", "lazy vs reference"],
            rows,
            title=f"§3.5 equivalence on {args.graph_file} ({args.machines} machines)",
        )
    )
    if failures:
        print(f"{failures} mismatches — see above")
        return 1
    print("all engines match the single-machine reference")
    return 0


def _cmd_experiment(args) -> int:
    from repro.bench.experiment_file import run_experiment_file

    name, results = run_experiment_file(args.config)
    rows = []
    for cfg, r in results:
        rows.append(
            [
                cfg.graph,
                cfg.algorithm,
                cfg.engine,
                cfg.machines,
                round(r.stats.modeled_time_s, 4),
                r.stats.global_syncs,
                round(r.stats.comm_bytes / 1e6, 3),
            ]
        )
    print(
        format_table(
            ["graph", "algorithm", "engine", "machines", "time_s", "syncs", "traffic_MB"],
            rows,
            title=f"study: {name}",
        )
    )
    return 0


def _cmd_report(args) -> int:
    from repro.obs.audit import LensAuditor
    from repro.obs.report import format_report, load_trace, summarize_trace
    from repro.obs.telemetry import (
        format_service_report,
        is_telemetry_file,
        load_telemetry,
        summarize_telemetry,
    )

    if is_telemetry_file(args.trace):
        summary = summarize_telemetry(load_telemetry(args.trace))
        print(format_service_report(summary))
        return 0
    trace = load_trace(args.trace)
    print(format_report(summarize_trace(trace)))
    untracked = trace.meta.get("untracked_charges") or {}
    if sum(untracked.values()) > 0:
        print(
            f"\nWARNING: {sum(untracked.values()):.6f}s of model-time "
            f"charges were NOT attributed to any span "
            f"({', '.join(f'{k}={v:.6f}s' for k, v in sorted(untracked.items()))}).\n"
            f"WARNING: the per-phase table above does not tile the run; "
            f"treat phase shares as lower bounds.",
            file=sys.stderr,
        )
    anomalies = LensAuditor(trace).audit()
    for anomaly in anomalies:
        print(str(anomaly), file=sys.stderr)
    if getattr(args, "strict", False) and anomalies:
        print(
            f"strict mode: {len(anomalies)} anomaly(ies) flagged",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_analyze(args) -> int:
    import json

    from repro.obs.critical_path import analyze_trace, format_analysis
    from repro.obs.report import load_trace

    if getattr(args, "mutations", False):
        from repro.obs.mutation_report import (
            analyze_mutation_stream,
            format_mutation_analysis,
            is_mutation_stream,
            load_mutation_stream,
        )

        events = load_mutation_stream(args.trace)
        if not is_mutation_stream(events):
            print(
                f"analyze --mutations: {args.trace} has no apply events "
                f"(write one with 'repro mutate --out')",
                file=sys.stderr,
            )
            return 2
        analysis = analyze_mutation_stream(events)
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                json.dump(analysis, fh, indent=2, sort_keys=True)
        if args.json:
            print(json.dumps(analysis, indent=2, sort_keys=True))
        else:
            print(format_mutation_analysis(analysis, max_rows=args.max_rows))
        if args.json_out:
            print(f"analysis JSON written to {args.json_out}", file=sys.stderr)
        return 0

    if getattr(args, "serve", False):
        from repro.obs.request_trace import (
            analyze_serve_trace,
            format_serve_analysis,
            is_serve_trace,
        )

        trace = load_trace(args.trace)
        if not is_serve_trace(trace):
            print(
                f"analyze --serve: {args.trace} has no serve.request "
                f"spans (write one with 'repro serve --trace-out')",
                file=sys.stderr,
            )
            return 2
        analysis = analyze_serve_trace(trace)
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                json.dump(analysis, fh, indent=2, sort_keys=True)
        if args.json:
            print(json.dumps(analysis, indent=2, sort_keys=True))
        else:
            print(format_serve_analysis(analysis, max_rows=args.max_rows))
        if args.json_out:
            print(f"analysis JSON written to {args.json_out}", file=sys.stderr)
        totals = analysis["totals"]
        if not (totals["latency_exact"] and totals["attribution_exact"]):
            print(
                "analyze --serve: exactness check FAILED (latency or "
                "cost attribution does not reconstruct)",
                file=sys.stderr,
            )
            return 3
        return 0

    analysis = analyze_trace(
        load_trace(args.trace), run_id=getattr(args, "run_id", None)
    )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(analysis, fh, indent=2, sort_keys=True)
    if args.json:
        print(json.dumps(analysis, indent=2, sort_keys=True))
    else:
        print(format_analysis(analysis, max_rows=args.max_rows))
    if args.json_out:
        print(f"analysis JSON written to {args.json_out}", file=sys.stderr)
    return 0


def _cmd_dashboard(args) -> int:
    from repro.obs.dashboard import render_compare_dashboard, render_dashboard
    from repro.obs.report import load_trace

    if args.compare and args.trace:
        print("dashboard: give either a trace or --compare, not both",
              file=sys.stderr)
        return 2
    if args.compare:
        labels = args.labels or [os.path.basename(p) for p in args.compare]
        traces = [load_trace(p) for p in args.compare]
        html_doc = render_compare_dashboard(traces, labels)
    elif args.trace:
        html_doc = render_dashboard(load_trace(args.trace))
    else:
        print("dashboard: a trace file or --compare A B is required",
              file=sys.stderr)
        return 2
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(html_doc)
    print(f"dashboard written to {args.out} ({len(html_doc)} bytes)")
    return 0


def _cmd_top(args) -> int:
    from repro.obs.telemetry import (
        format_top,
        is_telemetry_file,
        iter_follow,
        load_telemetry,
    )

    if not is_telemetry_file(args.telemetry):
        print(
            f"top: {args.telemetry} is not a service telemetry file "
            f"(write one with 'repro serve --telemetry-out')",
            file=sys.stderr,
        )
        return 2
    if not args.follow:
        data = load_telemetry(args.telemetry)
        if not data["ticks"]:
            print("top: no telemetry ticks yet", file=sys.stderr)
            return 1
        print(format_top(data["ticks"][-1], data["header"]))
        return 0
    seen = 0
    try:
        for tick in iter_follow(args.telemetry):
            print(format_top(tick))
            print()
            seen += 1
            if args.ticks and seen >= args.ticks:
                break
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_slo(args) -> int:
    from repro.obs.telemetry import (
        check_slo,
        is_telemetry_file,
        load_telemetry,
    )

    if not is_telemetry_file(args.telemetry):
        print(
            f"slo: {args.telemetry} is not a service telemetry file",
            file=sys.stderr,
        )
        return 2
    if (
        args.p95_ms is None
        and args.min_hit_rate is None
        and args.max_queue_depth is None
    ):
        print(
            "slo: give at least one threshold (--p95-ms / --min-hit-rate "
            "/ --max-queue-depth)",
            file=sys.stderr,
        )
        return 2
    violations = check_slo(
        load_telemetry(args.telemetry),
        p95_ms=args.p95_ms,
        min_hit_rate=args.min_hit_rate,
        max_queue_depth=args.max_queue_depth,
    )
    if violations:
        for v in violations:
            print(f"SLO VIOLATION: {v}")
        return 4
    print("slo: all thresholds satisfied")
    return 0


def _cmd_figures(args) -> int:
    from repro.bench.persistence import write_results

    write_results(args.out)
    print(f"wrote {os.path.join(args.out, 'results.json')} and RESULTS.md")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "serve": _cmd_serve,
    "query": _cmd_query,
    "mutate": _cmd_mutate,
    "compare": _cmd_compare,
    "datasets": _cmd_datasets,
    "info": _cmd_info,
    "sweep": _cmd_sweep,
    "figures": _cmd_figures,
    "validate": _cmd_validate,
    "experiment": _cmd_experiment,
    "report": _cmd_report,
    "analyze": _cmd_analyze,
    "dashboard": _cmd_dashboard,
    "top": _cmd_top,
    "slo": _cmd_slo,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
