"""Edge-cut placement (Pregel/GraphLab-1 style) for comparison.

Vertices are hashed to machines; an edge is stored with its *source*
vertex's machine. The target endpoint becomes a replica (ghost) wherever
it has remote in-edges. Edge-cut balances vertices rather than edges, so
on power-law graphs a hub's whole adjacency list lands on one machine —
exactly the imbalance that motivated vertex-cuts (§2.2). Included for
partitioner ablations; the paper's evaluation uses coordinated
vertex-cut.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, make_rng

__all__ = ["edge_cut"]


def edge_cut(
    graph: DiGraph, num_machines: int, seed: SeedLike = None
) -> np.ndarray:
    """Hash vertices to machines; each edge follows its source vertex."""
    rng = make_rng(seed)
    vhash = rng.integers(0, num_machines, size=graph.num_vertices, dtype=np.int32)
    if graph.num_edges == 0:
        return np.empty(0, dtype=np.int32)
    return vhash[graph.src].astype(np.int32)
