"""The distributed graph representation both engine families execute on.

A :class:`PartitionedGraph` is built from a graph, an edge→machine
assignment (vertex-cut) and an optional set of *parallel-edges* (paper
§3.3/§4.1). It materializes:

* one :class:`MachineGraph` per machine — the machine's local vertices
  (global ids + local re-numbering), its local edges in local indices,
  per-edge transmission mode, and master/mirror flags;
* global routing tables — the machines hosting each vertex (replica CSR
  with aligned local indices) and each vertex's master machine.

Transmission modes
------------------
An edge in **one-edge** mode lives on exactly one machine (classic
PowerGraph); remote delivery of its messages rides on the replica
coherency mechanism. An edge in **parallel-edges** mode is *instantiated
on every machine that hosts a replica of its target* (the paper's
dispatch rule), with the source vertex gaining replicas on those machines
as needed; its messages are local writes everywhere and are **not**
folded into ``deltaMsg`` (no double counting at coherency points).
Dispatch is a fixpoint: adding a replica of ``v`` can widen the required
span of parallel edges *into* ``v``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import PartitionError
from repro.graph.digraph import DiGraph
from repro.partition.base import validate_assignment
from repro.utils.rng import derive_seed

__all__ = ["MachineGraph", "PartitionedGraph"]

_HOME_SEED = 0xC0FFEE  # hash seed for edge-less vertices' home machines


@dataclass
class MachineGraph:
    """One machine's share of the partitioned graph.

    All vertex fields are indexed by *local* vertex index; ``vertices``
    maps local → global. Edge arrays are aligned with each other.
    """

    machine_id: int
    vertices: np.ndarray  # (n_local,) global ids, sorted ascending
    is_master: np.ndarray  # (n_local,) bool
    esrc: np.ndarray  # (n_edges,) local source index
    edst: np.ndarray  # (n_edges,) local target index
    eweight: np.ndarray  # (n_edges,) float64
    eparallel: np.ndarray  # (n_edges,) bool: parallel-edge copy?
    eglobal: np.ndarray  # (n_edges,) global edge id
    out_deg_global: np.ndarray  # (n_local,) global out-degree of the vertex
    num_replicas: np.ndarray  # (n_local,) replica count of the vertex

    @property
    def num_local_vertices(self) -> int:
        return int(self.vertices.size)

    @property
    def num_local_edges(self) -> int:
        return int(self.esrc.size)

    def global_to_local(self, gids: np.ndarray) -> np.ndarray:
        """Map global vertex ids to local indices (ids must be present)."""
        idx = np.searchsorted(self.vertices, gids)
        return idx

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MachineGraph(m={self.machine_id}, |V|={self.num_local_vertices}, "
            f"|E|={self.num_local_edges}, parallel={int(self.eparallel.sum())})"
        )


@dataclass
class PartitionedGraph:
    """A graph placed across ``num_machines`` simulated machines."""

    graph: DiGraph
    num_machines: int
    machines: List[MachineGraph]
    master_of: np.ndarray  # (n,) machine id of each vertex's master
    rep_indptr: np.ndarray  # (n+1,) CSR over vertices
    rep_machines: np.ndarray  # machine of each replica
    rep_local_idx: np.ndarray  # local index of each replica on its machine
    num_replicas: np.ndarray  # (n,) replica counts
    parallel_eids: np.ndarray  # global ids of edges in parallel mode
    assignment: np.ndarray  # one-edge home machine per edge (parallel: -1)
    extra_stats: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def replication_factor(self) -> float:
        """λ: mean replicas per vertex (Table 1 column)."""
        if self.graph.num_vertices == 0:
            return 0.0
        return float(self.num_replicas.mean())

    def replicas_of(self, v: int) -> np.ndarray:
        """Machines hosting vertex ``v`` (sorted)."""
        return self.rep_machines[self.rep_indptr[v] : self.rep_indptr[v + 1]]

    # ------------------------------------------------------------------
    @staticmethod
    def build(
        graph: DiGraph,
        assignment: np.ndarray,
        num_machines: int,
        parallel_eids: Optional[Sequence[int]] = None,
        bidirectional: bool = False,
    ) -> "PartitionedGraph":
        """Materialize the distributed representation.

        Parameters
        ----------
        graph, assignment, num_machines:
            The vertex-cut: ``assignment[e]`` is edge ``e``'s machine.
        parallel_eids:
            Global edge ids to place in parallel-edges mode. Their
            ``assignment`` entry is ignored; they are instantiated by the
            dispatch fixpoint instead.
        bidirectional:
            Use the dispatch rule for bidirectional algorithms (parallel
            edge ``v→u`` must appear wherever *either* endpoint has a
            replica). Default is the unidirectional rule (target's
            machines only), which is what push-style programs need.
        """
        if num_machines < 1:
            raise PartitionError(f"num_machines must be >= 1, got {num_machines}")
        if num_machines > 1024:
            raise PartitionError("num_machines > 1024 not supported (bitmask replicas)")
        assignment = validate_assignment(graph, assignment, num_machines)
        n = graph.num_vertices

        par = np.zeros(graph.num_edges, dtype=bool)
        if parallel_eids is not None:
            pe = np.asarray(list(parallel_eids), dtype=np.int64)
            if pe.size and (pe.min() < 0 or pe.max() >= graph.num_edges):
                raise PartitionError("parallel edge id out of range")
            par[pe] = True
        parallel_eids_arr = np.flatnonzero(par).astype(np.int64)

        # ---- base replica bitmasks from one-edge placements ------------
        masks = [0] * n
        one = ~par
        src_one, dst_one, asg_one = graph.src[one], graph.dst[one], assignment[one]
        if src_one.size:
            for endpoint in (src_one, dst_one):
                key = np.unique(endpoint * np.int64(num_machines) + asg_one)
                for k in key.tolist():
                    masks[k // num_machines] |= 1 << (k % num_machines)

        # ---- home machines for vertices untouched by one-edge edges ----
        # (edge-less vertices, or endpoints of only-parallel edges)
        for v in range(n):
            if masks[v] == 0:
                home = derive_seed(_HOME_SEED, str(v)) % num_machines
                masks[v] = 1 << home

        # ---- parallel-edges dispatch fixpoint ---------------------------
        p_src = graph.src[parallel_eids_arr].tolist()
        p_dst = graph.dst[parallel_eids_arr].tolist()
        changed = True
        iters = 0
        while changed:
            changed = False
            iters += 1
            if iters > num_machines + len(p_src) + 2:  # pragma: no cover
                raise PartitionError("parallel-edge dispatch failed to converge")
            for s, t in zip(p_src, p_dst):
                need = masks[t] | (masks[s] if bidirectional else 0)
                if masks[s] | need != masks[s]:
                    masks[s] |= need
                    changed = True
                if bidirectional and masks[t] | masks[s] != masks[t]:
                    masks[t] |= masks[s]
                    changed = True

        # ---- replica CSR -------------------------------------------------
        counts = np.array([bin(m).count("1") for m in masks], dtype=np.int64)
        rep_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=rep_indptr[1:])
        rep_machines = np.empty(int(counts.sum()), dtype=np.int32)
        pos = 0
        for v in range(n):
            m = masks[v]
            while m:
                low = m & -m
                rep_machines[pos] = low.bit_length() - 1
                pos += 1
                m ^= low
        # bit iteration emits machines in ascending order already

        # ---- master selection: machine with most one-edge incident edges
        # per (vertex, machine), counted over one-edge endpoints
        score = {}
        if src_one.size:
            both = np.concatenate([src_one, dst_one]) * np.int64(
                num_machines
            ) + np.concatenate([asg_one, asg_one])
            uniq, cnt = np.unique(both, return_counts=True)
            score = dict(zip(uniq.tolist(), cnt.tolist()))
        master_of = np.empty(n, dtype=np.int32)
        for v in range(n):
            cand = rep_machines[rep_indptr[v] : rep_indptr[v + 1]]
            best, best_score = int(cand[0]), -1
            for mm in cand.tolist():
                s = score.get(v * num_machines + mm, 0)
                if s > best_score:
                    best, best_score = mm, s
            master_of[v] = best

        # ---- per-machine vertex lists and local indices ------------------
        order = np.argsort(rep_machines, kind="stable")
        vert_of_rep = np.repeat(np.arange(n, dtype=np.int64), counts)
        by_machine_verts = vert_of_rep[order]
        by_machine_m = rep_machines[order]
        starts = np.searchsorted(by_machine_m, np.arange(num_machines + 1))
        machine_vertices: List[np.ndarray] = []
        for m in range(num_machines):
            verts = np.sort(by_machine_verts[starts[m] : starts[m + 1]])
            machine_vertices.append(verts)

        rep_local_idx = np.empty_like(rep_machines, dtype=np.int64)
        for m in range(num_machines):
            verts = machine_vertices[m]
            sel = rep_machines == m
            rep_local_idx[sel] = np.searchsorted(verts, vert_of_rep[sel])

        # ---- per-machine edge lists --------------------------------------
        weights = graph.edge_weights()
        out_deg = graph.out_degrees()
        machines: List[MachineGraph] = []
        # one-edge edges grouped by machine
        one_ids = np.flatnonzero(one).astype(np.int64)
        one_order = np.argsort(assignment[one_ids], kind="stable")
        one_sorted = one_ids[one_order]
        one_m = assignment[one_sorted]
        one_starts = np.searchsorted(one_m, np.arange(num_machines + 1))
        # parallel copies grouped by machine
        par_copy_eid: List[List[int]] = [[] for _ in range(num_machines)]
        for idx, (s, t) in enumerate(zip(p_src, p_dst)):
            span = masks[t] | (masks[s] if bidirectional else 0)
            mm = span
            while mm:
                low = mm & -mm
                par_copy_eid[low.bit_length() - 1].append(
                    int(parallel_eids_arr[idx])
                )
                mm ^= low

        for m in range(num_machines):
            verts = machine_vertices[m]
            e_one = one_sorted[one_starts[m] : one_starts[m + 1]]
            e_par = np.asarray(par_copy_eid[m], dtype=np.int64)
            eids = np.concatenate([e_one, e_par])
            eparallel = np.zeros(eids.size, dtype=bool)
            eparallel[e_one.size :] = True
            gsrc, gdst = graph.src[eids], graph.dst[eids]
            esrc = np.searchsorted(verts, gsrc)
            edst = np.searchsorted(verts, gdst)
            machines.append(
                MachineGraph(
                    machine_id=m,
                    vertices=verts,
                    is_master=master_of[verts] == m,
                    esrc=esrc.astype(np.int64),
                    edst=edst.astype(np.int64),
                    eweight=weights[eids],
                    eparallel=eparallel,
                    eglobal=eids,
                    out_deg_global=out_deg[verts],
                    num_replicas=counts[verts],
                )
            )

        one_assign = assignment.astype(np.int32).copy()
        one_assign[par] = -1
        return PartitionedGraph(
            graph=graph,
            num_machines=num_machines,
            machines=machines,
            master_of=master_of,
            rep_indptr=rep_indptr,
            rep_machines=rep_machines,
            rep_local_idx=rep_local_idx,
            num_replicas=counts,
            parallel_eids=parallel_eids_arr,
            assignment=one_assign,
        )

    # ------------------------------------------------------------------
    def memory_footprint(self) -> dict:
        """Estimated per-machine storage of the distributed layout.

        The paper's §3 motivation for keeping most edges in one-edge
        mode is memory: every parallel-edge copy and every extra replica
        costs space on each machine it lands on. Returns totals and the
        per-machine breakdown in bytes (8 B per vertex-array slot, 24 B
        per edge record: two endpoints + weight).
        """
        per_machine = []
        for mg in self.machines:
            vertex_bytes = 8 * 4 * mg.num_local_vertices  # data+msg+delta+flags
            edge_bytes = 24 * mg.num_local_edges
            per_machine.append(vertex_bytes + edge_bytes)
        total = float(sum(per_machine))
        return {
            "total_bytes": total,
            "max_machine_bytes": float(max(per_machine)),
            "mean_machine_bytes": total / self.num_machines,
            "per_machine_bytes": per_machine,
            "replica_slots": int(self.num_replicas.sum()),
            "edge_slots": int(sum(mg.num_local_edges for mg in self.machines)),
        }

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Internal consistency checks (used heavily by the test suite).

        Raises :class:`PartitionError` on any violation of the paper's
        placement invariants.
        """
        g, P = self.graph, self.num_machines
        # every vertex: >= 1 replica, exactly one master among replicas
        if np.any(self.num_replicas < 1):
            raise PartitionError("vertex with zero replicas")
        for v in range(g.num_vertices):
            reps = self.replicas_of(v)
            if self.master_of[v] not in reps:
                raise PartitionError(f"master of {v} not among its replicas")
        # every one-edge edge appears exactly once; parallel edges appear
        # on every machine hosting the target
        seen = np.zeros(g.num_edges, dtype=np.int64)
        for mg in self.machines:
            np.add.at(seen, mg.eglobal, 1)
            # local endpoints resolve to the right globals
            if mg.num_local_edges:
                if not np.array_equal(mg.vertices[mg.esrc], g.src[mg.eglobal]):
                    raise PartitionError("local esrc mismatch")
                if not np.array_equal(mg.vertices[mg.edst], g.dst[mg.eglobal]):
                    raise PartitionError("local edst mismatch")
        par_mask = np.zeros(g.num_edges, dtype=bool)
        par_mask[self.parallel_eids] = True
        if np.any(seen[~par_mask] != 1):
            raise PartitionError("a one-edge edge is not placed exactly once")
        for e in self.parallel_eids.tolist():
            t = int(g.dst[e])
            if seen[e] < self.num_replicas[t]:
                raise PartitionError(
                    f"parallel edge {e} missing from some replica machine of {t}"
                )
        # replica CSR and machine vertex lists agree
        total = sum(mg.num_local_vertices for mg in self.machines)
        if total != int(self.num_replicas.sum()):
            raise PartitionError("replica CSR and machine lists disagree")
        for v in range(g.num_vertices):
            lo, hi = self.rep_indptr[v], self.rep_indptr[v + 1]
            for mm, li in zip(
                self.rep_machines[lo:hi].tolist(), self.rep_local_idx[lo:hi].tolist()
            ):
                if self.machines[mm].vertices[li] != v:
                    raise PartitionError("rep_local_idx does not point at vertex")
