"""Graph partitioning: vertex-cut algorithms, replicas, parallel-edges.

This package turns a :class:`~repro.graph.digraph.DiGraph` into a
:class:`~repro.partition.partitioned_graph.PartitionedGraph` — the
distributed representation both engines execute on:

1. a **vertex-cut partitioner** assigns every edge to one of P machines
   (:func:`partition_graph` dispatches by name: ``random``, ``grid``,
   ``coordinated``, ``hybrid``, ``edge``);
2. the **edge splitter** (:mod:`repro.partition.edge_splitter`,
   paper §4.1) optionally promotes selected edges to *parallel-edges*;
3. :meth:`PartitionedGraph.build` materializes per-machine local graphs,
   master/mirror replica sets and the global replica routing tables.
"""

from repro.partition.base import PARTITIONER_NAMES, partition_graph
from repro.partition.coordinated_cut import coordinated_cut
from repro.partition.edge_cut import edge_cut
from repro.partition.edge_splitter import EdgeSplitConfig, select_parallel_edges
from repro.partition.grid_cut import grid_cut
from repro.partition.hybrid_cut import hybrid_cut
from repro.partition.oblivious_cut import oblivious_cut
from repro.partition.metrics import PartitionMetrics, compute_partition_metrics
from repro.partition.partitioned_graph import MachineGraph, PartitionedGraph
from repro.partition.random_cut import random_cut
from repro.partition.replication import replica_sets, replication_factor

__all__ = [
    "PARTITIONER_NAMES",
    "partition_graph",
    "random_cut",
    "grid_cut",
    "coordinated_cut",
    "oblivious_cut",
    "hybrid_cut",
    "edge_cut",
    "replica_sets",
    "replication_factor",
    "EdgeSplitConfig",
    "select_parallel_edges",
    "MachineGraph",
    "PartitionedGraph",
    "PartitionMetrics",
    "compute_partition_metrics",
]
