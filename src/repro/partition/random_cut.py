"""Random vertex-cut: each edge goes to a uniformly random machine.

This is PowerGraph's default (hash) placement. It balances edge load
perfectly in expectation but ignores locality entirely, so it produces
the *highest* replication factor of the vertex-cut family — useful as
the pessimistic baseline in partitioner ablations.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, make_rng

__all__ = ["random_cut"]


def random_cut(
    graph: DiGraph, num_machines: int, seed: SeedLike = None
) -> np.ndarray:
    """Assign each edge independently and uniformly to a machine."""
    rng = make_rng(seed)
    return rng.integers(0, num_machines, size=graph.num_edges, dtype=np.int32)
