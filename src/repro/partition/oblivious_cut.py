"""Oblivious greedy vertex-cut (PowerGraph's distributed-loading variant).

Same greedy rules as :mod:`repro.partition.coordinated_cut`, but each
loader sees only its **own** placement history: the edge list is split
into ``num_machines`` contiguous chunks (one per loading machine), and
loader *i* maintains a private ``A_i(v)`` built only from the edges it
placed itself. No loader-to-loader coordination happens — the "oblivious"
trade-off: loading is embarrassingly parallel, the replication factor is
higher than coordinated-cut's (each loader re-discovers placements others
already made).

Included for the partitioner ablation
(``benchmarks/bench_ablation_partitioners.py``): the paper evaluates on
coordinated-cut, and the gap to oblivious shows how much of the λ budget
that choice buys.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.digraph import DiGraph
from repro.partition.coordinated_cut import _least_loaded_in_mask
from repro.utils.rng import SeedLike, make_rng

__all__ = ["oblivious_cut"]

_MAX_MACHINES = 1024


def oblivious_cut(
    graph: DiGraph,
    num_machines: int,
    seed: SeedLike = None,
    balance_slack: float = 0.10,
) -> np.ndarray:
    """Greedy vertex-cut with per-loader (uncoordinated) placement state."""
    if num_machines > _MAX_MACHINES:
        raise PartitionError(
            f"oblivious_cut supports up to {_MAX_MACHINES} machines, got {num_machines}"
        )
    rng = make_rng(seed)
    n_edges = graph.num_edges
    if n_edges == 0:
        return np.empty(0, dtype=np.int32)

    tie_order = rng.permutation(num_machines)
    loads = np.zeros(num_machines, dtype=np.int64)
    all_mask = (1 << num_machines) - 1
    capacity = max(1, int((1.0 + balance_slack) * n_edges / num_machines))
    open_mask = all_mask

    # per-loader private A(v) maps
    placed = [
        [0] * graph.num_vertices for _ in range(num_machines)
    ]
    remaining = graph.degrees().astype(np.int64).tolist()

    # contiguous chunks, processed round-robin (loaders run in parallel;
    # interleaving approximates their concurrent progress)
    bounds = np.linspace(0, n_edges, num_machines + 1).astype(np.int64)
    cursors = bounds[:-1].copy()
    src, dst = graph.src, graph.dst
    assignment = np.empty(n_edges, dtype=np.int32)
    done = 0
    while done < n_edges:
        for loader in range(num_machines):
            if cursors[loader] >= bounds[loader + 1]:
                continue
            e = int(cursors[loader])
            cursors[loader] += 1
            done += 1
            mine = placed[loader]
            u, v = int(src[e]), int(dst[e])
            au, av = mine[u], mine[v]
            inter = au & av & open_mask
            auo, avo = au & open_mask, av & open_mask
            if inter:
                m = _least_loaded_in_mask(loads, inter, tie_order)
            elif auo and avo:
                cand = auo if remaining[u] >= remaining[v] else avo
                m = _least_loaded_in_mask(loads, cand, tie_order)
            elif auo or avo:
                m = _least_loaded_in_mask(loads, auo | avo, tie_order)
            else:
                m = _least_loaded_in_mask(loads, open_mask or all_mask, tie_order)
            assignment[e] = m
            bit = 1 << m
            mine[u] = au | bit
            mine[v] = av | bit
            loads[m] += 1
            if loads[m] >= capacity:
                open_mask &= ~bit
            remaining[u] -= 1
            remaining[v] -= 1
    return assignment
