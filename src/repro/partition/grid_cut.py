"""Grid (2-D constrained) vertex-cut.

Machines are arranged in an ``r x c`` grid with ``r*c >= P`` (cells beyond
P map back into range). Each vertex hashes to a grid cell; its *constraint
set* is that cell's full row plus full column. An edge may only be placed
on a machine in the intersection of its endpoints' constraint sets — which
is never empty for a grid — capping the replication factor of any vertex
at ``r + c - 1``. Among the candidates we pick the least-loaded machine.

This is the "grid-cut" the paper lists among the supported vertex-cut
algorithms (§4.1); the scheme originates with GraphBuilder [21].
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, make_rng

__all__ = ["grid_cut"]


def _grid_shape(num_machines: int) -> "tuple[int, int]":
    """Smallest near-square grid with at least ``num_machines`` cells."""
    r = int(np.floor(np.sqrt(num_machines)))
    while r > 1 and num_machines % r:
        # prefer an exact factorization when one is close to square
        r -= 1
    if r * (num_machines // r) == num_machines and r > 1:
        return r, num_machines // r
    r = int(np.ceil(np.sqrt(num_machines)))
    c = int(np.ceil(num_machines / r))
    return r, c


def grid_cut(
    graph: DiGraph, num_machines: int, seed: SeedLike = None
) -> np.ndarray:
    """Constrained grid vertex-cut assignment."""
    rng = make_rng(seed)
    rows, cols = _grid_shape(num_machines)
    # random but deterministic vertex -> cell hash
    vcell = rng.integers(0, rows * cols, size=graph.num_vertices)
    vrow, vcol = vcell // cols, vcell % cols

    if graph.num_edges == 0:
        return np.empty(0, dtype=np.int32)

    # Candidate intersection of (row(u) + col(u)) x (row(v) + col(v)):
    # the two guaranteed common cells are (row(u), col(v)) and
    # (row(v), col(u)). Restricting to those two keeps the selection
    # vectorizable and preserves the r+c-1 replication bound.
    u, v = graph.src, graph.dst
    cand_a = vrow[u] * cols + vcol[v]
    cand_b = vrow[v] * cols + vcol[u]
    cand_a = (cand_a % num_machines).astype(np.int64)
    cand_b = (cand_b % num_machines).astype(np.int64)

    assignment = np.empty(graph.num_edges, dtype=np.int32)
    loads = np.zeros(num_machines, dtype=np.int64)
    # Greedy least-loaded choice between the two candidates, processed in
    # chunks: exact sequential greedy would be a per-edge Python loop; at
    # chunk granularity the load counters still steer balance.
    chunk = 4096
    for start in range(0, graph.num_edges, chunk):
        sl = slice(start, min(start + chunk, graph.num_edges))
        a, b = cand_a[sl], cand_b[sl]
        pick_b = loads[b] < loads[a]
        chosen = np.where(pick_b, b, a)
        assignment[sl] = chosen
        loads += np.bincount(chosen, minlength=num_machines)
    return assignment
