"""Edge splitter: choosing which edges become parallel-edges (paper §4.1).

The splitter has the paper's three elements:

1. **Selection criterion** — an edge is a split candidate if it connects
   two high-degree vertices (speeds local convergence: hub↔hub traffic
   becomes local writes everywhere) or if it has a low-out-degree source
   and a low-degree target (saves transmission: the one-edge path for
   such an edge costs two coherency trips for a single message).
2. **Budget** — the counts PEhigh / PElow solve the paper's equations

       [PEhigh·(P−1) + PElow·(P/3)] / P = TEPS · textra
       PElow = 550 · PEhigh

   where ``P`` is the machine count, ``TEPS`` the per-machine traversal
   rate, and ``textra`` the extra per-machine execution time a user is
   willing to spend on parallel-edge copies. The first equation prices
   the copies (a high-degree parallel edge lands on ~P−1 extra machines,
   a low-degree one on ~P/3); the second fixes the paper's observed
   high:low mix.
3. **Dispatch rule** — enforced by
   :meth:`repro.partition.partitioned_graph.PartitionedGraph.build`
   (fixpoint instantiation on every machine holding the target's
   replicas; both endpoints' machines for bidirectional algorithms).

``TEPS`` here is the *simulated* machine rate from
:class:`repro.cluster.network.NetworkModel` so budgets scale with the
mini datasets the same way the paper's budgets scale with real machines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.digraph import DiGraph

__all__ = ["EdgeSplitConfig", "select_parallel_edges", "parallel_edge_budget"]


@dataclass(frozen=True)
class EdgeSplitConfig:
    """Tunables for the edge splitter.

    Attributes
    ----------
    textra:
        Extra per-machine execution time (seconds of simulated time) the
        user grants to parallel-edge copies; 0 disables splitting.
    teps:
        Simulated per-machine 'traversed edges per second' rate used to
        price the budget (paper §4.1's TEPS).
    high_degree_percentile:
        Vertices at or above this total-degree percentile count as
        "high-degree" for criterion 1.
    low_degree_percentile:
        Vertices at or below this percentile count as "low-degree" for
        criterion 2.
    low_high_ratio:
        The paper's PElow = 550 · PEhigh mix.
    """

    textra: float = 0.1
    teps: float = 50_000.0
    high_degree_percentile: float = 90.0
    low_degree_percentile: float = 50.0
    low_high_ratio: float = 550.0

    def __post_init__(self) -> None:
        if self.textra < 0:
            raise PartitionError(f"textra must be >= 0, got {self.textra}")
        if self.teps <= 0:
            raise PartitionError(f"teps must be > 0, got {self.teps}")
        if not 0 <= self.low_degree_percentile <= 100:
            raise PartitionError("low_degree_percentile must be in [0, 100]")
        if not 0 <= self.high_degree_percentile <= 100:
            raise PartitionError("high_degree_percentile must be in [0, 100]")
        if self.low_high_ratio < 0:
            raise PartitionError("low_high_ratio must be >= 0")


def parallel_edge_budget(
    num_machines: int, config: EdgeSplitConfig
) -> "tuple[int, int]":
    """Solve the paper's budget equations for (PEhigh, PElow).

    ``[PEhigh·(P−1) + PElow·(P/3)] / P = TEPS · textra`` with
    ``PElow = ratio · PEhigh`` gives

    ``PEhigh = TEPS·textra·P / ((P−1) + ratio·P/3)``.
    """
    P = num_machines
    if P < 2 or config.textra == 0:
        return 0, 0
    denom = (P - 1) + config.low_high_ratio * P / 3.0
    pe_high = config.teps * config.textra * P / denom
    return int(round(pe_high)), int(round(config.low_high_ratio * pe_high))


def select_parallel_edges(
    graph: DiGraph,
    num_machines: int,
    config: EdgeSplitConfig = EdgeSplitConfig(),
) -> np.ndarray:
    """Return global edge ids to promote to parallel-edges mode.

    Candidates are ranked within each criterion (highest combined degree
    first for high–high edges; lowest combined degree first for low–low
    edges) and truncated to the budget. The two sets are disjoint by
    construction (an edge cannot be both high–high and low–low unless the
    percentiles overlap, in which case high–high wins).
    """
    pe_high, pe_low = parallel_edge_budget(num_machines, config)
    if (pe_high == 0 and pe_low == 0) or graph.num_edges == 0:
        return np.empty(0, dtype=np.int64)

    deg = graph.degrees()
    out_deg = graph.out_degrees()
    hi_thresh = np.percentile(deg, config.high_degree_percentile)
    lo_thresh = np.percentile(deg, config.low_degree_percentile)

    src_deg, dst_deg = deg[graph.src], deg[graph.dst]
    high_high = (src_deg >= hi_thresh) & (dst_deg >= hi_thresh)
    low_low = (
        (out_deg[graph.src] <= lo_thresh) & (dst_deg <= lo_thresh) & ~high_high
    )

    chosen: "list[np.ndarray]" = []
    hh_ids = np.flatnonzero(high_high)
    if hh_ids.size and pe_high:
        rank = np.argsort(-(src_deg[hh_ids] + dst_deg[hh_ids]), kind="stable")
        chosen.append(hh_ids[rank[:pe_high]])
    ll_ids = np.flatnonzero(low_low)
    if ll_ids.size and pe_low:
        rank = np.argsort(src_deg[ll_ids] + dst_deg[ll_ids], kind="stable")
        chosen.append(ll_ids[rank[:pe_low]])
    if not chosen:
        return np.empty(0, dtype=np.int64)
    out = np.unique(np.concatenate(chosen))
    return out.astype(np.int64)
