"""Coordinated greedy vertex-cut (PowerGraph's "coordinated" heuristic).

Edges are placed one at a time; the placement of edge ``(u, v)`` consults
the sets ``A(u)``, ``A(v)`` of machines that already host a replica of
each endpoint (global knowledge — the *coordinated* variant; the
*oblivious* variant would use per-loader approximations):

1. if ``A(u) ∩ A(v)`` is non-empty → least-loaded machine in the
   intersection (no new replica);
2. elif both are non-empty → least-loaded machine in the candidate set of
   the endpoint with more remaining unplaced edges (spreads the
   high-degree vertex, PowerGraph rule);
3. elif exactly one is non-empty → least-loaded machine in it;
4. else → least-loaded machine overall.

The paper evaluates everything under this partitioner (§5.1), so it is
the default throughout the library. Machine sets are kept as Python int
bitmasks (P <= ~512), which makes the inherently sequential greedy loop
cheap enough for the mini datasets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, make_rng

__all__ = ["coordinated_cut"]

_MAX_MACHINES = 1024


def _least_loaded_in_mask(loads: np.ndarray, mask: int, order: np.ndarray) -> int:
    """Least-loaded machine whose bit is set in ``mask``.

    ``order`` is a fixed random permutation used for deterministic tie
    breaking that doesn't always favour low machine ids.
    """
    best = -1
    best_load = None
    m = mask
    while m:
        low = m & -m
        i = low.bit_length() - 1
        m ^= low
        load = (loads[i], order[i])
        if best_load is None or load < best_load:
            best_load = load
            best = i
    return best


def coordinated_cut(
    graph: DiGraph,
    num_machines: int,
    seed: SeedLike = None,
    shuffle_edges: bool = False,
    balance_slack: float = 0.10,
) -> np.ndarray:
    """Greedy coordinated vertex-cut assignment.

    Parameters
    ----------
    shuffle_edges:
        Process edges in a seeded random order instead of file order.
        Default False: real deployments load the edge list in contiguous
        chunks, and for crawl-ordered web graphs and DFS-ordered road
        graphs that order carries the locality the greedy heuristic
        exploits (the paper's low Table 1 λ for those classes depends on
        it). Shuffling is the pessimistic ablation.
    balance_slack:
        Capacity headroom ε: a machine whose load exceeds
        ``(1+ε)·E/P`` is removed from candidate sets (the placement
        falls back through rules 2→4 and ultimately to the least-loaded
        machine overall). This is the balance constraint every practical
        vertex-cut enforces; without it the pure greedy rules snowball
        an entire locality-ordered graph onto one machine.
    """
    if num_machines > _MAX_MACHINES:
        raise PartitionError(
            f"coordinated_cut supports up to {_MAX_MACHINES} machines, got {num_machines}"
        )
    rng = make_rng(seed)
    n_edges = graph.num_edges
    if n_edges == 0:
        return np.empty(0, dtype=np.int32)

    order = (
        rng.permutation(n_edges) if shuffle_edges else np.arange(n_edges)
    ).astype(np.int64)
    tie_order = rng.permutation(num_machines)
    loads = np.zeros(num_machines, dtype=np.int64)
    all_mask = (1 << num_machines) - 1
    capacity = max(1, int((1.0 + balance_slack) * n_edges / num_machines))
    open_mask = all_mask  # machines with remaining capacity

    placed: "list[int]" = [0] * graph.num_vertices  # A(v) bitmasks
    remaining = (graph.out_degrees() + graph.in_degrees()).astype(np.int64).tolist()

    src, dst = graph.src, graph.dst
    assignment = np.empty(n_edges, dtype=np.int32)
    for e in order.tolist():
        u, v = int(src[e]), int(dst[e])
        au, av = placed[u], placed[v]
        inter = au & av & open_mask
        auo, avo = au & open_mask, av & open_mask
        if inter:
            m = _least_loaded_in_mask(loads, inter, tie_order)
        elif auo and avo:
            cand = auo if remaining[u] >= remaining[v] else avo
            m = _least_loaded_in_mask(loads, cand, tie_order)
        elif auo or avo:
            m = _least_loaded_in_mask(loads, auo | avo, tie_order)
        else:
            m = _least_loaded_in_mask(loads, open_mask or all_mask, tie_order)
        assignment[e] = m
        bit = 1 << m
        placed[u] = au | bit
        placed[v] = av | bit
        loads[m] += 1
        if loads[m] >= capacity:
            open_mask &= ~bit
        remaining[u] -= 1
        remaining[v] -= 1
    return assignment
