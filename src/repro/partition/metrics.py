"""Partition-quality metrics.

Quantifies what a placement costs before any engine runs — the three
quantities the partitioning literature (and the paper's §2.2) trades
off:

* **edge balance** — max/mean edges per machine (compute balance under
  the TEPS model);
* **vertex balance** — max/mean replicas per machine (memory balance);
* **replication factor λ** — mean replicas per vertex (coherency cost:
  both the eager per-superstep broadcast and the lazy per-exchange
  volume scale with it).

Plus an *a-priori* estimate of per-coherency exchange volume in each
wire mode, from the replica histogram alone (every replicated vertex
assumed active) — an upper bound the measured Fig 11 volumes stay under.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.partitioned_graph import PartitionedGraph

__all__ = ["PartitionMetrics", "compute_partition_metrics"]


@dataclass(frozen=True)
class PartitionMetrics:
    """Placement quality summary (see module docstring)."""

    num_machines: int
    replication_factor: float
    edge_balance: float
    vertex_balance: float
    max_edges_per_machine: int
    max_replicas_per_machine: int
    replicated_vertex_fraction: float
    max_replicas_of_a_vertex: int
    est_exchange_volume_a2a_bytes: float
    est_exchange_volume_m2m_bytes: float

    def as_row(self) -> list:
        """Compact row for table printing."""
        return [
            self.num_machines,
            round(self.replication_factor, 3),
            round(self.edge_balance, 3),
            round(self.vertex_balance, 3),
            round(self.replicated_vertex_fraction, 3),
        ]


def compute_partition_metrics(
    pgraph: PartitionedGraph, delta_bytes: int = 16
) -> PartitionMetrics:
    """Compute :class:`PartitionMetrics` for a built placement."""
    edges = np.array([mg.num_local_edges for mg in pgraph.machines], dtype=float)
    verts = np.array(
        [mg.num_local_vertices for mg in pgraph.machines], dtype=float
    )
    nrep = pgraph.num_replicas
    replicated = nrep > 1
    # worst case: every replica of every replicated vertex holds a delta
    a2a = float((nrep[replicated] * (nrep[replicated] - 1)).sum()) * delta_bytes
    m2m = float((2 * nrep[replicated] - 2).sum()) * delta_bytes

    def balance(arr: np.ndarray) -> float:
        mean = arr.mean()
        return float(arr.max() / mean) if mean > 0 else 1.0

    return PartitionMetrics(
        num_machines=pgraph.num_machines,
        replication_factor=pgraph.replication_factor,
        edge_balance=balance(edges),
        vertex_balance=balance(verts),
        max_edges_per_machine=int(edges.max()),
        max_replicas_per_machine=int(verts.max()),
        replicated_vertex_fraction=float(replicated.mean()),
        max_replicas_of_a_vertex=int(nrep.max()),
        est_exchange_volume_a2a_bytes=a2a,
        est_exchange_volume_m2m_bytes=m2m,
    )
