"""Replica-set computation and the replication factor λ.

Under a vertex-cut, vertex ``v`` has a replica on every machine that was
assigned at least one of its edges. λ (paper Table 1) is the mean number
of replicas per vertex — the quantity the paper's §5.3 identifies as the
main determinant of LazyGraph's speedup.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = ["replica_sets", "replication_factor", "replica_csr"]


def replica_sets(
    graph: DiGraph, assignment: np.ndarray, num_machines: int
) -> List[set]:
    """Machines hosting each vertex, as a list of Python sets.

    Vertices with no edges get an empty set here; the partitioned-graph
    builder later assigns them a home machine by hash so every vertex has
    exactly one master.
    """
    sets: List[set] = [set() for _ in range(graph.num_vertices)]
    # Vectorized unique (vertex, machine) pairs, then a single pass.
    for endpoint in (graph.src, graph.dst):
        if endpoint.size == 0:
            continue
        key = endpoint.astype(np.int64) * num_machines + assignment
        for k in np.unique(key):
            sets[int(k) // num_machines].add(int(k) % num_machines)
    return sets


def replica_csr(
    graph: DiGraph, assignment: np.ndarray, num_machines: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Replica sets in CSR form: ``(indptr, machines)``.

    ``machines[indptr[v]:indptr[v+1]]`` are the (sorted) machines hosting
    a replica of ``v``. Vertices with no edges have an empty slice.
    """
    if graph.num_edges == 0:
        return np.zeros(graph.num_vertices + 1, dtype=np.int64), np.empty(
            0, dtype=np.int32
        )
    both = np.concatenate([graph.src, graph.dst]).astype(np.int64)
    mach = np.concatenate([assignment, assignment]).astype(np.int64)
    key = np.unique(both * num_machines + mach)
    verts = (key // num_machines).astype(np.int64)
    machines = (key % num_machines).astype(np.int32)
    counts = np.bincount(verts, minlength=graph.num_vertices)
    indptr = np.zeros(graph.num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, machines


def replication_factor(
    graph: DiGraph, assignment: np.ndarray, num_machines: int
) -> float:
    """Mean replicas per vertex, λ. Edge-less vertices count one replica."""
    if graph.num_vertices == 0:
        return 0.0
    indptr, _ = replica_csr(graph, assignment, num_machines)
    counts = np.diff(indptr)
    total = counts.sum() + np.count_nonzero(counts == 0)  # lonely vertices
    return float(total / graph.num_vertices)
