"""Incremental partition maintenance for dynamic graphs.

A mutation changes a tiny fraction of the edge set, so re-running the
vertex-cut partitioner (and rebuilding every machine's CSR plan) from
scratch is almost entirely redundant work. :func:`patch_partition`
instead *carries* the surviving edges' machine assignment across the
mutation — the :class:`~repro.graph.mutation.EdgeDiff` old↔new edge-id
correspondence makes that a gather — and places only the added edges,
greedily: a machine already hosting both endpoints beats one hosting
either endpoint beats the globally least-loaded machine. The
materialization step still runs :meth:`PartitionedGraph.build` (it is
the single source of truth for replica sets, masters and local
renumbering), but :class:`PatchStats` reports which machines came out
*structurally identical* — same vertex list, same local edge endpoints —
so callers (the session layer) can keep those machines' cached CSR
plans instead of rebuilding them.

Carried assignments drift: deletions never remove a replica's original
justification for the partitioner, and greedy insertion is myopic, so
the replication factor λ creeps upward over a long mutation stream.
:func:`repartition_worst` is the xDGP-style pressure valve — pick the
vertices with the most replicas and consolidate each one's edges onto
the machine that already hosts the most of them — triggered by the
session's ``repartition_threshold`` knob when λ drifts past its budget.

Parallel-edges mode (edge-splitter sessions) is not patchable: the
dispatch fixpoint is global, so dynamic sessions refuse it up front.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.graph.digraph import DiGraph
from repro.graph.mutation import EdgeDiff
from repro.partition.partitioned_graph import PartitionedGraph

__all__ = [
    "PatchStats",
    "patch_partition",
    "repartition_worst",
    "repartition_if_needed",
]


@dataclass
class PatchStats:
    """What one partition patch did, and what it cost in λ."""

    num_machines: int
    edges_carried: int  # kept edges whose assignment survived
    edges_placed: int  # added edges placed greedily
    edges_removed: int
    lambda_before: float  # replication factor before the mutation
    lambda_after: float  # replication factor after the patch
    #: machines whose (vertices, esrc, edst) are unchanged — their CSR
    #: plans remain valid and the session keeps them
    machines_unchanged: List[int] = field(default_factory=list)
    #: vertices consolidated by the repartition pass (empty when the
    #: λ threshold did not trip)
    repartitioned_vertices: List[int] = field(default_factory=list)

    @property
    def machines_rebuilt(self) -> int:
        return self.num_machines - len(self.machines_unchanged)

    @property
    def lambda_drift(self) -> float:
        """Relative λ growth across this patch (0.0 = no drift)."""
        if self.lambda_before == 0.0:
            return 0.0
        return self.lambda_after / self.lambda_before - 1.0

    def to_dict(self) -> dict:
        return {
            "num_machines": self.num_machines,
            "edges_carried": self.edges_carried,
            "edges_placed": self.edges_placed,
            "edges_removed": self.edges_removed,
            "lambda_before": self.lambda_before,
            "lambda_after": self.lambda_after,
            "lambda_drift": self.lambda_drift,
            "machines_unchanged": list(self.machines_unchanged),
            "machines_rebuilt": self.machines_rebuilt,
            "repartitioned_vertices": list(self.repartitioned_vertices),
        }


def _machines_hosting(pgraph: PartitionedGraph, v: int) -> np.ndarray:
    if v >= pgraph.graph.num_vertices:
        return np.empty(0, dtype=np.int32)
    return pgraph.replicas_of(v)


def _greedy_place(
    pgraph: PartitionedGraph,
    added_src: np.ndarray,
    added_dst: np.ndarray,
    load: np.ndarray,
) -> np.ndarray:
    """One home machine per added edge; mutates ``load`` as it places."""
    out = np.empty(added_src.size, dtype=np.int64)
    for i, (u, v) in enumerate(zip(added_src.tolist(), added_dst.tolist())):
        mu = _machines_hosting(pgraph, u)
        mv = _machines_hosting(pgraph, v)
        both = np.intersect1d(mu, mv)
        cand = both if both.size else np.union1d(mu, mv)
        if cand.size:
            m = int(cand[np.argmin(load[cand])])
        else:
            m = int(np.argmin(load))
        out[i] = m
        load[m] += 1
    return out


def patch_partition(
    old_pgraph: PartitionedGraph,
    new_graph: DiGraph,
    diff: EdgeDiff,
) -> Tuple[PartitionedGraph, PatchStats]:
    """Carry the vertex-cut across a mutation; place only the new edges.

    ``new_graph`` must be the patched graph whose edge layout matches
    ``diff`` (kept edges first, in order, then added) — exactly what
    :func:`~repro.graph.mutation.apply_batch` /
    :func:`~repro.graph.mutation.symmetrized_patch` produce against the
    graph ``old_pgraph`` was built from.
    """
    if old_pgraph.parallel_eids.size:
        raise ConfigError(
            "dynamic mutation does not support parallel-edges sessions "
            "(the edge-splitter dispatch is global); open the session "
            "without split="
        )
    if diff.num_kept + diff.num_added != new_graph.num_edges:
        raise ConfigError(
            f"edge diff does not describe new_graph "
            f"({diff.num_kept}+{diff.num_added} != {new_graph.num_edges})"
        )
    P = old_pgraph.num_machines
    carried = old_pgraph.assignment[diff.kept_eids].astype(np.int64)
    load = np.bincount(carried, minlength=P).astype(np.int64)
    placed = _greedy_place(old_pgraph, diff.added_src, diff.added_dst, load)
    assignment = np.concatenate([carried, placed])
    new_pgraph = PartitionedGraph.build(new_graph, assignment, P)

    unchanged = [
        old_mg.machine_id
        for old_mg, new_mg in zip(old_pgraph.machines, new_pgraph.machines)
        if (
            np.array_equal(old_mg.vertices, new_mg.vertices)
            and np.array_equal(old_mg.esrc, new_mg.esrc)
            and np.array_equal(old_mg.edst, new_mg.edst)
        )
    ]
    stats = PatchStats(
        num_machines=P,
        edges_carried=diff.num_kept,
        edges_placed=diff.num_added,
        edges_removed=diff.num_removed,
        lambda_before=float(old_pgraph.replication_factor),
        lambda_after=float(new_pgraph.replication_factor),
        machines_unchanged=unchanged,
    )
    return new_pgraph, stats


def repartition_worst(
    graph: DiGraph,
    assignment: np.ndarray,
    num_machines: int,
    max_vertices: int = 64,
) -> Tuple[np.ndarray, List[int]]:
    """xDGP-style local refinement: consolidate the worst-replicated vertices.

    Picks up to ``max_vertices`` vertices with the most distinct
    incident-edge machines and moves each one's incident edges onto the
    machine already hosting the plurality of them (ties: lower machine
    id). Returns the refined assignment (a copy) and the vertices
    actually touched; vertices whose edges already share one machine are
    skipped.
    """
    assignment = np.asarray(assignment, dtype=np.int64).copy()
    if graph.num_edges == 0 or max_vertices <= 0:
        return assignment, []
    # distinct machines per vertex over incident edges (both endpoints)
    n = graph.num_vertices
    keys = np.concatenate(
        [
            graph.src * np.int64(num_machines) + assignment,
            graph.dst * np.int64(num_machines) + assignment,
        ]
    )
    uniq = np.unique(keys)
    spread = np.bincount((uniq // num_machines).astype(np.int64), minlength=n)
    worst = np.argsort(-spread, kind="stable")[:max_vertices]
    moved: List[int] = []
    for v in worst.tolist():
        if spread[v] <= 1:
            break  # sorted descending: everything after is ≤ 1 too
        eids = np.concatenate([graph.out_edge_ids(v), graph.in_edge_ids(v)])
        eids = np.unique(eids)
        homes = assignment[eids]
        counts = np.bincount(homes, minlength=num_machines)
        target = int(np.argmax(counts))
        if np.all(homes == target):
            continue
        assignment[eids] = target
        moved.append(int(v))
    return assignment, moved


def repartition_if_needed(
    pgraph: PartitionedGraph,
    baseline_lambda: float,
    threshold: Optional[float],
    max_vertices: int = 64,
) -> Tuple[PartitionedGraph, List[int]]:
    """Apply :func:`repartition_worst` when λ drifted past its budget.

    ``threshold`` is multiplicative over ``baseline_lambda`` (the λ the
    last full partitioning produced): ``threshold=1.2`` tolerates 20%
    drift. ``None`` disables the valve. Returns the (possibly new)
    partitioned graph and the consolidated vertices.
    """
    if threshold is None or baseline_lambda <= 0.0:
        return pgraph, []
    if pgraph.replication_factor <= baseline_lambda * threshold:
        return pgraph, []
    refined, moved = repartition_worst(
        pgraph.graph, pgraph.assignment, pgraph.num_machines,
        max_vertices=max_vertices,
    )
    if not moved:
        return pgraph, []
    return (
        PartitionedGraph.build(pgraph.graph, refined, pgraph.num_machines),
        moved,
    )
