"""Partitioner dispatch and assignment validation.

A *partitioner* is a function ``(graph, num_machines, seed) -> assignment``
where ``assignment[e]`` is the machine id of edge ``e``. All partitioners
in this package are deterministic given the seed.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import PartitionError
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike

__all__ = ["PARTITIONER_NAMES", "partition_graph", "validate_assignment", "register_partitioner"]

PartitionerFn = Callable[..., np.ndarray]

_PARTITIONERS: Dict[str, PartitionerFn] = {}


def register_partitioner(name: str, fn: PartitionerFn) -> None:
    """Register a partitioner under ``name`` for :func:`partition_graph`."""
    if name in _PARTITIONERS:
        raise PartitionError(f"partitioner {name!r} already registered")
    _PARTITIONERS[name] = fn


def validate_assignment(
    graph: DiGraph, assignment: np.ndarray, num_machines: int
) -> np.ndarray:
    """Check that ``assignment`` maps every edge to a valid machine."""
    assignment = np.asarray(assignment)
    if assignment.shape != (graph.num_edges,):
        raise PartitionError(
            f"assignment must have one entry per edge ({graph.num_edges}), "
            f"got shape {assignment.shape}"
        )
    if assignment.size and (
        assignment.min() < 0 or assignment.max() >= num_machines
    ):
        raise PartitionError(
            f"assignment values must lie in [0, {num_machines}), "
            f"found [{assignment.min()}, {assignment.max()}]"
        )
    return assignment.astype(np.int32, copy=False)


def partition_graph(
    graph: DiGraph,
    num_machines: int,
    method: str = "coordinated",
    seed: SeedLike = None,
    **kwargs,
) -> np.ndarray:
    """Assign every edge of ``graph`` to one of ``num_machines`` machines.

    ``method`` is one of :data:`PARTITIONER_NAMES`. Extra keyword args are
    forwarded to the partitioner (e.g. ``degree_threshold`` for hybrid).
    """
    if num_machines < 1:
        raise PartitionError(f"num_machines must be >= 1, got {num_machines}")
    try:
        fn = _PARTITIONERS[method]
    except KeyError:
        raise PartitionError(
            f"unknown partitioner {method!r}; known: {', '.join(sorted(_PARTITIONERS))}"
        ) from None
    assignment = fn(graph, num_machines, seed=seed, **kwargs)
    return validate_assignment(graph, assignment, num_machines)


def _lazy_register_defaults() -> None:
    # Imported late to avoid circular imports at package-init time.
    from repro.partition.coordinated_cut import coordinated_cut
    from repro.partition.edge_cut import edge_cut
    from repro.partition.grid_cut import grid_cut
    from repro.partition.hybrid_cut import hybrid_cut
    from repro.partition.oblivious_cut import oblivious_cut
    from repro.partition.random_cut import random_cut

    for name, fn in [
        ("random", random_cut),
        ("grid", grid_cut),
        ("coordinated", coordinated_cut),
        ("oblivious", oblivious_cut),
        ("hybrid", hybrid_cut),
        ("edge", edge_cut),
    ]:
        if name not in _PARTITIONERS:
            register_partitioner(name, fn)


class _NamesView:
    """Live, import-safe view of registered partitioner names."""

    def __iter__(self):
        _lazy_register_defaults()
        return iter(sorted(_PARTITIONERS))

    def __contains__(self, item) -> bool:
        _lazy_register_defaults()
        return item in _PARTITIONERS

    def __repr__(self) -> str:
        return repr(tuple(self))


PARTITIONER_NAMES = _NamesView()

# Ensure the registry is populated for direct partition_graph() calls.
_lazy_register_defaults()
