"""Hybrid vertex-cut (PowerLyra-style differentiated placement).

Skewed graphs mix a few very-high-in-degree vertices with a low-degree
majority. Hybrid-cut places edges differently by target in-degree:

* **low-degree target** — the edge is hashed by its *target* vertex, so
  all in-edges of a low-degree vertex land on one machine (edge-cut-like
  locality, no gather-side replication for that vertex);
* **high-degree target** (in-degree > ``degree_threshold``) — the edge is
  hashed by its *source*, distributing the hub's gather work across
  machines (vertex-cut-like parallelism).

This is the "hybrid-cut" option the paper lists in §4.1; the algorithm
is from PowerLyra [8].
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, make_rng

__all__ = ["hybrid_cut"]


def hybrid_cut(
    graph: DiGraph,
    num_machines: int,
    seed: SeedLike = None,
    degree_threshold: int = 100,
) -> np.ndarray:
    """Differentiated hash placement by target in-degree."""
    rng = make_rng(seed)
    # Seeded random vertex -> machine hash shared by both rules.
    vhash = rng.integers(0, num_machines, size=graph.num_vertices, dtype=np.int32)
    if graph.num_edges == 0:
        return np.empty(0, dtype=np.int32)
    in_deg = graph.in_degrees()
    high_target = in_deg[graph.dst] > degree_threshold
    assignment = np.where(high_target, vhash[graph.src], vhash[graph.dst])
    return assignment.astype(np.int32)
