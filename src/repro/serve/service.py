"""GraphService: a resident graph-query serving layer over one session.

The paper's engines are batch artifacts: one algorithm, one run, one
result. A serving workload inverts that shape — many small point
queries ("PPR around these seeds", "hops from this vertex") against one
resident graph, arriving asynchronously. :class:`GraphService` fronts a
:class:`~repro.session.GraphSession` with the three mechanisms that
workload needs:

* **a request queue + dispatcher thread**: ``submit`` returns a
  :class:`concurrent.futures.Future` immediately; every engine run
  executes on the single dispatcher thread, so the session's cached
  artifacts and warm worker pool are never raced;
* **query batching**: requests are drained in windows of up to
  ``max_batch`` requests / ``max_wait`` seconds. Identical queries in a
  window always share one run (single-flight). In ``batch_mode="fused"``
  (the default), *compatible point queries* — BFS-distance queries, or
  PPR queries differing only in seeds — additionally fuse into **one
  shared multi-source delta sweep** (``msbfs`` over the union of
  sources; ``ppr`` over the union of seeds). A fused answer is the
  multi-source result, bit-identical to a fresh ``repro.run`` of the
  union program; ``ServedResult.batched``/``sources_served`` make the
  fusion visible, and ``batch_mode="exact"`` turns it off for callers
  that need per-source isolation;
* **an LRU result cache** keyed on ``(graph version, engine, program,
  params, source set, policy)``, holding serialized results
  (:meth:`EngineResult.to_dict`) so cached entries share no mutable
  arrays with what was handed out; hits are rebuilt fresh via
  ``from_dict``.

The resident graph accepts **mutations in-band**:
``submit_mutation(batch)`` / ``mutate(batch)`` enqueue a
:class:`~repro.graph.mutation.MutationBatch` as a FIFO *barrier* — every
query accepted before it answers against the pre-mutation graph, the
session then applies the batch (``session.apply``, bumping
``graph_version``), and every query after answers against the patched
graph. Cache invalidation is free because ``graph_version`` is part of
the result-cache key; the CLI verb is ``mutate {json}`` on the
``repro serve`` stdin protocol.

Every request carries a :class:`~repro.obs.request_trace.RequestContext`
(request id + the host timestamps of its queue/batch/run/serialize
legs); opt-in observability rides on it with zero behavior change:

* ``trace_out=`` streams a **merged request trace** — service spans
  joined to each engine run's own tracer stream, with fused/single-
  flight engine cost split bit-exactly across riding requests
  (:mod:`repro.obs.request_trace`; ``repro analyze --serve``);
* ``telemetry_out=`` attaches a :class:`~repro.obs.telemetry.
  TelemetrySink` ticker sampling queue depth, in-flight count, cache
  hit rate, sliding-window per-class latency quantiles and worker-pool
  heartbeats (``repro top`` / ``repro slo``).

Neither sink touches the ``serve.*`` metrics registry, so counters and
answers are bit-identical whether observability is on or off.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.graph.mutation import MutationBatch
from repro.obs.metrics import MetricsRegistry
from repro.obs.request_trace import RequestContext, ServeTraceWriter, split_cost
from repro.obs.telemetry import TelemetrySink
from repro.obs.tracer import Tracer
from repro.runtime.result import EngineResult
from repro.runtime.run_config import RunConfig
from repro.session import ApplyResult, GraphSession

__all__ = ["GraphService", "QueryRequest", "ServedResult"]

# algorithms whose point queries fuse into one multi-source sweep, and
# the canonical multi-source program each fuses into
_FUSABLE = {"bfs": "msbfs", "msbfs": "msbfs", "ppr": "ppr"}
# how each algorithm spells its source set as program parameters
_SOURCE_PARAM = {
    "bfs": "source", "sssp": "source", "msbfs": "sources", "ppr": "seeds",
}


@dataclass(frozen=True)
class QueryRequest:
    """One algorithm request against the resident graph."""

    algorithm: str
    sources: Tuple[int, ...] = ()
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls, algorithm: str, sources: Sequence[int] = (), **params: Any
    ) -> "QueryRequest":
        # freeze list-valued params (e.g. seeds=[1, 2]) so requests stay
        # hashable — batching dedups on request identity
        frozen = tuple(
            (k, tuple(v) if isinstance(v, (list, set)) else v)
            for k, v in sorted(params.items())
        )
        return cls(
            algorithm=algorithm,
            sources=tuple(int(s) for s in sources),
            params=frozen,
        )

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)


@dataclass
class ServedResult:
    """A query answer plus how it was produced.

    ``batched`` marks answers produced by a fused multi-source sweep;
    ``sources_served`` is then the union source set the sweep ran over
    (equal to the request's own sources otherwise). ``cached`` marks
    LRU hits. ``latency_s`` is submit-to-completion wall time — the
    left-to-right sum of the request's queue/batch/run/serialize leg
    widths, so it matches the traced waterfall bit-for-bit.
    ``request_id`` names this request across the trace and telemetry
    planes; ``engine_cost_s`` is the share of engine modeled time
    attributed to this request (0 for cache hits, an exact
    ``1/riders`` split for fused runs); ``cache_key`` is the artifact
    key an LRU hit was served from.
    """

    result: EngineResult
    request: QueryRequest
    cached: bool = False
    batched: bool = False
    sources_served: Tuple[int, ...] = ()
    batch_size: int = 1
    latency_s: float = 0.0
    request_id: int = 0
    engine_cost_s: float = 0.0
    cache_key: Optional[str] = None


@dataclass
class _Pending:
    request: QueryRequest
    future: Future
    submitted_at: float = field(default_factory=time.perf_counter)
    ctx: Optional[RequestContext] = None


@dataclass
class _PendingMutation:
    """A mutation request riding the same FIFO as queries.

    Queue order is the consistency contract: queries submitted before
    the mutation answer against the old graph version, queries after it
    against the new one. ``ctx`` stays ``None`` — mutations are not
    engine runs and take no waterfall trace.
    """

    batch: MutationBatch
    future: Future
    submitted_at: float = field(default_factory=time.perf_counter)
    ctx: Optional[RequestContext] = None


_STOP = object()


class GraphService:
    """Resident query service over one :class:`GraphSession`.

    Parameters
    ----------
    session:
        An open session the service takes queries against (not owned:
        closing the service leaves the session open).
    engine / policy / backend / workers:
        Fixed run-level configuration every query runs under.
    max_batch / max_wait:
        Batching window: the dispatcher drains up to ``max_batch``
        queued requests, waiting at most ``max_wait`` seconds for
        stragglers after the first.
    cache_size:
        LRU capacity in distinct query keys (0 disables caching).
    batch_mode:
        ``"fused"`` (default) fuses compatible point queries into one
        multi-source sweep; ``"exact"`` only ever shares runs between
        *identical* queries.
    trace_out:
        Path for the merged request trace JSONL (None disables request
        tracing; see :mod:`repro.obs.request_trace`).
    telemetry_out / telemetry_interval / telemetry_window:
        Path for the append-only service telemetry JSONL (None disables
        the ticker), its sampling interval, and the sliding-window
        horizon for per-class latency quantiles.
    """

    def __init__(
        self,
        session: GraphSession,
        engine: str = "lazy-block",
        policy: Any = None,
        max_batch: int = 8,
        max_wait: float = 0.002,
        cache_size: int = 128,
        batch_mode: str = "fused",
        backend: Any = None,
        workers: Optional[int] = None,
        trace_out: Optional[str] = None,
        telemetry_out: Optional[str] = None,
        telemetry_interval: float = 1.0,
        telemetry_window: float = 60.0,
    ) -> None:
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ConfigError(f"max_wait must be >= 0, got {max_wait}")
        if cache_size < 0:
            raise ConfigError(f"cache_size must be >= 0, got {cache_size}")
        if batch_mode not in ("fused", "exact"):
            raise ConfigError(
                f"batch_mode must be 'fused' or 'exact', got {batch_mode!r}"
            )
        self.session = session
        self.engine = engine
        self.policy = policy
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.batch_mode = batch_mode
        self.backend = backend
        self.workers = workers
        self.cache_size = cache_size
        self._cache: "OrderedDict[Tuple, Dict[str, Any]]" = OrderedDict()
        self.metrics = MetricsRegistry()
        self._latency = self.metrics.histogram(
            "serve.latency_s",
            buckets=[0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60],
        )
        # request/batch/run identity for the trace + telemetry planes;
        # inflight is a plain int (NOT a registry metric) so the serve.*
        # counter export stays byte-identical with observability off
        self._req_ids = itertools.count(1)
        self._batch_ids = itertools.count(1)
        self._run_ids = itertools.count(1)
        self._inflight = 0
        self._trace = ServeTraceWriter(trace_out) if trace_out else None
        self._telemetry = (
            TelemetrySink(
                self, telemetry_out,
                interval_s=telemetry_interval, window_s=telemetry_window,
            )
            if telemetry_out else None
        )
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._cancel = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # public API
    def submit(
        self, algorithm: str, sources: Sequence[int] = (), **params: Any
    ) -> "Future[ServedResult]":
        """Enqueue one query; resolve its answer asynchronously."""
        if self._closed:
            raise ConfigError("service is closed")
        req = QueryRequest.make(algorithm, sources, **params)
        fut: "Future[ServedResult]" = Future()
        ctx = RequestContext(
            request_id=next(self._req_ids),
            algorithm=algorithm,
            sources=tuple(int(s) for s in sources),
        )
        self.metrics.counter("serve.queries").inc()
        self._inflight += 1
        self._queue.put(_Pending(req, fut, submitted_at=ctx.t_enqueue, ctx=ctx))
        return fut

    def query(
        self,
        algorithm: str,
        sources: Sequence[int] = (),
        timeout: Optional[float] = None,
        **params: Any,
    ) -> ServedResult:
        """Blocking :meth:`submit` — returns the served answer."""
        return self.submit(algorithm, sources, **params).result(timeout)

    def submit_mutation(
        self, batch: MutationBatch
    ) -> "Future[ApplyResult]":
        """Enqueue a graph mutation; resolves to the session's
        :class:`~repro.session.ApplyResult`.

        The mutation rides the request FIFO: every query already
        submitted is served (against the current graph version) before
        the batch applies, the version bump then retires the LRU for
        free (cache keys carry the graph version), and later queries
        answer against the mutated graph.
        """
        if self._closed:
            raise ConfigError("service is closed")
        if not isinstance(batch, MutationBatch):
            raise ConfigError(
                f"submit_mutation takes a MutationBatch, "
                f"got {type(batch).__name__}"
            )
        fut: "Future[ApplyResult]" = Future()
        self.metrics.counter("serve.mutations").inc()
        self._inflight += 1
        self._queue.put(_PendingMutation(batch, fut))
        return fut

    def mutate(
        self, batch: MutationBatch, timeout: Optional[float] = None
    ) -> ApplyResult:
        """Blocking :meth:`submit_mutation`."""
        return self.submit_mutation(batch).result(timeout)

    def stats(self) -> Dict[str, Any]:
        """Service counters + latency summary (JSON-serializable)."""
        out = self.metrics.export()
        hits = out.get("serve.cache_hits", 0.0)
        misses = out.get("serve.cache_misses", 0.0)
        total = hits + misses
        out["serve.cache_hit_rate"] = hits / total if total else 0.0
        return out

    def telemetry_snapshot(self) -> Dict[str, Any]:
        """Instantaneous service state for the telemetry ticker.

        Read-only: samples the queue, in-flight count, cache occupancy,
        cumulative ``serve.*`` counters/latency, and the session's
        artifact + worker-pool heartbeats. Values are best-effort
        snapshots (the dispatcher keeps running while we read).
        """
        exported = self.metrics.export()
        counters = {
            k: v for k, v in exported.items() if not isinstance(v, dict)
        }
        latency = exported.get("serve.latency_s")
        hits = counters.get("serve.cache_hits", 0.0)
        misses = counters.get("serve.cache_misses", 0.0)
        lookups = hits + misses
        return {
            "queue_depth": self._queue.qsize(),
            "inflight": self._inflight,
            "cache": {
                "entries": len(self._cache),
                "capacity": self.cache_size,
            },
            "counters": counters,
            "hit_rate": hits / lookups if lookups else 0.0,
            "latency": latency if isinstance(latency, dict) else {},
            "session": self.session.artifact_stats(),
            "pool": self.session.pool_heartbeat(),
        }

    def close(self, timeout: float = 30.0, mode: str = "drain") -> None:
        """Stop the service deterministically (idempotent).

        ``mode="drain"`` (default) serves every request already
        submitted — including any that raced past the shutdown sentinel
        — before returning, so no accepted future is left unresolved.
        ``mode="cancel"`` resolves queued-but-unstarted requests with
        ``Future.cancel()`` instead (requests already being served
        complete normally). Either way ``submit`` raises immediately
        once close begins, and the trace/telemetry sinks are flushed
        and closed last.
        """
        if mode not in ("drain", "cancel"):
            raise ConfigError(
                f"close mode must be 'drain' or 'cancel', got {mode!r}"
            )
        if self._closed:
            return
        self._cancel = mode == "cancel"
        self._closed = True
        self._queue.put(_STOP)
        self._dispatcher.join(timeout)
        # the submit/close race can enqueue requests behind _STOP; the
        # dispatcher never sees them, so resolve them here on the
        # closing thread (the dispatcher is gone — no concurrency)
        leftovers: List[_Pending] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                leftovers.append(item)
        if leftovers:
            if self._cancel:
                for p in leftovers:
                    self._cancel_pending(p)
            else:
                # preserve FIFO semantics: mutations stay barriers even
                # in the drain path
                run: List[_Pending] = []
                for p in leftovers:
                    if isinstance(p, _PendingMutation):
                        if run:
                            self._serve_batch(run)
                            run = []
                        self._apply_mutation(p)
                    else:
                        run.append(p)
                if run:
                    self._serve_batch(run)
        if self._telemetry is not None:
            self._telemetry.close()
        if self._trace is not None:
            self._trace.close(meta={"service_stats": self.stats()})

    def __enter__(self) -> "GraphService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # dispatcher internals (single thread; owns cache + session.run)
    def _dispatch_loop(self) -> None:
        while True:
            try:
                item = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._closed:
                    return
                continue
            if item is _STOP:
                return
            if self._cancel:
                self._cancel_pending(item)
                continue
            if isinstance(item, _PendingMutation):
                # a mutation is a barrier: everything before it has
                # already been served (FIFO + single dispatcher thread)
                self._apply_mutation(item)
                continue
            batch = [item]
            tail: Optional[_PendingMutation] = None
            deadline = time.perf_counter() + self.max_wait
            while len(batch) < self.max_batch:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _STOP:
                    if self._cancel:
                        for p in batch:
                            self._cancel_pending(p)
                    else:
                        self._serve_batch(batch)
                    return
                if isinstance(nxt, _PendingMutation):
                    # close the window early: the queries gathered so
                    # far answer against the pre-mutation graph
                    tail = nxt
                    break
                batch.append(nxt)
            self._serve_batch(batch)
            if tail is not None:
                self._apply_mutation(tail)

    def _apply_mutation(self, pending: _PendingMutation) -> None:
        try:
            result = self.session.apply(pending.batch)
        except Exception as exc:
            self._inflight -= 1
            pending.future.set_exception(exc)
            return
        self.metrics.counter("serve.mutations_applied").inc()
        self._inflight -= 1
        pending.future.set_result(result)

    def _policy_key(self) -> str:
        return repr(self.policy)

    def _run_key(
        self, program: str, params: Tuple[Tuple[str, Any], ...],
        sources: Tuple[int, ...],
    ) -> Tuple:
        return (
            self.session.graph_version, self.engine, program,
            repr(params), sources, self._policy_key(),
        )

    def _canonical(self, req: QueryRequest) -> Tuple[str, Tuple[int, ...]]:
        """Normalize a request to (program name, ordered source tuple)."""
        srcs = tuple(sorted(set(req.sources)))
        alg = req.algorithm
        if alg in ("bfs", "sssp") and len(srcs) > 1:
            raise ConfigError(
                f"{alg} takes one source, got {len(srcs)}; use msbfs for "
                f"multi-source distance queries"
            )
        if alg == "bfs" and not srcs:
            srcs = (int(req.params_dict.get("source", 0)),)
        if alg in ("msbfs", "ppr") and not srcs:
            key = _SOURCE_PARAM[alg]
            raw = req.params_dict.get(key, ())
            srcs = tuple(sorted({int(s) for s in raw})) if raw else ()
        return alg, srcs

    def _run_params(
        self, alg: str, srcs: Tuple[int, ...], params: Dict[str, Any]
    ) -> Dict[str, Any]:
        params = dict(params)
        key = _SOURCE_PARAM.get(alg)
        if key is not None and srcs:
            params[key] = (
                int(srcs[0]) if key == "source" else list(srcs)
            )
        return params

    def _execute(
        self,
        alg: str,
        srcs: Tuple[int, ...],
        params: Dict[str, Any],
        tracer: Optional[Tracer] = None,
    ) -> EngineResult:
        config = RunConfig(
            engine=self.engine, policy=self.policy,
            backend=self.backend, workers=self.workers,
            params=self._run_params(alg, srcs, params),
            tracer=tracer,
        )
        self.metrics.counter("serve.runs").inc()
        return self.session.run(alg, config=config)

    def _cache_get(self, key: Tuple) -> Optional[EngineResult]:
        if self.cache_size == 0:
            return None
        entry = self._cache.get(key)
        if entry is None:
            return None
        self._cache.move_to_end(key)
        return EngineResult.from_dict(entry)

    def _cache_put(self, key: Tuple, result: EngineResult) -> None:
        if self.cache_size == 0:
            return
        self._cache[key] = result.to_dict()
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # request lifecycle terminals: every accepted request leaves through
    # exactly one of _finish / _fail / _cancel_pending
    def _finish(
        self, pending: _Pending, served: ServedResult
    ) -> None:
        ctx = pending.ctx
        if ctx is not None:
            ctx.t_done = time.perf_counter()
            ctx.outcome = "ok"
            served.latency_s = ctx.latency_s
            served.request_id = ctx.request_id
            served.engine_cost_s = ctx.engine_cost_s
            served.cache_key = ctx.cache_key
            ctx.cached = served.cached
            ctx.batched = served.batched
            ctx.batch_size = served.batch_size
            ctx.sources_served = served.sources_served
            if self._trace is not None:
                self._trace.record_request(ctx)
            if self._telemetry is not None:
                self._telemetry.observe(
                    ctx.algorithm, served.latency_s, served.cached
                )
        else:
            served.latency_s = time.perf_counter() - pending.submitted_at
        self._inflight -= 1
        self._latency.observe(served.latency_s)
        pending.future.set_result(served)

    def _fail(self, pending: _Pending, exc: BaseException) -> None:
        ctx = pending.ctx
        if ctx is not None:
            now = time.perf_counter()
            for stamp in ("t_dispatch", "t_run0", "t_run1"):
                if getattr(ctx, stamp) == 0.0:
                    setattr(ctx, stamp, now)
            ctx.t_done = now
            ctx.outcome = "error"
            ctx.error = repr(exc)
            if self._trace is not None:
                self._trace.record_request(ctx)
        self._inflight -= 1
        pending.future.set_exception(exc)

    def _cancel_pending(self, pending: _Pending) -> None:
        ctx = pending.ctx
        if ctx is not None:
            now = time.perf_counter()
            for stamp in ("t_dispatch", "t_run0", "t_run1"):
                if getattr(ctx, stamp) == 0.0:
                    setattr(ctx, stamp, now)
            ctx.t_done = now
            ctx.outcome = "cancelled"
            if self._trace is not None:
                self._trace.record_request(ctx)
        self._inflight -= 1
        pending.future.cancel()

    def _serve_batch(self, batch: List[_Pending]) -> None:
        self.metrics.counter("serve.batches").inc()
        batch_id = next(self._batch_ids)
        t_dispatch = time.perf_counter()
        for p in batch:
            if p.ctx is not None:
                p.ctx.t_dispatch = t_dispatch
                p.ctx.batch_id = batch_id
        # pass 1: cache hits answer immediately; misses group for runs
        groups: "OrderedDict[Tuple, List[_Pending]]" = OrderedDict()
        plans: Dict[Tuple, Tuple[str, Tuple[int, ...], Dict[str, Any]]] = {}
        for p in batch:
            try:
                alg, srcs = self._canonical(p.request)
            except Exception as exc:
                self._fail(p, exc)
                continue
            key = self._run_key(alg, p.request.params, srcs)
            hit = self._cache_get(key)
            if hit is not None:
                self.metrics.counter("serve.cache_hits").inc()
                if p.ctx is not None:
                    # zero-width run leg: an LRU hit pays no engine time
                    t_hit = time.perf_counter()
                    p.ctx.t_run0 = t_hit
                    p.ctx.t_run1 = t_hit
                    p.ctx.cache_key = repr(key)
                    p.ctx.engine_cost_s = 0.0
                self._finish(
                    p,
                    ServedResult(
                        result=hit, request=p.request, cached=True,
                        sources_served=srcs, cache_key=repr(key),
                    ),
                )
                continue
            self.metrics.counter("serve.cache_misses").inc()
            groups.setdefault(key, []).append(p)
            plans[key] = (alg, srcs, p.request.params_dict)

        # pass 2: fuse compatible single-source groups into one sweep
        if self.batch_mode == "fused":
            groups, plans = self._fuse(groups, plans)

        # pass 3: one engine run per remaining group (single-flight)
        for key, members in groups.items():
            alg, srcs, params = plans[key]
            run_id = next(self._run_ids)
            run_tracer = Tracer() if self._trace is not None else None
            t_run0 = time.perf_counter()
            try:
                result = self._execute(alg, srcs, params, tracer=run_tracer)
            except Exception as exc:
                t_run1 = time.perf_counter()
                if self._trace is not None:
                    self._trace.record_run(
                        run_id, batch_id, alg, srcs,
                        [m.ctx.request_id for m in members if m.ctx],
                        t_run0, t_run1, error=repr(exc),
                    )
                for p in members:
                    if p.ctx is not None:
                        p.ctx.run_id = run_id
                        p.ctx.t_run0 = t_run0
                        p.ctx.t_run1 = t_run1
                    self._fail(p, exc)
                continue
            t_run1 = time.perf_counter()
            self._cache_put(key, result)
            fused = len({m.request for m in members}) > 1
            # cost attribution: the run's modeled engine time splits
            # across its riders, summing back bit-exactly (split_cost)
            shares = split_cost(
                float(result.stats.modeled_time_s), len(members)
            )
            if self._trace is not None:
                self._trace.record_run(
                    run_id, batch_id, alg, srcs,
                    [m.ctx.request_id for m in members if m.ctx],
                    t_run0, t_run1, result=result, tracer=run_tracer,
                )
            for p, share in zip(members, shares):
                if p.ctx is not None:
                    p.ctx.run_id = run_id
                    p.ctx.t_run0 = t_run0
                    p.ctx.t_run1 = t_run1
                    p.ctx.engine_cost_s = share
                self._finish(
                    p,
                    ServedResult(
                        # hand out independent copies so callers can
                        # mutate freely without corrupting siblings
                        result=(
                            result if len(members) == 1
                            else EngineResult.from_dict(result.to_dict())
                        ),
                        request=p.request,
                        batched=fused,
                        sources_served=srcs,
                        batch_size=len(members),
                        engine_cost_s=share,
                    ),
                )
                if fused:
                    self.metrics.counter("serve.fused_queries").inc()

    def _fuse(
        self,
        groups: "OrderedDict[Tuple, List[_Pending]]",
        plans: Dict[Tuple, Tuple[str, Tuple[int, ...], Dict[str, Any]]],
    ) -> Tuple["OrderedDict[Tuple, List[_Pending]]", Dict]:
        """Merge fusable miss-groups that differ only in their sources."""
        by_family: "OrderedDict[Tuple, List[Tuple]]" = OrderedDict()
        for key in groups:
            alg, srcs, params = plans[key]
            fused_alg = _FUSABLE.get(alg)
            if fused_alg is None or not srcs:
                by_family.setdefault(("solo", key), []).append(key)
                continue
            # compatibility: same fused program + same non-source params
            bare = tuple(
                (k, v) for k, v in sorted(params.items())
                if k != _SOURCE_PARAM[alg]
            )
            by_family.setdefault((fused_alg, repr(bare)), []).append(key)

        out_groups: "OrderedDict[Tuple, List[_Pending]]" = OrderedDict()
        out_plans: Dict[Tuple, Tuple[str, Tuple[int, ...], Dict[str, Any]]] = {}
        for family, keys in by_family.items():
            if family[0] == "solo" or len(keys) == 1:
                for key in keys:
                    out_groups[key] = groups[key]
                    out_plans[key] = plans[key]
                continue
            fused_alg = family[0]
            union: set = set()
            members: List[_Pending] = []
            params: Dict[str, Any] = {}
            for key in keys:
                alg, srcs, p = plans[key]
                union.update(srcs)
                members.extend(groups[key])
                params = {
                    k: v for k, v in p.items()
                    if k != _SOURCE_PARAM[alg]
                }
            fsrcs = tuple(sorted(union))
            fparams = tuple(sorted(params.items()))
            fkey = self._run_key(fused_alg, fparams, fsrcs)
            out_groups.setdefault(fkey, []).extend(members)
            out_plans[fkey] = (fused_alg, fsrcs, params)
        return out_groups, out_plans
