"""GraphService: a resident graph-query serving layer over one session.

The paper's engines are batch artifacts: one algorithm, one run, one
result. A serving workload inverts that shape — many small point
queries ("PPR around these seeds", "hops from this vertex") against one
resident graph, arriving asynchronously. :class:`GraphService` fronts a
:class:`~repro.session.GraphSession` with the three mechanisms that
workload needs:

* **a request queue + dispatcher thread**: ``submit`` returns a
  :class:`concurrent.futures.Future` immediately; every engine run
  executes on the single dispatcher thread, so the session's cached
  artifacts and warm worker pool are never raced;
* **query batching**: requests are drained in windows of up to
  ``max_batch`` requests / ``max_wait`` seconds. Identical queries in a
  window always share one run (single-flight). In ``batch_mode="fused"``
  (the default), *compatible point queries* — BFS-distance queries, or
  PPR queries differing only in seeds — additionally fuse into **one
  shared multi-source delta sweep** (``msbfs`` over the union of
  sources; ``ppr`` over the union of seeds). A fused answer is the
  multi-source result, bit-identical to a fresh ``repro.run`` of the
  union program; ``ServedResult.batched``/``sources_served`` make the
  fusion visible, and ``batch_mode="exact"`` turns it off for callers
  that need per-source isolation;
* **an LRU result cache** keyed on ``(graph version, engine, program,
  params, source set, policy)``, holding serialized results
  (:meth:`EngineResult.to_dict`) so cached entries share no mutable
  arrays with what was handed out; hits are rebuilt fresh via
  ``from_dict``.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.runtime.result import EngineResult
from repro.runtime.run_config import RunConfig
from repro.session import GraphSession

__all__ = ["GraphService", "QueryRequest", "ServedResult"]

# algorithms whose point queries fuse into one multi-source sweep, and
# the canonical multi-source program each fuses into
_FUSABLE = {"bfs": "msbfs", "msbfs": "msbfs", "ppr": "ppr"}
# how each algorithm spells its source set as program parameters
_SOURCE_PARAM = {
    "bfs": "source", "sssp": "source", "msbfs": "sources", "ppr": "seeds",
}


@dataclass(frozen=True)
class QueryRequest:
    """One algorithm request against the resident graph."""

    algorithm: str
    sources: Tuple[int, ...] = ()
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls, algorithm: str, sources: Sequence[int] = (), **params: Any
    ) -> "QueryRequest":
        # freeze list-valued params (e.g. seeds=[1, 2]) so requests stay
        # hashable — batching dedups on request identity
        frozen = tuple(
            (k, tuple(v) if isinstance(v, (list, set)) else v)
            for k, v in sorted(params.items())
        )
        return cls(
            algorithm=algorithm,
            sources=tuple(int(s) for s in sources),
            params=frozen,
        )

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)


@dataclass
class ServedResult:
    """A query answer plus how it was produced.

    ``batched`` marks answers produced by a fused multi-source sweep;
    ``sources_served`` is then the union source set the sweep ran over
    (equal to the request's own sources otherwise). ``cached`` marks
    LRU hits. ``latency_s`` is submit-to-completion wall time.
    """

    result: EngineResult
    request: QueryRequest
    cached: bool = False
    batched: bool = False
    sources_served: Tuple[int, ...] = ()
    batch_size: int = 1
    latency_s: float = 0.0


@dataclass
class _Pending:
    request: QueryRequest
    future: Future
    submitted_at: float = field(default_factory=time.perf_counter)


_STOP = object()


class GraphService:
    """Resident query service over one :class:`GraphSession`.

    Parameters
    ----------
    session:
        An open session the service takes queries against (not owned:
        closing the service leaves the session open).
    engine / policy / backend / workers:
        Fixed run-level configuration every query runs under.
    max_batch / max_wait:
        Batching window: the dispatcher drains up to ``max_batch``
        queued requests, waiting at most ``max_wait`` seconds for
        stragglers after the first.
    cache_size:
        LRU capacity in distinct query keys (0 disables caching).
    batch_mode:
        ``"fused"`` (default) fuses compatible point queries into one
        multi-source sweep; ``"exact"`` only ever shares runs between
        *identical* queries.
    """

    def __init__(
        self,
        session: GraphSession,
        engine: str = "lazy-block",
        policy: Any = None,
        max_batch: int = 8,
        max_wait: float = 0.002,
        cache_size: int = 128,
        batch_mode: str = "fused",
        backend: Any = None,
        workers: Optional[int] = None,
    ) -> None:
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ConfigError(f"max_wait must be >= 0, got {max_wait}")
        if cache_size < 0:
            raise ConfigError(f"cache_size must be >= 0, got {cache_size}")
        if batch_mode not in ("fused", "exact"):
            raise ConfigError(
                f"batch_mode must be 'fused' or 'exact', got {batch_mode!r}"
            )
        self.session = session
        self.engine = engine
        self.policy = policy
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.batch_mode = batch_mode
        self.backend = backend
        self.workers = workers
        self.cache_size = cache_size
        self._cache: "OrderedDict[Tuple, Dict[str, Any]]" = OrderedDict()
        self.metrics = MetricsRegistry()
        self._latency = self.metrics.histogram(
            "serve.latency_s",
            buckets=[0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60],
        )
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # public API
    def submit(
        self, algorithm: str, sources: Sequence[int] = (), **params: Any
    ) -> "Future[ServedResult]":
        """Enqueue one query; resolve its answer asynchronously."""
        if self._closed:
            raise ConfigError("service is closed")
        req = QueryRequest.make(algorithm, sources, **params)
        fut: "Future[ServedResult]" = Future()
        self.metrics.counter("serve.queries").inc()
        self._queue.put(_Pending(req, fut))
        return fut

    def query(
        self,
        algorithm: str,
        sources: Sequence[int] = (),
        timeout: Optional[float] = None,
        **params: Any,
    ) -> ServedResult:
        """Blocking :meth:`submit` — returns the served answer."""
        return self.submit(algorithm, sources, **params).result(timeout)

    def stats(self) -> Dict[str, Any]:
        """Service counters + latency summary (JSON-serializable)."""
        out = self.metrics.export()
        hits = out.get("serve.cache_hits", 0.0)
        misses = out.get("serve.cache_misses", 0.0)
        total = hits + misses
        out["serve.cache_hit_rate"] = hits / total if total else 0.0
        return out

    def close(self, timeout: float = 30.0) -> None:
        """Drain in-flight work and stop the dispatcher (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_STOP)
        self._dispatcher.join(timeout)

    def __enter__(self) -> "GraphService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # dispatcher internals (single thread; owns cache + session.run)
    def _dispatch_loop(self) -> None:
        while True:
            try:
                item = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._closed:
                    return
                continue
            if item is _STOP:
                return
            batch = [item]
            deadline = time.perf_counter() + self.max_wait
            while len(batch) < self.max_batch:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _STOP:
                    self._serve_batch(batch)
                    return
                batch.append(nxt)
            self._serve_batch(batch)

    def _policy_key(self) -> str:
        return repr(self.policy)

    def _run_key(
        self, program: str, params: Tuple[Tuple[str, Any], ...],
        sources: Tuple[int, ...],
    ) -> Tuple:
        return (
            self.session.graph_version, self.engine, program,
            repr(params), sources, self._policy_key(),
        )

    def _canonical(self, req: QueryRequest) -> Tuple[str, Tuple[int, ...]]:
        """Normalize a request to (program name, ordered source tuple)."""
        srcs = tuple(sorted(set(req.sources)))
        alg = req.algorithm
        if alg in ("bfs", "sssp") and len(srcs) > 1:
            raise ConfigError(
                f"{alg} takes one source, got {len(srcs)}; use msbfs for "
                f"multi-source distance queries"
            )
        if alg == "bfs" and not srcs:
            srcs = (int(req.params_dict.get("source", 0)),)
        if alg in ("msbfs", "ppr") and not srcs:
            key = _SOURCE_PARAM[alg]
            raw = req.params_dict.get(key, ())
            srcs = tuple(sorted({int(s) for s in raw})) if raw else ()
        return alg, srcs

    def _run_params(
        self, alg: str, srcs: Tuple[int, ...], params: Dict[str, Any]
    ) -> Dict[str, Any]:
        params = dict(params)
        key = _SOURCE_PARAM.get(alg)
        if key is not None and srcs:
            params[key] = (
                int(srcs[0]) if key == "source" else list(srcs)
            )
        return params

    def _execute(
        self, alg: str, srcs: Tuple[int, ...], params: Dict[str, Any]
    ) -> EngineResult:
        config = RunConfig(
            engine=self.engine, policy=self.policy,
            backend=self.backend, workers=self.workers,
            params=self._run_params(alg, srcs, params),
        )
        self.metrics.counter("serve.runs").inc()
        return self.session.run(alg, config=config)

    def _cache_get(self, key: Tuple) -> Optional[EngineResult]:
        if self.cache_size == 0:
            return None
        entry = self._cache.get(key)
        if entry is None:
            return None
        self._cache.move_to_end(key)
        return EngineResult.from_dict(entry)

    def _cache_put(self, key: Tuple, result: EngineResult) -> None:
        if self.cache_size == 0:
            return
        self._cache[key] = result.to_dict()
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def _finish(
        self, pending: _Pending, served: ServedResult
    ) -> None:
        served.latency_s = time.perf_counter() - pending.submitted_at
        self._latency.observe(served.latency_s)
        pending.future.set_result(served)

    def _serve_batch(self, batch: List[_Pending]) -> None:
        self.metrics.counter("serve.batches").inc()
        # pass 1: cache hits answer immediately; misses group for runs
        groups: "OrderedDict[Tuple, List[_Pending]]" = OrderedDict()
        plans: Dict[Tuple, Tuple[str, Tuple[int, ...], Dict[str, Any]]] = {}
        for p in batch:
            try:
                alg, srcs = self._canonical(p.request)
            except Exception as exc:
                p.future.set_exception(exc)
                continue
            key = self._run_key(alg, p.request.params, srcs)
            hit = self._cache_get(key)
            if hit is not None:
                self.metrics.counter("serve.cache_hits").inc()
                self._finish(
                    p,
                    ServedResult(
                        result=hit, request=p.request, cached=True,
                        sources_served=srcs,
                    ),
                )
                continue
            self.metrics.counter("serve.cache_misses").inc()
            groups.setdefault(key, []).append(p)
            plans[key] = (alg, srcs, p.request.params_dict)

        # pass 2: fuse compatible single-source groups into one sweep
        if self.batch_mode == "fused":
            groups, plans = self._fuse(groups, plans)

        # pass 3: one engine run per remaining group (single-flight)
        for key, members in groups.items():
            alg, srcs, params = plans[key]
            try:
                result = self._execute(alg, srcs, params)
            except Exception as exc:
                for p in members:
                    p.future.set_exception(exc)
                continue
            self._cache_put(key, result)
            fused = len({m.request for m in members}) > 1
            for p in members:
                self._finish(
                    p,
                    ServedResult(
                        # hand out independent copies so callers can
                        # mutate freely without corrupting siblings
                        result=(
                            result if len(members) == 1
                            else EngineResult.from_dict(result.to_dict())
                        ),
                        request=p.request,
                        batched=fused,
                        sources_served=srcs,
                        batch_size=len(members),
                    ),
                )
                if fused:
                    self.metrics.counter("serve.fused_queries").inc()

    def _fuse(
        self,
        groups: "OrderedDict[Tuple, List[_Pending]]",
        plans: Dict[Tuple, Tuple[str, Tuple[int, ...], Dict[str, Any]]],
    ) -> Tuple["OrderedDict[Tuple, List[_Pending]]", Dict]:
        """Merge fusable miss-groups that differ only in their sources."""
        by_family: "OrderedDict[Tuple, List[Tuple]]" = OrderedDict()
        for key in groups:
            alg, srcs, params = plans[key]
            fused_alg = _FUSABLE.get(alg)
            if fused_alg is None or not srcs:
                by_family.setdefault(("solo", key), []).append(key)
                continue
            # compatibility: same fused program + same non-source params
            bare = tuple(
                (k, v) for k, v in sorted(params.items())
                if k != _SOURCE_PARAM[alg]
            )
            by_family.setdefault((fused_alg, repr(bare)), []).append(key)

        out_groups: "OrderedDict[Tuple, List[_Pending]]" = OrderedDict()
        out_plans: Dict[Tuple, Tuple[str, Tuple[int, ...], Dict[str, Any]]] = {}
        for family, keys in by_family.items():
            if family[0] == "solo" or len(keys) == 1:
                for key in keys:
                    out_groups[key] = groups[key]
                    out_plans[key] = plans[key]
                continue
            fused_alg = family[0]
            union: set = set()
            members: List[_Pending] = []
            params: Dict[str, Any] = {}
            for key in keys:
                alg, srcs, p = plans[key]
                union.update(srcs)
                members.extend(groups[key])
                params = {
                    k: v for k, v in p.items()
                    if k != _SOURCE_PARAM[alg]
                }
            fsrcs = tuple(sorted(union))
            fparams = tuple(sorted(params.items()))
            fkey = self._run_key(fused_alg, fparams, fsrcs)
            out_groups.setdefault(fkey, []).extend(members)
            out_plans[fkey] = (fused_alg, fsrcs, params)
        return out_groups, out_plans
