"""Resident graph-query serving over reentrant engine sessions.

See :class:`~repro.serve.service.GraphService` — a request queue,
query batching (fused multi-source sweeps for compatible point
queries), and an LRU of converged results, all over one warm
:class:`~repro.session.GraphSession`.
"""

from repro.serve.service import GraphService, QueryRequest, ServedResult

__all__ = ["GraphService", "QueryRequest", "ServedResult"]
