"""``python -m repro`` entry point.

Guarded so ``multiprocessing`` spawn workers (which re-import the main
module as ``__mp_main__``) never re-run the CLI.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
