"""The paper's four evaluation algorithms (plus BFS) as delta programs.

Each algorithm is a push-style :class:`~repro.api.vertex_program.DeltaProgram`
that runs unchanged on the eager PowerGraph baselines and the lazy
LazyGraph engines, plus a single-machine reference implementation used
as ground truth in tests (:mod:`repro.algorithms.reference`).
"""

from repro.algorithms.bfs import BFSProgram
from repro.algorithms.cc import ConnectedComponentsProgram
from repro.algorithms.kcore import KCoreProgram
from repro.algorithms.msbfs import MultiSourceBFSProgram
from repro.algorithms.pagerank import PageRankDeltaProgram
from repro.algorithms.ppr import PersonalizedPageRankProgram
from repro.algorithms.sssp import SSSPProgram
from repro.algorithms.reference import (
    cc_reference,
    kcore_reference,
    pagerank_reference,
    ppr_reference,
    sssp_reference,
    bfs_reference,
)
from repro.algorithms.drivers import scc_reference, strongly_connected_components
from repro.algorithms.registry import make_program, program_names

__all__ = [
    "PageRankDeltaProgram",
    "PersonalizedPageRankProgram",
    "SSSPProgram",
    "ConnectedComponentsProgram",
    "KCoreProgram",
    "BFSProgram",
    "MultiSourceBFSProgram",
    "pagerank_reference",
    "ppr_reference",
    "sssp_reference",
    "cc_reference",
    "kcore_reference",
    "bfs_reference",
    "make_program",
    "program_names",
    "strongly_connected_components",
    "scc_reference",
]
