"""Multi-run algorithm drivers composed from the public API.

Some graph problems are not a single vertex program but a *schedule* of
them. The paper (§6) notes the LazyAsync approach should also benefit
"distributed parallel graph algorithms" built this way; this module
demonstrates the composition with strongly connected components via the
classic Forward-Backward-Trim algorithm:

1. **trim** degree-0 vertices (each is a singleton SCC) until none
   remain;
2. pick a pivot, compute its forward (BFS) and backward (BFS on the
   reversed subgraph) reachable sets — each BFS is a distributed engine
   run;
3. ``F ∩ B`` is the pivot's SCC; the remainder splits into three
   independent subproblems (``F∖S``, ``B∖S``, rest) processed from a
   worklist.

Small subproblems (below ``local_threshold`` vertices) drop to the
single-machine BFS — exactly what a production driver does to avoid
paying cluster latency for tail fragments.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.bfs import BFSProgram
from repro.algorithms.reference import bfs_reference
from repro.cluster.stats import RunStats
from repro.core.transmission import build_lazy_graph
from repro.errors import AlgorithmError
from repro.graph.digraph import DiGraph
from repro.runtime.registry import get_engine

__all__ = ["strongly_connected_components", "scc_reference"]

# the driver composes many small BFS runs; only the deterministic BSP
# engines make sense for it (classes resolve through the registry)
_ENGINES = ("lazy-block", "powergraph-sync")


def _reachable(
    graph: DiGraph,
    source: int,
    machines: int,
    engine: str,
    local_threshold: int,
    totals: RunStats,
) -> np.ndarray:
    """Boolean reachability from ``source`` (one BFS engine run)."""
    if graph.num_vertices <= local_threshold or machines == 1:
        return np.isfinite(bfs_reference(graph, source))
    pg = build_lazy_graph(graph, machines, seed=0)
    result = get_engine(engine).cls(pg, BFSProgram(source)).run()
    # fold the sub-run's measured costs into the driver totals
    totals.global_syncs += result.stats.global_syncs
    totals.comm_bytes += result.stats.comm_bytes
    totals.comm_messages += result.stats.comm_messages
    totals.supersteps += result.stats.supersteps
    totals.modeled_time_s += result.stats.modeled_time_s
    return np.isfinite(result.values)


def strongly_connected_components(
    graph: DiGraph,
    machines: int = 8,
    engine: str = "lazy-block",
    local_threshold: int = 64,
) -> Tuple[np.ndarray, RunStats]:
    """SCC labels via Forward-Backward-Trim over distributed BFS runs.

    Returns ``(labels, stats)``: ``labels[v]`` is the minimum vertex id
    of v's SCC, and ``stats`` aggregates the engine runs' measured
    costs (modeled time, syncs, traffic).
    """
    if engine not in _ENGINES:
        raise AlgorithmError(
            f"unknown engine {engine!r}; options: {sorted(_ENGINES)}"
        )
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    totals = RunStats()
    if n == 0:
        totals.converged = True
        return labels.astype(np.float64), totals

    worklist: List[np.ndarray] = [np.arange(n, dtype=np.int64)]
    while worklist:
        vertices = worklist.pop()
        if vertices.size == 0:
            continue
        sub, keep = graph.subgraph(vertices)

        # ---- trim: repeatedly peel degree-0 vertices (singleton SCCs)
        while True:
            deg_in = sub.in_degrees()
            deg_out = sub.out_degrees()
            lone = (deg_in == 0) | (deg_out == 0)
            if not lone.any():
                break
            labels[keep[lone]] = keep[lone]
            if lone.all():
                sub = None
                break
            survivors = np.flatnonzero(~lone)
            sub, inner = sub.subgraph(survivors)
            keep = keep[inner]
        if sub is None or sub.num_vertices == 0:
            continue

        # ---- forward/backward reachability from a pivot ----------------
        pivot = 0  # lowest remaining id: makes labels the SCC minima
        fwd = _reachable(sub, pivot, machines, engine, local_threshold, totals)
        bwd = _reachable(
            sub.reverse(), pivot, machines, engine, local_threshold, totals
        )
        scc = fwd & bwd
        labels[keep[scc]] = int(keep[scc].min())

        for mask in (fwd & ~scc, bwd & ~scc, ~fwd & ~bwd):
            part = keep[mask]
            if part.size:
                worklist.append(part)

    totals.converged = bool(np.all(labels >= 0))
    return labels.astype(np.float64), totals


def scc_reference(graph: DiGraph) -> np.ndarray:
    """Tarjan-style SCC labels (iterative), labels = per-SCC minimum id."""
    n = graph.num_vertices
    indptr, eids = graph.out_csr()
    dst = graph.dst
    index = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    comp = np.full(n, -1, dtype=np.int64)
    stack: List[int] = []
    counter = 0

    for root in range(n):
        if index[root] != -1:
            continue
        # iterative Tarjan: (vertex, next-edge-cursor) call frames
        frames: List[Tuple[int, int]] = [(root, 0)]
        while frames:
            v, cursor = frames[-1]
            if cursor == 0:
                index[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            out = eids[indptr[v] : indptr[v + 1]]
            while cursor < out.size:
                w = int(dst[out[cursor]])
                cursor += 1
                if index[w] == -1:
                    frames[-1] = (v, cursor)
                    frames.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            frames.pop()
            if low[v] == index[v]:
                members = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    members.append(w)
                    if w == v:
                        break
                label = min(members)
                for w in members:
                    comp[w] = label
            if frames:
                parent = frames[-1][0]
                low[parent] = min(low[parent], low[v])
    return comp.astype(np.float64)
