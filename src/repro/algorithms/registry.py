"""Name-based construction of the evaluation programs.

The bench harness and examples refer to algorithms by the paper's names
(``kcore``, ``pagerank``, ``sssp``, ``cc``); this registry maps those to
program instances with per-run parameters.
"""

from __future__ import annotations

from typing import Tuple

from repro.algorithms.bfs import BFSProgram
from repro.algorithms.cc import ConnectedComponentsProgram
from repro.algorithms.kcore import KCoreProgram
from repro.algorithms.msbfs import MultiSourceBFSProgram
from repro.algorithms.pagerank import PageRankDeltaProgram
from repro.algorithms.ppr import PersonalizedPageRankProgram
from repro.algorithms.sssp import SSSPProgram
from repro.api.vertex_program import DeltaProgram
from repro.errors import AlgorithmError

__all__ = ["make_program", "program_names"]

_FACTORIES = {
    "pagerank": PageRankDeltaProgram,
    "ppr": PersonalizedPageRankProgram,
    "sssp": SSSPProgram,
    "cc": ConnectedComponentsProgram,
    "kcore": KCoreProgram,
    "bfs": BFSProgram,
    "msbfs": MultiSourceBFSProgram,
}


def program_names() -> Tuple[str, ...]:
    """Registered algorithm names."""
    return tuple(sorted(_FACTORIES))


def make_program(name: str, **kwargs) -> DeltaProgram:
    """Instantiate a program by name; kwargs go to its constructor.

    >>> make_program("kcore", k=3).k
    3
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; known: {', '.join(program_names())}"
        ) from None
    return factory(**kwargs)
