"""Multi-source BFS: hop distance to the *nearest* of a source set.

The batching primitive behind the serving layer
(:mod:`repro.serve`): N compatible single-source BFS point queries
fuse into one ``msbfs`` run over the union of their sources — one
delta sweep instead of N — because min-distance-to-a-set is itself a
MIN-monoid delta program. With a single source the program degenerates
to :class:`~repro.algorithms.bfs.BFSProgram` exactly (bit-identical
values), which the serving tests pin.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.api.vertex_program import DeltaProgram, MIN_ALGEBRA
from repro.errors import AlgorithmError
from repro.partition.partitioned_graph import MachineGraph

__all__ = ["MultiSourceBFSProgram"]


class MultiSourceBFSProgram(DeltaProgram):
    """Hop distance to the nearest source (∞ for unreachable vertices)."""

    name = "msbfs"
    algebra = MIN_ALGEBRA
    delta_bytes = 16
    requires_symmetric = False
    needs_weights = False
    supports_warm_start = True

    def __init__(self, sources: Iterable[int] = (0,)) -> None:
        srcs = np.unique(np.asarray(list(sources), dtype=np.int64))
        if srcs.size == 0:
            raise AlgorithmError("msbfs needs at least one source")
        if srcs.min() < 0:
            raise AlgorithmError(
                f"sources must be >= 0, got {int(srcs.min())}"
            )
        self.sources = srcs

    def make_state(self, mg: MachineGraph) -> Dict[str, np.ndarray]:
        level = np.full(mg.num_local_vertices, np.inf, dtype=np.float64)
        level[np.isin(mg.vertices, self.sources)] = 0.0
        return {"vdata": level}

    def initial_scatter(
        self, mg: MachineGraph, state: Dict[str, np.ndarray]
    ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        active = np.isin(mg.vertices, self.sources)
        return np.where(active, 0.0, np.inf), active

    def apply(
        self,
        mg: MachineGraph,
        state: Dict[str, np.ndarray],
        idx: np.ndarray,
        accum: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        level = state["vdata"]
        improved = accum < level[idx]
        level[idx] = np.minimum(level[idx], accum)
        return level[idx], improved

    def edge_message(
        self,
        mg: MachineGraph,
        edge_sel: np.ndarray,
        delta_per_edge: np.ndarray,
    ) -> np.ndarray:
        return delta_per_edge + 1.0

    def edge_transform(self, mg: MachineGraph):
        return ("add", 1.0)
