"""k-core decomposition (paper Fig 1a) as a delta program.

A vertex's ``core`` starts at its degree and is decremented by one for
every incident edge whose other endpoint is deleted. When ``core``
drops below K the vertex is deleted (``core`` clamps to 0) and announces
the deletion — the value 1 — to every neighbour, exactly the paper's
iterative equations (1)–(2). The fixpoint's surviving subgraph is the
k-core.

Laziness is safe because deletion is *monotone*: a replica's local view
folds a subset of the true decrement multiset, so ``core_local ≥
core_global``; if the local view crosses below K the global view has
too, and firing early is always sound (this is the paper's Fig 1(c)
walkthrough). The algebra is (ℕ, +), invertible, so mirrors-to-master
coherency uses ``Inverse``.

``requires_symmetric``: k-core is defined on undirected graphs; on the
symmetrized input each vertex's global out-degree equals its undirected
degree, which is what ``make_state`` initializes ``core`` from.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.api.vertex_program import DeltaProgram, SUM_ALGEBRA
from repro.errors import AlgorithmError
from repro.partition.partitioned_graph import MachineGraph

__all__ = ["KCoreProgram"]


class KCoreProgram(DeltaProgram):
    """Iterative peeling to the ``k``-core."""

    name = "kcore"
    algebra = SUM_ALGEBRA
    delta_bytes = 16
    requires_symmetric = True
    needs_weights = False

    def __init__(self, k: int = 3) -> None:
        if k < 1:
            raise AlgorithmError(f"k must be >= 1, got {k}")
        self.k = k

    # ------------------------------------------------------------------
    def make_state(self, mg: MachineGraph) -> Dict[str, np.ndarray]:
        # symmetrized input: global out-degree == undirected degree, so
        # every replica initializes to the same (global) core value
        return {
            "vdata": mg.out_deg_global.astype(np.float64).copy(),
            "deleted": np.zeros(mg.num_local_vertices, dtype=bool),
        }

    def initial_scatter(
        self, mg: MachineGraph, state: Dict[str, np.ndarray]
    ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        # bootstrap: every vertex runs one Apply with an empty accum so
        # under-degree vertices delete themselves in round one
        active = np.ones(mg.num_local_vertices, dtype=bool)
        return None, active

    def apply(
        self,
        mg: MachineGraph,
        state: Dict[str, np.ndarray],
        idx: np.ndarray,
        accum: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        core = state["vdata"]
        deleted = state["deleted"]
        already_gone = deleted[idx]
        core[idx] -= np.where(already_gone, 0.0, accum)
        newly_dead = ~already_gone & (core[idx] < self.k)
        if np.any(newly_dead):
            sel = idx[newly_dead]
            deleted[sel] = True
            core[sel] = 0.0
        delta_out = np.ones(idx.size, dtype=np.float64)
        return delta_out, newly_dead

    def edge_message(
        self,
        mg: MachineGraph,
        edge_sel: np.ndarray,
        delta_per_edge: np.ndarray,
    ) -> np.ndarray:
        return delta_per_edge

    def edge_transform(self, mg: MachineGraph):
        return ("identity", None)
