"""PageRank-Delta (paper Fig 3) as a push-style delta program.

Standard PageRank,

    PR(i) = 0.15 + 0.85 · Σ_{j→i} PR(j) / outDeg(j),

re-expressed incrementally: each vertex holds its rank and a *pending*
accumulated rank change; when the pending change exceeds the tolerance
it is pushed to out-neighbours as ``Δ/outDeg`` (the paper's ``Scatter``
condition ``|Δ| > tol``). Every vertex starts at rank 0.15 with one unit
of pending mass, reproducing the paper's initialization
``PR^(1)_i = 0.15 + 0.85·Σ_{j→i} 1/outDeg(j)``.

The delta algebra is (ℝ, +), which has an inverse, so mirrors-to-master
coherency uses the ``Inverse`` path.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.api.vertex_program import DeltaProgram, SUM_ALGEBRA
from repro.errors import AlgorithmError
from repro.partition.partitioned_graph import MachineGraph

__all__ = ["PageRankDeltaProgram"]


class PageRankDeltaProgram(DeltaProgram):
    """PageRank via delta propagation.

    Parameters
    ----------
    damping:
        Damping factor (paper uses 0.85).
    tolerance:
        A vertex scatters once its pending rank change exceeds this;
        the run converges when no vertex fires. The converged ranks
        match the exact fixpoint within ``O(tolerance)`` per vertex.
    """

    name = "pagerank"
    algebra = SUM_ALGEBRA
    delta_bytes = 16
    requires_symmetric = False
    needs_weights = False
    supports_warm_start = True

    def __init__(self, damping: float = 0.85, tolerance: float = 1e-3) -> None:
        if not 0.0 < damping < 1.0:
            raise AlgorithmError(f"damping must be in (0, 1), got {damping}")
        if tolerance <= 0.0:
            raise AlgorithmError(f"tolerance must be > 0, got {tolerance}")
        self.damping = damping
        self.tolerance = tolerance

    # ------------------------------------------------------------------
    def make_state(self, mg: MachineGraph) -> Dict[str, np.ndarray]:
        n = mg.num_local_vertices
        return {
            # every replica starts from the same base rank
            "vdata": np.full(n, 1.0 - self.damping, dtype=np.float64),
            "pending": np.zeros(n, dtype=np.float64),
        }

    def initial_scatter(
        self, mg: MachineGraph, state: Dict[str, np.ndarray]
    ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        # bootstrap delta = the initial rank (1−d): then every vertex's
        # cumulative scattered mass telescopes to exactly its final rank,
        # so the fixpoint is the standard PR equation. (The paper's Fig 3
        # pairs a bootstrap of 1 with a −d initial pending; algebraically
        # equivalent at the fixpoint, but this form also handles vertices
        # that never receive a message.)
        init_delta = np.full(
            mg.num_local_vertices, 1.0 - self.damping, dtype=np.float64
        )
        active = np.ones(mg.num_local_vertices, dtype=bool)
        return init_delta, active

    def apply(
        self,
        mg: MachineGraph,
        state: Dict[str, np.ndarray],
        idx: np.ndarray,
        accum: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        change = self.damping * accum
        state["vdata"][idx] += change
        state["pending"][idx] += change
        pending = state["pending"][idx]
        fire = np.abs(pending) > self.tolerance
        delta_out = np.where(fire, pending, 0.0)
        # the fired mass has been handed to scatter; reset those vertices
        keep = state["pending"][idx]
        state["pending"][idx] = np.where(fire, 0.0, keep)
        return delta_out, fire

    def edge_message(
        self,
        mg: MachineGraph,
        edge_sel: np.ndarray,
        delta_per_edge: np.ndarray,
    ) -> np.ndarray:
        out_deg = mg.out_deg_global[mg.esrc[edge_sel]]
        # vertices with zero out-degree never scatter (no out-edges exist),
        # so out_deg > 0 wherever this is evaluated
        return delta_per_edge / out_deg

    def edge_transform(self, mg: MachineGraph):
        # the divisor edge_message gathers per call, hoisted once per run
        return ("divide", mg.out_deg_global[mg.esrc])
