"""Breadth-first search levels as a delta program (extension algorithm).

Not part of the paper's evaluation quartet, but listed among the
algorithms whose solution depends on a subset of neighbours (§1) —
included as the natural fifth program and used by tests/examples.
Identical structure to SSSP with unit edge weights.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.api.vertex_program import DeltaProgram, MIN_ALGEBRA
from repro.errors import AlgorithmError
from repro.partition.partitioned_graph import MachineGraph

__all__ = ["BFSProgram"]


class BFSProgram(DeltaProgram):
    """Hop distance from ``source`` (∞ for unreachable vertices)."""

    name = "bfs"
    algebra = MIN_ALGEBRA
    delta_bytes = 16
    requires_symmetric = False
    needs_weights = False
    supports_warm_start = True

    def __init__(self, source: int = 0) -> None:
        if source < 0:
            raise AlgorithmError(f"source must be >= 0, got {source}")
        self.source = source

    def make_state(self, mg: MachineGraph) -> Dict[str, np.ndarray]:
        level = np.full(mg.num_local_vertices, np.inf, dtype=np.float64)
        level[mg.vertices == self.source] = 0.0
        return {"vdata": level}

    def initial_scatter(
        self, mg: MachineGraph, state: Dict[str, np.ndarray]
    ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        active = mg.vertices == self.source
        return np.where(active, 0.0, np.inf), active

    def apply(
        self,
        mg: MachineGraph,
        state: Dict[str, np.ndarray],
        idx: np.ndarray,
        accum: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        level = state["vdata"]
        improved = accum < level[idx]
        level[idx] = np.minimum(level[idx], accum)
        return level[idx], improved

    def edge_message(
        self,
        mg: MachineGraph,
        edge_sel: np.ndarray,
        delta_per_edge: np.ndarray,
    ) -> np.ndarray:
        return delta_per_edge + 1.0

    def edge_transform(self, mg: MachineGraph):
        return ("add", 1.0)
