"""Personalized PageRank as a push-style delta program (extension).

The same Fig 3 delta machinery as global PageRank, but teleportation
mass is concentrated on a seed set:

    PPR(i) = (1−d)·1[i ∈ seeds]/|seeds| + d · Σ_{j→i} PPR(j)/outDeg(j).

Only the seeds carry bootstrap mass, so rank flows outward from them —
the standard proximity measure for seeded search / recommendation.
Included as an extension algorithm: it exercises the delta framework
with a *sparse* initial frontier on a sum algebra (global PR starts
dense; SSSP starts sparse but is idempotent), a combination no paper
algorithm covers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.api.vertex_program import DeltaProgram, SUM_ALGEBRA
from repro.errors import AlgorithmError
from repro.partition.partitioned_graph import MachineGraph

__all__ = ["PersonalizedPageRankProgram"]


class PersonalizedPageRankProgram(DeltaProgram):
    """Seeded PageRank via delta propagation.

    Parameters
    ----------
    seeds:
        Non-empty iterable of seed vertex ids (teleport targets).
    damping, tolerance:
        As in :class:`~repro.algorithms.pagerank.PageRankDeltaProgram`.
    """

    name = "ppr"
    algebra = SUM_ALGEBRA
    delta_bytes = 16
    requires_symmetric = False
    needs_weights = False
    supports_warm_start = True

    def __init__(
        self,
        seeds: Iterable[int],
        damping: float = 0.85,
        tolerance: float = 1e-4,
    ) -> None:
        seed_list = sorted(set(int(s) for s in seeds))
        if not seed_list:
            raise AlgorithmError("ppr needs at least one seed vertex")
        if seed_list[0] < 0:
            raise AlgorithmError(f"seed ids must be >= 0, got {seed_list[0]}")
        if not 0.0 < damping < 1.0:
            raise AlgorithmError(f"damping must be in (0, 1), got {damping}")
        if tolerance <= 0.0:
            raise AlgorithmError(f"tolerance must be > 0, got {tolerance}")
        self.seeds = np.asarray(seed_list, dtype=np.int64)
        self.damping = damping
        self.tolerance = tolerance

    # ------------------------------------------------------------------
    def _base_rank(self, mg: MachineGraph) -> np.ndarray:
        base = np.zeros(mg.num_local_vertices)
        base[np.isin(mg.vertices, self.seeds)] = (
            (1.0 - self.damping) / self.seeds.size
        )
        return base

    def make_state(self, mg: MachineGraph) -> Dict[str, np.ndarray]:
        return {
            "vdata": self._base_rank(mg),
            "pending": np.zeros(mg.num_local_vertices),
        }

    def initial_scatter(
        self, mg: MachineGraph, state: Dict[str, np.ndarray]
    ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        # bootstrap delta = the base rank (non-zero only at seeds), so
        # total scattered mass telescopes to each vertex's final rank
        base = self._base_rank(mg)
        return base, base > 0

    def apply(
        self,
        mg: MachineGraph,
        state: Dict[str, np.ndarray],
        idx: np.ndarray,
        accum: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        change = self.damping * accum
        state["vdata"][idx] += change
        state["pending"][idx] += change
        pending = state["pending"][idx]
        fire = np.abs(pending) > self.tolerance
        delta_out = np.where(fire, pending, 0.0)
        state["pending"][idx] = np.where(fire, 0.0, pending)
        return delta_out, fire

    def edge_message(
        self,
        mg: MachineGraph,
        edge_sel: np.ndarray,
        delta_per_edge: np.ndarray,
    ) -> np.ndarray:
        return delta_per_edge / mg.out_deg_global[mg.esrc[edge_sel]]

    def edge_transform(self, mg: MachineGraph):
        # the divisor edge_message gathers per call, hoisted once per run
        return ("divide", mg.out_deg_global[mg.esrc])
