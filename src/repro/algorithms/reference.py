"""Single-machine reference implementations (ground truth for tests).

Each function computes, on the whole un-partitioned graph, the exact
quantity the corresponding :class:`~repro.api.vertex_program.DeltaProgram`
converges to. The engine test-suite's central invariant (paper §3.5) is
that every engine × partitioner × coherency-mode combination reproduces
these values — exactly for the min/peeling algorithms, within tolerance
for PageRank.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.digraph import DiGraph
from repro.kernels import segment_sum

__all__ = [
    "pagerank_reference",
    "ppr_reference",
    "sssp_reference",
    "cc_reference",
    "kcore_reference",
    "bfs_reference",
]


def pagerank_reference(
    graph: DiGraph,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iters: int = 10_000,
) -> np.ndarray:
    """Fixpoint of ``PR(i) = (1−d) + d·Σ_{j→i} PR(j)/outDeg(j)``.

    Matches the delta program's semantics: dangling-vertex mass is *not*
    redistributed (a rank-sink formulation, as in the paper's Fig 3
    program). Iterated to ``tol`` in the max-norm, far tighter than any
    engine tolerance, so this acts as exact ground truth.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0)
    out_deg = graph.out_degrees().astype(np.float64)
    safe_deg = np.where(out_deg > 0, out_deg, 1.0)
    pr = np.full(n, 1.0 - damping)
    src, dst = graph.src, graph.dst
    for _ in range(max_iters):
        contrib = pr / safe_deg
        # buffered segment-sum fold (repro.kernels) instead of np.add.at
        nxt = (1.0 - damping) + segment_sum(dst, damping * contrib[src], n)
        if np.max(np.abs(nxt - pr)) < tol:
            return nxt
        pr = nxt
    raise AlgorithmError("pagerank_reference failed to converge")


def ppr_reference(
    graph: DiGraph,
    seeds,
    damping: float = 0.85,
    tol: float = 1e-12,
    max_iters: int = 100_000,
) -> np.ndarray:
    """Fixpoint of seeded PageRank (teleport mass split over ``seeds``)."""
    n = graph.num_vertices
    seeds = np.asarray(sorted(set(int(s) for s in seeds)), dtype=np.int64)
    if seeds.size == 0:
        raise AlgorithmError("ppr_reference needs at least one seed")
    base = np.zeros(n)
    base[seeds] = (1.0 - damping) / seeds.size
    out_deg = graph.out_degrees().astype(np.float64)
    safe_deg = np.where(out_deg > 0, out_deg, 1.0)
    pr = base.copy()
    src, dst = graph.src, graph.dst
    for _ in range(max_iters):
        contrib = pr / safe_deg
        # buffered segment-sum fold (repro.kernels) instead of np.add.at
        nxt = base + segment_sum(dst, damping * contrib[src], n)
        if np.max(np.abs(nxt - pr)) < tol:
            return nxt
        pr = nxt
    raise AlgorithmError("ppr_reference failed to converge")


def sssp_reference(graph: DiGraph, source: int = 0) -> np.ndarray:
    """Dijkstra distances from ``source`` (∞ when unreachable)."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise AlgorithmError(f"source {source} out of range [0, {n})")
    w = graph.edge_weights()
    if w.size and w.min() < 0:
        raise AlgorithmError("sssp_reference requires non-negative weights")
    indptr, eids = graph.out_csr()
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap = [(0.0, source)]
    dst = graph.dst
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for e in eids[indptr[v] : indptr[v + 1]]:
            u = dst[e]
            nd = d + w[e]
            if nd < dist[u]:
                dist[u] = nd
                heapq.heappush(heap, (nd, int(u)))
    return dist


def cc_reference(graph: DiGraph) -> np.ndarray:
    """Weakly-connected component labels (minimum vertex id per component)."""
    parent = np.arange(graph.num_vertices, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
        ru, rv = find(u), find(v)
        if ru != rv:
            # union by smaller label so roots stay component minima
            if ru < rv:
                parent[rv] = ru
            else:
                parent[ru] = rv
    return np.array([find(v) for v in range(graph.num_vertices)], dtype=np.float64)


def kcore_reference(graph: DiGraph, k: int) -> np.ndarray:
    """Peeling: survivors' degree within the k-core subgraph, 0 otherwise.

    The graph is treated as undirected (parallel/self edges ignored),
    matching the symmetrized input the k-core program runs on — on that
    input a vertex's undirected degree equals its out-degree.
    """
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    u, v = graph.to_undirected_edges()
    n = graph.num_vertices
    deg = np.bincount(u, minlength=n) + np.bincount(v, minlength=n)
    deg = deg.astype(np.int64)
    alive = np.ones(n, dtype=bool)
    # adjacency in CSR over the undirected edge set
    src = np.concatenate([u, v])
    dst = np.concatenate([v, u])
    order = np.argsort(src, kind="stable")
    src_s, dst_s = src[order], dst[order]
    indptr = np.searchsorted(src_s, np.arange(n + 1))
    frontier = list(np.flatnonzero(alive & (deg < k)))
    for x in frontier:
        alive[x] = False
    while frontier:
        x = frontier.pop()
        for y in dst_s[indptr[x] : indptr[x + 1]].tolist():
            if alive[y]:
                deg[y] -= 1
                if deg[y] < k:
                    alive[y] = False
                    frontier.append(y)
    core = np.where(alive, deg, 0).astype(np.float64)
    return core


def bfs_reference(graph: DiGraph, source: int = 0) -> np.ndarray:
    """Hop levels from ``source`` along directed edges (∞ unreachable)."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise AlgorithmError(f"source {source} out of range [0, {n})")
    level = np.full(n, np.inf)
    level[source] = 0.0
    indptr, eids = graph.out_csr()
    dst = graph.dst
    frontier = [source]
    depth = 0
    while frontier:
        depth += 1
        nxt = []
        for v in frontier:
            for e in eids[indptr[v] : indptr[v + 1]].tolist():
                u = int(dst[e])
                if level[u] == np.inf:
                    level[u] = depth
                    nxt.append(u)
        frontier = nxt
    return level
