"""Single-source shortest paths as a push-style delta program.

Classic delta relaxation: a vertex holds its best-known distance; when
it improves, the new distance plus each out-edge's weight is pushed to
the neighbours. The delta algebra is (ℝ∪{∞}, min) — idempotent, so the
mirrors-to-master coherency path needs no ``Inverse`` (re-folding a
replica's own contribution is a no-op).

Monotonicity makes SSSP the paper's best case for laziness: a replica
can relax through many local hops between coherency points, and the
road-graph experiments (huge diameter, tiny frontier) are dominated by
exactly this effect.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.api.vertex_program import DeltaProgram, MIN_ALGEBRA
from repro.errors import AlgorithmError
from repro.partition.partitioned_graph import MachineGraph

__all__ = ["SSSPProgram"]


class SSSPProgram(DeltaProgram):
    """Shortest paths from ``source`` over non-negative edge weights."""

    name = "sssp"
    algebra = MIN_ALGEBRA
    delta_bytes = 16
    requires_symmetric = False
    needs_weights = True
    supports_warm_start = True

    def __init__(self, source: int = 0) -> None:
        if source < 0:
            raise AlgorithmError(f"source must be >= 0, got {source}")
        self.source = source

    # ------------------------------------------------------------------
    def make_state(self, mg: MachineGraph) -> Dict[str, np.ndarray]:
        dist = np.full(mg.num_local_vertices, np.inf, dtype=np.float64)
        local_src = np.flatnonzero(mg.vertices == self.source)
        dist[local_src] = 0.0
        return {"vdata": dist}

    def initial_scatter(
        self, mg: MachineGraph, state: Dict[str, np.ndarray]
    ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        active = mg.vertices == self.source
        delta = np.where(active, 0.0, np.inf)
        return delta, active

    def apply(
        self,
        mg: MachineGraph,
        state: Dict[str, np.ndarray],
        idx: np.ndarray,
        accum: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        dist = state["vdata"]
        improved = accum < dist[idx]
        dist[idx] = np.minimum(dist[idx], accum)
        # out-delta is the (new) distance; only improved vertices push
        return dist[idx], improved

    def edge_message(
        self,
        mg: MachineGraph,
        edge_sel: np.ndarray,
        delta_per_edge: np.ndarray,
    ) -> np.ndarray:
        return delta_per_edge + mg.eweight[edge_sel]

    def edge_transform(self, mg: MachineGraph):
        return ("add", mg.eweight)
