"""Connected components (label propagation) as a delta program.

Every vertex starts labelled with its own id and repeatedly adopts the
minimum label heard from a neighbour; at the fixpoint all vertices of a
(weakly) connected component share the component's minimum vertex id.
The algebra is (ℕ∪{∞}, min): idempotent, no ``Inverse`` needed.

The program assumes undirected semantics (``requires_symmetric``): the
harness symmetrizes directed inputs first, matching how PowerGraph's CC
toolkit treats SNAP edge lists.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.api.vertex_program import DeltaProgram, MIN_ALGEBRA
from repro.partition.partitioned_graph import MachineGraph

__all__ = ["ConnectedComponentsProgram"]


class ConnectedComponentsProgram(DeltaProgram):
    """Minimum-label propagation over an undirected graph."""

    name = "cc"
    algebra = MIN_ALGEBRA
    delta_bytes = 16
    requires_symmetric = True
    needs_weights = False
    supports_warm_start = True

    # ------------------------------------------------------------------
    def make_state(self, mg: MachineGraph) -> Dict[str, np.ndarray]:
        # label with the global vertex id: identical on every replica
        return {"vdata": mg.vertices.astype(np.float64)}

    def initial_scatter(
        self, mg: MachineGraph, state: Dict[str, np.ndarray]
    ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        active = np.ones(mg.num_local_vertices, dtype=bool)
        return state["vdata"].copy(), active

    def apply(
        self,
        mg: MachineGraph,
        state: Dict[str, np.ndarray],
        idx: np.ndarray,
        accum: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        labels = state["vdata"]
        improved = accum < labels[idx]
        labels[idx] = np.minimum(labels[idx], accum)
        return labels[idx], improved

    def edge_message(
        self,
        mg: MachineGraph,
        edge_sel: np.ndarray,
        delta_per_edge: np.ndarray,
    ) -> np.ndarray:
        return delta_per_edge

    def edge_transform(self, mg: MachineGraph):
        return ("identity", None)
