"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors (``TypeError`` etc. are still raised
directly for API misuse that indicates a bug in the caller).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed or inconsistent graph data."""


class GraphFormatError(GraphError):
    """Raised when a graph file cannot be parsed."""


class PartitionError(ReproError):
    """Raised when a partitioning request is invalid or inconsistent."""


class EngineError(ReproError):
    """Raised when an engine is configured or driven incorrectly."""


class ConvergenceError(EngineError):
    """Raised when an algorithm fails to converge within its budget."""


class BackendError(EngineError):
    """Raised when an execution backend (worker pool) fails or misbehaves."""


class AlgorithmError(ReproError):
    """Raised for invalid vertex-program definitions or parameters."""


class DatasetError(ReproError):
    """Raised when a named dataset is unknown or cannot be built."""


class ConfigError(ReproError):
    """Raised when an experiment/benchmark configuration is invalid."""
