"""Dynamic-graph mutations: validated batches and structural patches.

A :class:`MutationBatch` describes one atomic change to a graph — vertex
additions, vertex removals (drop every incident edge; the id slot stays),
directed-edge removals and directed-edge additions. Batches are built
incrementally, compose with :meth:`MutationBatch.merge`, round-trip
through JSON (:meth:`to_dict` / :meth:`from_dict` — the wire format the
``repro mutate`` CLI and the serving layer's ``mutate`` verb speak), and
are validated against the graph they are applied to.

:func:`apply_batch` materializes the patched graph with a deliberate
edge layout: **every kept edge first, in its original relative order,
then the added edges**. The returned :class:`EdgeDiff` is therefore a
complete old-id ↔ new-id correspondence for free, which is what lets the
partition layer (:mod:`repro.partition.dynamic`) carry edge→machine
assignments across a mutation instead of repartitioning from scratch.

:func:`symmetrized_patch` lifts a base-graph change onto a cached
*symmetrized* prepared graph (what ``requires_symmetric`` programs run
on) without re-running the full symmetrization: only unordered pairs
whose multiplicity crossed zero — or whose min-weight changed — turn
into removed/added edge pairs; everything else keeps its edge id slot.

Removal semantics: ``remove_edge(u, v)`` removes *all* parallel copies
of the directed edge ``u→v`` present before the batch; additions are
appended after removals, so remove+add of the same pair in one batch is
"replace". Vertex ids are never renumbered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

__all__ = ["MutationBatch", "EdgeDiff", "apply_batch", "symmetrized_patch"]


@dataclass(frozen=True)
class EdgeDiff:
    """Old-id ↔ new-id correspondence produced by a graph patch.

    The patched graph's edge array is ``old[kept_eids] ++ added``: new
    edge ``e < num_kept`` is old edge ``kept_eids[e]``; new edges
    ``num_kept .. num_kept+num_added-1`` are the additions in batch
    order.
    """

    kept_eids: np.ndarray  # old edge ids kept, ascending (original order)
    removed_eids: np.ndarray  # old edge ids dropped, ascending
    added_src: np.ndarray  # (num_added,) global source ids
    added_dst: np.ndarray  # (num_added,) global target ids
    num_vertices_before: int
    num_vertices_after: int

    @property
    def num_kept(self) -> int:
        return int(self.kept_eids.size)

    @property
    def num_removed(self) -> int:
        return int(self.removed_eids.size)

    @property
    def num_added(self) -> int:
        return int(self.added_src.size)

    @property
    def added_eids(self) -> np.ndarray:
        """New-graph edge ids of the added edges."""
        return np.arange(
            self.num_kept, self.num_kept + self.num_added, dtype=np.int64
        )

    def is_identity(self) -> bool:
        """True when the patch changed nothing structural."""
        return (
            self.num_removed == 0
            and self.num_added == 0
            and self.num_vertices_before == self.num_vertices_after
        )

    def summary(self) -> str:
        return (
            f"EdgeDiff(kept={self.num_kept}, removed={self.num_removed}, "
            f"added={self.num_added}, vertices="
            f"{self.num_vertices_before}->{self.num_vertices_after})"
        )


class MutationBatch:
    """A validated, composable set of graph mutations.

    Build incrementally (every mutator returns ``self`` for chaining)::

        batch = (MutationBatch()
                 .add_vertices(2)
                 .add_edge(0, 5, weight=2.5)
                 .remove_edge(3, 4)
                 .remove_vertex(7))

    Nothing is checked until the batch meets a graph
    (:meth:`validate` / :func:`apply_batch`); a batch is a pure
    description and can target any graph it is consistent with.
    """

    def __init__(self) -> None:
        self._new_vertices = 0
        self._add: List[Tuple[int, int]] = []
        self._add_weights: List[Optional[float]] = []
        self._remove: List[Tuple[int, int]] = []
        self._remove_vertices: List[int] = []

    # -- builders ------------------------------------------------------
    def add_vertices(self, count: int) -> "MutationBatch":
        """Grow the vertex set by ``count`` fresh ids (appended at the end)."""
        if count < 0:
            raise GraphError(f"add_vertices count must be >= 0, got {count}")
        self._new_vertices += int(count)
        return self

    def add_edge(
        self, u: int, v: int, weight: Optional[float] = None
    ) -> "MutationBatch":
        """Append a directed edge ``u -> v`` (optionally weighted)."""
        self._add.append((int(u), int(v)))
        self._add_weights.append(None if weight is None else float(weight))
        return self

    def add_edges(
        self, pairs: Sequence[Tuple[int, int]], weights=None
    ) -> "MutationBatch":
        """Append many directed edges; ``weights`` aligns with ``pairs``."""
        pairs = list(pairs)
        if weights is not None and len(weights) != len(pairs):
            raise GraphError(
                f"weights must align with pairs "
                f"({len(weights)} != {len(pairs)})"
            )
        for i, (u, v) in enumerate(pairs):
            self.add_edge(u, v, None if weights is None else weights[i])
        return self

    def remove_edge(self, u: int, v: int) -> "MutationBatch":
        """Remove every pre-batch copy of the directed edge ``u -> v``."""
        self._remove.append((int(u), int(v)))
        return self

    def remove_edges(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> "MutationBatch":
        for u, v in pairs:
            self.remove_edge(u, v)
        return self

    def remove_vertex(self, v: int) -> "MutationBatch":
        """Isolate vertex ``v``: drop all incident edges (the id stays)."""
        self._remove_vertices.append(int(v))
        return self

    def remove_vertices(self, vs: Sequence[int]) -> "MutationBatch":
        for v in vs:
            self.remove_vertex(v)
        return self

    def explicit_weights(self) -> List[Optional[float]]:
        """Per-added-edge explicit weights (``None`` where unspecified).

        Aligned with the batch's addition order; lets a caller that
        synthesizes weights (session graphs with attached uniform
        weights) honor the weights a batch *did* spell out.
        """
        return list(self._add_weights)

    def without_weights(self) -> "MutationBatch":
        """Copy of the batch with every added-edge weight dropped.

        Used when one logical batch targets several prepared-graph
        variants: weights apply to the weighted variants and are
        stripped for the unweighted ones.
        """
        out = MutationBatch()
        out._new_vertices = self._new_vertices
        out._add = list(self._add)
        out._add_weights = [None] * len(self._add)
        out._remove = list(self._remove)
        out._remove_vertices = list(self._remove_vertices)
        return out

    def merge(self, other: "MutationBatch") -> "MutationBatch":
        """New batch applying ``self`` then ``other`` as one atomic change.

        Both batches must target the *same* pre-mutation graph: the
        merged removals still act on the pre-batch edge set, and
        ``other``'s vertex ids are not shifted by ``self``'s additions.
        """
        out = MutationBatch()
        out._new_vertices = self._new_vertices + other._new_vertices
        out._add = self._add + other._add
        out._add_weights = self._add_weights + other._add_weights
        out._remove = self._remove + other._remove
        out._remove_vertices = self._remove_vertices + other._remove_vertices
        return out

    # -- introspection -------------------------------------------------
    @property
    def num_added_edges(self) -> int:
        return len(self._add)

    @property
    def num_removed_edges(self) -> int:
        return len(self._remove)

    @property
    def num_added_vertices(self) -> int:
        return self._new_vertices

    @property
    def num_removed_vertices(self) -> int:
        return len(self._remove_vertices)

    def is_empty(self) -> bool:
        return not (
            self._new_vertices
            or self._add
            or self._remove
            or self._remove_vertices
        )

    def __len__(self) -> int:
        """Total mutation count (edges + vertices, both directions)."""
        return (
            len(self._add)
            + len(self._remove)
            + len(self._remove_vertices)
            + self._new_vertices
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MutationBatch(+V={self._new_vertices}, "
            f"-V={len(self._remove_vertices)}, +E={len(self._add)}, "
            f"-E={len(self._remove)})"
        )

    # -- wire format ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (the CLI/serve wire format)."""
        out: Dict[str, Any] = {}
        if self._new_vertices:
            out["add_vertices"] = self._new_vertices
        if self._add:
            out["add_edges"] = [
                [u, v] if w is None else [u, v, w]
                for (u, v), w in zip(self._add, self._add_weights)
            ]
        if self._remove:
            out["remove_edges"] = [[u, v] for u, v in self._remove]
        if self._remove_vertices:
            out["remove_vertices"] = list(self._remove_vertices)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MutationBatch":
        """Parse the :meth:`to_dict` wire format (strict on unknown keys)."""
        if not isinstance(data, dict):
            raise GraphError(
                f"mutation batch must be a JSON object, got {type(data).__name__}"
            )
        known = {"add_vertices", "add_edges", "remove_edges", "remove_vertices"}
        unknown = set(data) - known
        if unknown:
            raise GraphError(
                f"unknown mutation batch keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        batch = cls()
        batch.add_vertices(int(data.get("add_vertices", 0)))
        for entry in data.get("add_edges", ()):
            if len(entry) == 2:
                batch.add_edge(entry[0], entry[1])
            elif len(entry) == 3:
                batch.add_edge(entry[0], entry[1], weight=entry[2])
            else:
                raise GraphError(
                    f"add_edges entries must be [u, v] or [u, v, w], "
                    f"got {entry!r}"
                )
        for entry in data.get("remove_edges", ()):
            if len(entry) != 2:
                raise GraphError(
                    f"remove_edges entries must be [u, v], got {entry!r}"
                )
            batch.remove_edge(entry[0], entry[1])
        batch.remove_vertices(
            [int(v) for v in data.get("remove_vertices", ())]
        )
        return batch

    # -- validation ----------------------------------------------------
    def validate(self, graph: DiGraph) -> None:
        """Check the batch is applicable to ``graph`` (raises GraphError)."""
        n = graph.num_vertices
        n_after = n + self._new_vertices
        for u, v in self._add:
            if not (0 <= u < n_after and 0 <= v < n_after):
                raise GraphError(
                    f"add_edge({u}, {v}): endpoints must lie in "
                    f"[0, {n_after}) (graph has {n} vertices, batch adds "
                    f"{self._new_vertices})"
                )
        for v in self._remove_vertices:
            if not (0 <= v < n):
                raise GraphError(
                    f"remove_vertex({v}): id must lie in [0, {n})"
                )
        if self._remove:
            pairs = np.asarray(self._remove, dtype=np.int64)
            if pairs.size and (
                pairs.min() < 0 or pairs.max() >= n
            ):
                bad = [
                    (u, v)
                    for u, v in self._remove
                    if not (0 <= u < n and 0 <= v < n)
                ]
                raise GraphError(
                    f"remove_edge endpoints out of [0, {n}): {bad[:5]}"
                )
            keys = pairs[:, 0] * np.int64(n) + pairs[:, 1]
            edge_keys = graph.src * np.int64(n) + graph.dst
            present = np.isin(keys, edge_keys)
            if not present.all():
                missing = [
                    self._remove[i]
                    for i in np.flatnonzero(~present)[:5].tolist()
                ]
                raise GraphError(
                    f"remove_edge targets not present in the graph: "
                    f"{missing}"
                )
        weighted_adds = any(w is not None for w in self._add_weights)
        if weighted_adds and graph.weights is None:
            raise GraphError(
                "batch carries edge weights but the graph is unweighted"
            )

    def added_weights_for(self, graph: DiGraph) -> Optional[np.ndarray]:
        """Weights for the added edges against ``graph``'s weightedness.

        Weighted graph: explicit batch weights, 1.0 where unspecified.
        Unweighted graph: ``None`` (explicit weights are a validation
        error there).
        """
        if graph.weights is None:
            return None
        return np.array(
            [1.0 if w is None else w for w in self._add_weights],
            dtype=np.float64,
        )


def apply_batch(
    graph: DiGraph, batch: MutationBatch
) -> Tuple[DiGraph, EdgeDiff]:
    """Apply ``batch`` to ``graph``; return the patched graph + edge diff.

    The result's edge order is ``kept-in-original-order ++ added`` (see
    :class:`EdgeDiff`), its name is preserved, and the input graph is
    untouched.
    """
    batch.validate(graph)
    n = graph.num_vertices
    n_after = n + batch.num_added_vertices

    removed = np.zeros(graph.num_edges, dtype=bool)
    if batch._remove_vertices:
        rv = np.unique(
            np.asarray(batch._remove_vertices, dtype=np.int64)
        )
        removed |= np.isin(graph.src, rv) | np.isin(graph.dst, rv)
    if batch._remove:
        pairs = np.asarray(batch._remove, dtype=np.int64)
        keys = pairs[:, 0] * np.int64(n) + pairs[:, 1]
        edge_keys = graph.src * np.int64(n) + graph.dst
        removed |= np.isin(edge_keys, keys)

    kept = np.flatnonzero(~removed).astype(np.int64)
    removed_ids = np.flatnonzero(removed).astype(np.int64)
    if batch._add:
        add_arr = np.asarray(batch._add, dtype=np.int64)
        added_src, added_dst = add_arr[:, 0], add_arr[:, 1]
    else:
        added_src = added_dst = np.empty(0, dtype=np.int64)

    new_src = np.concatenate([graph.src[kept], added_src])
    new_dst = np.concatenate([graph.dst[kept], added_dst])
    weights = None
    if graph.weights is not None:
        add_w = batch.added_weights_for(graph)
        weights = np.concatenate([graph.weights[kept], add_w])
    new_graph = DiGraph(n_after, new_src, new_dst, weights, name=graph.name)
    diff = EdgeDiff(
        kept_eids=kept,
        removed_eids=removed_ids,
        added_src=added_src.copy(),
        added_dst=added_dst.copy(),
        num_vertices_before=n,
        num_vertices_after=n_after,
    )
    return new_graph, diff


# ----------------------------------------------------------------------
def _pair_table(
    graph: DiGraph, scale: np.int64
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Unordered-pair keys (u<v, self-loops dropped) + min weight per pair.

    Returns ``(sorted unique keys, min_weights aligned with keys)``;
    weights entry is ``None`` for unweighted graphs.
    """
    u = np.minimum(graph.src, graph.dst)
    v = np.maximum(graph.src, graph.dst)
    keep = u != v
    keys = u[keep] * scale + v[keep]
    if keys.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, (np.empty(0) if graph.weights is not None else None)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    uniq, starts = np.unique(sorted_keys, return_index=True)
    if graph.weights is None:
        return uniq, None
    sorted_w = graph.weights[keep][order]
    return uniq, np.minimum.reduceat(sorted_w, starts)


def symmetrized_patch(
    old_sym: DiGraph,
    old_base: DiGraph,
    new_base: DiGraph,
    fill_weight: float = 1.0,
) -> Tuple[DiGraph, EdgeDiff]:
    """Lift a base-graph change onto its cached symmetrized graph.

    ``old_sym`` must be (structurally) ``old_base.symmetrized()``; the
    result is structurally ``new_base.symmetrized()`` but laid out as
    kept-``old_sym``-edges ++ added, so the accompanying
    :class:`EdgeDiff` lets the partition layer patch instead of rebuild.

    Only unordered pairs whose base multiplicity crossed zero, or (on
    weighted bases) whose per-pair min weight changed, are treated as
    removed/added — weight changes replace both directions so the diff
    stays a pure remove+add story.

    When ``old_sym`` carries weights the bases do not have (synthetic
    weights attached after symmetrization), kept edges keep their
    weights and added edges get ``fill_weight``; the caller owns
    overwriting ``weights[diff.num_kept:]`` with real values.
    """
    n_after = new_base.num_vertices
    scale = np.int64(max(n_after, 1))
    old_keys, old_w = _pair_table(old_base, scale)
    new_keys, new_w = _pair_table(new_base, scale)

    gone = ~np.isin(old_keys, new_keys)
    born = ~np.isin(new_keys, old_keys)
    removed_keys = old_keys[gone]
    added_keys = new_keys[born]
    if old_w is not None and new_w is not None:
        # surviving pairs whose min base weight moved: replace both
        # directions (remove + re-add at the new weight)
        old_surv = ~gone
        pos = np.searchsorted(new_keys, old_keys[old_surv])
        changed = old_keys[old_surv][old_w[old_surv] != new_w[pos]]
        removed_keys = np.union1d(removed_keys, changed)
        added_keys = np.union1d(added_keys, changed)

    sym_keys = (
        np.minimum(old_sym.src, old_sym.dst) * scale
        + np.maximum(old_sym.src, old_sym.dst)
    )
    removed_mask = np.isin(sym_keys, removed_keys)
    kept = np.flatnonzero(~removed_mask).astype(np.int64)
    removed_ids = np.flatnonzero(removed_mask).astype(np.int64)

    add_u = (added_keys // scale).astype(np.int64)
    add_v = (added_keys % scale).astype(np.int64)
    added_src = np.concatenate([add_u, add_v])
    added_dst = np.concatenate([add_v, add_u])

    new_src = np.concatenate([old_sym.src[kept], added_src])
    new_dst = np.concatenate([old_sym.dst[kept], added_dst])
    weights = None
    if old_sym.weights is not None:
        if new_w is not None:
            pos = np.searchsorted(new_keys, added_keys)
            half = new_w[pos]
        else:
            half = np.full(added_keys.size, float(fill_weight))
        weights = np.concatenate(
            [old_sym.weights[kept], half, half]
        )
    new_sym = DiGraph(
        n_after, new_src, new_dst, weights, name=old_sym.name
    )
    diff = EdgeDiff(
        kept_eids=kept,
        removed_eids=removed_ids,
        added_src=added_src,
        added_dst=added_dst,
        num_vertices_before=old_sym.num_vertices,
        num_vertices_after=n_after,
    )
    return new_sym, diff
