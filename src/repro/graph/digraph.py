"""Compact directed graph with CSR adjacency in both directions.

Design notes
------------
The engines in this library sweep edges in bulk with vectorized NumPy
kernels (``np.add.at`` / ``np.minimum.at`` style scatter-reductions), so
the graph representation is column-oriented arrays rather than an object
per vertex:

* ``src[e]``, ``dst[e]`` — endpoint arrays indexed by *edge id* (the order
  edges were supplied in). Edge ids are stable: partitioners and the edge
  splitter refer to edges by id.
* Out-CSR and in-CSR adjacency are built lazily on first use and cached;
  both store *edge ids* in their column array, so per-edge attributes
  (weights, transmission mode) can be gathered through either direction
  without duplication.

Vertices are ``0..num_vertices-1``. Self-loops are permitted (graph
algorithms in the paper's evaluation treat them like any edge); parallel
input edges are permitted at this layer (deduplication is a builder/loader
option) — the *parallel-edges* of the paper (§3.3) are a partition-level
concept layered on top and are unrelated to multigraph input edges.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import GraphError

__all__ = ["DiGraph"]


def _as_edge_array(arr, name: str) -> np.ndarray:
    out = np.asarray(arr)
    if out.ndim != 1:
        raise GraphError(f"{name} must be 1-D, got shape {out.shape}")
    if out.size and not np.issubdtype(out.dtype, np.integer):
        raise GraphError(f"{name} must be integer, got dtype {out.dtype}")
    return out.astype(np.int64, copy=False)


class DiGraph:
    """A directed graph over vertices ``0..n-1`` backed by NumPy arrays.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``. Vertex ids outside ``[0, n)`` in the
        edge arrays raise :class:`~repro.errors.GraphError`.
    src, dst:
        1-D integer arrays of equal length: edge ``e`` goes
        ``src[e] -> dst[e]``.
    weights:
        Optional 1-D float array of per-edge weights (used by SSSP).
        ``None`` means the graph is unweighted; algorithms that need
        weights treat every edge as weight 1.0.
    name:
        Optional human-readable name (dataset registry fills this in).
    """

    __slots__ = (
        "num_vertices",
        "src",
        "dst",
        "weights",
        "name",
        "_out_indptr",
        "_out_eids",
        "_in_indptr",
        "_in_eids",
        "_out_degree",
        "_in_degree",
    )

    def __init__(
        self,
        num_vertices: int,
        src,
        dst,
        weights=None,
        name: str = "",
    ) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self.num_vertices = int(num_vertices)
        self.src = _as_edge_array(src, "src")
        self.dst = _as_edge_array(dst, "dst")
        if self.src.shape != self.dst.shape:
            raise GraphError(
                f"src and dst must have equal length, got {self.src.size} != {self.dst.size}"
            )
        if self.src.size:
            lo = min(self.src.min(), self.dst.min())
            hi = max(self.src.max(), self.dst.max())
            if lo < 0 or hi >= self.num_vertices:
                raise GraphError(
                    f"edge endpoints must lie in [0, {self.num_vertices}), "
                    f"found range [{lo}, {hi}]"
                )
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != self.src.shape:
                raise GraphError(
                    f"weights must match edge count {self.src.size}, got {weights.size}"
                )
        self.weights: Optional[np.ndarray] = weights
        self.name = name
        self._out_indptr: Optional[np.ndarray] = None
        self._out_eids: Optional[np.ndarray] = None
        self._in_indptr: Optional[np.ndarray] = None
        self._in_eids: Optional[np.ndarray] = None
        self._out_degree: Optional[np.ndarray] = None
        self._in_degree: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Basic size accessors
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.src.size)

    @property
    def ev_ratio(self) -> float:
        """E/V ratio (paper Table 1 column). 0.0 for an empty vertex set."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"DiGraph(|V|={self.num_vertices}, |E|={self.num_edges}{label}, "
            f"weighted={self.weights is not None})"
        )

    # ------------------------------------------------------------------
    # Degrees
    # ------------------------------------------------------------------
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex as an int64 array (cached)."""
        if self._out_degree is None:
            self._out_degree = np.bincount(
                self.src, minlength=self.num_vertices
            ).astype(np.int64)
        return self._out_degree

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex as an int64 array (cached)."""
        if self._in_degree is None:
            self._in_degree = np.bincount(
                self.dst, minlength=self.num_vertices
            ).astype(np.int64)
        return self._in_degree

    def degrees(self) -> np.ndarray:
        """Total degree (in + out) of every vertex."""
        return self.out_degrees() + self.in_degrees()

    # ------------------------------------------------------------------
    # CSR adjacency (lazily built, cached)
    # ------------------------------------------------------------------
    def _build_csr(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Group edge ids by ``keys`` (src for out-CSR, dst for in-CSR)."""
        order = np.argsort(keys, kind="stable").astype(np.int64)
        counts = np.bincount(keys, minlength=self.num_vertices)
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, order

    def out_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(indptr, edge_ids)`` grouping edges by source vertex.

        ``edge_ids[indptr[v]:indptr[v+1]]`` are the ids of v's out-edges;
        their targets are ``self.dst[edge_ids[...]]``.
        """
        if self._out_indptr is None:
            self._out_indptr, self._out_eids = self._build_csr(self.src)
        return self._out_indptr, self._out_eids

    def in_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(indptr, edge_ids)`` grouping edges by target vertex."""
        if self._in_indptr is None:
            self._in_indptr, self._in_eids = self._build_csr(self.dst)
        return self._in_indptr, self._in_eids

    def out_neighbors(self, v: int) -> np.ndarray:
        """Targets of v's out-edges (may contain duplicates for multi-edges)."""
        indptr, eids = self.out_csr()
        return self.dst[eids[indptr[v] : indptr[v + 1]]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of v's in-edges."""
        indptr, eids = self.in_csr()
        return self.src[eids[indptr[v] : indptr[v + 1]]]

    def out_edge_ids(self, v: int) -> np.ndarray:
        """Edge ids of v's out-edges."""
        indptr, eids = self.out_csr()
        return eids[indptr[v] : indptr[v + 1]]

    def in_edge_ids(self, v: int) -> np.ndarray:
        """Edge ids of v's in-edges."""
        indptr, eids = self.in_csr()
        return eids[indptr[v] : indptr[v + 1]]

    # ------------------------------------------------------------------
    # Whole-graph transforms
    # ------------------------------------------------------------------
    def edge_weights(self) -> np.ndarray:
        """Per-edge weights; all-ones if the graph is unweighted."""
        if self.weights is not None:
            return self.weights
        return np.ones(self.num_edges, dtype=np.float64)

    def reverse(self) -> "DiGraph":
        """Graph with every edge direction flipped (weights preserved)."""
        return DiGraph(
            self.num_vertices,
            self.dst.copy(),
            self.src.copy(),
            None if self.weights is None else self.weights.copy(),
            name=f"{self.name}.rev" if self.name else "",
        )

    def to_undirected_edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Symmetrized, deduplicated edge arrays (u < v canonical order).

        Self-loops are dropped. Useful for k-core/CC on graphs supplied as
        directed edge lists, matching the usual treatment of SNAP datasets.
        """
        u = np.minimum(self.src, self.dst)
        v = np.maximum(self.src, self.dst)
        keep = u != v
        u, v = u[keep], v[keep]
        if u.size == 0:
            return u, v
        key = u * np.int64(self.num_vertices) + v
        _, idx = np.unique(key, return_index=True)
        return u[idx], v[idx]

    def symmetrized(self) -> "DiGraph":
        """Return a graph containing both directions of every edge.

        The result has no duplicate directed edges and no self-loops,
        and is unweighted unless the input carried weights (in which case
        each direction of an edge keeps the minimum weight seen for the
        unordered pair).
        """
        u, v = self.to_undirected_edges()
        src = np.concatenate([u, v])
        dst = np.concatenate([v, u])
        weights = None
        if self.weights is not None:
            # min weight per unordered pair, replicated in both directions
            key_fwd = np.minimum(self.src, self.dst) * np.int64(
                self.num_vertices
            ) + np.maximum(self.src, self.dst)
            order = np.argsort(key_fwd, kind="stable")
            sorted_keys = key_fwd[order]
            sorted_w = self.weights[order]
            uniq_keys, starts = np.unique(sorted_keys, return_index=True)
            minw = np.minimum.reduceat(sorted_w, starts)
            pair_key = u * np.int64(self.num_vertices) + v
            lookup = dict(zip(uniq_keys.tolist(), minw.tolist()))
            w_half = np.array([lookup[k] for k in pair_key.tolist()])
            weights = np.concatenate([w_half, w_half])
        return DiGraph(
            self.num_vertices,
            src,
            dst,
            weights,
            name=f"{self.name}.sym" if self.name else "",
        )

    def with_weights(self, weights) -> "DiGraph":
        """Copy of this graph with the given per-edge weights attached."""
        return DiGraph(self.num_vertices, self.src, self.dst, weights, self.name)

    def subgraph(self, vertices) -> Tuple["DiGraph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns ``(sub, keep)`` where ``sub`` has the selected vertices
        renumbered ``0..k-1`` in ascending original-id order and ``keep``
        is that sorted original-id array (``keep[i]`` is sub-vertex
        ``i``'s original id). Edges with either endpoint outside the set
        are dropped; weights are preserved.
        """
        keep = np.unique(np.asarray(list(vertices), dtype=np.int64))
        if keep.size and (keep[0] < 0 or keep[-1] >= self.num_vertices):
            raise GraphError("subgraph vertex id out of range")
        inside = np.zeros(self.num_vertices, dtype=bool)
        inside[keep] = True
        sel = inside[self.src] & inside[self.dst]
        remap = np.full(self.num_vertices, -1, dtype=np.int64)
        remap[keep] = np.arange(keep.size)
        sub = DiGraph(
            int(keep.size),
            remap[self.src[sel]],
            remap[self.dst[sel]],
            None if self.weights is None else self.weights[sel],
            name=f"{self.name}.sub" if self.name else "",
        )
        return sub, keep

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(src, dst)`` pairs in edge-id order (slow; for tests)."""
        for e in range(self.num_edges):
            yield int(self.src[e]), int(self.dst[e])

    def has_edge(self, u: int, v: int) -> bool:
        """True if a directed edge u->v exists (O(out_degree(u)))."""
        return bool(np.any(self.out_neighbors(u) == v))

    # ------------------------------------------------------------------
    # Equality (structural; used by I/O round-trip tests)
    # ------------------------------------------------------------------
    def structurally_equal(self, other: "DiGraph") -> bool:
        """True if both graphs have identical vertex count and edge multiset."""
        if self.num_vertices != other.num_vertices:
            return False
        if self.num_edges != other.num_edges:
            return False
        key_a = np.lexsort((self.dst, self.src))
        key_b = np.lexsort((other.dst, other.src))
        if not (
            np.array_equal(self.src[key_a], other.src[key_b])
            and np.array_equal(self.dst[key_a], other.dst[key_b])
        ):
            return False
        if (self.weights is None) != (other.weights is None):
            return False
        if self.weights is not None:
            return bool(
                np.allclose(self.weights[key_a], other.weights[key_b])
            )
        return True
