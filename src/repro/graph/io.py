"""Graph file I/O.

Supported formats
-----------------
* **edge list** — one ``src dst [weight]`` per line, ``#``/``%`` comments.
* **SNAP** — the Stanford Large Network Dataset Collection plain-text
  format (same as edge list with ``#`` headers); the paper's social and
  web graphs ship in this format.
* **DIMACS** — the 9th DIMACS shortest-path challenge ``.gr`` format
  (``c`` comment lines, one ``p sp <n> <m>`` problem line, ``a u v w``
  arc lines with 1-based vertex ids); the paper's road graphs ship in
  this format.
* **npz** — NumPy binary round-trip format (fast, lossless, used for
  caching generated datasets).
"""

from __future__ import annotations

import os
from typing import List, Optional, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.digraph import DiGraph

__all__ = [
    "load_edge_list",
    "save_edge_list",
    "load_snap",
    "load_dimacs",
    "save_dimacs",
    "load_npz",
    "save_npz",
]

PathLike = Union[str, "os.PathLike[str]"]
_COMMENT_PREFIXES = ("#", "%")


def _parse_edge_lines(
    lines, path: str, weighted: Optional[bool]
) -> "tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]":
    src: List[int] = []
    dst: List[int] = []
    wts: List[float] = []
    saw_weight = False
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        parts = line.replace(",", " ").split()
        if len(parts) < 2:
            raise GraphFormatError(
                f"{path}:{lineno}: expected 'src dst [weight]', got {line!r}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphFormatError(
                f"{path}:{lineno}: non-integer vertex id in {line!r}"
            ) from exc
        src.append(u)
        dst.append(v)
        if len(parts) >= 3 and weighted is not False:
            try:
                wts.append(float(parts[2]))
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-numeric weight in {line!r}"
                ) from exc
            saw_weight = True
        elif saw_weight:
            raise GraphFormatError(
                f"{path}:{lineno}: weight column present on some lines but not all"
            )
    if weighted is True and not saw_weight and src:
        raise GraphFormatError(f"{path}: weighted=True but no weight column found")
    s = np.asarray(src, dtype=np.int64)
    d = np.asarray(dst, dtype=np.int64)
    w = np.asarray(wts, dtype=np.float64) if saw_weight else None
    return s, d, w


def load_edge_list(
    path: PathLike,
    num_vertices: Optional[int] = None,
    weighted: Optional[bool] = None,
    name: str = "",
) -> DiGraph:
    """Load a plain-text edge list.

    Parameters
    ----------
    num_vertices:
        Vertex count; inferred as ``max id + 1`` when omitted.
    weighted:
        ``True`` to require a weight column, ``False`` to ignore one,
        ``None`` (default) to auto-detect.
    """
    path = os.fspath(path)
    with open(path, "r", encoding="utf-8") as fh:
        src, dst, w = _parse_edge_lines(fh, path, weighted)
    if num_vertices is None:
        num_vertices = int(max(src.max(), dst.max())) + 1 if src.size else 0
    return DiGraph(num_vertices, src, dst, w, name=name or os.path.basename(path))


def load_snap(path: PathLike, name: str = "") -> DiGraph:
    """Load a SNAP-format graph (plain edge list with ``#`` headers)."""
    return load_edge_list(path, weighted=False, name=name)


def save_edge_list(graph: DiGraph, path: PathLike, header: bool = True) -> None:
    """Write ``graph`` as a plain-text edge list (weights included if any)."""
    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# repro edge list |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        if graph.weights is None:
            for e in range(graph.num_edges):
                fh.write(f"{graph.src[e]} {graph.dst[e]}\n")
        else:
            for e in range(graph.num_edges):
                fh.write(f"{graph.src[e]} {graph.dst[e]} {graph.weights[e]:.10g}\n")


def load_dimacs(path: PathLike, name: str = "") -> DiGraph:
    """Load a 9th-DIMACS-challenge ``.gr`` shortest-path graph.

    Vertex ids in the file are 1-based and converted to 0-based; arc
    weights are preserved as floats.
    """
    path = os.fspath(path)
    n: Optional[int] = None
    m_declared: Optional[int] = None
    src: List[int] = []
    dst: List[int] = []
    wts: List[float] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphFormatError(
                        f"{path}:{lineno}: malformed problem line {line!r}"
                    )
                if n is not None:
                    raise GraphFormatError(f"{path}:{lineno}: duplicate problem line")
                n, m_declared = int(parts[2]), int(parts[3])
            elif parts[0] == "a":
                if len(parts) != 4:
                    raise GraphFormatError(
                        f"{path}:{lineno}: malformed arc line {line!r}"
                    )
                if n is None:
                    raise GraphFormatError(
                        f"{path}:{lineno}: arc line before problem line"
                    )
                u, v = int(parts[1]) - 1, int(parts[2]) - 1
                if not (0 <= u < n and 0 <= v < n):
                    raise GraphFormatError(
                        f"{path}:{lineno}: vertex id out of range in {line!r}"
                    )
                src.append(u)
                dst.append(v)
                wts.append(float(parts[3]))
            else:
                raise GraphFormatError(
                    f"{path}:{lineno}: unknown record type {parts[0]!r}"
                )
    if n is None:
        raise GraphFormatError(f"{path}: missing 'p sp' problem line")
    if m_declared is not None and m_declared != len(src):
        raise GraphFormatError(
            f"{path}: problem line declares {m_declared} arcs, found {len(src)}"
        )
    return DiGraph(
        n,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.asarray(wts, dtype=np.float64),
        name=name or os.path.basename(path),
    )


def save_dimacs(graph: DiGraph, path: PathLike, comment: str = "") -> None:
    """Write ``graph`` in 9th-DIMACS-challenge ``.gr`` format.

    Vertex ids become 1-based; an unweighted graph is written with unit
    arc weights (the format requires a weight column). Integer-valued
    weights are written as integers to match the challenge files.
    """
    path = os.fspath(path)
    w = graph.edge_weights()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("c generated by repro (LazyGraph reproduction)\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"c {line}\n")
        fh.write(f"p sp {graph.num_vertices} {graph.num_edges}\n")
        for e in range(graph.num_edges):
            weight = w[e]
            text = str(int(weight)) if float(weight).is_integer() else f"{weight:.10g}"
            fh.write(f"a {graph.src[e] + 1} {graph.dst[e] + 1} {text}\n")


def save_npz(graph: DiGraph, path: PathLike) -> None:
    """Save a graph to NumPy ``.npz`` (lossless, fast round-trip)."""
    payload = {
        "num_vertices": np.int64(graph.num_vertices),
        "src": graph.src,
        "dst": graph.dst,
        "name": np.str_(graph.name),
    }
    if graph.weights is not None:
        payload["weights"] = graph.weights
    np.savez_compressed(os.fspath(path), **payload)


def load_npz(path: PathLike) -> DiGraph:
    """Load a graph previously written by :func:`save_npz`."""
    path = os.fspath(path)
    try:
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise GraphFormatError(f"{path}: cannot read npz graph: {exc}") from exc
    for key in ("num_vertices", "src", "dst"):
        if key not in data:
            raise GraphFormatError(f"{path}: missing array {key!r}")
    return DiGraph(
        int(data["num_vertices"]),
        data["src"],
        data["dst"],
        data["weights"] if "weights" in data else None,
        name=str(data["name"]) if "name" in data else "",
    )
