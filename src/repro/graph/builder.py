"""Incremental construction of :class:`~repro.graph.digraph.DiGraph`.

``DiGraph`` itself is array-based and effectively immutable; the builder
collects edges one at a time (or in bulk) and materializes the arrays
once at :meth:`GraphBuilder.build` time. Loaders and generators that
already hold full edge arrays should construct ``DiGraph`` directly.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

__all__ = ["GraphBuilder", "dedup_edges"]


def dedup_edges(
    num_vertices: int, src: np.ndarray, dst: np.ndarray, weights=None
):
    """Drop duplicate directed edges, keeping the first occurrence.

    Returns ``(src, dst, weights)`` with weights ``None`` when the input
    weights were ``None``.
    """
    if src.size == 0:
        return src, dst, weights
    key = src.astype(np.int64) * np.int64(num_vertices) + dst.astype(np.int64)
    _, first = np.unique(key, return_index=True)
    first.sort()
    if weights is None:
        return src[first], dst[first], None
    return src[first], dst[first], weights[first]


class GraphBuilder:
    """Accumulates edges and builds a :class:`DiGraph`.

    Parameters
    ----------
    num_vertices:
        Fixed vertex count, or ``None`` to infer ``max endpoint + 1``.
    weighted:
        When True, :meth:`add_edge` requires a weight and the built graph
        carries a weight array.

    Example
    -------
    >>> b = GraphBuilder()
    >>> b.add_edge(0, 1)
    >>> b.add_edge(1, 2)
    >>> g = b.build()
    >>> (g.num_vertices, g.num_edges)
    (3, 2)
    """

    def __init__(
        self, num_vertices: Optional[int] = None, weighted: bool = False
    ) -> None:
        self._fixed_n = num_vertices
        self.weighted = weighted
        self._src: List[int] = []
        self._dst: List[int] = []
        self._w: List[float] = []

    def add_edge(self, u: int, v: int, weight: Optional[float] = None) -> None:
        """Append a directed edge ``u -> v``."""
        if u < 0 or v < 0:
            raise GraphError(f"vertex ids must be >= 0, got ({u}, {v})")
        if self._fixed_n is not None and (u >= self._fixed_n or v >= self._fixed_n):
            raise GraphError(
                f"edge ({u}, {v}) out of range for fixed num_vertices={self._fixed_n}"
            )
        if self.weighted:
            if weight is None:
                raise GraphError("weighted builder requires a weight per edge")
            self._w.append(float(weight))
        elif weight is not None:
            raise GraphError("unweighted builder got a weight; pass weighted=True")
        self._src.append(int(u))
        self._dst.append(int(v))

    def add_edges(self, pairs, weights=None) -> None:
        """Bulk-append edges from an iterable of ``(u, v)`` pairs."""
        if weights is None:
            for u, v in pairs:
                self.add_edge(u, v)
        else:
            for (u, v), w in zip(pairs, weights):
                self.add_edge(u, v, w)

    @property
    def num_edges(self) -> int:
        return len(self._src)

    def build(self, dedup: bool = False, name: str = "") -> DiGraph:
        """Materialize the graph.

        Parameters
        ----------
        dedup:
            Drop duplicate directed edges (first occurrence wins).
        name:
            Name recorded on the graph.
        """
        src = np.asarray(self._src, dtype=np.int64)
        dst = np.asarray(self._dst, dtype=np.int64)
        weights = np.asarray(self._w, dtype=np.float64) if self.weighted else None
        if self._fixed_n is not None:
            n = self._fixed_n
        elif src.size:
            n = int(max(src.max(), dst.max())) + 1
        else:
            n = 0
        if dedup:
            src, dst, weights = dedup_edges(n, src, dst, weights)
        return DiGraph(n, src, dst, weights, name=name)
