"""Whole-graph structural properties (Table 1 columns and more).

These are used by the Table 1 benchmark, by the adaptive interval model
(E/V ratio feature, §4.2.1) and by tests that validate generator output
against the intended class signature (road = high diameter & flat
degrees, social = heavy-tailed degrees).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = [
    "GraphProperties",
    "compute_properties",
    "weakly_connected_components",
    "estimate_diameter",
    "degree_gini",
]


def weakly_connected_components(graph: DiGraph) -> np.ndarray:
    """Label vertices by weakly-connected component (labels are minima).

    Pure-NumPy label propagation over the symmetrized edge set; converges
    in O(diameter) sweeps, each a vectorized ``minimum.at``.
    """
    labels = np.arange(graph.num_vertices, dtype=np.int64)
    src = np.concatenate([graph.src, graph.dst])
    dst = np.concatenate([graph.dst, graph.src])
    while True:
        new = labels.copy()
        np.minimum.at(new, dst, labels[src])
        if np.array_equal(new, labels):
            return labels
        labels = new


def estimate_diameter(graph: DiGraph, num_probes: int = 4, seed: int = 0) -> int:
    """Lower-bound the diameter by BFS sweeps from a few probe vertices.

    Uses the double-sweep heuristic on the symmetrized graph: BFS from a
    probe, then BFS again from the farthest vertex found. Exact for trees;
    a tight lower bound in practice. Unreachable vertices are ignored.
    """
    if graph.num_vertices == 0:
        return 0
    rng = np.random.default_rng(seed)
    src = np.concatenate([graph.src, graph.dst])
    dst = np.concatenate([graph.dst, graph.src])
    n = graph.num_vertices

    def bfs_ecc(start: int) -> "tuple[int, int]":
        dist = np.full(n, -1, dtype=np.int64)
        dist[start] = 0
        frontier = np.array([start], dtype=np.int64)
        level = 0
        while frontier.size:
            mask = np.isin(src, frontier)
            nxt = dst[mask]
            nxt = nxt[dist[nxt] < 0]
            if nxt.size == 0:
                break
            nxt = np.unique(nxt)
            level += 1
            dist[nxt] = level
            frontier = nxt
        far = int(np.argmax(dist))
        return int(dist.max()), far

    best = 0
    probes = rng.choice(n, size=min(num_probes, n), replace=False)
    for p in probes:
        ecc, far = bfs_ecc(int(p))
        best = max(best, ecc)
        ecc2, _ = bfs_ecc(far)
        best = max(best, ecc2)
    return best


def degree_gini(graph: DiGraph) -> float:
    """Gini coefficient of the total-degree distribution (0 = uniform).

    A scalar measure of degree skew: road graphs sit near 0.1, social
    power-law graphs above 0.5.
    """
    deg = np.sort(graph.degrees().astype(np.float64))
    n = deg.size
    if n == 0 or deg.sum() == 0:
        return 0.0
    index = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (index * deg).sum() / (n * deg.sum())) - (n + 1.0) / n)


@dataclass(frozen=True)
class GraphProperties:
    """Summary statistics for a graph (Table 1 columns and extras)."""

    num_vertices: int
    num_edges: int
    ev_ratio: float
    max_out_degree: int
    max_in_degree: int
    mean_degree: float
    degree_gini: float
    num_weak_components: int
    giant_component_fraction: float
    diameter_estimate: int


def compute_properties(
    graph: DiGraph, diameter_probes: int = 2
) -> GraphProperties:
    """Compute :class:`GraphProperties` for ``graph``.

    ``diameter_probes=0`` skips the (BFS-heavy) diameter estimate and
    reports 0 — useful for large inputs when only degree statistics are
    needed.
    """
    labels = weakly_connected_components(graph)
    _, counts = np.unique(labels, return_counts=True)
    giant = counts.max() / graph.num_vertices if graph.num_vertices else 0.0
    diam = (
        estimate_diameter(graph, num_probes=diameter_probes)
        if diameter_probes > 0
        else 0
    )
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    return GraphProperties(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        ev_ratio=graph.ev_ratio,
        max_out_degree=int(out_deg.max()) if out_deg.size else 0,
        max_in_degree=int(in_deg.max()) if in_deg.size else 0,
        mean_degree=float(graph.degrees().mean()) if graph.num_vertices else 0.0,
        degree_gini=degree_gini(graph),
        num_weak_components=int(counts.size),
        giant_component_fraction=float(giant),
        diameter_estimate=diam,
    )
