"""Graph substrate: directed graphs, I/O, generators, datasets, properties.

The central type is :class:`repro.graph.digraph.DiGraph`, a compact
NumPy-backed directed graph with CSR adjacency in both directions. Every
other subsystem (partitioning, engines, algorithms) consumes this type.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    attach_uniform_weights,
    community_graph,
    erdos_renyi_graph,
    powerlaw_graph,
    road_grid_graph,
    web_graph,
)
from repro.graph.datasets import dataset_names, load_dataset, dataset_info
from repro.graph.io import (
    load_dimacs,
    load_edge_list,
    load_npz,
    load_snap,
    save_dimacs,
    save_edge_list,
    save_npz,
)
from repro.graph.properties import GraphProperties, compute_properties

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "attach_uniform_weights",
    "community_graph",
    "erdos_renyi_graph",
    "powerlaw_graph",
    "road_grid_graph",
    "web_graph",
    "dataset_names",
    "load_dataset",
    "dataset_info",
    "load_edge_list",
    "load_snap",
    "load_dimacs",
    "save_dimacs",
    "load_npz",
    "save_edge_list",
    "save_npz",
    "GraphProperties",
    "compute_properties",
]
