"""Synthetic graph generators standing in for the paper's real datasets.

The paper evaluates on three classes of real graph (Table 1): **road**
networks (DIMACS), **web** crawls (LAW), and **social** networks (SNAP).
We cannot download those here, so each class gets a generator tuned to
reproduce the structural features that drive the paper's results:

* :func:`road_grid_graph` — perturbed 2-D lattice: near-constant degree,
  huge diameter, strong locality → low replication factor λ under a
  vertex-cut, many SSSP/CC iterations. (Stands in for road_USA / roadNet-CA.)
* :func:`web_graph` — Kleinberg/Kumar *copying model*: heavy-tailed
  in-degrees with link locality → intermediate λ. (Stands in for UK-2005 /
  web-Google.)
* :func:`powerlaw_graph` — R-MAT recursive-matrix sampler: skewed degrees
  on both sides, no locality → high λ. (Stands in for twitter /
  soc-LiveJournal / enwiki / com-youtube.)
* :func:`erdos_renyi_graph` — uniform random baseline for tests.

All generators are deterministic given ``seed`` and vectorized with NumPy.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, make_rng

__all__ = [
    "road_grid_graph",
    "web_graph",
    "powerlaw_graph",
    "erdos_renyi_graph",
    "attach_uniform_weights",
]


def _dedup_directed(n: int, src: np.ndarray, dst: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Remove duplicate directed edges and self-loops."""
    keep = src != dst
    src, dst = src[keep], dst[keep]
    if src.size == 0:
        return src, dst
    key = src * np.int64(n) + dst
    _, idx = np.unique(key, return_index=True)
    idx.sort()
    return src[idx], dst[idx]


# ----------------------------------------------------------------------
# Road networks
# ----------------------------------------------------------------------
def road_grid_graph(
    width: int,
    height: int,
    extra_edge_fraction: float = 0.25,
    seed: SeedLike = None,
    name: str = "",
) -> DiGraph:
    """Generate a road-network-like graph on a ``width x height`` lattice.

    Construction: all lattice edges are shuffled; a Kruskal pass keeps
    every edge that joins two components (a random spanning tree without
    DFS-maze corridors — real road networks have modest detour factors,
    and long-corridor mazes would manufacture shortest-path corrections
    no real road graph exhibits), then further random lattice edges are
    kept until ``(1 + extra_edge_fraction) * (n - 1)`` undirected edges
    exist. Every undirected edge is emitted in both directions, matching
    the DIMACS road graphs, for a directed E/V of roughly
    ``2 * (1 + extra_edge_fraction)``.

    The result has near-constant degree and diameter
    ``Θ(width + height)`` — the properties that give road graphs their
    low replication factor and long SSSP/CC convergence in the paper.
    """
    if width < 1 or height < 1:
        raise GraphError(f"grid must be at least 1x1, got {width}x{height}")
    rng = make_rng(seed)
    n = width * height

    # --- all undirected lattice edges, shuffled -------------------------
    xs, ys = np.meshgrid(np.arange(width), np.arange(height))
    vids = (ys * width + xs).ravel()
    right = vids[(xs < width - 1).ravel()]
    down = vids[(ys < height - 1).ravel()]
    all_u = np.concatenate([right, down])
    all_v = np.concatenate([right + 1, down + width])
    perm = rng.permutation(all_u.size)
    all_u, all_v = all_u[perm], all_v[perm]

    # --- Kruskal: spanning tree first, then random extras ---------------
    target = min(all_u.size, int(round((1.0 + extra_edge_fraction) * (n - 1))))
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    keep_u: "list[int]" = []
    keep_v: "list[int]" = []
    extras_u: "list[int]" = []
    extras_v: "list[int]" = []
    for uu, vv in zip(all_u.tolist(), all_v.tolist()):
        ru, rv = find(uu), find(vv)
        if ru != rv:
            parent[ru] = rv
            keep_u.append(uu)
            keep_v.append(vv)
        else:
            extras_u.append(uu)
            extras_v.append(vv)
    n_extra = max(0, target - len(keep_u))
    keep_u.extend(extras_u[:n_extra])
    keep_v.extend(extras_v[:n_extra])

    u = np.asarray(keep_u, dtype=np.int64)
    v = np.asarray(keep_v, dtype=np.int64)
    src = np.concatenate([u, v])
    dst = np.concatenate([v, u])
    src, dst = _dedup_directed(n, src, dst)
    return DiGraph(n, src, dst, name=name or f"road-grid-{width}x{height}")


# ----------------------------------------------------------------------
# Web graphs (copying model)
# ----------------------------------------------------------------------
def web_graph(
    num_vertices: int,
    avg_out_degree: float,
    copy_prob: float = 0.6,
    window: int = 200,
    global_link_prob: float = 0.05,
    back_link_prob: float = 0.0,
    seed: SeedLike = None,
    name: str = "",
) -> DiGraph:
    """Generate a web-crawl-like graph: copying model with link locality.

    Vertices arrive one at a time (crawl order — real web datasets like
    UK-2005 are ordered lexicographically by URL, so nearby ids share a
    host). Each new page ``t`` emits ``~avg_out_degree`` links:

    * with probability ``copy_prob`` a link *copies* the target of an
      edge whose source lies in the trailing ``window`` (preferential by
      in-degree within the neighbourhood → power-law in-degrees);
    * otherwise it points to a uniform page in the trailing window;
    * independently, with probability ``global_link_prob`` a link is
      rewired to a uniform random earlier page (cross-host links);
    * with probability ``back_link_prob`` per link, the target also
      links back (navigation bars, reciprocal host links) — this is
      what creates the bow-tie's strongly-connected core; the default 0
      keeps pure crawl-order DAG structure.

    The window is what gives web graphs their characteristic *locality*:
    a coordinated vertex-cut can pack a window onto few machines, so the
    replication factor lands between road graphs and social graphs —
    matching the paper's Table 1 ordering.
    """
    if num_vertices < 2:
        raise GraphError("web_graph needs at least 2 vertices")
    if avg_out_degree <= 0:
        raise GraphError("avg_out_degree must be positive")
    if window < 1:
        raise GraphError("window must be >= 1")
    rng = make_rng(seed)
    n = num_vertices
    est_edges = int(avg_out_degree * n * 1.2) + 16
    src_buf = np.empty(est_edges, dtype=np.int64)
    dst_buf = np.empty(est_edges, dtype=np.int64)
    m = 0
    # edge index of the first edge whose source is within the window;
    # advanced lazily as t grows (sources are emitted in increasing order)
    win_edge_lo = 0

    # bootstrap: a small seed clique among the first few vertices
    seed_n = min(4, n)
    for i in range(seed_n):
        for j in range(seed_n):
            if i != j:
                src_buf[m] = i
                dst_buf[m] = j
                m += 1

    for t in range(seed_n, n):
        lo = max(0, t - window)
        while win_edge_lo < m and src_buf[win_edge_lo] < lo:
            win_edge_lo += 1
        k = 1 + rng.poisson(max(avg_out_degree - 1.0, 0.0))
        k = min(k, t)  # cannot link to more distinct pages than exist
        copy_mask = rng.random(k) < copy_prob
        n_copy = int(copy_mask.sum())
        targets = np.empty(k, dtype=np.int64)
        if n_copy:
            if win_edge_lo < m:
                # copy destinations of random recent edges: preferential
                # by in-degree *within the window's neighbourhood*
                targets[copy_mask] = dst_buf[
                    rng.integers(win_edge_lo, m, size=n_copy)
                ]
            else:
                targets[copy_mask] = rng.integers(lo, t, size=n_copy)
        n_rand = k - n_copy
        if n_rand:
            targets[~copy_mask] = rng.integers(lo, t, size=n_rand)
        # occasional cross-host (global) rewiring
        glob = rng.random(k) < global_link_prob
        n_glob = int(glob.sum())
        if n_glob:
            targets[glob] = rng.integers(0, t, size=n_glob)
        back = (
            targets[rng.random(k) < back_link_prob]
            if back_link_prob > 0
            else np.empty(0, dtype=np.int64)
        )
        need = k + back.size
        if m + need > src_buf.size:
            grow = max(src_buf.size // 2, need)
            src_buf = np.concatenate([src_buf, np.empty(grow, dtype=np.int64)])
            dst_buf = np.concatenate([dst_buf, np.empty(grow, dtype=np.int64)])
        src_buf[m : m + k] = t
        dst_buf[m : m + k] = targets
        m += k
        if back.size:
            src_buf[m : m + back.size] = back
            dst_buf[m : m + back.size] = t
            m += back.size

    src, dst = _dedup_directed(n, src_buf[:m], dst_buf[:m])
    return DiGraph(n, src, dst, name=name or f"web-{n}")


# ----------------------------------------------------------------------
# Social networks (R-MAT)
# ----------------------------------------------------------------------
def powerlaw_graph(
    num_vertices: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: SeedLike = None,
    name: str = "",
    connect: bool = True,
) -> DiGraph:
    """Generate a social-network-like graph with the R-MAT model.

    Each edge lands in the adjacency matrix by recursively choosing a
    quadrant with probabilities ``(a, b, c, d=1-a-b-c)`` — the standard
    Graph500 parameters by default, which produce the heavy-tailed,
    locality-free degree distributions of twitter-like graphs (and hence
    the paper's highest replication factors).

    ``num_vertices`` is rounded *conceptually* up to a power of two for
    quadrant recursion; samples landing at ids >= ``num_vertices`` are
    redrawn by modular wrap, which slightly flattens the tail but keeps
    the exact requested vertex count. When ``connect`` is set, a random
    Hamiltonian-path backbone is added so CC has a single giant component
    (matching the evaluated real graphs, whose giant component dominates).
    """
    if num_vertices < 2:
        raise GraphError("powerlaw_graph needs at least 2 vertices")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphError(f"R-MAT probabilities must be >= 0, got d={d:.3f}")
    rng = make_rng(seed)
    n = num_vertices
    levels = max(1, int(np.ceil(np.log2(n))))

    # oversample: dedup + self-loop removal eats some edges
    want = num_edges
    src_parts = []
    dst_parts = []
    got = 0
    attempts = 0
    while got < want and attempts < 8:
        batch = int((want - got) * 1.35) + 64
        rows = np.zeros(batch, dtype=np.int64)
        cols = np.zeros(batch, dtype=np.int64)
        for _ in range(levels):
            r = rng.random(batch)
            right = (r >= a) & (r < a + b) | (r >= a + b + c)
            down = r >= a + b
            rows = rows * 2 + down.astype(np.int64)
            cols = cols * 2 + right.astype(np.int64)
        rows %= n
        cols %= n
        s, t = _dedup_directed(n, rows, cols)
        src_parts.append(s)
        dst_parts.append(t)
        merged_s = np.concatenate(src_parts)
        merged_t = np.concatenate(dst_parts)
        merged_s, merged_t = _dedup_directed(n, merged_s, merged_t)
        src_parts, dst_parts = [merged_s], [merged_t]
        got = merged_s.size
        attempts += 1
    src, dst = src_parts[0], dst_parts[0]
    if src.size > want:
        pick = rng.choice(src.size, size=want, replace=False)
        pick.sort()
        src, dst = src[pick], dst[pick]

    if connect:
        perm = rng.permutation(n).astype(np.int64)
        back_u, back_v = perm[:-1], perm[1:]
        src = np.concatenate([src, back_u])
        dst = np.concatenate([dst, back_v])
        src, dst = _dedup_directed(n, src, dst)

    return DiGraph(n, src, dst, name=name or f"rmat-{n}")


# ----------------------------------------------------------------------
# Community-structured social networks (LFR-lite)
# ----------------------------------------------------------------------
def community_graph(
    num_vertices: int,
    num_edges: int,
    community_mean_size: float = 30.0,
    p_internal: float = 0.9,
    degree_exponent: float = 1.6,
    seed: SeedLike = None,
    name: str = "",
    connect: bool = True,
) -> DiGraph:
    """Generate a community-structured social network (LFR-lite model).

    Vertices are grouped into contiguous communities with lognormal
    sizes around ``community_mean_size``. Each vertex draws a Pareto
    (power-law, shape ``degree_exponent``) out-degree normalized so the
    pre-deduplication edge total is ``num_edges``; each link stays inside
    the vertex's community with probability ``p_internal``, otherwise it
    targets a uniform random vertex.

    This models community-rich social networks (com-youtube,
    soc-LiveJournal): heavy-tailed degrees *with* mesoscale locality,
    which a coordinated vertex-cut exploits — in contrast to the
    locality-free R-MAT model used for twitter/enwiki analogs.
    Deduplication of repeated links makes the realized edge count fall
    short of ``num_edges`` by 10–30% for dense communities; callers
    compensate by oversampling.
    """
    if num_vertices < 2:
        raise GraphError("community_graph needs at least 2 vertices")
    if not 0.0 <= p_internal <= 1.0:
        raise GraphError(f"p_internal must be in [0, 1], got {p_internal}")
    if community_mean_size < 3:
        raise GraphError("community_mean_size must be >= 3")
    rng = make_rng(seed)
    n = num_vertices

    sizes = []
    tot = 0
    while tot < n:
        s = max(3, int(rng.lognormal(np.log(community_mean_size), 0.5)))
        s = min(s, n - tot)
        sizes.append(s)
        tot += s
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    comm_start = np.concatenate([[0], np.cumsum(sizes_arr[:-1])])
    comm_of = np.repeat(np.arange(sizes_arr.size), sizes_arr)
    starts = comm_start[comm_of]
    spans = sizes_arr[comm_of]

    raw = rng.pareto(degree_exponent, size=n) + 1.0
    deg = np.maximum(1, np.round(raw * num_edges / raw.sum())).astype(np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    k = src.size
    internal = rng.random(k) < p_internal
    targets = np.empty(k, dtype=np.int64)
    ni = int(internal.sum())
    if ni:
        targets[internal] = starts[src[internal]] + (
            rng.integers(0, np.iinfo(np.int64).max, size=ni)
            % spans[src[internal]]
        )
    if k - ni:
        targets[~internal] = rng.integers(0, n, size=k - ni)
    src, dst = _dedup_directed(n, src, targets)

    if connect:
        # sequential backbone preserves community id-locality (a random
        # permutation backbone would inject n cross-community edges)
        back = np.arange(n - 1, dtype=np.int64)
        src = np.concatenate([src, back])
        dst = np.concatenate([dst, back + 1])
        src, dst = _dedup_directed(n, src, dst)
    return DiGraph(n, src, dst, name=name or f"community-{n}")


# ----------------------------------------------------------------------
# Uniform random baseline
# ----------------------------------------------------------------------
def erdos_renyi_graph(
    num_vertices: int,
    num_edges: int,
    seed: SeedLike = None,
    name: str = "",
) -> DiGraph:
    """Uniform random directed graph with ``num_edges`` distinct edges."""
    if num_vertices < 1:
        raise GraphError("erdos_renyi_graph needs at least 1 vertex")
    max_edges = num_vertices * (num_vertices - 1)
    if num_edges > max_edges:
        raise GraphError(
            f"requested {num_edges} edges but only {max_edges} distinct "
            f"non-loop edges exist on {num_vertices} vertices"
        )
    rng = make_rng(seed)
    n = num_vertices
    src_parts, dst_parts = [], []
    got = 0
    while got < num_edges:
        batch = int((num_edges - got) * 1.3) + 16
        s = rng.integers(0, n, size=batch)
        t = rng.integers(0, n, size=batch)
        src_parts.append(s)
        dst_parts.append(t)
        ms, mt = _dedup_directed(n, np.concatenate(src_parts), np.concatenate(dst_parts))
        src_parts, dst_parts = [ms], [mt]
        got = ms.size
    src, dst = src_parts[0], dst_parts[0]
    if src.size > num_edges:
        pick = rng.choice(src.size, size=num_edges, replace=False)
        pick.sort()
        src, dst = src[pick], dst[pick]
    return DiGraph(n, src, dst, name=name or f"er-{n}")


def attach_uniform_weights(
    graph: DiGraph,
    low: float = 1.0,
    high: float = 10.0,
    seed: SeedLike = None,
) -> DiGraph:
    """Return a weighted copy of ``graph`` with Uniform(low, high) weights.

    Used to turn unweighted generator output into SSSP inputs, mirroring
    the common practice for SNAP graphs (DIMACS road graphs come with
    real travel-time weights; our road generator output gets uniform
    weights the same way).
    """
    if high < low:
        raise GraphError(f"need low <= high, got [{low}, {high}]")
    rng = make_rng(seed)
    w = rng.uniform(low, high, size=graph.num_edges)
    return graph.with_weights(w)
