"""One-call public entry point: ``repro.run(...)``.

Wires the whole pipeline — dataset lookup, graph preparation
(symmetrization / weights, per the algorithm's declared needs),
vertex-cut partitioning, optional edge splitting, engine construction —
behind a single function, mirroring how the paper's toolkits are
invoked (``./sssp --graph road_USA --engine lazy``).

Since the session refactor this module is a thin shell: ``run()`` opens
a throwaway :class:`~repro.session.GraphSession`, runs once, and closes
it. Long-lived callers (benchmark sweeps, the serving layer) hold a
session open instead and amortize graph preparation, partitioning, CSR
planning, and worker-pool spawning across runs.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.api.vertex_program import DeltaProgram
from repro.cluster.network import NetworkModel
from repro.core.policy import CoherencyPolicy
from repro.errors import ConfigError
from repro.graph.datasets import load_dataset
from repro.graph.digraph import DiGraph
from repro.graph.generators import attach_uniform_weights
from repro.obs.tracer import Tracer
from repro.partition.edge_splitter import EdgeSplitConfig
from repro.powergraph.gas import GASProgram
from repro.runtime.backend import ExecutionBackend
from repro.runtime.registry import engine_names
from repro.runtime.result import EngineResult
from repro.runtime.run_config import RunConfig
from repro.utils.rng import derive_seed

__all__ = ["run", "prepare_graph", "ENGINE_NAMES"]


def __getattr__(name: str):
    # ENGINE_NAMES used to be a module constant frozen at import time,
    # which silently excluded engines registered afterwards. Resolving
    # it lazily keeps the attribute API while always reflecting the
    # live registry.
    if name == "ENGINE_NAMES":
        return engine_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def prepare_graph(
    graph: Union[str, DiGraph],
    program: Union[DeltaProgram, GASProgram],
    seed: int = 0,
) -> DiGraph:
    """Resolve and adapt a graph to a program's declared requirements.

    * a string resolves through the dataset registry (weighted variant
      when the program needs weights);
    * ``requires_symmetric`` programs get the symmetrized graph;
    * ``needs_weights`` programs get deterministic Uniform(1, 10)
      weights attached when the input is unweighted.
    """
    if isinstance(graph, str):
        g = load_dataset(graph, weighted=program.needs_weights)
    else:
        g = graph
    if program.requires_symmetric:
        sym = g.symmetrized()
        sym.name = g.name
        g = sym
    if program.needs_weights and g.weights is None:
        g = attach_uniform_weights(g, seed=derive_seed(seed, "weights"))
    return g


def run(
    graph: Union[str, DiGraph],
    algorithm: Union[str, DeltaProgram],
    engine: str = "lazy-block",
    machines: int = 48,
    partitioner: str = "coordinated",
    policy: Union[str, CoherencyPolicy, None] = None,
    split: Optional[EdgeSplitConfig] = None,
    network: Optional[NetworkModel] = None,
    seed: int = 0,
    max_supersteps: int = 100_000,
    trace: bool = False,
    trace_out: Optional[str] = None,
    trace_format: str = "jsonl",
    tracer: Optional[Tracer] = None,
    lens: bool = False,
    lens_opts: Optional[dict] = None,
    backend: Union[str, ExecutionBackend, None] = None,
    workers: Optional[int] = None,
    config: Optional[RunConfig] = None,
    **algorithm_params,
) -> EngineResult:
    """Run one algorithm on one graph under one engine; return the result.

    Parameters
    ----------
    graph:
        A registered dataset name (see :func:`repro.dataset_names`) or a
        :class:`~repro.graph.digraph.DiGraph`.
    algorithm:
        A program name (``pagerank``/``sssp``/``cc``/``kcore``/``bfs``)
        or a program instance. Names build the engine's program flavour
        (delta programs for the delta engines, classic GAS programs for
        ``powergraph-gas-sync``); extra keyword arguments go to the
        program constructor (e.g. ``k=10``, ``tolerance=1e-4``,
        ``source=7``).
    engine:
        One of :data:`ENGINE_NAMES` (the engine registry,
        :mod:`repro.runtime.registry`).
    policy:
        The coherency policy: a registered name
        (:func:`repro.policy_names` — ``"paper"``, ``"staleness"``,
        ``"batched"``, …) or a :class:`~repro.core.policy.CoherencyPolicy`
        instance. Collapses the controller choice, interval model, wire
        mode and ``max_delta_age`` into one value; lazy engines only.
        Default: the ``"paper"`` policy (bit-identical to the paper's
        rule). The pre-PR-10 ``interval=``/``coherency_mode=`` keywords
        were removed; passing them is a :class:`ConfigError` naming the
        ``policy=`` replacement.
    split:
        Edge-splitter configuration enabling parallel-edges; ``None``
        keeps every edge in one-edge mode.
    trace_out / trace_format:
        Write the structured execution trace to ``trace_out`` in
        ``"jsonl"`` or ``"chrome"`` format (implies tracing).
    tracer:
        An explicit :class:`repro.obs.Tracer` to instrument the run with
        (implies tracing; overrides ``trace``/``trace_out`` creation).
    lens:
        Enable the coherency lens (:mod:`repro.obs.lens`) on the lazy
        engines: replica staleness/divergence probes and the
        coherency-decision audit log. Off by default; requesting it on
        an engine without replica laziness is a :class:`ConfigError`.
    lens_opts:
        :class:`~repro.obs.lens.CoherencyLens` keyword overrides
        (``sample_size`` / ``seed`` / ``rollup_after`` / ``rollup_every``
        / ``sharded``). A non-empty dict implies ``lens=True``.
    backend:
        Execution backend: ``"serial"`` (default — inline lockstep) or
        ``"process"`` (a spawn-safe worker pool over shared-memory
        machine runtimes; bit-identical results, real wall-clock
        parallelism), or an
        :class:`~repro.runtime.backend.ExecutionBackend` instance.
    workers:
        Worker-process count for ``backend="process"`` (default: host
        CPU count, capped at the machine count).
    config:
        A prebuilt :class:`~repro.runtime.run_config.RunConfig` carrying
        every run-level knob at once; mutually exclusive with the
        individual run-level keyword arguments above.
    """
    from repro.session import GraphSession

    if config is None:
        # from_kwargs (not the bare constructor) so a stray removed knob
        # in **algorithm_params raises the policy= migration ConfigError
        config = RunConfig.from_kwargs(
            engine=engine,
            policy=policy,
            network=network,
            max_supersteps=max_supersteps,
            trace=trace,
            trace_out=trace_out,
            trace_format=trace_format,
            tracer=tracer,
            lens=lens,
            lens_opts=lens_opts,
            backend=backend,
            workers=workers,
            **algorithm_params,
        )
    elif algorithm_params:
        raise ConfigError(
            "pass algorithm params inside config.params when using config="
        )
    with GraphSession.open(
        graph, machines=machines, partitioner=partitioner,
        split=split, seed=seed,
    ) as session:
        return session.run(algorithm, config=config)
