"""One-call public entry point: ``repro.run(...)``.

Wires the whole pipeline — dataset lookup, graph preparation
(symmetrization / weights, per the algorithm's declared needs),
vertex-cut partitioning, optional edge splitting, engine construction —
behind a single function, mirroring how the paper's toolkits are
invoked (``./sssp --graph road_USA --engine lazy``).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.api.vertex_program import DeltaProgram
from repro.cluster.network import NetworkModel
from repro.core.interval_model import IntervalModel
from repro.core.policy import CoherencyPolicy, resolve_policy
from repro.core.transmission import build_lazy_graph
from repro.errors import ConfigError
from repro.graph.datasets import load_dataset
from repro.graph.digraph import DiGraph
from repro.graph.generators import attach_uniform_weights
from repro.obs.sinks import TRACE_FORMATS, export_trace
from repro.obs.tracer import Tracer
from repro.partition.edge_splitter import EdgeSplitConfig
from repro.powergraph.gas import GASProgram
from repro.runtime.backend import ExecutionBackend, resolve_backend
from repro.runtime.registry import engine_names, get_engine
from repro.runtime.result import EngineResult
from repro.utils.rng import derive_seed

__all__ = ["run", "prepare_graph", "ENGINE_NAMES"]

ENGINE_NAMES = engine_names()


def prepare_graph(
    graph: Union[str, DiGraph],
    program: Union[DeltaProgram, GASProgram],
    seed: int = 0,
) -> DiGraph:
    """Resolve and adapt a graph to a program's declared requirements.

    * a string resolves through the dataset registry (weighted variant
      when the program needs weights);
    * ``requires_symmetric`` programs get the symmetrized graph;
    * ``needs_weights`` programs get deterministic Uniform(1, 10)
      weights attached when the input is unweighted.
    """
    if isinstance(graph, str):
        g = load_dataset(graph, weighted=program.needs_weights)
    else:
        g = graph
    if program.requires_symmetric:
        sym = g.symmetrized()
        sym.name = g.name
        g = sym
    if program.needs_weights and g.weights is None:
        g = attach_uniform_weights(g, seed=derive_seed(seed, "weights"))
    return g


def run(
    graph: Union[str, DiGraph],
    algorithm: Union[str, DeltaProgram],
    engine: str = "lazy-block",
    machines: int = 48,
    partitioner: str = "coordinated",
    interval: Union[str, IntervalModel, None] = None,
    coherency_mode: Optional[str] = None,
    policy: Union[str, CoherencyPolicy, None] = None,
    split: Optional[EdgeSplitConfig] = None,
    network: Optional[NetworkModel] = None,
    seed: int = 0,
    max_supersteps: int = 100_000,
    trace: bool = False,
    trace_out: Optional[str] = None,
    trace_format: str = "jsonl",
    tracer: Optional[Tracer] = None,
    lens: bool = False,
    lens_opts: Optional[dict] = None,
    backend: Union[str, ExecutionBackend, None] = None,
    workers: Optional[int] = None,
    **algorithm_params,
) -> EngineResult:
    """Run one algorithm on one graph under one engine; return the result.

    Parameters
    ----------
    graph:
        A registered dataset name (see :func:`repro.dataset_names`) or a
        :class:`~repro.graph.digraph.DiGraph`.
    algorithm:
        A program name (``pagerank``/``sssp``/``cc``/``kcore``/``bfs``)
        or a program instance. Names build the engine's program flavour
        (delta programs for the delta engines, classic GAS programs for
        ``powergraph-gas-sync``); extra keyword arguments go to the
        program constructor (e.g. ``k=10``, ``tolerance=1e-4``,
        ``source=7``).
    engine:
        One of :data:`ENGINE_NAMES` (the engine registry,
        :mod:`repro.runtime.registry`).
    policy:
        The coherency policy: a registered name
        (:func:`repro.policy_names` — ``"paper"``, ``"staleness"``,
        ``"batched"``, …) or a :class:`~repro.core.policy.CoherencyPolicy`
        instance. Collapses the controller choice, interval model, wire
        mode and ``max_delta_age`` into one value; lazy engines only.
        Default: the ``"paper"`` policy (bit-identical to the paper's
        rule).
    interval:
        .. deprecated:: Use ``policy=CoherencyPolicy(interval=...)``.
        Interval-model name or instance (lazy-block only).
    coherency_mode:
        .. deprecated:: Use ``policy`` (``CoherencyPolicy(mode=...)``).
        ``dynamic`` / ``a2a`` / ``m2m`` (lazy engines only).
    split:
        Edge-splitter configuration enabling parallel-edges; ``None``
        keeps every edge in one-edge mode.
    trace_out / trace_format:
        Write the structured execution trace to ``trace_out`` in
        ``"jsonl"`` or ``"chrome"`` format (implies tracing).
    tracer:
        An explicit :class:`repro.obs.Tracer` to instrument the run with
        (implies tracing; overrides ``trace``/``trace_out`` creation).
    lens:
        Enable the coherency lens (:mod:`repro.obs.lens`) on the lazy
        engines: replica staleness/divergence probes and the
        coherency-decision audit log. Off by default; requesting it on
        an engine without replica laziness is a :class:`ConfigError`.
    lens_opts:
        :class:`~repro.obs.lens.CoherencyLens` keyword overrides
        (``sample_size`` / ``seed`` / ``rollup_after`` / ``rollup_every``
        / ``sharded``). A non-empty dict implies ``lens=True``.
    backend:
        Execution backend: ``"serial"`` (default — inline lockstep) or
        ``"process"`` (a spawn-safe worker pool over shared-memory
        machine runtimes; bit-identical results, real wall-clock
        parallelism), or an
        :class:`~repro.runtime.backend.ExecutionBackend` instance.
    workers:
        Worker-process count for ``backend="process"`` (default: host
        CPU count, capped at the machine count).
    """
    if trace_format not in TRACE_FORMATS:
        raise ConfigError(
            f"unknown trace format {trace_format!r}; known: "
            f"{', '.join(TRACE_FORMATS)}"
        )
    spec = get_engine(engine)
    if isinstance(algorithm, (DeltaProgram, GASProgram)):
        if algorithm_params:
            raise ConfigError(
                "algorithm_params only apply when algorithm is given by name"
            )
        wanted = GASProgram if spec.program_api == "gas" else DeltaProgram
        if not isinstance(algorithm, wanted):
            raise ConfigError(
                f"engine {engine!r} takes a {wanted.__name__}, got "
                f"{type(algorithm).__name__} {algorithm.name!r}"
            )
        program = algorithm
    else:
        program = spec.make_program(algorithm, **algorithm_params)

    g = prepare_graph(graph, program, seed=seed)
    pgraph = build_lazy_graph(
        g, machines, partitioner=partitioner, split_config=split, seed=seed
    )

    if tracer is None and trace_out is not None:
        tracer = Tracer()
    kwargs = {"network": network, "max_supersteps": max_supersteps, "trace": trace}
    if tracer is not None:
        kwargs["tracer"] = tracer
    if backend is not None or workers is not None:
        kwargs["backend"] = resolve_backend(backend, workers=workers, seed=seed)
    pol, explicit = resolve_policy(policy, interval, coherency_mode)
    if "controller" in spec.options:
        kwargs["controller"] = pol.make_controller()
        kwargs["coherency_mode"] = pol.mode
        if "max_delta_age" in spec.options:
            kwargs["max_delta_age"] = pol.max_delta_age
    elif explicit:
        raise ConfigError(
            f"engine {engine!r} does not take an interval model / "
            f"coherency policy (replicas are eagerly coherent)"
        )
    if "lens" in spec.options:
        kwargs["lens"] = dict(lens_opts) if lens_opts else lens
    elif lens or lens_opts:
        raise ConfigError(
            f"engine {engine!r} has no coherency lens (only the lazy "
            f"engines defer replica coherency)"
        )
    result = spec.cls(pgraph, program, **kwargs).run()
    if trace_out is not None and result.trace is not None:
        export_trace(result.trace, trace_out, trace_format)
    return result
