"""The exchange plane: one engine run's set of named channels.

Every engine owns exactly one :class:`ExchangePlane` (created by
:class:`~repro.runtime.base_engine.BaseEngine`), opens the channels its
protocol needs, and moves **all** inter-machine data through them. The
plane is the seam the roadmap's future experiments hang off — relaxed
delivery policies, fault injection, real multiprocess backends — because
swapping how data moves now means swapping channel implementations, not
editing five engine loops.

The plane always carries a ``control`` channel (termination probes,
barrier-only synchronizations), so even barrier traffic with no payload
reconciles channel-by-channel against :class:`RunStats`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.network import CommMode
from repro.comms.channels import CONTROL, Channel, Delivery
from repro.comms.schema import CONTROL_SCHEMA, PayloadSchema
from repro.errors import EngineError

__all__ = ["ExchangePlane"]


class ExchangePlane:
    """Registry of one run's exchange channels over a ``ClusterSim``."""

    def __init__(self, sim, tracer=None) -> None:
        self.sim = sim
        self.tracer = tracer
        self._channels: Dict[str, Channel] = {}
        #: Per-superstep ledger snapshots (filled by :meth:`snapshot`,
        #: driven by the coherency lens); cumulative counters, so the
        #: per-superstep traffic of a channel is the first difference.
        self.timeline: List[Dict[str, Any]] = []
        #: Control plane: termination probes and barrier-only syncs.
        self.control = self.open(CONTROL, CONTROL_SCHEMA, Delivery.BSP)

    # ------------------------------------------------------------------
    def open(
        self,
        name: str,
        schema: PayloadSchema,
        delivery: Delivery,
        comm_mode: Optional[CommMode] = None,
    ) -> Channel:
        """Open a new named channel; names are unique per run."""
        if name in self._channels:
            raise EngineError(
                f"channel {name!r} is already open on this exchange plane"
            )
        ch = Channel(
            self.sim, name, schema, delivery,
            comm_mode=comm_mode, tracer=self.tracer,
        )
        self._channels[name] = ch
        return ch

    def get(self, name: str) -> Channel:
        try:
            return self._channels[name]
        except KeyError:
            raise EngineError(
                f"no channel {name!r} on this exchange plane; open: "
                f"{', '.join(self._channels) or '(none)'}"
            ) from None

    def channels(self) -> Tuple[Channel, ...]:
        """All open channels, in opening order."""
        return tuple(self._channels.values())

    # ------------------------------------------------------------------
    def snapshot(self, superstep: int) -> Dict[str, Any]:
        """Append one per-channel ledger snapshot to :attr:`timeline`.

        Returns ``{"superstep": n, <channel>: {bytes, messages, rounds,
        syncs}, ...}`` with every counter cumulative since run start.
        """
        entry: Dict[str, Any] = {"superstep": int(superstep)}
        for ch in self._channels.values():
            entry[ch.name] = ch.counters()
        self.timeline.append(entry)
        return entry

    def totals(self) -> Dict[str, float]:
        """Sum of every channel's ledger (must equal the RunStats view)."""
        out = {"bytes": 0.0, "messages": 0, "rounds": 0, "syncs": 0}
        for ch in self._channels.values():
            out["bytes"] += ch.bytes_sent
            out["messages"] += ch.messages_sent
            out["rounds"] += ch.rounds
            out["syncs"] += ch.syncs
        return out

    def publish(self, stats) -> None:
        """Surface per-channel counters as ``comms.*`` extras on ``stats``.

        Keys: ``comms.<channel>.bytes`` / ``.messages`` / ``.rounds`` /
        ``.syncs`` — they ride into ``RunStats.to_dict`` and finished
        traces, so the per-channel split is auditable offline.
        """
        for ch in self._channels.values():
            for key, val in ch.counters().items():
                stats.extra[f"comms.{ch.name}.{key}"] = val
