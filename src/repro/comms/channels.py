"""Typed, named exchange channels over :class:`~repro.cluster.simulator.ClusterSim`.

A :class:`Channel` is the *only* place a byte, message, round or
synchronization is charged for one kind of data movement. Each channel
owns

* a **payload schema** (:class:`~repro.comms.schema.PayloadSchema`):
  what one record is and how many bytes it weighs on the wire;
* a **delivery policy** (:class:`Delivery`): how a round of that data
  is priced — a batched BSP round closed by a barrier, an asynchronous
  latency pipelined behind compute, or fine-grained per-update
  messaging with the eager-async penalty;
* its **accounting**: per-channel ``bytes_sent`` / ``messages_sent`` /
  ``rounds`` / ``syncs`` counters that reconcile exactly with the
  :class:`~repro.cluster.stats.RunStats` totals (a tested invariant:
  the per-channel sums equal ``comm_bytes`` / ``comm_messages`` /
  ``comm_rounds`` / ``global_syncs``).

The canonical channel names (the paper's data movements):

========== ===========================================================
``gather``     mirror→master partial accumulators (eager gather leg)
``broadcast``  master→mirror updated vertex data (eager broadcast leg)
``delta_a2a``  coherency-point deltas, all-to-all wire protocol
``delta_m2m``  coherency-point deltas, mirrors-to-master protocol
``one_edge``   fine-grained eager updates (PowerGraph Async's
               one-edge-at-a-time transmission)
``control``    control plane: termination probes, barrier-only syncs
========== ===========================================================
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.cluster.network import CommMode
from repro.comms.schema import PayloadSchema
from repro.errors import EngineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.simulator import ClusterSim

__all__ = [
    "Channel",
    "Delivery",
    "GATHER",
    "BROADCAST",
    "DELTA_A2A",
    "DELTA_M2M",
    "ONE_EDGE",
    "CONTROL",
]

GATHER = "gather"
BROADCAST = "broadcast"
DELTA_A2A = "delta_a2a"
DELTA_M2M = "delta_m2m"
ONE_EDGE = "one_edge"
CONTROL = "control"


class Delivery(enum.Enum):
    """How a channel's rounds are priced by the network model."""

    #: Batched bulk round (``exchange_round`` / ``coherency_exchange``)
    #: closed by a global barrier the channel also owns.
    BSP = "bsp"
    #: Asynchronous exchange whose latency is returned to the caller to
    #: overlap with local compute (LazyVertexAsync, paper §3.4).
    ASYNC_PIPELINED = "async-pipelined"
    #: Fine-grained per-update messaging: the all-to-all volume cost
    #: times the unbatched penalty, plus the per-round engine overhead
    #: (PowerGraph Async's modeled costs).
    ASYNC_FINE_GRAINED = "async-fine-grained"


class Channel:
    """One named, typed exchange channel; the single charge point.

    Engines stage data however they like (vectorized global arrays),
    but every resulting network charge flows through exactly one
    channel method:

    * :meth:`transfer` — count staged traffic (bytes + point-to-point
      messages) into the simulator and this channel's ledger;
    * :meth:`round` — price one communication round of that traffic
      under the channel's delivery policy (returns the modeled latency
      for pipelined channels, else ``0.0``);
    * :meth:`barrier` — the BSP channel's closing global sync;
    * :meth:`bsp_leg` — the common transfer→round→barrier sequence of
      one eager exchange leg.
    """

    __slots__ = (
        "sim", "tracer", "name", "schema", "delivery", "comm_mode",
        "bytes_sent", "messages_sent", "rounds", "syncs",
    )

    def __init__(
        self,
        sim: "ClusterSim",
        name: str,
        schema: PayloadSchema,
        delivery: Delivery,
        comm_mode: Optional[CommMode] = None,
        tracer=None,
    ) -> None:
        from repro.obs.tracer import NULL_TRACER

        self.sim = sim
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.name = name
        self.schema = schema
        self.delivery = delivery
        #: Wire protocol priced by ``coherency_exchange`` /
        #: ``async_exchange_time``; ``None`` = the generic bulk round.
        self.comm_mode = comm_mode
        self.bytes_sent = 0.0
        self.messages_sent = 0
        self.rounds = 0
        self.syncs = 0

    # ------------------------------------------------------------------
    def transfer(self, nbytes: float, nmessages: int) -> None:
        """Count staged traffic: bytes + point-to-point messages.

        Local (same-machine) shares must already be excluded by the
        staging code, exactly as with the raw ``bulk_transfer``.
        """
        self.sim.bulk_transfer(nbytes, nmessages)
        self.bytes_sent += float(nbytes)
        self.messages_sent += int(nmessages)

    def round(self, volume_bytes: float) -> float:
        """Price one communication round of ``volume_bytes``.

        Returns the modeled transfer latency for ``ASYNC_PIPELINED``
        channels (the caller overlaps it with compute via
        ``settle_async_overlapped``); BSP and fine-grained channels
        charge the simulator directly and return ``0.0``.
        """
        sim = self.sim
        self.rounds += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "channel-round", channel=self.name, bytes=float(volume_bytes),
                delivery=self.delivery.value,
            )
        if self.delivery is Delivery.BSP:
            if self.comm_mode is None:
                sim.exchange_round(volume_bytes)
            else:
                sim.coherency_exchange(self.comm_mode, volume_bytes)
            return 0.0
        if self.delivery is Delivery.ASYNC_PIPELINED:
            sim.stats.comm_rounds += 1
            mode = self.comm_mode or CommMode.ALL_TO_ALL
            return sim.network.async_exchange_time(
                mode, volume_bytes, sim.num_machines
            )
        # Delivery.ASYNC_FINE_GRAINED
        net = sim.network
        sim.stats.comm_rounds += 1
        sim.stats.add_comm(
            net.a2a_time(volume_bytes, sim.num_machines)
            * net.async_unbatched_penalty
            + net.async_round_overhead_s
        )
        return 0.0

    def barrier(self) -> None:
        """Close a BSP round with the global synchronization it owns."""
        if self.delivery is not Delivery.BSP:
            raise EngineError(
                f"channel {self.name!r} has {self.delivery.value} delivery; "
                f"only BSP channels own barriers"
            )
        self.syncs += 1
        self.sim.barrier()

    def bsp_leg(self, nbytes: float, nmessages: int) -> None:
        """One eager exchange leg: transfer, batched round, barrier."""
        self.transfer(nbytes, nmessages)
        self.round(nbytes)
        self.barrier()

    # ------------------------------------------------------------------
    def counters(self) -> dict:
        """This channel's ledger (the reconciliation test's view)."""
        return {
            "bytes": self.bytes_sent,
            "messages": self.messages_sent,
            "rounds": self.rounds,
            "syncs": self.syncs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Channel({self.name}, {self.schema.record}, "
            f"{self.delivery.value}, bytes={self.bytes_sent}, "
            f"msgs={self.messages_sent}, rounds={self.rounds}, "
            f"syncs={self.syncs})"
        )
