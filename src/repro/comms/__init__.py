"""repro.comms — the unified exchange plane beneath all engines.

Typed, named channels over :class:`~repro.cluster.simulator.ClusterSim`:
each channel owns its payload schema, its delivery policy, and its
accounting, so every byte/message/round/sync is charged in exactly one
place. See ``docs/architecture.md`` ("Exchange plane") for the channel
table.
"""

from repro.comms.channels import (
    BROADCAST,
    CONTROL,
    DELTA_A2A,
    DELTA_M2M,
    GATHER,
    ONE_EDGE,
    Channel,
    Delivery,
)
from repro.comms.plane import ExchangePlane
from repro.comms.schema import (
    CONTROL_SCHEMA,
    PayloadSchema,
    delta_schema,
    value_schema,
)

__all__ = [
    "Channel",
    "Delivery",
    "ExchangePlane",
    "PayloadSchema",
    "CONTROL_SCHEMA",
    "delta_schema",
    "value_schema",
    "GATHER",
    "BROADCAST",
    "DELTA_A2A",
    "DELTA_M2M",
    "ONE_EDGE",
    "CONTROL",
]
