"""Payload schemas: what one record on a channel is, and what it weighs.

Every exchange channel carries records of exactly one shape — a delta
accumulator, an updated vertex value, a termination-probe report — and
every byte the simulator charges for that channel is ``records ×
bytes_per_record``. Making the schema an explicit object (instead of a
bare ``program.delta_bytes`` multiplied inline at five call sites) is
what lets the channel table in ``docs/architecture.md`` be checked
against the code, and what a future real wire format would serialize.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EngineError

__all__ = ["PayloadSchema", "CONTROL_SCHEMA", "delta_schema", "value_schema"]


@dataclass(frozen=True)
class PayloadSchema:
    """Shape of one record travelling on a channel.

    Attributes
    ----------
    record:
        Human-readable name of one record (``"delta-accumulator"``,
        ``"vertex-value"``, ``"probe-report"``).
    dtype:
        Wire dtype of the record's payload field(s).
    bytes_per_record:
        Modeled wire size of one record, including the vertex-id key —
        the paper's per-message cost unit (``delta_bytes`` /
        ``value_bytes`` on the programs).
    """

    record: str
    dtype: str
    bytes_per_record: float

    def __post_init__(self) -> None:
        if self.bytes_per_record <= 0:
            raise EngineError(
                f"schema {self.record!r}: bytes_per_record must be positive, "
                f"got {self.bytes_per_record}"
            )

    def bytes_for(self, records: int) -> float:
        """Wire bytes of ``records`` records."""
        return float(records) * self.bytes_per_record


#: Control-plane records (termination probes, barrier tokens): sized in
#: raw bytes by the caller, so one record weighs one byte.
CONTROL_SCHEMA = PayloadSchema("control", "bytes", 1.0)


def delta_schema(program) -> PayloadSchema:
    """Schema of one delta/accumulator record of a :class:`DeltaProgram`."""
    return PayloadSchema(
        "delta-accumulator", "float64", float(program.delta_bytes)
    )


def value_schema(program) -> PayloadSchema:
    """Schema of one full vertex-value record of a classic GAS program."""
    return PayloadSchema("vertex-value", "float64", float(program.value_bytes))
