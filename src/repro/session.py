"""Reentrant engine sessions: prepare a graph once, run many times.

``repro.run(...)`` pays the full pipeline on every call — dataset load,
symmetrization/weights, vertex-cut partitioning, per-machine CSR plan
construction, and (for ``backend="process"``) a worker-pool spawn. For
one-shot experiments that is the right shape; for a serving workload
("answer PPR queries against this graph until further notice") it is
almost all redundant work.

:class:`GraphSession` splits the pipeline at its natural seam:

* ``GraphSession.open(graph, machines=..., ...)`` fixes everything
  *graph-level* — the graph, machine count, partitioner, edge split,
  seed — and lazily caches each derived artifact the first time a run
  needs it: the prepared graph per ``(symmetric, weighted)`` program
  requirement, the partitioned graph, the per-machine
  :class:`~repro.kernels.csr.CSRPlan` lists per worker-runtime kind,
  and one warm :class:`~repro.runtime.process_backend.WorkerPool` for
  process-backend runs.
* ``session.run(algorithm, ...)`` is everything *run-level*: a fresh
  engine constructed against the cached artifacts. Fresh construction
  **is** the reset — new program state, mailboxes, delta arrays,
  :class:`~repro.cluster.stats.RunStats`, exchange plane and channel
  ledgers every time — so N back-to-back ``session.run`` calls are
  bit-identical to N fresh ``repro.run`` calls (the session-equivalence
  matrix test pins this, values + stats + trace streams, on both
  backends). The cached artifacts are precisely the ones that carry no
  run-mutable state: graphs and partitions are frozen inputs, CSR plans
  reset their scratch before use, and pool workers re-bind per run.

``repro.run`` itself is now a thin open-run-close wrapper over one
throwaway session, and the serving layer (:mod:`repro.serve`) keeps one
session resident per graph.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from repro.api.vertex_program import DeltaProgram
from repro.core.transmission import build_lazy_graph
from repro.errors import ConfigError
from repro.graph.digraph import DiGraph
from repro.obs.sinks import TRACE_FORMATS, export_trace
from repro.obs.tracer import Tracer
from repro.partition.edge_splitter import EdgeSplitConfig
from repro.powergraph.gas import GASProgram
from repro.runtime.registry import EngineSpec, get_engine
from repro.runtime.result import EngineResult
from repro.runtime.run_config import RunConfig

__all__ = ["GraphSession"]


class GraphSession:
    """A resident prepared graph that engines can be run against repeatedly.

    Use :meth:`open` (or the context-manager form) rather than the
    constructor::

        with GraphSession.open("road-usa-mini", machines=48) as session:
            a = session.run("pagerank", tolerance=1e-4)
            b = session.run("sssp", engine="lazy-vertex", source=0)

    Every ``run`` accepts the same knobs as :func:`repro.run` (minus the
    graph-level ones fixed at ``open``), either as keyword arguments or
    as a prebuilt :class:`~repro.runtime.run_config.RunConfig`.
    """

    def __init__(
        self,
        graph: Union[str, DiGraph],
        machines: int = 48,
        partitioner: str = "coordinated",
        split: Optional[EdgeSplitConfig] = None,
        seed: int = 0,
    ) -> None:
        if machines < 1:
            raise ConfigError(f"machines must be >= 1, got {machines}")
        self.graph = graph
        self.machines = machines
        self.partitioner = partitioner
        self.split = split
        self.seed = seed
        #: bumped if/when the resident graph is swapped (forward-compat
        #: with dynamic graphs); serving caches key on it
        self.graph_version = 0
        #: total engine runs served by this session
        self.runs_completed = 0
        self.last_result: Optional[EngineResult] = None
        # graph-requirement key (requires_symmetric, needs_weights) ->
        # prepared DiGraph / PartitionedGraph; plan key adds the
        # worker-runtime kind ("delta" | "gas")
        self._graphs: Dict[Tuple[bool, bool], DiGraph] = {}
        self._pgraphs: Dict[Tuple[bool, bool], Any] = {}
        self._plans: Dict[Tuple[Tuple[bool, bool], str], List[Any]] = {}
        self._pool = None  # lazy WorkerPool, created on first process run
        self._closed = False

    @classmethod
    def open(
        cls,
        graph: Union[str, DiGraph],
        machines: int = 48,
        partitioner: str = "coordinated",
        split: Optional[EdgeSplitConfig] = None,
        seed: int = 0,
    ) -> "GraphSession":
        """Open a session; graph-level choices are fixed for its lifetime."""
        return cls(
            graph, machines=machines, partitioner=partitioner,
            split=split, seed=seed,
        )

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ConfigError("session is closed")

    def _prepared(self, program) -> Tuple[Any, List[Any]]:
        """The partitioned graph + CSR plans this program runs against."""
        from repro.run_api import prepare_graph

        key = (bool(program.requires_symmetric), bool(program.needs_weights))
        if key not in self._graphs:
            self._graphs[key] = prepare_graph(
                self.graph, program, seed=self.seed
            )
        if key not in self._pgraphs:
            self._pgraphs[key] = build_lazy_graph(
                self._graphs[key], self.machines,
                partitioner=self.partitioner, split_config=self.split,
                seed=self.seed,
            )
        return self._pgraphs[key], key

    def _plans_for(self, spec: EngineSpec, pgraph, key) -> List[Any]:
        """Per-machine CSR plans for this engine family, built once."""
        from repro.kernels import CSRPlan

        kind = getattr(spec.cls, "worker_runtime", "delta")
        pkey = (key, kind)
        if pkey not in self._plans:
            if kind == "gas":
                plans: List[Any] = [
                    (
                        CSRPlan(mg.edst, mg.num_local_vertices),
                        CSRPlan(mg.esrc, mg.num_local_vertices),
                    )
                    for mg in pgraph.machines
                ]
            else:
                plans = [
                    CSRPlan(mg.esrc, mg.num_local_vertices, dst=mg.edst)
                    for mg in pgraph.machines
                ]
            self._plans[pkey] = plans
        return self._plans[pkey]

    @property
    def pool(self):
        """The session's warm worker pool (created on first access)."""
        from repro.runtime.process_backend import WorkerPool

        if self._pool is None:
            self._pool = WorkerPool()
        return self._pool

    def artifact_stats(self) -> Dict[str, Any]:
        """Cached-artifact census for the service telemetry plane."""
        return {
            "graph_version": self.graph_version,
            "runs_completed": self.runs_completed,
            "prepared_graphs": len(self._graphs),
            "partitioned_graphs": len(self._pgraphs),
            "plans": len(self._plans),
            "machines": self.machines,
            "closed": self._closed,
        }

    def pool_heartbeat(self) -> Optional[Dict[str, Any]]:
        """The warm pool's liveness heartbeat, or None if never spawned.

        Deliberately does *not* touch the lazy ``pool`` property — a
        serial-backend session must not spawn workers just because the
        telemetry ticker asked after them.
        """
        if self._pool is None:
            return None
        return self._pool.heartbeat()

    # ------------------------------------------------------------------
    def run(
        self,
        algorithm: Union[str, DeltaProgram, GASProgram],
        config: Optional[RunConfig] = None,
        **overrides: Any,
    ) -> EngineResult:
        """Run one algorithm against the resident graph.

        ``algorithm`` is a program name or instance, exactly as in
        :func:`repro.run`. Run-level knobs come from ``config`` and/or
        keyword ``overrides`` (overrides win; unknown keywords are
        algorithm parameters). Each call constructs a fresh engine over
        the cached graph artifacts, so results are bit-identical to a
        fresh ``repro.run`` with the same arguments.
        """
        self._check_open()
        if config is None:
            config = RunConfig.from_kwargs(**overrides)
        elif overrides:
            config = config.with_overrides(**overrides)
        # validation order mirrors the historical run(): trace format
        # first, then engine lookup, then program checks
        if config.trace_format not in TRACE_FORMATS:
            raise ConfigError(
                f"unknown trace format {config.trace_format!r}; known: "
                f"{', '.join(TRACE_FORMATS)}"
            )
        spec = get_engine(config.engine)
        if isinstance(algorithm, (DeltaProgram, GASProgram)):
            if config.params:
                raise ConfigError(
                    "algorithm_params only apply when algorithm is given "
                    "by name"
                )
            wanted = GASProgram if spec.program_api == "gas" else DeltaProgram
            if not isinstance(algorithm, wanted):
                raise ConfigError(
                    f"engine {config.engine!r} takes a {wanted.__name__}, "
                    f"got {type(algorithm).__name__} {algorithm.name!r}"
                )
            program = algorithm
        else:
            program = spec.make_program(algorithm, **config.params)

        pgraph, key = self._prepared(program)
        plans = self._plans_for(spec, pgraph, key)

        tracer = config.tracer
        if tracer is None and config.trace_out is not None:
            tracer = Tracer()
        pool = self.pool if config.backend == "process" else None
        kwargs = config.engine_kwargs(
            spec, seed=self.seed, tracer=tracer, pool=pool
        )
        kwargs["plans"] = plans

        self.reset()
        result = spec.cls(pgraph, program, **kwargs).run()
        if config.trace_out is not None and result.trace is not None:
            export_trace(result.trace, config.trace_out, config.trace_format)
        self.runs_completed += 1
        self.last_result = result
        return result

    def reset(self) -> None:
        """Drop per-run state, keep the cached graph artifacts + pool.

        Called implicitly at the start of every :meth:`run`; the heavy
        lifting is structural — engines are constructed fresh per run,
        so there is no run state *to* leak between runs. What remains is
        releasing the previous run's result reference.
        """
        self._check_open()
        self.last_result = None

    def close(self) -> None:
        """Release the worker pool and cached artifacts (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._graphs.clear()
        self._pgraphs.clear()
        self._plans.clear()
        self.last_result = None

    def __enter__(self) -> "GraphSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        gname = self.graph if isinstance(self.graph, str) else self.graph.name
        state = "closed" if self._closed else "open"
        return (
            f"GraphSession({gname!r}, machines={self.machines}, "
            f"partitioner={self.partitioner!r}, runs={self.runs_completed}, "
            f"{state})"
        )
