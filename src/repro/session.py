"""Reentrant engine sessions: prepare a graph once, run many times.

``repro.run(...)`` pays the full pipeline on every call — dataset load,
symmetrization/weights, vertex-cut partitioning, per-machine CSR plan
construction, and (for ``backend="process"``) a worker-pool spawn. For
one-shot experiments that is the right shape; for a serving workload
("answer PPR queries against this graph until further notice") it is
almost all redundant work.

:class:`GraphSession` splits the pipeline at its natural seam:

* ``GraphSession.open(graph, machines=..., ...)`` fixes everything
  *graph-level* — the graph, machine count, partitioner, edge split,
  seed — and lazily caches each derived artifact the first time a run
  needs it: the prepared graph per ``(symmetric, weighted)`` program
  requirement, the partitioned graph, the per-machine
  :class:`~repro.kernels.csr.CSRPlan` lists per worker-runtime kind,
  and one warm :class:`~repro.runtime.process_backend.WorkerPool` for
  process-backend runs.
* ``session.run(algorithm, ...)`` is everything *run-level*: a fresh
  engine constructed against the cached artifacts. Fresh construction
  **is** the reset — new program state, mailboxes, delta arrays,
  :class:`~repro.cluster.stats.RunStats`, exchange plane and channel
  ledgers every time — so N back-to-back ``session.run`` calls are
  bit-identical to N fresh ``repro.run`` calls (the session-equivalence
  matrix test pins this, values + stats + trace streams, on both
  backends). The cached artifacts are precisely the ones that carry no
  run-mutable state: graphs and partitions are frozen inputs, CSR plans
  reset their scratch before use, and pool workers re-bind per run.

``repro.run`` itself is now a thin open-run-close wrapper over one
throwaway session, and the serving layer (:mod:`repro.serve`) keeps one
session resident per graph.

The resident graph is *dynamic*: ``session.apply(batch)`` takes a
:class:`~repro.graph.mutation.MutationBatch`, bumps ``graph_version``,
and **patches** the cached artifacts instead of rebuilding them — each
prepared graph variant via the edge-diff layout
(:func:`~repro.graph.mutation.apply_batch` /
:func:`~repro.graph.mutation.symmetrized_patch`), the vertex-cut via
:func:`~repro.partition.dynamic.patch_partition` (kept edges stay on
their machines; added edges placed greedily; λ reported per variant,
with an optional multiplicative ``repartition_threshold`` valve), and
the per-machine CSR plans only for the machines whose local graph
actually changed. After a mutation, ``session.run(...,
incremental=True)`` warm-starts delta programs that opt in
(``supports_warm_start``) from the previous fixpoint — reseeding the
tainted/fresh slice and injecting boundary corrections via
:mod:`repro.runtime.warm_start` — and re-converges to the same fixpoint
as a cold run in a fraction of the supersteps
(``tests/integration/test_dynamic_equivalence.py`` pins the matrix;
``benchmarks/bench_dynamic.py`` prices it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.api.vertex_program import DeltaProgram
from repro.core.transmission import build_lazy_graph
from repro.errors import ConfigError
from repro.graph.digraph import DiGraph
from repro.graph.mutation import MutationBatch, apply_batch, symmetrized_patch
from repro.obs.sinks import TRACE_FORMATS, export_trace
from repro.obs.tracer import Tracer
from repro.partition.dynamic import (
    PatchStats,
    patch_partition,
    repartition_if_needed,
)
from repro.partition.edge_splitter import EdgeSplitConfig
from repro.powergraph.gas import GASProgram
from repro.runtime.registry import EngineSpec, get_engine
from repro.runtime.result import EngineResult
from repro.runtime.run_config import RunConfig
from repro.runtime.warm_start import (
    WarmStartProgram,
    collect_state,
    plan_warm_start,
)
from repro.utils.rng import derive_seed, make_rng

__all__ = ["GraphSession", "ApplyResult"]

GraphKey = Tuple[bool, bool]  # (requires_symmetric, needs_weights)


def _key_name(key: GraphKey) -> str:
    """Readable label for a prepared-graph variant key."""
    base = "symmetric" if key[0] else "directed"
    return base + ("+weights" if key[1] else "")


@dataclass
class ApplyResult:
    """What one :meth:`GraphSession.apply` did, per cached graph variant.

    ``patches`` is keyed by variant label (``"directed"``,
    ``"symmetric"``, …) and holds the partition-layer
    :class:`~repro.partition.dynamic.PatchStats` for every variant that
    had a partitioned graph cached (λ before/after, machines rebuilt,
    repartitioned vertices). Variants never yet partitioned — and
    sessions mutated before their first run — show up with no patch
    entry; they will materialize against the mutated graph lazily.
    """

    graph_version: int
    edges_added: int
    edges_removed: int
    vertices_added: int
    vertices_removed: int
    patches: Dict[str, PatchStats] = field(default_factory=dict)

    @property
    def replication_factors(self) -> Dict[str, float]:
        """Post-mutation λ per patched variant."""
        return {
            name: stats.lambda_after for name, stats in self.patches.items()
        }

    @property
    def worst_lambda(self) -> float:
        """Largest post-mutation λ across patched variants (0.0 if none)."""
        if not self.patches:
            return 0.0
        return max(s.lambda_after for s in self.patches.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "graph_version": self.graph_version,
            "edges_added": self.edges_added,
            "edges_removed": self.edges_removed,
            "vertices_added": self.vertices_added,
            "vertices_removed": self.vertices_removed,
            "worst_lambda": self.worst_lambda,
            "patches": {
                name: stats.to_dict() for name, stats in self.patches.items()
            },
        }


class GraphSession:
    """A resident prepared graph that engines can be run against repeatedly.

    Use :meth:`open` (or the context-manager form) rather than the
    constructor::

        with GraphSession.open("road-usa-mini", machines=48) as session:
            a = session.run("pagerank", tolerance=1e-4)
            b = session.run("sssp", engine="lazy-vertex", source=0)

    Every ``run`` accepts the same knobs as :func:`repro.run` (minus the
    graph-level ones fixed at ``open``), either as keyword arguments or
    as a prebuilt :class:`~repro.runtime.run_config.RunConfig`.
    """

    def __init__(
        self,
        graph: Union[str, DiGraph],
        machines: int = 48,
        partitioner: str = "coordinated",
        split: Optional[EdgeSplitConfig] = None,
        seed: int = 0,
        repartition_threshold: Optional[float] = None,
    ) -> None:
        if machines < 1:
            raise ConfigError(f"machines must be >= 1, got {machines}")
        if repartition_threshold is not None and repartition_threshold < 1.0:
            raise ConfigError(
                f"repartition_threshold is multiplicative over the "
                f"baseline λ and must be >= 1.0, got {repartition_threshold}"
            )
        self.graph = graph
        self.machines = machines
        self.partitioner = partitioner
        self.split = split
        self.seed = seed
        #: λ-drift budget for the repartition valve: after a mutation,
        #: if any variant's replication factor exceeds
        #: ``baseline λ × threshold``, the worst-replicated vertices are
        #: consolidated (xDGP-style local refinement). ``None`` disables.
        self.repartition_threshold = repartition_threshold
        #: bumped on every applied mutation batch; serving caches key on it
        self.graph_version = 0
        #: total engine runs served by this session
        self.runs_completed = 0
        self.last_result: Optional[EngineResult] = None
        self.last_apply: Optional[ApplyResult] = None
        # graph-requirement key (requires_symmetric, needs_weights) ->
        # base (as-loaded, mutations replayed) / prepared DiGraph /
        # PartitionedGraph; plan key adds the worker-runtime kind
        # ("delta" | "gas")
        self._bases: Dict[GraphKey, DiGraph] = {}
        self._graphs: Dict[GraphKey, DiGraph] = {}
        self._pgraphs: Dict[GraphKey, Any] = {}
        self._plans: Dict[Tuple[GraphKey, str], List[Any]] = {}
        #: λ the last from-scratch partitioning of each variant produced
        self._baseline_lambda: Dict[GraphKey, float] = {}
        #: every batch applied, in order — replayed when a variant is
        #: first prepared after mutations
        self._mutation_log: List[MutationBatch] = []
        #: program fingerprint -> {graph_version, graph, state}: the
        #: converged fixpoint warm starts re-run from
        self._fixpoints: Dict[Any, Dict[str, Any]] = {}
        self._pool = None  # lazy WorkerPool, created on first process run
        self._closed = False

    @classmethod
    def open(
        cls,
        graph: Union[str, DiGraph],
        machines: int = 48,
        partitioner: str = "coordinated",
        split: Optional[EdgeSplitConfig] = None,
        seed: int = 0,
        repartition_threshold: Optional[float] = None,
    ) -> "GraphSession":
        """Open a session; graph-level choices are fixed for its lifetime."""
        return cls(
            graph, machines=machines, partitioner=partitioner,
            split=split, seed=seed,
            repartition_threshold=repartition_threshold,
        )

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ConfigError("session is closed")

    def _resolve_base(self, program) -> DiGraph:
        """The program's base graph with every logged mutation replayed.

        With an empty mutation log this is exactly the graph
        ``prepare_graph`` starts from, so first-run behavior (and its
        bit-identity to ``repro.run``) is unchanged.
        """
        from repro.graph.datasets import load_dataset

        if isinstance(self.graph, str):
            g = load_dataset(self.graph, weighted=program.needs_weights)
        else:
            g = self.graph
        for batch in self._mutation_log:
            vbatch = batch if g.weights is not None else batch.without_weights()
            g, _ = apply_batch(g, vbatch)
        return g

    def _prepared(self, program) -> Tuple[Any, GraphKey]:
        """The partitioned graph + CSR plans this program runs against."""
        from repro.graph.generators import attach_uniform_weights

        key = (bool(program.requires_symmetric), bool(program.needs_weights))
        if key not in self._graphs:
            base = self._resolve_base(program)
            g = base
            if program.requires_symmetric:
                sym = g.symmetrized()
                sym.name = g.name
                g = sym
            if program.needs_weights and g.weights is None:
                g = attach_uniform_weights(
                    g, seed=derive_seed(self.seed, "weights")
                )
            self._bases[key] = base
            self._graphs[key] = g
        if key not in self._pgraphs:
            pgraph = build_lazy_graph(
                self._graphs[key], self.machines,
                partitioner=self.partitioner, split_config=self.split,
                seed=self.seed,
            )
            self._pgraphs[key] = pgraph
            self._baseline_lambda[key] = float(pgraph.replication_factor)
        return self._pgraphs[key], key

    def _plans_for(self, spec: EngineSpec, pgraph, key) -> List[Any]:
        """Per-machine CSR plans for this engine family, built once."""
        from repro.kernels import CSRPlan

        kind = getattr(spec.cls, "worker_runtime", "delta")
        pkey = (key, kind)
        if pkey not in self._plans:
            if kind == "gas":
                plans: List[Any] = [
                    (
                        CSRPlan(mg.edst, mg.num_local_vertices),
                        CSRPlan(mg.esrc, mg.num_local_vertices),
                    )
                    for mg in pgraph.machines
                ]
            else:
                plans = [
                    CSRPlan(mg.esrc, mg.num_local_vertices, dst=mg.edst)
                    for mg in pgraph.machines
                ]
            self._plans[pkey] = plans
        return self._plans[pkey]

    # ------------------------------------------------------------------
    def _patch_variant(
        self, key: GraphKey, batch: MutationBatch, next_version: int
    ) -> Tuple[Any, Optional[PatchStats]]:
        """Patch one cached graph variant in place; returns (base diff,
        partition patch stats)."""
        from repro.kernels import CSRPlan

        sym, _weighted = key
        old_base = self._bases[key]
        vbatch = (
            batch if old_base.weights is not None else batch.without_weights()
        )
        new_base, bdiff = apply_batch(old_base, vbatch)
        old_prep = self._graphs[key]
        synthetic = old_prep.weights is not None and old_base.weights is None

        if sym:
            new_prep, pdiff = symmetrized_patch(old_prep, old_base, new_base)
            if synthetic and pdiff.num_added:
                # both directions of an added pair share one derived
                # weight (symmetrized_patch appends u→v halves then v→u
                # halves); per-version seed keeps replays deterministic
                half = pdiff.num_added // 2
                rng = make_rng(derive_seed(
                    self.seed, f"weights-v{next_version}-{_key_name(key)}"
                ))
                w = rng.uniform(1.0, 10.0, size=half)
                new_prep.weights[pdiff.num_kept:] = np.concatenate([w, w])
        elif synthetic:
            rng = make_rng(derive_seed(
                self.seed, f"weights-v{next_version}-{_key_name(key)}"
            ))
            derived = rng.uniform(1.0, 10.0, size=bdiff.num_added)
            explicit = batch.explicit_weights()
            add_w = np.array(
                [
                    derived[i] if explicit[i] is None else float(explicit[i])
                    for i in range(bdiff.num_added)
                ],
                dtype=np.float64,
            )
            new_prep = DiGraph(
                new_base.num_vertices, new_base.src, new_base.dst,
                np.concatenate([old_prep.weights[bdiff.kept_eids], add_w]),
                name=old_prep.name,
            )
            pdiff = bdiff
        else:
            # prepared graph IS the base (weighted input, or no weights
            # needed) — nothing to overlay
            new_prep = new_base
            pdiff = bdiff

        pstats: Optional[PatchStats] = None
        if key in self._pgraphs:
            new_pg, pstats = patch_partition(
                self._pgraphs[key], new_prep, pdiff
            )
            new_pg, moved = repartition_if_needed(
                new_pg, self._baseline_lambda.get(key, 0.0),
                self.repartition_threshold,
            )
            if moved:
                pstats.repartitioned_vertices = moved
                pstats.lambda_after = float(new_pg.replication_factor)
                # a refinement pass is a fresh partitioning event: the
                # valve measures drift from it, not from session open
                self._baseline_lambda[key] = float(new_pg.replication_factor)
                unchanged = frozenset()
            else:
                unchanged = frozenset(pstats.machines_unchanged)
            for pkey in [pk for pk in self._plans if pk[0] == key]:
                kind = pkey[1]
                old_plans = self._plans[pkey]
                new_plans: List[Any] = []
                for i, mg in enumerate(new_pg.machines):
                    if i in unchanged:
                        new_plans.append(old_plans[i])
                    elif kind == "gas":
                        new_plans.append((
                            CSRPlan(mg.edst, mg.num_local_vertices),
                            CSRPlan(mg.esrc, mg.num_local_vertices),
                        ))
                    else:
                        new_plans.append(
                            CSRPlan(mg.esrc, mg.num_local_vertices,
                                    dst=mg.edst)
                        )
                self._plans[pkey] = new_plans
            self._pgraphs[key] = new_pg
        self._bases[key] = new_base
        self._graphs[key] = new_prep
        return bdiff, pstats

    def apply(self, batch: MutationBatch) -> ApplyResult:
        """Apply one mutation batch to the resident graph.

        Bumps :attr:`graph_version` and incrementally patches every
        cached artifact — base and prepared graphs keep their edge-id
        layout (kept edges first, then additions), the vertex-cut
        carries every surviving edge's assignment and only places the
        new edges, and per-machine CSR plans are rebuilt only for
        machines whose local graph actually changed. Fixpoint records
        from earlier runs survive, which is what makes a subsequent
        ``run(..., incremental=True)`` a warm start rather than a cold
        one.

        When :attr:`repartition_threshold` is set and a variant's λ
        drifted past ``baseline × threshold``, the worst-replicated
        vertices are consolidated before plans are rebuilt.

        Raises :class:`~repro.errors.ConfigError` for sessions opened
        with an edge ``split`` (parallel-edge dispatch is global — it
        cannot be patched locally) and
        :class:`~repro.errors.GraphError` when the batch does not fit
        the graph; on error the session is unchanged.
        """
        self._check_open()
        if not isinstance(batch, MutationBatch):
            raise ConfigError(
                f"apply() takes a MutationBatch, got {type(batch).__name__}"
            )
        if self.split is not None:
            raise ConfigError(
                "dynamic mutation does not support sessions opened with "
                "split= (parallel-edges dispatch is global); open the "
                "session without an edge split"
            )
        # validate against every cached base before touching anything,
        # so a bad batch cannot leave variants half-patched
        for key in sorted(self._graphs):
            base = self._bases[key]
            vbatch = (
                batch if base.weights is not None else batch.without_weights()
            )
            vbatch.validate(base)

        next_version = self.graph_version + 1
        patches: Dict[str, PatchStats] = {}
        edges_added = batch.num_added_edges
        edges_removed = 0
        # sorted keys put directed variants first: the reported
        # structural counts come from a directed base when one is cached
        for i, key in enumerate(sorted(self._graphs)):
            bdiff, pstats = self._patch_variant(key, batch, next_version)
            if i == 0:
                edges_added = bdiff.num_added
                edges_removed = bdiff.num_removed
            if pstats is not None:
                patches[_key_name(key)] = pstats

        self._mutation_log.append(batch)
        self.graph_version = next_version
        self.last_result = None
        result = ApplyResult(
            graph_version=next_version,
            edges_added=edges_added,
            edges_removed=edges_removed,
            vertices_added=batch.num_added_vertices,
            vertices_removed=batch.num_removed_vertices,
            patches=patches,
        )
        self.last_apply = result
        return result

    @property
    def pool(self):
        """The session's warm worker pool (created on first access)."""
        from repro.runtime.process_backend import WorkerPool

        if self._pool is None:
            self._pool = WorkerPool()
        return self._pool

    def artifact_stats(self) -> Dict[str, Any]:
        """Cached-artifact census for the service telemetry plane."""
        return {
            "graph_version": self.graph_version,
            "runs_completed": self.runs_completed,
            "prepared_graphs": len(self._graphs),
            "partitioned_graphs": len(self._pgraphs),
            "plans": len(self._plans),
            "machines": self.machines,
            "mutations_applied": len(self._mutation_log),
            "fixpoints": len(self._fixpoints),
            "closed": self._closed,
        }

    def pool_heartbeat(self) -> Optional[Dict[str, Any]]:
        """The warm pool's liveness heartbeat, or None if never spawned.

        Deliberately does *not* touch the lazy ``pool`` property — a
        serial-backend session must not spawn workers just because the
        telemetry ticker asked after them.
        """
        if self._pool is None:
            return None
        return self._pool.heartbeat()

    # ------------------------------------------------------------------
    def run(
        self,
        algorithm: Union[str, DeltaProgram, GASProgram],
        config: Optional[RunConfig] = None,
        **overrides: Any,
    ) -> EngineResult:
        """Run one algorithm against the resident graph.

        ``algorithm`` is a program name or instance, exactly as in
        :func:`repro.run`. Run-level knobs come from ``config`` and/or
        keyword ``overrides`` (overrides win; unknown keywords are
        algorithm parameters). Each call constructs a fresh engine over
        the cached graph artifacts, so results are bit-identical to a
        fresh ``repro.run`` with the same arguments.
        """
        self._check_open()
        if config is None:
            config = RunConfig.from_kwargs(**overrides)
        elif overrides:
            config = config.with_overrides(**overrides)
        # validation order mirrors the historical run(): trace format
        # first, then engine lookup, then program checks
        if config.trace_format not in TRACE_FORMATS:
            raise ConfigError(
                f"unknown trace format {config.trace_format!r}; known: "
                f"{', '.join(TRACE_FORMATS)}"
            )
        spec = get_engine(config.engine)
        if isinstance(algorithm, (DeltaProgram, GASProgram)):
            if config.params:
                raise ConfigError(
                    "algorithm_params only apply when algorithm is given "
                    "by name"
                )
            wanted = GASProgram if spec.program_api == "gas" else DeltaProgram
            if not isinstance(algorithm, wanted):
                raise ConfigError(
                    f"engine {config.engine!r} takes a {wanted.__name__}, "
                    f"got {type(algorithm).__name__} {algorithm.name!r}"
                )
            program = algorithm
        else:
            program = spec.make_program(algorithm, **config.params)

        if config.incremental:
            if spec.program_api != "delta" or not isinstance(
                program, DeltaProgram
            ):
                raise ConfigError(
                    "incremental=True requires a delta-engine run "
                    f"(engine {config.engine!r} is {spec.program_api!r})"
                )
            if not getattr(program, "supports_warm_start", False):
                raise ConfigError(
                    f"algorithm {program.name!r} does not support "
                    f"incremental runs (supports_warm_start=False)"
                )

        pgraph, key = self._prepared(program)
        plans = self._plans_for(spec, pgraph, key)

        # fixpoint bookkeeping: delta programs that opt into warm starts
        # get their converged state recorded so a later incremental run
        # (after apply()) can re-converge from the mutation frontier
        fingerprint = None
        if (
            spec.program_api == "delta"
            and isinstance(program, DeltaProgram)
            and getattr(program, "supports_warm_start", False)
            and pgraph.parallel_eids.size == 0
        ):
            fingerprint = self._fingerprint(program, key)

        warm: Optional[WarmStartProgram] = None
        record = None
        if config.incremental and fingerprint is not None:
            record = self._fixpoints.get(fingerprint)
            if record is not None:
                warm = plan_warm_start(
                    program, record["graph"], self._graphs[key],
                    record["state"],
                )

        tracer = config.tracer
        if tracer is None and config.trace_out is not None:
            tracer = Tracer()
        pool = self.pool if config.backend == "process" else None
        kwargs = config.engine_kwargs(
            spec, seed=self.seed, tracer=tracer, pool=pool
        )
        kwargs["plans"] = plans

        self.reset()
        engine = spec.cls(pgraph, warm if warm is not None else program,
                          **kwargs)
        result = engine.run()
        if fingerprint is not None:
            self._fixpoints[fingerprint] = {
                "graph_version": self.graph_version,
                "graph": self._graphs[key],
                "state": collect_state(pgraph, engine.runtimes),
            }
        if config.incremental:
            # annotated only on incremental requests so non-incremental
            # runs stay bit-identical to repro.run (stats included)
            result.stats.extra["warm_start"] = 1 if warm is not None else 0
            if warm is not None:
                result.stats.extra["warm_reseeded"] = warm.num_reseeded
                result.stats.extra["warm_injections"] = warm.num_injections
                result.stats.extra["warm_from_version"] = (
                    record["graph_version"]
                )
        if config.trace_out is not None and result.trace is not None:
            export_trace(result.trace, config.trace_out, config.trace_format)
        self.runs_completed += 1
        self.last_result = result
        return result

    def _fingerprint(self, program, key: GraphKey) -> Any:
        """Hashable identity of a program's parameterization.

        Two program instances with the same class-declared name and the
        same instance attributes (arrays compared by content) share a
        fixpoint slot; a warm-start wrapper fingerprints as its base.
        """
        base = program.base if isinstance(program, WarmStartProgram) \
            else program
        parts = []
        for attr, value in sorted(vars(base).items()):
            if isinstance(value, np.ndarray):
                parts.append((attr, tuple(value.tolist())))
            elif isinstance(value, (bool, int, float, str, type(None))):
                parts.append((attr, value))
            elif isinstance(value, (list, tuple)):
                parts.append((attr, tuple(value)))
            else:
                parts.append((attr, repr(value)))
        return (key, base.name, tuple(parts))

    def reset(self) -> None:
        """Drop per-run state, keep the cached graph artifacts + pool.

        Called implicitly at the start of every :meth:`run`; the heavy
        lifting is structural — engines are constructed fresh per run,
        so there is no run state *to* leak between runs. What remains is
        releasing the previous run's result reference.
        """
        self._check_open()
        self.last_result = None

    def close(self) -> None:
        """Release the worker pool and cached artifacts (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._bases.clear()
        self._graphs.clear()
        self._pgraphs.clear()
        self._plans.clear()
        self._baseline_lambda.clear()
        self._fixpoints.clear()
        self.last_result = None
        self.last_apply = None

    def __enter__(self) -> "GraphSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        gname = self.graph if isinstance(self.graph, str) else self.graph.name
        state = "closed" if self._closed else "open"
        return (
            f"GraphSession({gname!r}, machines={self.machines}, "
            f"partitioner={self.partitioner!r}, runs={self.runs_completed}, "
            f"{state})"
        )
