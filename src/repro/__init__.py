"""repro — a reproduction of LazyGraph (PPoPP'18).

LazyGraph replaces the *eager* replica coherency of PowerGraph-style
distributed graph engines with *lazy* coherency: replicas of a vertex
evolve independent local views and re-converge, by computation, only at
sparse data coherency points. This package reimplements the full system
— graph substrate, vertex-cut partitioning with parallel-edges, a
deterministic cluster simulator, the eager PowerGraph baselines, and the
lazy engines — in pure Python/NumPy. See DESIGN.md for the system map
and EXPERIMENTS.md for paper-vs-measured results.

Quickstart
----------
>>> import repro
>>> result = repro.run("road-usa-mini", "sssp", engine="lazy-block",
...                    machines=8)
>>> result.stats.global_syncs > 0
True
"""

from repro.api import DeltaAlgebra, DeltaProgram, MAX_ALGEBRA, MIN_ALGEBRA, SUM_ALGEBRA
from repro.algorithms import make_program, program_names
from repro.cluster import ClusterSim, CommMode, NetworkModel, RunStats
from repro.core import (
    AdaptiveIntervalModel,
    BatchedController,
    CoherencyController,
    CoherencyPolicy,
    CoherencySignals,
    LazyBlockAsyncEngine,
    LazyVertexAsyncEngine,
    NeverLazyModel,
    PaperRuleController,
    SimpleIntervalModel,
    StalenessController,
    build_lazy_graph,
    controller_names,
    get_policy,
    make_controller,
    make_interval_model,
    policy_names,
    register_policy,
)
from repro.errors import ReproError
from repro.graph import DiGraph, dataset_info, dataset_names, load_dataset
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    export_trace,
    load_trace,
    summarize_trace,
)
from repro.comms import Channel, Delivery, ExchangePlane, PayloadSchema
from repro.partition import EdgeSplitConfig, PartitionedGraph, partition_graph
from repro.powergraph import (
    PowerGraphAsyncEngine,
    PowerGraphGASSyncEngine,
    PowerGraphSyncEngine,
)
from repro.run_api import prepare_graph, run
from repro.runtime import (
    EngineResult,
    EngineSpec,
    RunConfig,
    engine_names,
    engine_specs,
    get_engine,
)
from repro.serve import GraphService, QueryRequest, ServedResult
from repro.session import GraphSession

__version__ = "1.0.0"


def __getattr__(name: str):
    # live view of the engine registry (see repro.run_api.__getattr__):
    # engines registered after import are visible here too
    if name == "ENGINE_NAMES":
        return engine_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "run",
    "prepare_graph",
    "ENGINE_NAMES",
    "GraphSession",
    "GraphService",
    "QueryRequest",
    "ServedResult",
    "RunConfig",
    "engine_names",
    "DiGraph",
    "load_dataset",
    "dataset_names",
    "dataset_info",
    "partition_graph",
    "PartitionedGraph",
    "EdgeSplitConfig",
    "build_lazy_graph",
    "DeltaProgram",
    "DeltaAlgebra",
    "SUM_ALGEBRA",
    "MIN_ALGEBRA",
    "MAX_ALGEBRA",
    "make_program",
    "program_names",
    "PowerGraphSyncEngine",
    "PowerGraphAsyncEngine",
    "PowerGraphGASSyncEngine",
    "LazyBlockAsyncEngine",
    "LazyVertexAsyncEngine",
    "EngineSpec",
    "engine_specs",
    "get_engine",
    "ExchangePlane",
    "Channel",
    "Delivery",
    "PayloadSchema",
    "AdaptiveIntervalModel",
    "SimpleIntervalModel",
    "NeverLazyModel",
    "make_interval_model",
    "CoherencyController",
    "CoherencyPolicy",
    "CoherencySignals",
    "PaperRuleController",
    "StalenessController",
    "BatchedController",
    "make_controller",
    "controller_names",
    "register_policy",
    "get_policy",
    "policy_names",
    "NetworkModel",
    "CommMode",
    "ClusterSim",
    "RunStats",
    "EngineResult",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "export_trace",
    "load_trace",
    "summarize_trace",
    "ReproError",
    "__version__",
]
