"""Per-machine runtime state and the vectorized graph operators.

This is the runtime half of the paper's §3.2 split: the engine-side
variables kept for every replica ``v`` on every machine —

* ``state`` (program arrays incl. ``vdata[v]``),
* ``msg`` / ``has_msg``      — ``message[v]``, the ⊕-accumulated inbox,
* ``delta_msg`` / ``has_delta`` — ``deltaMsg[v]``, the one-edge-received
  accumulation forwarded at coherency points,
* ``has_msg`` doubling as ``isActive[v]`` (a vertex with a pending
  message is exactly a vertex scheduled to run Apply)

— plus the two fused low-level operators ``Apply`` and
``ScatterGatherMsg`` as vectorized kernels. Messages to *local*
neighbours are direct writes into the target's ``msg`` (and, for
one-edge-mode edges only, ``deltaMsg``) exactly as the paper's
``ScatterGatherMsg`` specifies; parallel-edge messages skip ``deltaMsg``
so they are never re-sent at a coherency point.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.api.vertex_program import DeltaProgram
from repro.partition.partitioned_graph import MachineGraph

__all__ = ["MachineRuntime"]


class MachineRuntime:
    """One machine's buffers + kernels for one program run."""

    def __init__(self, mg: MachineGraph, program: DeltaProgram) -> None:
        self.mg = mg
        self.program = program
        self.algebra = program.algebra
        self.state: Dict[str, np.ndarray] = program.make_state(mg)
        n = mg.num_local_vertices
        ident = self.algebra.identity
        self.msg = np.full(n, ident, dtype=np.float64)
        self.has_msg = np.zeros(n, dtype=bool)
        self.delta_msg = np.full(n, ident, dtype=np.float64)
        self.has_delta = np.zeros(n, dtype=bool)
        # local out-CSR: local edges grouped by local source index
        order = np.argsort(mg.esrc, kind="stable").astype(np.int64)
        self.eorder = order
        self.out_indptr = np.searchsorted(
            mg.esrc[order], np.arange(n + 1)
        ).astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def num_active(self) -> int:
        """Vertices scheduled for Apply (pending messages)."""
        return int(np.count_nonzero(self.has_msg))

    def bootstrap(self) -> int:
        """Run the program's initial activation; returns edge traversals."""
        init_delta, active = self.program.initial_scatter(self.mg, self.state)
        idx = np.flatnonzero(active)
        if init_delta is None:
            # activation without a message: Apply runs with identity accum
            self.has_msg[idx] = True
            return 0
        return self.scatter(idx, init_delta[idx], track_delta=True)

    # ------------------------------------------------------------------
    def scatter(
        self, idx: np.ndarray, delta_out: np.ndarray, track_delta: bool
    ) -> int:
        """Push out-deltas of the vertices ``idx`` along local out-edges.

        Local writes only — remote delivery is the coherency machinery's
        job. One-edge-mode messages are folded into the targets'
        ``deltaMsg`` when ``track_delta`` (lazy engines); parallel-edge
        messages never are. Returns the number of edges traversed.
        """
        if idx.size == 0:
            return 0
        starts = self.out_indptr[idx]
        counts = self.out_indptr[idx + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return 0
        # flatten [starts[i], starts[i]+counts[i]) ranges
        base = np.repeat(starts, counts)
        reps = np.repeat(np.cumsum(counts) - counts, counts)
        e_sel = self.eorder[base + (np.arange(total) - reps)]
        delta_per_edge = np.repeat(delta_out, counts)
        msgv = self.program.edge_message(self.mg, e_sel, delta_per_edge)
        tgt = self.mg.edst[e_sel]
        self.algebra.combine_at(self.msg, tgt, msgv)
        self.has_msg[tgt] = True
        if track_delta:
            one_edge = ~self.mg.eparallel[e_sel]
            if one_edge.any():
                t1 = tgt[one_edge]
                self.algebra.combine_at(self.delta_msg, t1, msgv[one_edge])
                self.has_delta[t1] = True
        return total

    def take_ready(self) -> Tuple[np.ndarray, np.ndarray]:
        """Drain the inbox: (local indices, combined accums); inbox cleared."""
        idx = np.flatnonzero(self.has_msg)
        accum = self.msg[idx].copy()
        self.msg[idx] = self.algebra.identity
        self.has_msg[idx] = False
        return idx, accum

    def apply_and_scatter(
        self, idx: np.ndarray, accum: np.ndarray, track_delta: bool
    ) -> Tuple[int, int]:
        """Apply accums then scatter fired deltas; returns (edges, fires)."""
        if idx.size == 0:
            return 0, 0
        delta_out, fire = self.program.apply(self.mg, self.state, idx, accum)
        fired = idx[fire]
        edges = self.scatter(fired, delta_out[fire], track_delta)
        return edges, int(fired.size)

    def clear_deltas(self, idx: np.ndarray) -> None:
        """Reset ``deltaMsg`` after a coherency exchange."""
        self.delta_msg[idx] = self.algebra.identity
        self.has_delta[idx] = False

    def values(self) -> np.ndarray:
        """Program result values for this machine's local vertices."""
        return self.program.values(self.mg, self.state)
