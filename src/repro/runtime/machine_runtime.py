"""Per-machine runtime state and the vectorized graph operators.

This is the runtime half of the paper's §3.2 split: the engine-side
variables kept for every replica ``v`` on every machine —

* ``state`` (program arrays incl. ``vdata[v]``),
* ``msg`` / ``has_msg``      — ``message[v]``, the ⊕-accumulated inbox,
* ``delta_msg`` / ``has_delta`` — ``deltaMsg[v]``, the one-edge-received
  accumulation forwarded at coherency points,
* ``has_msg`` doubling as ``isActive[v]`` (a vertex with a pending
  message is exactly a vertex scheduled to run Apply)

— plus the two fused low-level operators ``Apply`` and
``ScatterGatherMsg`` as vectorized kernels. Messages to *local*
neighbours are direct writes into the target's ``msg`` (and, for
one-edge-mode edges only, ``deltaMsg``) exactly as the paper's
``ScatterGatherMsg`` specifies; parallel-edge messages skip ``deltaMsg``
so they are never re-sent at a coherency point.

Hot-path layout (the kernel layer)
----------------------------------
All CSR flatten structures — edge order, per-source slices, the
by-destination grouping, per-target counts, scratch buffers — are
precomputed once at construction in a
:class:`~repro.kernels.csr.CSRPlan`. ``scatter`` is
*frontier-adaptive*: sparse frontiers expand per-vertex edge ranges,
dense frontiers sweep the whole local CSR (the push/pull-style mode
switch) with zero per-call index arithmetic. Three further fusions make
the dense sweep fast:

* programs that declare an :meth:`~repro.api.vertex_program.DeltaProgram.
  edge_transform` get their per-edge operand hoisted into sorted edge
  order once, so the per-call edge-id gather and ``edge_message`` call
  disappear;
* the parallel-edge mask is pre-inverted (and skipped entirely when no
  parallel edges exist, the common case);
* a full sweep folds each target segment **once** and applies the
  segment aggregates to both ``msg`` and ``deltaMsg``
  (fold-once/apply-twice, see :mod:`repro.kernels.segment_reduce`).

All ⊕-folds are bit-identical to the historical per-call-flatten +
``ufunc.at`` spelling (``mode="generic"`` pins that baseline). Sweep
decisions are surfaced through the tracer (``sweep-mode`` instants on
change) and per-kernel host timings accumulate in :attr:`kernel_stats`.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

import numpy as np

from repro.api.vertex_program import DeltaProgram
from repro.errors import AlgorithmError
from repro.kernels import CSRPlan, KernelStats, apply_segment_sums
from repro.kernels.config import get_config
from repro.kernels.segment_reduce import monoid_kind, scatter_reduce
from repro.obs.shards import MachineCollector
from repro.obs.tracer import NULL_TRACER
from repro.partition.partitioned_graph import MachineGraph

__all__ = ["MachineRuntime"]

_TRANSFORM_OPS = ("identity", "add", "divide")


class MachineRuntime:
    """One machine's buffers + kernels for one program run."""

    def __init__(
        self, mg: MachineGraph, program: DeltaProgram, tracer=None, plan=None
    ) -> None:
        self.mg = mg
        self.program = program
        self.algebra = program.algebra
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.state: Dict[str, np.ndarray] = program.make_state(mg)
        n = mg.num_local_vertices
        ident = self.algebra.identity
        self.msg = np.full(n, ident, dtype=np.float64)
        self.has_msg = np.zeros(n, dtype=bool)
        self.delta_msg = np.full(n, ident, dtype=np.float64)
        self.has_delta = np.zeros(n, dtype=bool)
        # local out-CSR plan: edge order, per-source slices, by-target
        # grouping and scratch — computed once, reused every scatter.
        # A caller-provided plan (a GraphSession's per-machine cache)
        # must describe this exact machine graph; plans carry no
        # run-mutable state beyond reset-before-use scratch, so reuse
        # across sequential runs is bit-identical to rebuilding.
        if plan is not None:
            if plan.num_slots != n or plan.num_edges != mg.esrc.size:
                raise AlgorithmError(
                    f"machine {mg.machine_id}: cached CSR plan does not "
                    f"match the machine graph "
                    f"({plan.num_slots}x{plan.num_edges} vs "
                    f"{n}x{mg.esrc.size})"
                )
            self.out_plan = plan
        else:
            self.out_plan = CSRPlan(mg.esrc, n, dst=mg.edst)
        self.eorder = self.out_plan.eorder  # kept: tests/benches poke it
        self.out_indptr = self.out_plan.indptr
        self._epar_sorted = mg.eparallel[self.out_plan.eorder]
        self._one_edge_sorted = ~self._epar_sorted
        self._all_one_edge = bool(self._one_edge_sorted.all())
        self._kind = monoid_kind(self.algebra)
        self._init_transform(program, mg)
        # reusable scratch: take_ready accums, dense-sweep per-source
        # deltas (only fired sources' slots are ever read back), and the
        # per-target segment aggregates of the fold-once/apply-twice path
        self._accum_scratch = np.empty(n, dtype=np.float64)
        self._delta_scratch = np.empty(n, dtype=np.float64)
        self._seg_scratch = np.empty(n, dtype=np.float64)
        self.kernel_stats = KernelStats()
        self._last_sweep_mode: str = ""
        # observability shard: machine-local events go through here so a
        # buffered collector can defer them to the next merge point; the
        # default is a passthrough onto the tracer (legacy inline path).
        # BaseEngine swaps in its ShardedObs collector for this machine.
        self.obs = MachineCollector(mg.machine_id, self.tracer, buffered=False)

    def _init_transform(self, program: DeltaProgram, mg: MachineGraph) -> None:
        """Hoist the program's declarative edge transform, if any.

        Array operands are re-ordered into the plan's sorted edge order
        once, so ``scatter`` applies the transform positionally with no
        per-call edge-id gather.
        """
        tf = program.edge_transform(mg)
        self._tf_op: Optional[str] = None
        self._tf_operand = None
        if tf is None:
            return
        op, operand = tf
        if op not in _TRANSFORM_OPS:
            raise AlgorithmError(
                f"{program.name}: unknown edge_transform op {op!r} "
                f"(expected one of {_TRANSFORM_OPS})"
            )
        self._tf_op = op
        if operand is None or np.ndim(operand) == 0:
            self._tf_operand = operand
        else:
            operand = np.asarray(operand)
            if operand.shape != (self.out_plan.num_edges,):
                raise AlgorithmError(
                    f"{program.name}: edge_transform operand must be "
                    f"per-local-edge, got shape {operand.shape}"
                )
            self._tf_operand = operand[self.out_plan.eorder]

    # ------------------------------------------------------------------
    @property
    def num_active(self) -> int:
        """Vertices scheduled for Apply (pending messages)."""
        return int(np.count_nonzero(self.has_msg))

    def bootstrap(self) -> int:
        """Run the program's initial activation; returns edge traversals."""
        init_delta, active = self.program.initial_scatter(self.mg, self.state)
        idx = np.flatnonzero(active)
        if init_delta is None:
            # activation without a message: Apply runs with identity accum
            self.has_msg[idx] = True
            edges = 0
        else:
            edges = self.scatter(idx, init_delta[idx], track_delta=True)
        self.inject_initial_messages()
        return edges

    def inject_initial_messages(self) -> int:
        """Fold the program's pre-staged inbox messages (warm starts).

        Replica-consistent injections go straight into ``msg``/``has_msg``
        and never into ``deltaMsg`` — every replica stages the same
        value locally, so forwarding it at a coherency point would
        double-count. Returns the number of injected vertices.
        """
        inj = self.program.initial_messages(self.mg, self.state)
        if inj is None:
            return 0
        idx, accum = inj
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            return 0
        scatter_reduce(
            self.algebra, self.msg, idx,
            np.asarray(accum, dtype=np.float64),
        )
        self.has_msg[idx] = True
        return int(idx.size)

    # ------------------------------------------------------------------
    def _edge_messages(
        self, pos: Optional[np.ndarray], delta_per_edge: np.ndarray
    ) -> np.ndarray:
        """Per-edge message values for the selected positions.

        Uses the hoisted transform when the program declared one (no
        edge-id gather); falls back to ``edge_message`` otherwise.
        ``pos`` of ``None`` means "every local edge in sorted order".
        """
        op = self._tf_op
        if op is None or get_config().mode == "generic":
            plan = self.out_plan
            e_sel = plan.eorder if pos is None else plan.eorder[pos]
            return self.program.edge_message(self.mg, e_sel, delta_per_edge)
        if op == "identity":
            return delta_per_edge
        x = self._tf_operand
        if isinstance(x, np.ndarray) and pos is not None:
            x = x[pos]
        if op == "add":
            return delta_per_edge + x
        return delta_per_edge / x

    def scatter(
        self, idx: np.ndarray, delta_out: np.ndarray, track_delta: bool
    ) -> int:
        """Push out-deltas of the vertices ``idx`` along local out-edges.

        Local writes only — remote delivery is the coherency machinery's
        job. One-edge-mode messages are folded into the targets'
        ``deltaMsg`` when ``track_delta`` (lazy engines); parallel-edge
        messages never are. Returns the number of edges traversed.

        ``idx`` must be sorted ascending (engine frontiers are — they
        come from ``np.flatnonzero``); the frontier-adaptive sweep
        relies on it so that sparse and dense modes emit messages in
        the same order (bit-identical ⊕-folds).
        """
        if idx.size == 0:
            return 0
        plan = self.out_plan
        t0 = time.perf_counter()
        mode, pos, counts, total = plan.select(idx)
        if total == 0:
            return 0
        if counts is not None:  # sparse: expand payload per-vertex range
            delta_per_edge = np.repeat(delta_out, counts)
        else:  # dense: payload via a full per-source slot array
            dfull = self._delta_scratch
            dfull[idx] = delta_out
            keys = plan.key_sorted if pos is None else plan.key_sorted[pos]
            delta_per_edge = dfull[keys]
        msgv = self._edge_messages(pos, delta_per_edge)
        one_edge_mask = (
            None
            if self._all_one_edge
            else (self._one_edge_sorted if pos is None else self._one_edge_sorted[pos])
        )
        if mode != self._last_sweep_mode:
            self._last_sweep_mode = mode
            self.obs.instant(
                "sweep-mode",
                machine=self.mg.machine_id,
                mode=mode,
                frontier_edges=total,
                local_edges=plan.num_edges,
            )
        # ---- inbox (+ deltaMsg) fold -----------------------------------
        if pos is None:
            kernel = self._fold_full_sweep(msgv, one_edge_mask, track_delta)
        else:
            tgt = plan.dst_sorted[pos]
            kernel = scatter_reduce(self.algebra, self.msg, tgt, msgv)
            self.has_msg[tgt] = True
            if track_delta:
                if one_edge_mask is None:
                    t1, m1 = tgt, msgv
                else:
                    t1, m1 = tgt[one_edge_mask], msgv[one_edge_mask]
                if t1.size:
                    scatter_reduce(self.algebra, self.delta_msg, t1, m1)
                    self.has_delta[t1] = True
        self.kernel_stats.add(f"scatter/{mode}/{kernel}", time.perf_counter() - t0)
        return total

    def _fold_full_sweep(
        self, msgv: np.ndarray, one_edge_mask, track_delta: bool
    ) -> str:
        """Fold a full-CSR sweep's messages using plan-precomputed structure.

        Each target segment is reduced **once**; the aggregates are then
        applied to ``msg`` and (when every edge is one-edge-mode, the
        common case) re-applied to ``delta_msg`` — both bit-identical to
        the per-edge ``ufunc.at`` fold since segment contributions stay
        in sorted-edge (= historical) order.
        """
        plan = self.out_plan
        alg = self.algebra
        targets = plan.dst_targets
        if self._kind in ("min", "max"):
            # fold every target segment once into identity-filled scratch
            # (indexed ufunc.at loop), then apply the per-slot aggregates
            # to both buffers with O(n) ops — sound because min/max are
            # exact under regrouping
            seg = self._seg_scratch
            seg.fill(alg.identity)
            alg.ufunc.at(seg, plan.dst_sorted, msgv)
            self.msg[targets] = alg.ufunc(self.msg[targets], seg[targets])
            self.has_msg[targets] = True
            if track_delta:
                if one_edge_mask is None:
                    self.delta_msg[targets] = alg.ufunc(
                        self.delta_msg[targets], seg[targets]
                    )
                    self.has_delta[targets] = True
                else:
                    self._fold_delta_subset(one_edge_mask, msgv)
            return "minmax_shared"
        if self._kind == "sum":
            sums = np.bincount(
                plan.dst_sorted, weights=msgv, minlength=plan.num_slots
            )
            cnts = plan.dst_counts_full
            apply_segment_sums(self.msg, sums, cnts, plan.dst_sorted, msgv)
            self.has_msg[targets] = True
            if track_delta:
                if one_edge_mask is None:
                    apply_segment_sums(
                        self.delta_msg, sums, cnts, plan.dst_sorted, msgv
                    )
                    self.has_delta[targets] = True
                else:
                    self._fold_delta_subset(one_edge_mask, msgv)
            return "bincount_shared"
        kernel = scatter_reduce(alg, self.msg, plan.dst_sorted, msgv)
        self.has_msg[targets] = True
        if track_delta:
            if one_edge_mask is None:
                scatter_reduce(alg, self.delta_msg, plan.dst_sorted, msgv)
                self.has_delta[targets] = True
            else:
                self._fold_delta_subset(one_edge_mask, msgv)
        return kernel

    def _fold_delta_subset(self, one_edge_mask: np.ndarray, msgv: np.ndarray):
        """deltaMsg fold for a full sweep that crossed parallel edges."""
        t1 = self.out_plan.dst_sorted[one_edge_mask]
        if t1.size:
            scatter_reduce(self.algebra, self.delta_msg, t1, msgv[one_edge_mask])
            self.has_delta[t1] = True

    def take_ready(self) -> Tuple[np.ndarray, np.ndarray]:
        """Drain the inbox: (local indices, combined accums); inbox cleared.

        The accum array is a view into per-machine scratch, valid until
        the next ``take_ready`` on this runtime — every engine consumes
        it immediately (Apply reads it within the same round).
        """
        idx = np.flatnonzero(self.has_msg)
        accum = self._accum_scratch[: idx.size]
        np.take(self.msg, idx, out=accum)
        self.msg[idx] = self.algebra.identity
        self.has_msg[idx] = False
        return idx, accum

    def apply_and_scatter(
        self, idx: np.ndarray, accum: np.ndarray, track_delta: bool
    ) -> Tuple[int, int]:
        """Apply accums then scatter fired deltas; returns (edges, fires)."""
        if idx.size == 0:
            return 0, 0
        delta_out, fire = self.program.apply(self.mg, self.state, idx, accum)
        fired = idx[fire]
        edges = self.scatter(fired, delta_out[fire], track_delta)
        return edges, int(fired.size)

    def clear_deltas(self, idx: np.ndarray) -> None:
        """Reset ``deltaMsg`` after a coherency exchange."""
        self.delta_msg[idx] = self.algebra.identity
        self.has_delta[idx] = False

    def values(self) -> np.ndarray:
        """Program result values for this machine's local vertices."""
        return self.program.values(self.mg, self.state)
