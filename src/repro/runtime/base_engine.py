"""Common engine scaffolding shared by the eager, lazy, and GAS engines."""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from repro.cluster.network import NetworkModel
from repro.cluster.simulator import ClusterSim
from repro.comms import ExchangePlane
from repro.errors import ConvergenceError, EngineError
from repro.kernels import KernelStats
from repro.obs.lens import NULL_LENS
from repro.obs.shards import ShardedObs
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.partition.partitioned_graph import PartitionedGraph
from repro.runtime.backend import ExecutionBackend, resolve_backend
from repro.runtime.machine_runtime import MachineRuntime
from repro.runtime.result import EngineResult, collect_values, replica_disagreement

__all__ = ["BaseEngine"]

_DEFAULT_MAX_SUPERSTEPS = 100_000


class BaseEngine(abc.ABC):
    """Shared lifecycle for every engine running on the cluster simulator.

    The constructor owns validation (program invariants, weighted-graph
    requirements, ``max_supersteps``), simulator + tracer setup, the
    engine's :class:`~repro.comms.ExchangePlane`, and per-machine runtime
    construction (the :meth:`_make_runtimes` hook — delta engines get
    :class:`MachineRuntime`, the classic GAS engine its own machine
    state). Subclasses implement :meth:`_execute`, moving every byte
    through channels opened on ``self.comms``. ``run()`` wraps execution
    with stat/extra assembly, per-channel counter publication, result
    collection and the replica-agreement measurement.
    """

    name = "abstract-engine"
    #: which per-machine runtime a backend worker should construct
    worker_runtime = "delta"

    def __init__(
        self,
        pgraph: PartitionedGraph,
        program,
        network: Optional[NetworkModel] = None,
        max_supersteps: int = _DEFAULT_MAX_SUPERSTEPS,
        trace: bool = False,
        tracer: Optional[Tracer] = None,
        backend: Optional[ExecutionBackend] = None,
        plans: Optional[Sequence] = None,
    ) -> None:
        program.validate()
        if program.needs_weights and pgraph.graph.weights is None:
            raise EngineError(
                f"program {program.name!r} needs edge weights but the graph "
                f"is unweighted (use attach_uniform_weights or weighted=True)"
            )
        if max_supersteps < 1:
            raise EngineError(f"max_supersteps must be >= 1, got {max_supersteps}")
        self.pgraph = pgraph
        self.program = program
        self.max_supersteps = max_supersteps
        self.trace = trace
        self.sim = ClusterSim(pgraph.num_machines, network=network)
        # one tracer handle per engine: real when the caller wants spans
        # (explicit tracer, or trace=True), a no-op NullTracer otherwise
        if tracer is not None:
            self.tracer = tracer
        elif trace:
            self.tracer = Tracer()
        else:
            self.tracer = NULL_TRACER
        if self.tracer.enabled:
            self.tracer.bind_stats(self.sim.stats)
        self.comms = ExchangePlane(self.sim, tracer=self.tracer)
        # optional per-machine cached CSR plans (one entry per machine,
        # in machine order), supplied by a GraphSession so repeated runs
        # skip the argsort-heavy plan construction; consumed by
        # _make_runtimes
        if plans is not None and len(plans) != pgraph.num_machines:
            raise EngineError(
                f"plans must have one entry per machine "
                f"({len(plans)} != {pgraph.num_machines})"
            )
        self._plans = plans
        self.runtimes: List = list(self._make_runtimes())
        # per-machine observability shards (repro.obs.shards): machine
        # work spans / sweep instants buffer locally and fold into the
        # tracer at barriers and coherency points
        self.shards = ShardedObs(self.tracer, pgraph.num_machines)
        for rt in self.runtimes:
            if hasattr(rt, "obs"):
                rt.obs = self.shards.collectors[rt.mg.machine_id]
        # coherency lens (repro.obs.lens): the lazy engines swap in a
        # real CoherencyLens when asked; everything else keeps the no-op
        self.lens = NULL_LENS
        # execution backend: where the per-machine ops actually run
        # (inline by default; a worker pool for backend="process").
        # Bound last — a process backend snapshots runtime arrays into
        # shared memory and spawns its workers here.
        self.backend = resolve_backend(backend)
        self.backend.bind(self)

    def _make_runtimes(self) -> Sequence:
        """Build per-machine runtime state (override for non-delta engines)."""
        plans = self._plans or [None] * self.pgraph.num_machines
        return [
            MachineRuntime(mg, self.program, tracer=self.tracer, plan=plans[i])
            for i, mg in enumerate(self.pgraph.machines)
        ]

    # ------------------------------------------------------------------
    def _bootstrap(self, track_delta: bool) -> None:
        """Run initial activation on every machine (charged as compute).

        ``track_delta`` must match how the engine treats scatter
        messages: lazy engines fold one-edge messages into ``deltaMsg``
        from the very first message on.
        """
        with self.tracer.span("bootstrap", category="phase"):
            results = self.backend.dispatch(
                "bootstrap", {"track_delta": track_delta}
            )
            for machine_id, res in enumerate(results):
                self.sim.add_compute(machine_id, res["edges"], res["applies"])
            self.shards.merge()

    def _globally_idle(self) -> bool:
        """True when no machine has pending messages."""
        return all(rt.num_active == 0 for rt in self.runtimes)

    def _global_active_count(self) -> int:
        """Total pending-apply vertices across machines (replica-counted)."""
        return sum(rt.num_active for rt in self.runtimes)

    def _kernel_stats(self) -> KernelStats:
        """Merged per-kernel host timings across the machine runtimes.

        Delegated to the backend: worker pools hold the authoritative
        per-machine stats in their own processes.
        """
        return self.backend.kernel_stats()

    # ------------------------------------------------------------------
    def run(self) -> EngineResult:
        """Execute to convergence (or ``max_supersteps``) and collect results."""
        try:
            converged = self._execute()
            self.sim.stats.converged = converged
            # surface per-kernel host timings + sweep-mode counts (they ride
            # into traces through RunStats.to_dict)
            for key, val in self._kernel_stats().as_extra().items():
                self.sim.stats.extra[key] = val
            # per-channel ledgers ride along the same way (comms.<name>.*)
            self.comms.publish(self.sim.stats)
            # final drift measurement + lens.* summary extras (no-op when off)
            self.lens.finish(converged)
            if not converged:
                raise ConvergenceError(
                    f"{self.name}/{self.program.name} did not converge within "
                    f"{self.max_supersteps} supersteps "
                    f"({self.sim.stats.summary()})"
                )
            if self.tracer.enabled:
                self.tracer.finish(
                    engine=self.name,
                    algorithm=self.program.name,
                    machines=self.pgraph.num_machines,
                    replication_factor=float(self.pgraph.replication_factor),
                    stats=self.sim.stats.to_dict(),
                )
            return EngineResult(
                values=collect_values(self.pgraph, self.runtimes),
                stats=self.sim.stats,
                engine=self.name,
                algorithm=self.program.name,
                replica_max_disagreement=replica_disagreement(
                    self.pgraph, self.runtimes
                ),
                trace=self.tracer if self.tracer.enabled else None,
            )
        finally:
            # stop workers / release shared memory; runtime arrays are
            # copied back so results stay valid after the pool is gone
            self.backend.close()

    @abc.abstractmethod
    def _execute(self) -> bool:
        """Drive the machines to convergence; return True if converged."""
