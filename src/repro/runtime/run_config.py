"""One declarative run configuration shared by every entry point.

``repro.run(...)`` grew ~20 keyword arguments; the bench harness, the
CLI and the serving layer each re-implemented the same kwarg-assembly
dance (policy resolution, backend selection, lens gating) with subtly
different strictness. :class:`RunConfig` is the one place that logic
lives now:

* :meth:`RunConfig.engine_kwargs` is the single resolve path from a
  config to an engine constructor's keyword arguments — ``run()``,
  :meth:`repro.session.GraphSession.run`, and the bench harness all call
  it;
* ``ExperimentConfig.to_run_config()`` maps the frozen experiment-file
  dataclass onto it (preserving the harness's historical leniency: its
  default policy is silently ignored on eager engines);
* the CLI builds one from parsed arguments.

The pre-PR-10 ``interval=`` / ``coherency_mode=`` shim fields were
removed after their deprecation cycle; the coherency policy is the one
knob (:class:`~repro.core.policy.CoherencyPolicy` or a registered
name). Dynamic-graph knobs (``incremental``) live here too, so the
session, serving layer and CLI share one config object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigError

__all__ = ["RunConfig"]

_DEFAULT_MAX_SUPERSTEPS = 100_000

#: pre-PR-10 coherency knobs; naming one raises the migration ConfigError
_REMOVED_KNOBS = ("interval", "coherency_mode", "max_delta_age")


def _reject_removed_knobs(kwargs: Dict[str, Any]) -> None:
    """Fail loudly (with the ``policy=`` hint) on removed coherency knobs.

    Without this check a stray ``interval="simple"`` would silently fall
    through to ``params`` and surface as an algorithm-constructor
    TypeError far from the actual mistake.
    """
    from repro.core.policy import resolve_policy

    removed = {k: kwargs[k] for k in _REMOVED_KNOBS if kwargs.get(k) is not None}
    if removed:
        resolve_policy(
            None,
            removed.get("interval"),
            removed.get("coherency_mode"),
            removed.get("max_delta_age"),
        )


@dataclass
class RunConfig:
    """Everything that varies per engine run (nothing graph/partition-level).

    Graph-level choices — the graph itself, machine count, partitioner,
    edge split, seed — live on the :class:`~repro.session.GraphSession`;
    a ``RunConfig`` can be re-run against any session.

    Attributes mirror the historical ``repro.run`` keyword arguments;
    see its docstring for per-field semantics. ``params`` holds the
    algorithm constructor parameters (``k=10``, ``source=7``, …) that
    ``run`` accepted as ``**algorithm_params``.
    """

    engine: str = "lazy-block"
    policy: Any = None  # name | CoherencyPolicy | None
    network: Any = None  # Optional[NetworkModel]
    max_supersteps: int = _DEFAULT_MAX_SUPERSTEPS
    trace: bool = False
    trace_out: Optional[str] = None
    trace_format: str = "jsonl"
    tracer: Any = None  # Optional[Tracer]
    lens: Any = False  # bool | dict
    lens_opts: Optional[Dict[str, Any]] = None
    backend: Any = None  # name | ExecutionBackend | None
    workers: Optional[int] = None
    #: warm-start from the session's previous fixpoint for this program
    #: and inject per-mutation correction deltas (delta engines on a
    #: :class:`~repro.session.GraphSession`; falls back to a cold run
    #: when no fixpoint has been recorded yet)
    incremental: bool = False
    params: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        return tuple(f.name for f in fields(cls))

    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "RunConfig":
        """Split a mixed kwarg dict into config fields + algorithm params.

        Keys naming a :class:`RunConfig` field set that field; everything
        else lands in ``params`` (the algorithm constructor). This is the
        ergonomic path ``GraphSession.run("pagerank", tolerance=1e-3)``
        uses.
        """
        _reject_removed_knobs(kwargs)
        known = set(cls.field_names())
        config_kv = {k: v for k, v in kwargs.items() if k in known}
        params = {k: v for k, v in kwargs.items() if k not in known}
        if params:
            config_kv.setdefault("params", {}).update(params)
        return cls(**config_kv)

    def with_overrides(self, **kwargs: Any) -> "RunConfig":
        """A copy with config fields replaced / extra params overlaid."""
        _reject_removed_knobs(kwargs)
        known = set(self.field_names())
        config_kv = {k: v for k, v in kwargs.items() if k in known}
        params = {k: v for k, v in kwargs.items() if k not in known}
        out = replace(self, **config_kv)
        if params:
            out.params = {**out.params, **params}
        return out

    # ------------------------------------------------------------------
    def engine_kwargs(
        self,
        spec: Any,
        seed: int = 0,
        tracer: Any = None,
        pool: Any = None,
        strict_policy: bool = True,
    ) -> Dict[str, Any]:
        """The engine constructor kwargs this config resolves to.

        This is the single resolve path behind ``repro.run``, the
        session, and the bench harness:

        * ``backend`` is resolved (and included) only when a backend or
          worker count was requested — otherwise the engine constructs
          its own default :class:`SerialBackend`, exactly as before;
        * the coherency policy is resolved from ``policy``; engines
          without a controller layer raise :class:`ConfigError` on an
          explicit policy when ``strict_policy`` (the public-API
          behavior) and silently ignore it otherwise (the harness
          behavior — its default policy is its own dataclass default);
        * the lens request is gated on the engine's declared options.

        ``tracer`` overrides ``self.tracer`` (sessions create a fresh
        tracer per run); ``pool`` is an optional warm
        :class:`~repro.runtime.process_backend.WorkerPool` for
        ``backend="process"``.
        """
        from repro.core.policy import resolve_policy
        from repro.runtime.backend import resolve_backend

        kwargs: Dict[str, Any] = {
            "network": self.network,
            "max_supersteps": self.max_supersteps,
            "trace": self.trace,
        }
        tracer = tracer if tracer is not None else self.tracer
        if tracer is not None:
            kwargs["tracer"] = tracer
        if self.backend is not None or self.workers is not None:
            kwargs["backend"] = resolve_backend(
                self.backend, workers=self.workers, seed=seed, pool=pool
            )
        pol, explicit = resolve_policy(self.policy)
        if "controller" in spec.options:
            kwargs["controller"] = pol.make_controller()
            kwargs["coherency_mode"] = pol.mode
            if "max_delta_age" in spec.options:
                kwargs["max_delta_age"] = pol.max_delta_age
        elif explicit and strict_policy:
            raise ConfigError(
                f"engine {spec.name!r} does not take an interval model / "
                f"coherency policy (replicas are eagerly coherent)"
            )
        if "lens" in spec.options:
            kwargs["lens"] = dict(self.lens_opts) if self.lens_opts else self.lens
        elif self.lens or self.lens_opts:
            raise ConfigError(
                f"engine {spec.name!r} has no coherency lens (only the lazy "
                f"engines defer replica coherency)"
            )
        return kwargs
