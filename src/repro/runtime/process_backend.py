"""Process-parallel execution backend: spawn workers + shared memory.

Topology
--------
``ProcessBackend.bind(engine)`` re-backs every per-machine runtime array
(message mailboxes and program state; see
:func:`~repro.runtime.machine_ops.runtime_shared_arrays`) with a
``multiprocessing.shared_memory`` segment, then binds a persistent pool
of worker processes (spawn context, so everything shipped at bind must
be picklable). Machines are assigned round-robin: worker ``r`` owns
every machine ``m`` with ``m % workers == r`` and builds its own
:class:`MachineRuntime` / ``_GASMachine`` facades over the *same*
segments. The parent keeps its runtime facades too — the exchange
plane, coherency exchanger, lens, and signal taps all keep reading and
writing the exact arrays the workers compute on, which is why every
cross-machine code path stays byte-for-byte the serial code path.

Protocol
--------
One duplex pipe per worker. A freshly spawned worker idles until it
receives ``("bind", init)`` — the per-run payload (bind rank, run seed,
owned machines, machine graphs, program, kernel config, shared-memory
specs) that used to travel as spawn arguments. Binding re-seeds the
worker RNG from the run seed (`derive_seed(seed, "backend-worker-r")`,
exactly what spawn-time seeding did — no RNG is consumed between spawn
and bind, so warm-pool runs stay bit-identical to cold spawns), builds
the runtimes, attaches the segments, and acks ``("ready", None)``.

``dispatch(op, payload)`` advances the shard epoch, broadcasts
``("op", op, epoch, payload, announcements)`` (where announcements carry
lazily-attached engine-level shared arrays such as the GAS frontier),
and waits for every worker's reply. A worker runs the op on each owned
machine in ascending order with its collector clock set to
``(epoch, seq=0)``, and replies with the per-machine result dicts plus
the raw :class:`MachineCollector` event tuples, which the parent appends
to its own collectors — so the engine's next ``ShardedObs.merge()``
interleaves them in exactly the serial ``(epoch, machine, seq)`` order.
Strict request/reply sequencing means a worker is always quiescent
between dispatches: the parent-side exchange legs that run between
dispatches never race worker writes.

``("unbind",)`` tears the per-run state down (runtimes dropped, segments
closed) and acks ``("unbound", None)``; the worker then idles, ready for
the next bind. That handshake is what makes workers *reusable*: a
:class:`WorkerPool` keeps unbound workers alive across runs, so a
long-lived :class:`~repro.session.GraphSession` pays the spawn cost once
and every subsequent ``backend="process"`` run only pays the (cheap)
bind.

Failure handling: any worker death, protocol error, or timeout raises
:class:`~repro.errors.BackendError` after terminating the pool — a dead
worker can never hang the barrier. ``close()`` unbinds the workers
(returning healthy ones to a shared pool; terminating private or
unhealthy ones), copies runtime arrays back to private memory, and
unlinks every segment; ``BaseEngine.run`` calls it in a ``finally``.
Workers share the parent's ``resource_tracker`` process (the fd rides
along in the spawn preparation data) whose name cache is a set, so the
worker-side attach re-registration dedupes and the parent's unlink-time
unregister settles the books exactly once.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import time
import traceback
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import BackendError, ConfigError
from repro.kernels.config import get_config, set_config
from repro.kernels.stats import KernelStats
from repro.obs.shards import MachineCollector
from repro.obs.tracer import NULL_TRACER
from repro.runtime.backend import ExecutionBackend
from repro.runtime.machine_ops import (
    OpContext,
    run_op,
    runtime_shared_arrays,
    set_runtime_array,
)
from repro.utils.rng import derive_seed

__all__ = ["ProcessBackend", "WorkerPool"]

# (key, segment name or None when zero-sized, shape, dtype string)
_ArraySpec = Tuple[str, Optional[str], Tuple[int, ...], str]


def _attach_array(
    name: Optional[str], shape, dtype
) -> Tuple[np.ndarray, Optional[shared_memory.SharedMemory]]:
    """Map a parent-owned segment into this process (worker side)."""
    if name is None:  # zero-sized arrays are not shared
        return np.empty(shape, dtype=np.dtype(dtype)), None
    shm = shared_memory.SharedMemory(name=name)
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf), shm


class _BufferTracer:
    """Minimal stand-in keeping worker collectors in buffered mode."""

    enabled = True


def _seed_worker(seed: int, rank: int) -> None:
    """Deterministic per-worker RNG state, derived from the run seed."""
    import random

    child = derive_seed(seed, f"backend-worker-{rank}")
    random.seed(child)
    np.random.seed(child % 2**32)


def _worker_bind(init: Dict[str, Any]) -> Dict[str, Any]:  # pragma: no cover
    """Build one run's worker-side state from a ``bind`` payload."""
    _seed_worker(init["seed"], init["rank"])
    set_config(**dataclasses.asdict(init["kernel_config"]))

    program = init["program"]
    tracer = _BufferTracer() if init["tracer_enabled"] else NULL_TRACER
    segments: List[shared_memory.SharedMemory] = []
    runtimes: Dict[int, Any] = {}
    collectors: Dict[int, MachineCollector] = {}
    ctxs: Dict[int, OpContext] = {}
    shared: Dict[str, np.ndarray] = {}
    for mid in init["machines"]:
        mg = init["mgs"][mid]
        if init["runtime_kind"] == "gas":
            from repro.powergraph.engine_gas import _GASMachine

            rt = _GASMachine(mg, program)
        else:
            from repro.runtime.machine_runtime import MachineRuntime

            rt = MachineRuntime(mg, program)
        for key, name, shape, dtype in init["shm"][mid]:
            arr, shm = _attach_array(name, shape, dtype)
            if shm is not None:
                segments.append(shm)
            set_runtime_array(rt, key, arr)
        col = MachineCollector(mid, tracer, buffered=True)
        if hasattr(rt, "obs"):
            rt.obs = col
        runtimes[mid] = rt
        collectors[mid] = col
        ctxs[mid] = OpContext(
            machine_id=mid, collector=col,
            net=init["network"], shared=shared,
        )
    return {
        "machines": init["machines"],
        "runtimes": runtimes,
        "collectors": collectors,
        "ctxs": ctxs,
        "shared": shared,
        "segments": segments,
    }


def _worker_unbind(state: Optional[Dict[str, Any]]) -> None:  # pragma: no cover
    """Drop one run's worker-side state and release its segment handles."""
    if state is None:
        return
    state["runtimes"].clear()
    state["ctxs"].clear()
    state["shared"].clear()
    for shm in state["segments"]:
        try:
            shm.close()
        except BufferError:
            pass
    state["segments"].clear()


def _worker_main(conn) -> None:  # pragma: no cover
    # covered by the equivalence matrix, but in a child process where
    # coverage tooling cannot see it
    state: Optional[Dict[str, Any]] = None
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "bind":
                try:
                    state = _worker_bind(msg[1])
                    conn.send(("ready", None))
                except Exception:
                    state = None
                    conn.send(("error", traceback.format_exc()))
            elif kind == "op":
                _, op, epoch, payload, announcements = msg
                try:
                    for key, name, shape, dtype in announcements:
                        arr, shm = _attach_array(name, shape, dtype)
                        if shm is not None:
                            state["segments"].append(shm)
                        state["shared"][key] = arr
                    replies = []
                    for mid in state["machines"]:
                        col = state["collectors"][mid]
                        col.epoch = epoch
                        col._seq = 0
                        result = run_op(
                            op, state["runtimes"][mid], state["ctxs"][mid],
                            payload,
                        )
                        events = list(col.events)
                        col.events.clear()
                        replies.append((mid, result, events))
                    conn.send(("ok", replies))
                except Exception:
                    conn.send(("error", traceback.format_exc()))
            elif kind == "finalize":
                stats = [
                    (mid, getattr(state["runtimes"][mid], "kernel_stats", None))
                    for mid in state["machines"]
                ]
                conn.send(("stats", stats))
            elif kind == "unbind":
                _worker_unbind(state)
                state = None
                conn.send(("unbound", None))
            elif kind == "stop":
                break
    finally:
        _worker_unbind(state)
        conn.close()


# (process handle, parent end of its duplex pipe)
_PoolMember = Tuple[Any, Any]


class WorkerPool:
    """Reusable spawn-context worker processes, shared across backends.

    A fresh worker is protocol-idle until it receives a ``bind``; an
    unbound worker is indistinguishable from a fresh one (per-run RNG,
    kernel config, runtimes and segments all arrive at bind), so
    returning workers to the pool and re-binding them later is
    bit-identical to spawning anew — minus the spawn cost, which is the
    point. A :class:`~repro.session.GraphSession` keeps one pool warm
    for its lifetime; a standalone :class:`ProcessBackend` creates a
    private pool and closes it with the run.
    """

    def __init__(self) -> None:
        self._idle: List[_PoolMember] = []
        self._closed = False
        #: total processes ever spawned (observability/testing)
        self.spawned = 0
        #: liveness heartbeat for the service telemetry plane
        self.ops_dispatched = 0
        self.last_op_at: Optional[float] = None

    def note_op(self) -> None:
        """Stamp one dispatched op (called by backends using this pool)."""
        self.ops_dispatched += 1
        self.last_op_at = time.monotonic()

    def heartbeat(self) -> Dict[str, Any]:
        """Liveness snapshot: worker census + last-op age in seconds."""
        return {
            "spawned": self.spawned,
            "idle": self.idle_workers,
            "closed": self._closed,
            "ops_dispatched": self.ops_dispatched,
            "last_op_age_s": (
                time.monotonic() - self.last_op_at
                if self.last_op_at is not None else None
            ),
        }

    # ------------------------------------------------------------------
    def _spawn_one(self) -> _PoolMember:
        ctx = mp.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main, args=(child_conn,),
            daemon=True, name=f"repro-backend-{self.spawned}",
        )
        proc.start()
        child_conn.close()
        self.spawned += 1
        return (proc, parent_conn)

    @property
    def idle_workers(self) -> int:
        """Live workers currently parked in the pool."""
        return sum(1 for proc, _ in self._idle if proc.is_alive())

    def warm(self, count: int) -> None:
        """Pre-spawn workers so the first run does not pay the spawn."""
        while self.idle_workers < count:
            self._idle.append(self._spawn_one())

    def acquire(self, count: int) -> List[_PoolMember]:
        """Hand out ``count`` live workers (reused when possible)."""
        if self._closed:
            raise BackendError("worker pool is closed")
        out: List[_PoolMember] = []
        while self._idle and len(out) < count:
            proc, conn = self._idle.pop()
            if proc.is_alive():
                out.append((proc, conn))
            else:  # died while idle: drop silently, spawn a replacement
                try:
                    conn.close()
                except OSError:
                    pass
        while len(out) < count:
            out.append(self._spawn_one())
        return out

    def release(self, members: List[_PoolMember]) -> None:
        """Return quiescent (unbound, healthy) workers for reuse."""
        if self._closed:
            self.discard(members)
            return
        self._idle.extend(members)

    def discard(self, members: List[_PoolMember], graceful: bool = False) -> None:
        """Stop workers that will not be reused (dead, failed, or done)."""
        for proc, conn in members:
            if graceful and proc.is_alive():
                try:
                    conn.send(("stop",))
                except (OSError, ValueError):
                    pass
                proc.join(timeout=5)
            try:
                conn.close()
            except OSError:
                pass
            if proc.is_alive():
                proc.terminate()
        for proc, _ in members:
            proc.join(timeout=5)

    def close(self) -> None:
        """Stop every idle worker; further ``acquire`` calls fail."""
        if self._closed:
            return
        self._closed = True
        idle, self._idle = self._idle, []
        self.discard(idle, graceful=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclasses.dataclass
class _Worker:
    rank: int
    proc: Any
    conn: Any
    machines: List[int]


class ProcessBackend(ExecutionBackend):
    """Persistent spawn-safe worker pool over shared-memory runtimes."""

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        seed: int = 0,
        op_timeout: float = 300.0,
        start_timeout: float = 120.0,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        super().__init__()
        if workers is not None and workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.seed = seed
        self.op_timeout = op_timeout
        self.start_timeout = start_timeout
        # shared pool (kept alive by its owner, e.g. a GraphSession) vs
        # a private pool created here and closed with this backend
        self._workers_pool = pool if pool is not None else WorkerPool()
        self._own_pool = pool is None
        self.shared: Dict[str, np.ndarray] = {}
        self._segments: List[shared_memory.SharedMemory] = []
        self._runtime_views: List[Tuple[Any, str, np.ndarray]] = []
        self._pending_ann: List[_ArraySpec] = []
        self._pool: List[_Worker] = []
        self._closed = False
        self._failed = False
        self.num_workers = 0
        self.startup_s = 0.0

    # ------------------------------------------------------------------
    def _new_segment(
        self, key: str, shape, dtype, init_from: Optional[np.ndarray] = None,
        fill=None,
    ) -> Tuple[np.ndarray, Optional[str]]:
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes == 0:
            arr = np.empty(shape, dtype=dtype)
            return arr, None
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._segments.append(shm)
        arr = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        if init_from is not None:
            arr[...] = init_from
        elif fill is not None:
            arr.fill(fill)
        return arr, shm.name

    def bind(self, engine) -> None:
        if self.engine is not None:
            raise ConfigError("backend is already bound to an engine")
        self.engine = engine
        t0 = time.perf_counter()
        num_machines = engine.pgraph.num_machines
        requested = self.workers or (os.cpu_count() or 1)
        self.num_workers = max(1, min(requested, num_machines))

        # re-back every runtime array with a shared segment, in place:
        # the parent-side exchange/coherency/lens code keeps its views
        shm_specs: Dict[int, List[_ArraySpec]] = {}
        for rt in engine.runtimes:
            mid = rt.mg.machine_id
            specs: List[_ArraySpec] = []
            for key, arr in runtime_shared_arrays(rt).items():
                view, name = self._new_segment(
                    f"{mid}.{key}", arr.shape, arr.dtype, init_from=arr
                )
                set_runtime_array(rt, key, view)
                self._runtime_views.append((rt, key, view))
                specs.append((key, name, arr.shape, arr.dtype.str))
            shm_specs[mid] = specs

        kind = getattr(engine, "worker_runtime", "delta")
        mgs = {rt.mg.machine_id: rt.mg for rt in engine.runtimes}
        try:
            members = self._workers_pool.acquire(self.num_workers)
            for rank, (proc, conn) in enumerate(members):
                owned = [
                    m for m in range(num_machines)
                    if m % self.num_workers == rank
                ]
                init = {
                    "rank": rank,
                    "seed": self.seed,
                    "machines": owned,
                    "mgs": {m: mgs[m] for m in owned},
                    "program": engine.program,
                    "runtime_kind": kind,
                    "network": engine.sim.network,
                    "kernel_config": get_config(),
                    "tracer_enabled": engine.tracer.enabled,
                    "shm": {m: shm_specs[m] for m in owned},
                }
                w = _Worker(rank, proc, conn, owned)
                self._pool.append(w)
                self._send(w, ("bind", init))
            for w in self._pool:
                self._recv(w, self.start_timeout)  # ("ready", None)
        except BaseException:
            self._failed = True
            self.close()
            raise
        self.startup_s = time.perf_counter() - t0

    # ------------------------------------------------------------------
    def _terminate(self) -> None:
        self._failed = True
        for w in self._pool:
            try:
                w.conn.close()
            except OSError:
                pass
            if w.proc.is_alive():
                w.proc.terminate()
        for w in self._pool:
            w.proc.join(timeout=5)
        self._pool = []

    def _fail(self, message: str) -> None:
        self._terminate()
        self.close()  # release segments now; nothing can use them again
        raise BackendError(message)

    def _recv(self, w: _Worker, timeout: float):
        deadline = time.monotonic() + timeout
        while not w.conn.poll(0.1):
            if not w.proc.is_alive() and not w.conn.poll(0.0):
                self._fail(
                    f"backend worker {w.rank} died "
                    f"(exit code {w.proc.exitcode})"
                )
            if time.monotonic() > deadline:
                self._fail(
                    f"backend worker {w.rank} timed out after {timeout:.0f}s"
                )
        try:
            msg = w.conn.recv()
        except (EOFError, OSError):
            self._fail(f"backend worker {w.rank} closed its pipe mid-reply")
        if msg[0] == "error":
            self._fail(f"backend worker {w.rank} failed:\n{msg[1]}")
        return msg

    def _send(self, w: _Worker, msg) -> None:
        try:
            w.conn.send(msg)
        except (OSError, ValueError):
            self._fail(f"backend worker {w.rank} is unreachable (dead pipe)")

    # ------------------------------------------------------------------
    def dispatch(
        self, op: str, payload: Optional[Dict[str, Any]] = None
    ) -> List[Dict[str, Any]]:
        if self._failed or self._closed:
            raise BackendError("process backend is closed or failed")
        self._workers_pool.note_op()
        eng = self.engine
        eng.shards.tick()
        epoch = eng.shards.collectors[0].epoch
        announcements = self._pending_ann
        self._pending_ann = []
        msg = ("op", op, epoch, payload or {}, announcements)
        for w in self._pool:
            self._send(w, msg)
        results: Dict[int, Dict[str, Any]] = {}
        for w in self._pool:
            _, replies = self._recv(w, self.op_timeout)
            for mid, result, events in replies:
                results[mid] = result
                if events:
                    col = eng.shards.collectors[mid]
                    col.events.extend(events)
                    col._seq = max(col._seq, events[-1][1] + 1)
        return [results[m] for m in range(eng.pgraph.num_machines)]

    def shared_array(self, key: str, shape, dtype, fill=None) -> np.ndarray:
        if key in self.shared:
            raise ConfigError(f"shared array {key!r} already allocated")
        arr, name = self._new_segment(key, tuple(shape), dtype, fill=fill)
        self.shared[key] = arr
        if name is not None:
            self._pending_ann.append(
                (key, name, tuple(shape), np.dtype(dtype).str)
            )
        return arr

    def kernel_stats(self) -> KernelStats:
        if self._failed or self._closed:
            raise BackendError("process backend is closed or failed")
        per_machine: Dict[int, KernelStats] = {}
        for w in self._pool:
            self._send(w, ("finalize",))
        for w in self._pool:
            _, stats = self._recv(w, self.op_timeout)
            for mid, ks in stats:
                if ks is not None:
                    per_machine[mid] = ks
        merged = KernelStats.merged(
            per_machine[m] for m in sorted(per_machine)
        )
        # parent facades run no kernels in process mode, but stay in the
        # fold so any parent-side staging cost is never silently dropped
        for rt in self.engine.runtimes:
            if hasattr(rt, "kernel_stats"):
                merged.merge(rt.kernel_stats)
        return merged

    # ------------------------------------------------------------------
    def _await_unbound(self, w: _Worker) -> bool:
        """Wait for a worker's unbind ack; False on any failure.

        Close-path variant of :meth:`_recv`: never raises (``close()``
        runs in ``BaseEngine.run``'s finally and must not mask results).
        """
        deadline = time.monotonic() + min(self.op_timeout, 30.0)
        try:
            while not w.conn.poll(0.1):
                if not w.proc.is_alive():
                    return False
                if time.monotonic() > deadline:
                    return False
            msg = w.conn.recv()
        except (EOFError, OSError):
            return False
        return bool(msg) and msg[0] == "unbound"

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if not self._failed and self._pool:
            # quiesce the workers: drop per-run state, detach segments,
            # then park the healthy ones back in the pool for reuse
            pending: List[_Worker] = []
            dead: List[_Worker] = []
            for w in self._pool:
                try:
                    w.conn.send(("unbind",))
                    pending.append(w)
                except (OSError, ValueError):
                    dead.append(w)
            healthy = []
            for w in pending:
                (healthy if self._await_unbound(w) else dead).append(w)
            self._workers_pool.release([(w.proc, w.conn) for w in healthy])
            self._workers_pool.discard(
                [(w.proc, w.conn) for w in dead], graceful=False
            )
            self._pool = []
        else:
            self._terminate()
        if self._own_pool:
            self._workers_pool.close()
        # copy runtime arrays back to private memory so results stay
        # valid (and poke-able by tests) after the segments are gone
        for rt, key, view in self._runtime_views:
            set_runtime_array(rt, key, np.array(view, copy=True))
        self._runtime_views.clear()
        self.shared.clear()
        for shm in self._segments:
            try:
                shm.close()
            except BufferError:  # a stray external view; unlink anyway
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()
