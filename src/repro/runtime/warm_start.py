"""Warm-starting delta engines from a previous fixpoint after a mutation.

A converged delta run leaves a fixpoint: per-vertex state plus the
guarantee that no pending message would change it. After a small graph
mutation, almost all of that fixpoint is still exactly right — the
paper's lazy engines only need to be told *where* it is wrong. This
module computes that correction host-side (program-agnostically, by
driving the program's own hooks against a single whole-graph
:class:`MachineGraph` view) and packages it as a
:class:`WarmStartProgram`: a drop-in :class:`DeltaProgram` adapter that

* seeds every machine's state from the previous fixpoint (cold init
  only for *reseeded* vertices — see below),
* masks ``initial_scatter`` down to the reseeded vertices, and
* pre-stages replica-consistent correction messages through the
  :meth:`DeltaProgram.initial_messages` bootstrap hook.

The engine then runs completely unchanged — same kernels, same
coherency machinery — and re-converges from a frontier proportional to
the mutation, not the graph.

Two correction plans, chosen by the program's algebra:

**Idempotent (MIN/MAX — bfs, sssp, cc, msbfs).** Deleting an edge can
invalidate values that derived through it. A deleted edge ``u→v`` whose
message equalled ``F(v)`` *supported* ``v``; the taint closure follows
old-graph support edges (``edge_message(F(u)) == F(v)``) forward from
the seeds and resets every tainted vertex to its cold init. Untainted
vertices keep derivations that only use surviving edges, so their old
value remains achievable — an over-approximation the monotone relaxation
can only improve. Injections re-deliver the boundary: for every
new-graph edge from an untainted source into a tainted target (and every
*inserted* edge from an untainted source), the source's fixpoint message
is staged in the target's inbox. Tainted sources need no injection —
the masked bootstrap re-activates them and they re-scatter as they
relax.

**Invertible (SUM — pagerank, ppr).** The fixpoint encodes, per vertex,
the total delta mass received. A mutation changes *who sends what
where*: each source ``u`` has historically pushed total mass
``R(u) = vdata(u) − pending(u)`` through each of its old out-edges'
transforms. The correction is the signed difference of retroactively
replaying that mass under the new topology — computed **only over
affected edges** (deleted, inserted, and retained out-edges of
out-degree-changed sources), so every untouched term cancels by
omission, bit-exactly. Staged as one signed accum per touched vertex;
the damped propagation mops up the ripple in a handful of supersteps
and lands within the usual ``O(tolerance)`` band of a cold run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api.vertex_program import DeltaProgram
from repro.errors import AlgorithmError
from repro.graph.digraph import DiGraph
from repro.kernels.segment_reduce import scatter_reduce
from repro.partition.partitioned_graph import MachineGraph, PartitionedGraph

__all__ = [
    "WarmStartProgram",
    "plan_warm_start",
    "graph_delta",
    "global_machine_graph",
    "collect_state",
]


def global_machine_graph(graph: DiGraph) -> MachineGraph:
    """The whole graph viewed as one machine (host-side planning view).

    Lets the planner evaluate ``make_state`` / ``edge_message`` /
    ``initial_scatter`` with global ids == local ids, staying agnostic
    to how any particular program defines its messages.
    """
    n = graph.num_vertices
    return MachineGraph(
        machine_id=0,
        vertices=np.arange(n, dtype=np.int64),
        is_master=np.ones(n, dtype=bool),
        esrc=graph.src,
        edst=graph.dst,
        eweight=graph.edge_weights(),
        eparallel=np.zeros(graph.num_edges, dtype=bool),
        eglobal=np.arange(graph.num_edges, dtype=np.int64),
        out_deg_global=graph.out_degrees(),
        num_replicas=np.ones(n, dtype=np.int64),
    )


def collect_state(
    pgraph: PartitionedGraph, runtimes
) -> Dict[str, np.ndarray]:
    """Global per-vertex state arrays assembled from the master replicas.

    The fixpoint record a session keeps per program; the mirror of
    :func:`~repro.runtime.result.collect_values` but for *every* state
    key (SUM programs also need ``pending`` to reconstruct scattered
    mass).
    """
    n = pgraph.graph.num_vertices
    out: Dict[str, np.ndarray] = {}
    for rt in runtimes:
        mg = rt.mg
        masters = np.flatnonzero(mg.is_master)
        for key, arr in rt.state.items():
            if key not in out:
                out[key] = np.empty(n, dtype=arr.dtype)
            out[key][mg.vertices[masters]] = arr[masters]
    return out


def graph_delta(
    old_graph: DiGraph, new_graph: DiGraph
) -> Tuple[np.ndarray, np.ndarray]:
    """Multiset edge difference: ``(removed old eids, inserted new eids)``.

    Edges are matched by ``(src, dst)`` — plus weight when either graph
    is weighted, so a weight change counts as remove+insert (the warm
    planners must see it on both sides). Copies of parallel edges pair
    up greedily; which copy of an identical set is called "removed" is
    immaterial to the planners (identical edges produce identical
    messages).
    """
    def keyed(g: DiGraph, weighted: bool):
        if weighted:
            w = g.edge_weights()
            return list(zip(g.src.tolist(), g.dst.tolist(), w.tolist()))
        return list(zip(g.src.tolist(), g.dst.tolist()))

    weighted = old_graph.weights is not None or new_graph.weights is not None
    old_keys = keyed(old_graph, weighted)
    new_keys = keyed(new_graph, weighted)
    from collections import Counter

    old_count = Counter(old_keys)
    new_count = Counter(new_keys)
    removed: List[int] = []
    budget = {
        k: c - new_count.get(k, 0) for k, c in old_count.items()
        if c > new_count.get(k, 0)
    }
    for e, k in enumerate(old_keys):
        if budget.get(k, 0) > 0:
            removed.append(e)
            budget[k] -= 1
    inserted: List[int] = []
    budget = {
        k: c - old_count.get(k, 0) for k, c in new_count.items()
        if c > old_count.get(k, 0)
    }
    for e, k in enumerate(new_keys):
        if budget.get(k, 0) > 0:
            inserted.append(e)
            budget[k] -= 1
    return (
        np.asarray(removed, dtype=np.int64),
        np.asarray(inserted, dtype=np.int64),
    )


class WarmStartProgram(DeltaProgram):
    """A base program wrapped with a precomputed warm-start plan.

    Transparent to the engines: same algebra, same hooks, same results
    contract — only ``make_state`` (fixpoint overlay),
    ``initial_scatter`` (masked to reseeded vertices) and
    ``initial_messages`` (correction injections) differ. Top-level and
    array-valued so it pickles into spawn-based process backends.
    """

    def __init__(
        self,
        base: DeltaProgram,
        warm_state: Dict[str, np.ndarray],
        reseed: np.ndarray,
        inject_idx: np.ndarray,
        inject_val: np.ndarray,
    ) -> None:
        self.base = base
        self.warm_state = warm_state
        self.reseed = np.asarray(reseed, dtype=bool)
        self.inject_idx = np.asarray(inject_idx, dtype=np.int64)
        self.inject_val = np.asarray(inject_val, dtype=np.float64)
        # mirror the base program's declared facts
        self.name = base.name
        self.algebra = base.algebra
        self.delta_bytes = base.delta_bytes
        self.requires_symmetric = base.requires_symmetric
        self.needs_weights = base.needs_weights

    # -- plan summary (rides into stats.extra) -------------------------
    @property
    def num_reseeded(self) -> int:
        return int(np.count_nonzero(self.reseed))

    @property
    def num_injections(self) -> int:
        return int(self.inject_idx.size)

    # -- DeltaProgram hooks --------------------------------------------
    def make_state(self, mg: MachineGraph) -> Dict[str, np.ndarray]:
        state = self.base.make_state(mg)
        keep = np.flatnonzero(~self.reseed[mg.vertices])
        gids = mg.vertices[keep]
        for key, warm in self.warm_state.items():
            if key not in state:
                raise AlgorithmError(
                    f"{self.name}: warm state key {key!r} missing from "
                    f"the program's make_state"
                )
            state[key][keep] = warm[gids]
        return state

    def initial_scatter(
        self, mg: MachineGraph, state: Dict[str, np.ndarray]
    ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        init_delta, active = self.base.initial_scatter(mg, state)
        active = np.asarray(active, dtype=bool) & self.reseed[mg.vertices]
        return init_delta, active

    def initial_messages(
        self, mg: MachineGraph, state: Dict[str, np.ndarray]
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        if self.inject_idx.size == 0:
            return None
        # replica-consistent by construction: the injection table is
        # global, every machine stages the slice it hosts
        pos = np.searchsorted(self.inject_idx, mg.vertices)
        pos = np.minimum(pos, self.inject_idx.size - 1)
        hit = self.inject_idx[pos] == mg.vertices
        if not hit.any():
            return None
        return np.flatnonzero(hit), self.inject_val[pos[hit]]

    def apply(self, mg, state, idx, accum):
        return self.base.apply(mg, state, idx, accum)

    def edge_message(self, mg, edge_sel, delta_per_edge):
        return self.base.edge_message(mg, edge_sel, delta_per_edge)

    def edge_transform(self, mg):
        return self.base.edge_transform(mg)

    def values(self, mg, state):
        return self.base.values(mg, state)

    def validate(self) -> None:
        self.base.validate()
        for key, warm in self.warm_state.items():
            if warm.shape != self.reseed.shape:
                raise AlgorithmError(
                    f"{self.name}: warm state {key!r} misaligned with the "
                    f"reseed mask ({warm.shape} vs {self.reseed.shape})"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<WarmStartProgram {self.name} reseed={self.num_reseeded} "
            f"inject={self.num_injections}>"
        )


# ----------------------------------------------------------------------
def _plan_idempotent(
    program: DeltaProgram,
    old_graph: DiGraph,
    new_graph: DiGraph,
    old_state: Dict[str, np.ndarray],
    removed: np.ndarray,
    inserted: np.ndarray,
) -> WarmStartProgram:
    """MIN/MAX plan: taint closure + reset + boundary injections."""
    algebra = program.algebra
    ident = algebra.identity
    n_old = old_graph.num_vertices
    n_new = new_graph.num_vertices
    mg_old = global_machine_graph(old_graph)
    mg_new = global_machine_graph(new_graph)
    F = old_state["vdata"]
    init = program.make_state(mg_new)["vdata"]

    # --- taint seeds: deleted edges that supported their target -------
    tainted = np.zeros(n_old, dtype=bool)
    if removed.size:
        msgs = program.edge_message(mg_old, removed, F[old_graph.src[removed]])
        tgt = old_graph.dst[removed]
        seeds = tgt[(msgs == F[tgt]) & (F[tgt] != init[tgt])]
        tainted[seeds] = True

    # --- forward closure over old-graph support edges -----------------
    out_indptr, out_eids = old_graph.out_csr()
    frontier = np.flatnonzero(tainted)
    while frontier.size:
        spans = [
            out_eids[out_indptr[v]: out_indptr[v + 1]]
            for v in frontier.tolist()
        ]
        eids = np.concatenate(spans) if spans else np.empty(0, dtype=np.int64)
        if eids.size == 0:
            break
        msgs = program.edge_message(mg_old, eids, F[old_graph.src[eids]])
        tgt = old_graph.dst[eids]
        support = (msgs == F[tgt]) & (F[tgt] != init[tgt]) & ~tainted[tgt]
        frontier = np.unique(tgt[support])
        tainted[frontier] = True

    reseed = np.ones(n_new, dtype=bool)
    reseed[:n_old] = tainted

    # --- warm overlay: fixpoint values for untainted old vertices -----
    warm_state = {"vdata": init.copy()}
    keep = np.flatnonzero(~tainted)
    warm_state["vdata"][keep] = F[keep]
    for key, arr in old_state.items():
        if key == "vdata":
            continue
        cold = program.make_state(mg_new)[key]
        cold[keep] = arr[keep]
        warm_state[key] = cold

    # --- injections: untainted sources into tainted/inserted targets --
    src_ok = np.zeros(n_new, dtype=bool)
    src_ok[:n_old] = ~tainted
    cand = src_ok[new_graph.src] & reseed[new_graph.dst]
    ins_mask = np.zeros(new_graph.num_edges, dtype=bool)
    ins_mask[inserted] = True
    cand |= src_ok[new_graph.src] & ins_mask
    sel = np.flatnonzero(cand)
    buf = np.full(n_new, ident, dtype=np.float64)
    if sel.size:
        # sources are untainted old vertices: their warm value is F
        Fx = np.full(n_new, ident, dtype=np.float64)
        Fx[:n_old] = F
        msgs = program.edge_message(mg_new, sel, Fx[new_graph.src[sel]])
        scatter_reduce(algebra, buf, new_graph.dst[sel], msgs)
    inj_idx = np.flatnonzero(buf != ident)
    return WarmStartProgram(
        program, warm_state, reseed, inj_idx, buf[inj_idx]
    )


def _plan_invertible(
    program: DeltaProgram,
    old_graph: DiGraph,
    new_graph: DiGraph,
    old_state: Dict[str, np.ndarray],
    removed: np.ndarray,
    inserted: np.ndarray,
) -> WarmStartProgram:
    """SUM plan: retroactive re-scatter of historical mass, affected
    edges only (untouched terms cancel by omission)."""
    n_old = old_graph.num_vertices
    n_new = new_graph.num_vertices
    mg_old = global_machine_graph(old_graph)
    mg_new = global_machine_graph(new_graph)
    F = old_state["vdata"]
    P = old_state.get("pending")
    # total delta mass each old vertex pushed through its out-edges
    # (bootstrap + every fired pending, telescoped)
    R = F - P if P is not None else F
    R_ext = np.zeros(n_new, dtype=np.float64)
    R_ext[:n_old] = R

    # affected source set: out-degree changed across the mutation
    deg_old = old_graph.out_degrees()
    deg_new = new_graph.out_degrees()
    deg_changed = np.zeros(n_new, dtype=bool)
    deg_changed[:n_old] = deg_old != deg_new[:n_old]

    # old-side terms: deleted edges + retained out-edges of changed sources
    old_aff = np.zeros(old_graph.num_edges, dtype=bool)
    old_aff[removed] = True
    old_aff |= deg_changed[old_graph.src]
    # new-side terms: inserted edges + retained out-edges of changed sources
    new_aff = np.zeros(new_graph.num_edges, dtype=bool)
    new_aff[inserted] = True
    new_aff |= deg_changed[new_graph.src]

    corr = np.zeros(n_new, dtype=np.float64)
    sel = np.flatnonzero(new_aff)
    if sel.size:
        msgs = program.edge_message(mg_new, sel, R_ext[new_graph.src[sel]])
        np.add.at(corr, new_graph.dst[sel], msgs)
    sel = np.flatnonzero(old_aff)
    if sel.size:
        msgs = program.edge_message(mg_old, sel, R[old_graph.src[sel]])
        np.subtract.at(corr, old_graph.dst[sel], msgs)

    reseed = np.zeros(n_new, dtype=bool)
    reseed[n_old:] = True  # fresh vertices bootstrap cold

    warm_state: Dict[str, np.ndarray] = {}
    keep = np.arange(n_old, dtype=np.int64)
    for key, arr in old_state.items():
        cold = program.make_state(mg_new)[key]
        cold[keep] = arr
        warm_state[key] = cold

    inj_idx = np.flatnonzero(corr != 0.0)
    return WarmStartProgram(
        program, warm_state, reseed, inj_idx, corr[inj_idx]
    )


def plan_warm_start(
    program: DeltaProgram,
    old_graph: DiGraph,
    new_graph: DiGraph,
    old_state: Dict[str, np.ndarray],
) -> WarmStartProgram:
    """Build the warm-start adapter for re-running ``program`` after a
    mutation.

    ``old_state`` is the converged global state (from
    :func:`collect_state`) of a run of ``program`` on ``old_graph``;
    ``new_graph`` is the mutated graph. Dispatches on the program's
    algebra: idempotent → taint/reset/reseed, invertible → signed
    retroactive corrections.
    """
    if not getattr(program, "supports_warm_start", False):
        raise AlgorithmError(
            f"program {program.name!r} does not support warm starts "
            f"(supports_warm_start=False)"
        )
    if new_graph.num_vertices < old_graph.num_vertices:
        raise AlgorithmError(
            "warm start requires stable vertex ids (the vertex set can "
            "only grow)"
        )
    removed, inserted = graph_delta(old_graph, new_graph)
    if program.algebra.idempotent:
        return _plan_idempotent(
            program, old_graph, new_graph, old_state, removed, inserted
        )
    if program.algebra.inverse_ufunc is not None:
        return _plan_invertible(
            program, old_graph, new_graph, old_state, removed, inserted
        )
    raise AlgorithmError(
        f"algebra {program.algebra.name!r} is neither idempotent nor "
        f"invertible; no warm-start plan exists"
    )
