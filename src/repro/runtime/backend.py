"""Pluggable execution backends: where per-machine compute actually runs.

Engines drive their machine loops through an :class:`ExecutionBackend`:

* :class:`SerialBackend` — the default. Runs every op inline on the
  engine thread, machine-ascending, exactly the legacy lockstep loop.
* :class:`~repro.runtime.process_backend.ProcessBackend` — a persistent
  pool of spawn-safe worker processes. Each worker owns a group of
  machines whose runtime arrays live in ``multiprocessing.shared_memory``,
  so the parent-side exchange plane / coherency / lens read and write the
  *same* data the workers compute on; only op commands, small result
  dicts, and :class:`MachineCollector` event buffers cross the process
  boundary at barriers and coherency points.

The backend contract (see :mod:`repro.runtime.machine_ops`):

* ``dispatch(op, payload)`` advances the shard epoch (it replaces the
  ``shards.tick()`` that preceded every legacy machine loop), runs the
  op on every machine, and returns the per-machine result dicts in
  ascending machine order. All model-time folds stay with the engine.
* ``shared_array(key, ...)`` allocates a cross-machine array both sides
  can see (plain NumPy for serial, shared memory for processes).
* Backends are single-use: ``bind()`` once to one engine, ``close()``
  when the run finishes (``BaseEngine.run`` does this in a finally).
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.kernels.stats import KernelStats
from repro.runtime.machine_ops import OpContext, run_op

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "resolve_backend",
    "BACKEND_NAMES",
]

BACKEND_NAMES: Tuple[str, ...] = ("serial", "process")


class ExecutionBackend(abc.ABC):
    """Where an engine's per-machine ops execute."""

    name: str = "abstract"

    def __init__(self) -> None:
        self.engine = None

    @abc.abstractmethod
    def bind(self, engine) -> None:
        """Attach to one engine (called once, from ``BaseEngine.__init__``)."""

    @abc.abstractmethod
    def dispatch(
        self, op: str, payload: Optional[Dict[str, Any]] = None
    ) -> List[Dict[str, Any]]:
        """Run ``op`` on every machine; results in ascending machine order."""

    @abc.abstractmethod
    def shared_array(
        self, key: str, shape, dtype, fill=None
    ) -> np.ndarray:
        """Allocate a cross-machine array visible to engine and workers."""

    @abc.abstractmethod
    def kernel_stats(self) -> KernelStats:
        """Merged per-machine kernel stats, folded in global machine order."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release workers/segments. Idempotent; safe after failures."""


class SerialBackend(ExecutionBackend):
    """Inline lockstep execution — the bit-exactness reference."""

    name = "serial"

    def __init__(self) -> None:
        super().__init__()
        self.shared: Dict[str, np.ndarray] = {}

    def bind(self, engine) -> None:
        if self.engine is not None:
            raise ConfigError("backend is already bound to an engine")
        self.engine = engine

    def dispatch(
        self, op: str, payload: Optional[Dict[str, Any]] = None
    ) -> List[Dict[str, Any]]:
        eng = self.engine
        eng.shards.tick()
        net = eng.sim.network
        results = []
        for rt in eng.runtimes:
            mid = rt.mg.machine_id
            ctx = OpContext(
                machine_id=mid,
                collector=eng.shards.collectors[mid],
                net=net,
                shared=self.shared,
            )
            results.append(run_op(op, rt, ctx, payload or {}))
        return results

    def shared_array(self, key: str, shape, dtype, fill=None) -> np.ndarray:
        if key in self.shared:
            raise ConfigError(f"shared array {key!r} already allocated")
        arr = np.empty(shape, dtype=dtype)
        if fill is not None:
            arr.fill(fill)
        self.shared[key] = arr
        return arr

    def kernel_stats(self) -> KernelStats:
        return KernelStats.merged(
            rt.kernel_stats
            for rt in self.engine.runtimes
            if hasattr(rt, "kernel_stats")
        )

    def close(self) -> None:
        pass


def resolve_backend(
    value, workers: Optional[int] = None, seed: int = 0, pool=None
) -> ExecutionBackend:
    """Coerce a backend spec (name / instance / None) into a backend.

    ``None`` and ``"serial"`` give the inline lockstep backend;
    ``"process"`` gives a spawn-safe worker pool with ``workers``
    processes (defaults to the host CPU count, capped at the machine
    count). ``workers`` is only meaningful for the process backend.
    ``pool`` optionally hands a process backend a shared
    :class:`~repro.runtime.process_backend.WorkerPool` (kept warm by a
    :class:`~repro.session.GraphSession`) instead of a private one;
    it is ignored for serial and pre-built backends.
    """
    if isinstance(value, ExecutionBackend):
        return value
    if value is None or value == "serial":
        if workers is not None:
            raise ConfigError(
                "workers= requires the process backend (backend='process')"
            )
        return SerialBackend()
    if value == "process":
        from repro.runtime.process_backend import ProcessBackend

        return ProcessBackend(workers=workers, seed=seed, pool=pool)
    raise ConfigError(
        f"unknown backend {value!r}; expected one of {BACKEND_NAMES}"
    )
