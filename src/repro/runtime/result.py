"""Engine run results: global values, stats, replica-agreement checks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.cluster.stats import RunStats
from repro.partition.partitioned_graph import PartitionedGraph
from repro.runtime.machine_runtime import MachineRuntime

__all__ = ["EngineResult", "collect_values", "replica_disagreement"]


def collect_values(
    pgraph: PartitionedGraph, runtimes: List[MachineRuntime]
) -> np.ndarray:
    """Assemble per-global-vertex values from each vertex's master replica."""
    n = pgraph.graph.num_vertices
    out = np.empty(n, dtype=np.float64)
    for rt in runtimes:
        vals = rt.values()
        masters = rt.mg.is_master
        out[rt.mg.vertices[masters]] = vals[masters]
    return out


def replica_disagreement(
    pgraph: PartitionedGraph, runtimes: List[MachineRuntime]
) -> float:
    """Max |value difference| across replicas of any vertex.

    The paper's §3.5 theorem says this must be 0 (up to float noise for
    PageRank) after the final data coherency point — the engine test
    suite asserts it on every converged run.
    """
    n = pgraph.graph.num_vertices
    lo = np.full(n, np.inf)
    hi = np.full(n, -np.inf)
    for rt in runtimes:
        vals = rt.values()
        gids = rt.mg.vertices
        np.minimum.at(lo, gids, vals)
        np.maximum.at(hi, gids, vals)
    with np.errstate(invalid="ignore"):
        diff = hi - lo  # inf-inf (all replicas at ∞, e.g. unreachable
        # SSSP vertices) yields nan: those replicas agree by definition
    finite = np.isfinite(diff)
    return float(diff[finite].max()) if finite.any() else 0.0


@dataclass
class EngineResult:
    """Outcome of one engine run.

    Attributes
    ----------
    values:
        Per-global-vertex converged values (master replicas' view).
    stats:
        The run's :class:`~repro.cluster.stats.RunStats` counters.
    engine:
        Engine name (``"powergraph-sync"``, ``"lazy-block"``, …).
    algorithm:
        Program name.
    replica_max_disagreement:
        Measured max cross-replica value gap at termination.
    trace:
        The run's :class:`~repro.obs.tracer.Tracer` (span records,
        instants, counter samples) when tracing was enabled; ``None``
        otherwise. Export with :func:`repro.obs.export_trace`.
    """

    values: np.ndarray
    stats: RunStats
    engine: str
    algorithm: str
    replica_max_disagreement: float
    trace: Optional[object] = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"EngineResult({self.engine}/{self.algorithm}: "
            f"{self.stats.summary()})"
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dump (caches, wire transfer, archives).

        ``values`` become a plain list (floats round-trip exactly
        through Python's repr, and non-strict ``json`` handles the
        ``inf`` sentinels SSSP/BFS leave on unreachable vertices);
        ``stats`` ride through :meth:`RunStats.to_dict`. The live
        ``trace`` object is *not* serialized — export it separately
        with :func:`repro.obs.export_trace` if you need it.
        """
        return {
            "values": np.asarray(self.values, dtype=np.float64).tolist(),
            "stats": self.stats.to_dict(),
            "engine": self.engine,
            "algorithm": self.algorithm,
            "replica_max_disagreement": float(self.replica_max_disagreement),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EngineResult":
        """Rebuild a result from :meth:`to_dict` output (``trace=None``)."""
        return cls(
            values=np.asarray(data["values"], dtype=np.float64),
            stats=RunStats.from_dict(data["stats"]),
            engine=data["engine"],
            algorithm=data["algorithm"],
            replica_max_disagreement=float(data["replica_max_disagreement"]),
            trace=None,
        )
