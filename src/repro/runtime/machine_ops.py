"""Per-machine compute operations, shared by every execution backend.

Each engine's inner machine loop is a pure function of one machine's
runtime state: take the staged messages, apply, scatter, report how much
work happened. This module names those loops as *ops* so an
:class:`~repro.runtime.backend.ExecutionBackend` can run them anywhere —
inline on the engine thread (:class:`~repro.runtime.backend.SerialBackend`)
or inside a worker process that owns the machine's arrays in shared
memory (:class:`~repro.runtime.process_backend.ProcessBackend`).

The contract that keeps backends bit-identical:

* A handler may touch **only** its machine's runtime, the shared arrays
  in ``ctx.shared``, and its machine's :class:`MachineCollector` — never
  the tracer, the simulator, or another machine.
* Every model-time charge (``ClusterSim.add_compute``, channel ledgers)
  is folded by the *engine*, parent-side, from the handler's returned
  dict, in ascending machine order — exactly the legacy loop order.
* Observability events are emitted through ``ctx.collector`` with the
  same names/attributes the legacy inline loops used, so the
  ``(epoch, machine, seq)`` merge reproduces the serial record stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

import numpy as np

__all__ = ["OpContext", "run_op", "OP_HANDLERS", "runtime_shared_arrays",
           "set_runtime_array"]


@dataclass
class OpContext:
    """Everything a handler may touch besides its own runtime."""

    machine_id: int
    collector: Any  # MachineCollector (engine-side or worker-local)
    net: Any  # NetworkModel (for deterministic busy_s attributes)
    shared: Dict[str, np.ndarray]  # backend-managed cross-machine arrays


# ----------------------------------------------------------------------
# shared-memory backing: which runtime arrays must be visible to both
# the parent (exchange plane, lens, coherency) and the worker (compute)

def runtime_shared_arrays(rt) -> Dict[str, np.ndarray]:
    """Enumerate the per-machine arrays both sides must see.

    Delta runtimes expose their mailbox arrays plus all state arrays;
    GAS runtimes only carry state (their mailboxes are the engine-level
    ``gas.*`` shared arrays).
    """
    out: Dict[str, np.ndarray] = {}
    for name in ("msg", "has_msg", "delta_msg", "has_delta"):
        arr = getattr(rt, name, None)
        if isinstance(arr, np.ndarray):
            out[name] = arr
    state = getattr(rt, "state", None)
    if isinstance(state, dict):
        for key, arr in state.items():
            if isinstance(arr, np.ndarray):
                out[f"state.{key}"] = arr
    return out


def set_runtime_array(rt, key: str, arr: np.ndarray) -> None:
    """Re-point one runtime array at a (shared-memory) replacement."""
    if key.startswith("state."):
        rt.state[key[len("state."):]] = arr
    else:
        setattr(rt, key, arr)


# ----------------------------------------------------------------------
# handlers


def _op_bootstrap(rt, ctx: OpContext, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Initial scatter: stage the seed deltas (BaseEngine._bootstrap body)."""
    init_delta, active = rt.program.initial_scatter(rt.mg, rt.state)
    idx = np.flatnonzero(active)
    if init_delta is None:
        rt.has_msg[idx] = True
        edges = 0
    else:
        edges = rt.scatter(idx, init_delta[idx], track_delta=payload["track_delta"])
    # warm starts pre-stage replica-consistent inbox messages (a no-op
    # for ordinary programs); injected vertices are charged as applies
    injected = rt.inject_initial_messages()
    return {"edges": int(edges), "applies": int(idx.size) + injected}


def _op_apply_step(rt, ctx: OpContext, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Drain the mailbox and apply+scatter (the delta engines' inner loop).

    ``span=True`` wraps the work in an ``apply-machine`` collector span
    (the lazy engines' instrumented passes); ``span=False`` is the bare
    micro-iteration used inside lazy-block local stages.
    """
    track = payload["track_delta"]
    idx, accum = rt.take_ready()
    if payload.get("span"):
        with ctx.collector.span(
            "apply-machine", machine=ctx.machine_id,
            superstep=payload["superstep"],
        ) as msp:
            edges, _ = rt.apply_and_scatter(idx, accum, track_delta=track)
            msp.set(edges=edges, applies=int(idx.size),
                    busy_s=ctx.net.compute_time(edges, int(idx.size)))
    else:
        edges, _ = rt.apply_and_scatter(idx, accum, track_delta=track)
    return {
        "edges": int(edges),
        "applies": int(idx.size),
        "busy_s": ctx.net.compute_time(edges, int(idx.size)),
    }


def _op_eager_apply(rt, ctx: OpContext, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Apply the eagerly-combined accumulators (EagerExchange.apply_all leg)."""
    has = ctx.shared["eager.has"]
    total = ctx.shared["eager.total"]
    sel = has[rt.mg.vertices]
    idx = np.flatnonzero(sel)
    if idx.size:
        accum = total[rt.mg.vertices[idx]]
        edges, _ = rt.apply_and_scatter(
            idx, accum, track_delta=payload["track_delta"]
        )
    else:
        edges = 0
    return {"edges": int(edges), "applies": int(idx.size)}


def _op_gas_gather(rt, ctx: OpContext, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pull-gather over local in-edges (GAS engine gather leg).

    Returns the touched global ids and partial accumulators; the engine
    folds them into the global accumulator parent-side, in machine order.
    """
    active = ctx.shared["gas.active"]
    local_active = active[rt.mg.vertices]
    with ctx.collector.span(
        "gather-machine", machine=ctx.machine_id,
        superstep=payload["superstep"],
    ) as msp:
        idx, acc, edges = rt.gather(rt.program, local_active)
        msp.set(edges=edges, busy_s=ctx.net.compute_time(edges, 0))
    if idx.size:
        gids = rt.mg.vertices[idx]
        mirrors = int(np.count_nonzero(~rt.mg.is_master[idx]))
        acc = np.array(acc, dtype=np.float64, copy=True)  # scratch view
    else:
        gids = np.empty(0, dtype=np.int64)
        acc = np.empty(0, dtype=np.float64)
        mirrors = 0
    return {"edges": int(edges), "gids": gids, "acc": acc, "mirrors": mirrors}


def _op_gas_apply(rt, ctx: OpContext, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Apply combined accumulators on every replica (GAS engine apply leg)."""
    has = ctx.shared["gas.has"]
    total = ctx.shared["gas.total"]
    sel = has[rt.mg.vertices]
    idx = np.flatnonzero(sel)
    if idx.size == 0:
        return {"applies": 0, "out_gids": np.empty(0, dtype=np.int64)}
    with ctx.collector.span(
        "apply-machine", machine=ctx.machine_id,
        superstep=payload["superstep"],
    ) as msp:
        changed = rt.program.apply(
            rt.mg, rt.state, idx, total[rt.mg.vertices[idx]]
        )
        msp.set(applies=int(idx.size),
                busy_s=ctx.net.compute_time(0, int(idx.size)))
    fired = idx[changed]
    if fired.size:
        out_gids = rt.out_targets(fired)
    else:
        out_gids = np.empty(0, dtype=np.int64)
    return {"applies": int(idx.size), "out_gids": out_gids}


OP_HANDLERS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "bootstrap": _op_bootstrap,
    "apply_step": _op_apply_step,
    "eager_apply": _op_eager_apply,
    "gas_gather": _op_gas_gather,
    "gas_apply": _op_gas_apply,
}


def run_op(op: str, rt, ctx: OpContext, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one named op against one machine runtime."""
    return OP_HANDLERS[op](rt, ctx, payload or {})
