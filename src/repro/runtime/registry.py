"""The engine registry: one authoritative table of runnable engines.

``run_api``, the CLI, the bench harness, and the engine-equivalence /
trace-parity test matrices all enumerate this registry instead of
keeping hand-rolled dicts — registering an engine here makes it
reachable from ``repro.run(...)``, ``python -m repro.cli run``, the
benchmark configs, and the cross-engine test sweeps at once.

Builtin registration is lazy (:func:`_ensure_builtin` imports the engine
modules on first access) so importing :mod:`repro.runtime` does not drag
in every engine family and their import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigError

__all__ = ["EngineSpec", "register", "get_engine", "engine_names", "engine_specs"]


@dataclass(frozen=True)
class EngineSpec:
    """One registered engine: its class plus how to drive it.

    Attributes
    ----------
    name:
        Public engine name (``"lazy-block"``, ``"powergraph-gas-sync"``).
    cls:
        Engine class; constructor ``(pgraph, program, network=...,
        max_supersteps=..., trace=..., tracer=...)`` plus ``options``.
    family:
        ``"eager"`` (replicas coherent every update/superstep) or
        ``"lazy"`` (coherency deferred to coherency points).
    program_api:
        ``"delta"`` for push-style :class:`DeltaProgram` engines,
        ``"gas"`` for the classic pull-style :class:`GASProgram` engine.
    options:
        Extra constructor keyword names this engine accepts beyond the
        common ones (drives run_api/CLI kwarg filtering).
    description:
        One line for ``--help`` and docs.
    """

    name: str
    cls: type
    family: str
    program_api: str = "delta"
    options: Tuple[str, ...] = ()
    description: str = ""

    def make_program(self, algorithm: str, **params):
        """Build this engine's program flavour from an algorithm name."""
        if self.program_api == "gas":
            from repro.powergraph.gas import make_gas_program

            return make_gas_program(algorithm, **params)
        from repro.algorithms import make_program

        return make_program(algorithm, **params)


_REGISTRY: Dict[str, EngineSpec] = {}
_builtin_loaded = False


def register(spec: EngineSpec) -> EngineSpec:
    """Add an engine to the registry (name must be unused)."""
    if spec.name in _REGISTRY:
        raise ConfigError(f"engine {spec.name!r} is already registered")
    if spec.family not in ("eager", "lazy"):
        raise ConfigError(
            f"engine {spec.name!r}: family must be 'eager' or 'lazy', "
            f"got {spec.family!r}"
        )
    if spec.program_api not in ("delta", "gas"):
        raise ConfigError(
            f"engine {spec.name!r}: program_api must be 'delta' or 'gas', "
            f"got {spec.program_api!r}"
        )
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_builtin() -> None:
    global _builtin_loaded
    if _builtin_loaded:
        return
    _builtin_loaded = True
    from repro.core.lazy_block_async import LazyBlockAsyncEngine
    from repro.core.lazy_vertex_async import LazyVertexAsyncEngine
    from repro.powergraph.engine_async import PowerGraphAsyncEngine
    from repro.powergraph.engine_gas import PowerGraphGASSyncEngine
    from repro.powergraph.engine_sync import PowerGraphSyncEngine

    register(EngineSpec(
        name="powergraph-sync",
        cls=PowerGraphSyncEngine,
        family="eager",
        description="eager BSP delta engine (2 rounds + 3 syncs/superstep)",
    ))
    register(EngineSpec(
        name="powergraph-async",
        cls=PowerGraphAsyncEngine,
        family="eager",
        description="eager asynchronous delta engine (fine-grained messages)",
    ))
    register(EngineSpec(
        name="powergraph-gas-sync",
        cls=PowerGraphGASSyncEngine,
        family="eager",
        program_api="gas",
        description="classic full-gather GAS BSP engine (PowerGraph native)",
    ))
    register(EngineSpec(
        name="lazy-block",
        cls=LazyBlockAsyncEngine,
        family="lazy",
        options=("interval_model", "coherency_mode", "lens", "controller"),
        description="LazyGraph bulk engine (Algorithm 1: local stages + "
                    "coherency points)",
    ))
    register(EngineSpec(
        name="lazy-vertex",
        cls=LazyVertexAsyncEngine,
        family="lazy",
        options=("coherency_mode", "max_delta_age", "lens", "controller"),
        description="LazyGraph per-vertex asynchronous engine (Algorithm 2)",
    ))


def get_engine(name: str) -> EngineSpec:
    """Look an engine up by name (:class:`ConfigError` if unknown)."""
    _ensure_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown engine {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def engine_names() -> Tuple[str, ...]:
    """All registered engine names, sorted."""
    _ensure_builtin()
    return tuple(sorted(_REGISTRY))


def engine_specs() -> Tuple[EngineSpec, ...]:
    """All registered specs, sorted by name."""
    _ensure_builtin()
    return tuple(_REGISTRY[n] for n in engine_names())
