"""Shared engine runtime: per-machine buffers, kernels, results.

Both engine families (eager :mod:`repro.powergraph` and lazy
:mod:`repro.core`) drive the same per-machine runtime —
:class:`MachineRuntime` holds the paper's runtime variables
(``vdata``, ``message[v]``, ``deltaMsg[v]``, ``isActive[v]``) and the
vectorized Apply/Scatter kernels; :class:`EngineResult` assembles global
results and exposes the replica-agreement check used to test the
paper's §3.5 correctness theorem. Execution backends
(:mod:`repro.runtime.backend`) decide *where* the per-machine ops run:
inline (serial) or on a shared-memory worker pool (process).
"""

from repro.runtime.machine_runtime import MachineRuntime
from repro.runtime.result import EngineResult
from repro.runtime.run_config import RunConfig
from repro.runtime.backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    SerialBackend,
    resolve_backend,
)
from repro.runtime.base_engine import BaseEngine
from repro.runtime.registry import (
    EngineSpec,
    engine_names,
    engine_specs,
    get_engine,
    register,
)

__all__ = [
    "MachineRuntime",
    "EngineResult",
    "RunConfig",
    "BaseEngine",
    "EngineSpec",
    "engine_names",
    "engine_specs",
    "get_engine",
    "register",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "resolve_backend",
]
