"""Classic Gather-Apply-Scatter programs (paper §2.1).

The delta programs in :mod:`repro.algorithms` are the *push-style*
formulation LazyGraph requires (§3.1). PowerGraph's native abstraction
is different: each superstep, an active vertex **gathers** over all its
in-edges (recomputing the full neighbour aggregate, not consuming
deltas), **applies** the combined accumulator, and **scatters**
activation to out-neighbours. The paper notes the consequence: "for
PageRank, LazyAsync uses a variant of PageRank (PageRank-Delta)" while
PowerGraph runs the standard full-gather program.

This module provides the classic abstraction plus the standard programs,
so the baseline comparison can be run both ways (see
``benchmarks/bench_gas_baseline.py``: the full-gather baseline is
strictly more expensive, which makes the Fig 9 speedups measured against
the delta baseline *conservative*).
"""

from __future__ import annotations

import abc
from typing import Dict, Tuple

import numpy as np

from repro.api.vertex_program import DeltaAlgebra, MIN_ALGEBRA, SUM_ALGEBRA
from repro.errors import AlgorithmError
from repro.partition.partitioned_graph import MachineGraph

__all__ = [
    "GASProgram",
    "GASPageRank",
    "GASConnectedComponents",
    "GASSSSP",
    "GAS_ALGORITHM_NAMES",
    "make_gas_program",
]


class GASProgram(abc.ABC):
    """A classic pull-style GAS vertex program.

    Hooks (all vectorized over one machine's local arrays):

    * :meth:`make_state` — allocate per-vertex data (``vdata``).
    * :meth:`gather_values` — per-edge gather contribution computed from
      the *source end's current data* (the pull).
    * ``algebra`` — the commutative/associative Sum combining gathers.
    * :meth:`apply` — fold the full accumulator; report which vertices
      changed enough to activate their out-neighbours.
    * :meth:`initially_active` — the starting frontier.
    """

    name: str = "abstract-gas"
    algebra: DeltaAlgebra = SUM_ALGEBRA
    value_bytes: int = 16
    requires_symmetric: bool = False
    needs_weights: bool = False

    @abc.abstractmethod
    def make_state(self, mg: MachineGraph) -> Dict[str, np.ndarray]:
        """Allocate this machine's vertex data."""

    @abc.abstractmethod
    def initially_active(self, mg: MachineGraph) -> np.ndarray:
        """Boolean mask of initially-active local vertices."""

    @abc.abstractmethod
    def gather_values(
        self,
        mg: MachineGraph,
        state: Dict[str, np.ndarray],
        edge_sel: np.ndarray,
    ) -> np.ndarray:
        """Per-edge contribution pulled from each edge's source replica."""

    @abc.abstractmethod
    def apply(
        self,
        mg: MachineGraph,
        state: Dict[str, np.ndarray],
        idx: np.ndarray,
        accum: np.ndarray,
    ) -> np.ndarray:
        """Fold accumulators; return a bool mask (aligned with ``idx``)
        of vertices whose change activates their out-neighbours."""

    def values(self, mg: MachineGraph, state: Dict[str, np.ndarray]) -> np.ndarray:
        """Result values (default ``state['vdata']``)."""
        return state["vdata"]

    def validate(self) -> None:
        if self.value_bytes <= 0:
            raise AlgorithmError(f"{self.name}: value_bytes must be positive")


class GASPageRank(GASProgram):
    """Standard full-gather PageRank (what PowerGraph's toolkit runs)."""

    name = "gas-pagerank"
    algebra = SUM_ALGEBRA

    def __init__(self, damping: float = 0.85, tolerance: float = 1e-3) -> None:
        if not 0.0 < damping < 1.0:
            raise AlgorithmError(f"damping must be in (0, 1), got {damping}")
        if tolerance <= 0:
            raise AlgorithmError(f"tolerance must be > 0, got {tolerance}")
        self.damping = damping
        self.tolerance = tolerance

    def make_state(self, mg: MachineGraph) -> Dict[str, np.ndarray]:
        return {"vdata": np.full(mg.num_local_vertices, 1.0 - self.damping)}

    def initially_active(self, mg: MachineGraph) -> np.ndarray:
        return np.ones(mg.num_local_vertices, dtype=bool)

    def gather_values(self, mg, state, edge_sel):
        src = mg.esrc[edge_sel]
        return state["vdata"][src] / mg.out_deg_global[src]

    def apply(self, mg, state, idx, accum):
        new = (1.0 - self.damping) + self.damping * accum
        changed = np.abs(new - state["vdata"][idx]) > self.tolerance
        state["vdata"][idx] = new
        return changed


class GASConnectedComponents(GASProgram):
    """Min-label propagation in classic pull form."""

    name = "gas-cc"
    algebra = MIN_ALGEBRA
    requires_symmetric = True

    def make_state(self, mg: MachineGraph) -> Dict[str, np.ndarray]:
        return {"vdata": mg.vertices.astype(np.float64)}

    def initially_active(self, mg: MachineGraph) -> np.ndarray:
        return np.ones(mg.num_local_vertices, dtype=bool)

    def gather_values(self, mg, state, edge_sel):
        return state["vdata"][mg.esrc[edge_sel]]

    def apply(self, mg, state, idx, accum):
        improved = accum < state["vdata"][idx]
        state["vdata"][idx] = np.minimum(state["vdata"][idx], accum)
        return improved


class GASSSSP(GASProgram):
    """Bellman-Ford relaxation in classic pull form."""

    name = "gas-sssp"
    algebra = MIN_ALGEBRA
    needs_weights = True

    def __init__(self, source: int = 0) -> None:
        if source < 0:
            raise AlgorithmError(f"source must be >= 0, got {source}")
        self.source = source

    def make_state(self, mg: MachineGraph) -> Dict[str, np.ndarray]:
        dist = np.full(mg.num_local_vertices, np.inf)
        dist[mg.vertices == self.source] = 0.0
        return {"vdata": dist}

    def initially_active(self, mg: MachineGraph) -> np.ndarray:
        return mg.vertices == self.source

    def gather_values(self, mg, state, edge_sel):
        return state["vdata"][mg.esrc[edge_sel]] + mg.eweight[edge_sel]

    def apply(self, mg, state, idx, accum):
        improved = accum < state["vdata"][idx]
        state["vdata"][idx] = np.minimum(state["vdata"][idx], accum)
        return improved


# ---------------------------------------------------------------------
# Named construction (mirrors repro.algorithms.make_program for the
# delta programs) so the engine registry can build GAS programs from the
# same ``algorithm`` / ``algorithm_params`` surface as repro.run(...).
_GAS_PROGRAMS: Dict[str, type] = {
    "pagerank": GASPageRank,
    "cc": GASConnectedComponents,
    "sssp": GASSSSP,
}

#: Algorithms with a classic full-gather formulation (bfs/kcore/ppr have
#: delta formulations only).
GAS_ALGORITHM_NAMES: Tuple[str, ...] = tuple(sorted(_GAS_PROGRAMS))


def make_gas_program(name: str, **params) -> GASProgram:
    """Build a classic GAS program by algorithm name."""
    try:
        cls = _GAS_PROGRAMS[name]
    except KeyError:
        raise AlgorithmError(
            f"no classic GAS formulation of {name!r}; "
            f"known: {', '.join(GAS_ALGORITHM_NAMES)}"
        ) from None
    return cls(**params)
