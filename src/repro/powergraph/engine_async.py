"""PowerGraph Async: the eager asynchronous baseline.

Same eager replica coherency as Sync — every update of a replicated
vertex is immediately pushed to all its replicas — but no global
barriers: machines proceed independently and updates become visible "as
soon as possible" (§2.2 ISSUE III).

Modeling approximations (documented per DESIGN.md §2)
-----------------------------------------------------
A faithful event-driven replay of GraphLab's chromatic/locking engine is
out of scope; we keep the *data flow* identical to the eager exchange
(so results and byte counts are exact) and model the asynchronous
execution's costs per round:

* no ``global_syncs`` are counted and no barrier latency is charged;
* traffic is charged per fine-grained message: the volume cost is
  multiplied by ``async_unbatched_penalty`` (small-packet and
  per-message locking overhead, in place of Sync's batched rounds);
* each round adds ``async_round_overhead_s`` of engine overhead
  (distributed locking, fiber scheduling, termination detection) — the
  known reason PowerGraph Async degrades on high-diameter graphs
  (paper Fig 12(c,d): Async loses scalability beyond 16 machines);
* per-machine compute is folded without a barrier
  (:meth:`ClusterSim.settle_async`), charging the busiest machine's
  serialized message handling.
"""

from __future__ import annotations

from repro.cluster.termination import TerminationDetector
from repro.powergraph.eager_exchange import EagerExchange
from repro.runtime.base_engine import BaseEngine

__all__ = ["PowerGraphAsyncEngine"]


class PowerGraphAsyncEngine(BaseEngine):
    """Eager asynchronous engine (modeled costs, exact data flow)."""

    name = "powergraph-async"

    def _execute(self) -> bool:
        sim = self.sim
        net = sim.network
        shards = self.shards
        exchange = EagerExchange(
            self.pgraph, self.program, self.runtimes,
            plane=self.comms, fine_grained=True, backend=self.backend,
        )
        detector = TerminationDetector(sim, channel=self.comms.control)
        idle_flags = [True] * sim.num_machines
        sent_total = 0
        self._bootstrap(track_delta=False)

        tracer = self.tracer
        for step in range(self.max_supersteps):
            with tracer.span("superstep", category="superstep", superstep=step):
                traffic = exchange.collect()
                exchange.ship_fine_grained(traffic)
                if not exchange.anything_pending:
                    # quiescent: the engine only *learns* this through the
                    # termination-detection protocol (two clean probes)
                    with tracer.span("termination-probe", category="phase"):
                        done = detector.probe(idle_flags, sent_total, sent_total)
                    if done:
                        return True
                    sim.stats.supersteps += 1
                    if self.trace:
                        sim.stats.snapshot(active=0, msgs=0)
                    continue
                detector.reset()
                sent_total += traffic.total_msgs
                with tracer.span("exchange-apply", category="phase") as sp:
                    # apply_all dispatches eager_apply (epoch-advancing);
                    # the second tick is for the parent-side work spans
                    work = exchange.apply_all(track_delta=False)
                    shards.tick()
                    for machine_id, (edges, applies) in enumerate(work):
                        if tracer.enabled:
                            shards.collectors[machine_id].span(
                                "apply-machine",
                                machine=machine_id, superstep=step,
                                edges=edges, applies=applies,
                                busy_s=net.compute_time(edges, applies),
                            ).end()
                        sim.add_compute(machine_id, edges, applies)
                    shards.merge()
                    # fine-grained comm: unbatched volume + engine overhead
                    exchange.charge_fine_grained_round(traffic)
                    sim.settle_async(traffic.sent_per_machine)
                    sp.set(msgs=traffic.total_msgs, bytes=traffic.total_bytes)
                sim.stats.supersteps += 1
                if self.trace:
                    sim.stats.snapshot(
                        active=self._global_active_count(),
                        msgs=traffic.total_msgs,
                    )
        return False
