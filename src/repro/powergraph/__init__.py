"""Eager-coherency baseline engines (reimplementation of PowerGraph).

These engines realize the *eager data coherency* approach the paper
argues against (§2.2, ISSUE I–III): replicas of a vertex are an atomic
unit — every superstep, mirrors ship their partial accumulators to the
master, the master applies, and the updated value is immediately
replicated back, costing **two communication rounds and three global
synchronizations per superstep**. One-edge transmission only.

* :class:`PowerGraphSyncEngine` — the BSP variant (the paper's primary
  baseline in Figs 9–12);
* :class:`PowerGraphAsyncEngine` — the asynchronous variant: same eager
  coherency, no global barriers, fine-grained per-update messaging
  (modeled; see the class docstring for the approximations).
"""

from repro.powergraph.engine_sync import PowerGraphSyncEngine
from repro.powergraph.engine_async import PowerGraphAsyncEngine
from repro.powergraph.engine_gas import PowerGraphGASSyncEngine
from repro.powergraph.eager_exchange import EagerExchange
from repro.powergraph.gas import (
    GAS_ALGORITHM_NAMES,
    GASConnectedComponents,
    GASPageRank,
    GASProgram,
    GASSSSP,
    make_gas_program,
)

__all__ = [
    "PowerGraphSyncEngine",
    "PowerGraphAsyncEngine",
    "PowerGraphGASSyncEngine",
    "EagerExchange",
    "GASProgram",
    "GASPageRank",
    "GASConnectedComponents",
    "GASSSSP",
    "GAS_ALGORITHM_NAMES",
    "make_gas_program",
]
