"""PowerGraph Sync: the eager BSP baseline (paper's primary comparator).

Each superstep performs the full eager GAS cycle with the costs the
paper attributes to it (§2.2): **two communication rounds** (mirror→
master accumulators, master→mirror updated data) and **three global
synchronizations** (after gather, after apply, after scatter). Changes
to vertex data are batch-processed but still eagerly replicated every
superstep — replicas never diverge.
"""

from __future__ import annotations

from repro.powergraph.eager_exchange import EagerExchange
from repro.runtime.base_engine import BaseEngine

__all__ = ["PowerGraphSyncEngine"]


class PowerGraphSyncEngine(BaseEngine):
    """Eager synchronous (BSP) engine."""

    name = "powergraph-sync"

    def _execute(self) -> bool:
        sim = self.sim
        net = sim.network
        tracer = self.tracer
        shards = self.shards
        exchange = EagerExchange(
            self.pgraph, self.program, self.runtimes, plane=self.comms,
            backend=self.backend,
        )
        self._bootstrap(track_delta=False)

        for step in range(self.max_supersteps):
            with tracer.span("superstep", category="superstep", superstep=step):
                # ---- gather leg: mirrors ship accums to masters -------
                with tracer.span("gather", category="phase") as sp:
                    traffic = exchange.collect()
                    sp.set(gather_msgs=traffic.gather_msgs,
                           gather_bytes=traffic.gather_bytes)
                    exchange.ship_gather(traffic)  # sync #1 (gather complete)
                if not exchange.anything_pending:
                    return True

                # ---- apply on every replica + broadcast leg -----------
                with tracer.span("apply", category="phase") as sp:
                    # apply_all dispatches the eager_apply op (which
                    # advances the shard epoch, replacing the legacy
                    # pre-loop tick); the second tick opens the epoch
                    # for the parent-side per-machine work spans
                    work = exchange.apply_all(track_delta=False)
                    shards.tick()
                    for machine_id, (edges, applies) in enumerate(work):
                        if tracer.enabled:
                            shards.collectors[machine_id].span(
                                "apply-machine",
                                machine=machine_id, superstep=step,
                                edges=edges, applies=applies,
                                busy_s=net.compute_time(edges, applies),
                            ).end()
                        sim.add_compute(machine_id, edges, applies)
                    shards.merge()
                    sp.set(bcast_msgs=traffic.bcast_msgs,
                           bcast_bytes=traffic.bcast_bytes)
                    exchange.ship_broadcast(traffic)  # sync #2 (replication)

                # ---- scatter already ran fused with apply -------------
                with tracer.span("scatter", category="phase"):
                    self.comms.control.barrier()  # sync #3 (scatter complete)
                sim.stats.supersteps += 1
                if self.trace:
                    sim.stats.snapshot(
                        active=self._global_active_count(),
                        gather_msgs=traffic.gather_msgs,
                        bcast_msgs=traffic.bcast_msgs,
                    )
        return False
