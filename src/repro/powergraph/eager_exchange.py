"""The eager coherency exchange shared by both PowerGraph engines.

One eager superstep moves data exactly as PowerGraph's GAS cycle
(paper Fig 2a):

1. **gather leg** — every replica with pending messages sends its
   partial accumulator to the vertex's master (mirror→master traffic:
   one delta per mirror with an accum);
2. **apply** — the combined accumulator is folded into the vertex; in
   the real system the master applies and replicates the new value, here
   every replica deterministically replays the same Apply on the same
   total accum (bit-identical state, same traffic charged);
3. **broadcast leg** — the updated value/activation reaches every other
   replica of each applied vertex (master→mirror traffic:
   ``num_replicas − 1`` per applied vertex).

The two engines differ only in *when* this runs and how time/sync is
charged, so the data movement lives here once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.api.vertex_program import DeltaProgram
from repro.comms import (
    BROADCAST,
    GATHER,
    ONE_EDGE,
    Delivery,
    ExchangePlane,
    delta_schema,
)
from repro.partition.partitioned_graph import PartitionedGraph
from repro.runtime.machine_runtime import MachineRuntime

__all__ = ["EagerExchange", "EagerLegTraffic"]


@dataclass(frozen=True)
class EagerLegTraffic:
    """Traffic of one eager superstep, split by leg and by machine."""

    gather_bytes: float
    gather_msgs: int
    bcast_bytes: float
    bcast_msgs: int
    # per-machine message counts (for the Async engine's time model)
    sent_per_machine: np.ndarray

    @property
    def total_bytes(self) -> float:
        return self.gather_bytes + self.bcast_bytes

    @property
    def total_msgs(self) -> int:
        return self.gather_msgs + self.bcast_msgs


class EagerExchange:
    """Stages accums globally and replays Apply coherently on all replicas.

    When given an exchange ``plane``, it also owns the *channel plan* of
    the eager protocol: a batched engine moves each leg over the BSP
    ``gather`` / ``broadcast`` channels (:meth:`ship_gather` /
    :meth:`ship_broadcast`), while a ``fine_grained`` engine moves both
    legs' records one edge at a time over the ``one_edge`` channel
    (:meth:`ship_fine_grained` + :meth:`charge_fine_grained_round`).
    Without a plane it only stages traffic — the mode used by unit tests
    and the staging benchmarks.
    """

    def __init__(
        self,
        pgraph: PartitionedGraph,
        program: DeltaProgram,
        runtimes: List[MachineRuntime],
        plane: Optional[ExchangePlane] = None,
        fine_grained: bool = False,
        backend=None,
    ) -> None:
        self.pgraph = pgraph
        self.program = program
        self.runtimes = runtimes
        self.backend = backend
        self.gather_ch = self.bcast_ch = self.one_edge_ch = None
        if plane is not None:
            schema = delta_schema(program)
            if fine_grained:
                self.one_edge_ch = plane.open(
                    ONE_EDGE, schema, Delivery.ASYNC_FINE_GRAINED
                )
            else:
                self.gather_ch = plane.open(GATHER, schema, Delivery.BSP)
                self.bcast_ch = plane.open(BROADCAST, schema, Delivery.BSP)
        n = pgraph.graph.num_vertices
        if backend is not None:
            # backend-visible staging: the apply leg runs where the
            # machines run (worker processes for the process backend)
            self._total = backend.shared_array("eager.total", (n,), np.float64)
            self._has = backend.shared_array("eager.has", (n,), bool)
        else:
            self._total = np.empty(n, dtype=np.float64)
            self._has = np.empty(n, dtype=bool)

    # ------------------------------------------------------------------
    def collect(self) -> EagerLegTraffic:
        """Drain all inboxes into the global accumulator; price the legs."""
        alg = self.program.algebra
        n = self.pgraph.graph.num_vertices
        self._total.fill(alg.identity)
        self._has.fill(False)
        gather_msgs = 0
        sent = np.zeros(self.pgraph.num_machines, dtype=np.int64)
        for rt in self.runtimes:
            idx, accum = rt.take_ready()
            if idx.size == 0:
                continue
            gids = rt.mg.vertices[idx]
            alg.combine_at(self._total, gids, accum)
            self._has[gids] = True
            n_mirror = int(np.count_nonzero(~rt.mg.is_master[idx]))
            gather_msgs += n_mirror
            sent[rt.mg.machine_id] += n_mirror
        # broadcast leg: every applied vertex's update reaches its other
        # replicas (charged to the master's machine)
        applied = np.flatnonzero(self._has)
        bcast_per_vertex = self.pgraph.num_replicas[applied] - 1
        bcast_msgs = int(bcast_per_vertex.sum())
        masters = self.pgraph.master_of[applied]
        np.add.at(sent, masters, bcast_per_vertex)
        b = self.program.delta_bytes
        return EagerLegTraffic(
            gather_bytes=float(gather_msgs * b),
            gather_msgs=gather_msgs,
            bcast_bytes=float(bcast_msgs * b),
            bcast_msgs=bcast_msgs,
            sent_per_machine=sent,
        )

    @property
    def anything_pending(self) -> bool:
        """Did :meth:`collect` stage any accumulator?"""
        return bool(self._has.any())

    # ---- channel plans -----------------------------------------------
    def ship_gather(self, traffic: EagerLegTraffic) -> None:
        """Move the mirror→master leg: one batched BSP round + barrier."""
        self.gather_ch.bsp_leg(traffic.gather_bytes, traffic.gather_msgs)

    def ship_broadcast(self, traffic: EagerLegTraffic) -> None:
        """Move the master→mirror leg: one batched BSP round + barrier."""
        self.bcast_ch.bsp_leg(traffic.bcast_bytes, traffic.bcast_msgs)

    def ship_fine_grained(self, traffic: EagerLegTraffic) -> None:
        """Count both legs' records as fine-grained one-edge messages."""
        self.one_edge_ch.transfer(traffic.total_bytes, traffic.total_msgs)

    def charge_fine_grained_round(self, traffic: EagerLegTraffic) -> None:
        """Price one unbatched round (volume × penalty + engine overhead)."""
        self.one_edge_ch.round(traffic.total_bytes)

    def apply_all(self, track_delta: bool = False) -> List[tuple]:
        """Replay Apply+Scatter of the staged accums on every replica.

        Returns per-machine ``(edges, applies)`` work tuples for the
        caller to charge as compute. With a backend attached this runs
        as the ``eager_apply`` op (advancing the shard epoch, exactly
        like the legacy pre-loop ``shards.tick()``); the plane-less
        staging mode used by unit tests keeps the inline loop.
        """
        if self.backend is not None:
            results = self.backend.dispatch(
                "eager_apply", {"track_delta": track_delta}
            )
            return [(res["edges"], res["applies"]) for res in results]
        work = []
        for rt in self.runtimes:
            sel = self._has[rt.mg.vertices]
            idx = np.flatnonzero(sel)
            if idx.size:
                accum = self._total[rt.mg.vertices[idx]]
                edges, _ = rt.apply_and_scatter(idx, accum, track_delta)
            else:
                edges = 0
            work.append((edges, int(idx.size)))
        return work
