"""Classic full-gather GAS Sync engine (the native PowerGraph loop).

Each superstep, every replica of an active vertex *pulls* over its local
in-edges, mirrors ship partial accumulators to the master, every replica
applies the combined accumulator (eager coherency), and changed vertices
activate their out-neighbours. Exactly the eager cost structure of §2.2:
two communication rounds and three global synchronizations per
superstep — but unlike the delta engines, the gather recomputes the full
neighbour aggregate every time a vertex activates, which is why standard
GAS PageRank does strictly more edge work than PageRank-Delta (measured
in ``benchmarks/bench_gas_baseline.py``).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.comms import BROADCAST, GATHER, Delivery, value_schema
from repro.kernels import CSRPlan, scatter_reduce
from repro.partition.partitioned_graph import MachineGraph
from repro.powergraph.gas import GASProgram
from repro.runtime.base_engine import BaseEngine

__all__ = ["PowerGraphGASSyncEngine"]


class _GASMachine:
    """Per-machine state for the pull engine: data + cached CSR plans.

    Both local CSRs (in-edges for gather, out-edges for activation) are
    :class:`~repro.kernels.csr.CSRPlan` instances, so the flatten
    structures and scratch are built once and every per-superstep edge
    selection is frontier-adaptive (sparse range expansion vs a dense
    full-CSR sweep).
    """

    def __init__(
        self, mg: MachineGraph, program: GASProgram, plans=None
    ) -> None:
        self.mg = mg
        self.program = program
        self.state = program.make_state(mg)
        n = mg.num_local_vertices
        # plans: an optional cached (in_plan, out_plan) pair from a
        # GraphSession — must describe this exact machine graph
        if plans is not None:
            self.in_plan, self.out_plan = plans
        else:
            self.in_plan = CSRPlan(mg.edst, n)
            self.out_plan = CSRPlan(mg.esrc, n)
        self._acc_scratch = np.empty(n, dtype=np.float64)

    def values(self) -> np.ndarray:
        """Local per-replica values (the generic result-collection view)."""
        return self.program.values(self.mg, self.state)

    def _edges_of(self, plan: CSRPlan, idx: np.ndarray) -> np.ndarray:
        mode, pos, _counts, total = plan.select(idx)
        if total == 0:
            return np.empty(0, dtype=np.int64)
        if pos is None:  # dense-full sweep: every local edge
            return plan.eorder
        return plan.eorder[pos]

    def gather(self, program: GASProgram, active_local: np.ndarray):
        """Pull over local in-edges of the active local vertices.

        Returns ``(local idx with in-edges, partial accums, edges pulled)``.
        The accums are views into per-machine scratch, consumed by the
        caller before the next gather. The in-plan is keyed by target,
        so the fold targets are the sorted keys themselves; a dense-full
        sweep reuses the plan's precomputed per-slot counts and touched
        set (the counts hint unlocks the buffered sum kernel).
        """
        idx = np.flatnonzero(active_local)
        if idx.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0), 0
        plan = self.in_plan
        mode, pos, _counts, total = plan.select(idx)
        if total == 0:
            return np.empty(0, dtype=np.int64), np.empty(0), 0
        if pos is None:  # dense-full: every local in-edge, sorted by target
            e_sel = plan.eorder
            tgt = plan.key_sorted
            counts = plan.counts
            touched = plan.nonempty_slots
        else:
            e_sel = plan.eorder[pos]
            tgt = plan.key_sorted[pos]  # == mg.edst[e_sel], no gather
            counts = None
            # tgt is ascending (positions are in sorted-key order), so
            # the touched set falls out of the segment boundaries
            bounds = np.flatnonzero(tgt[1:] != tgt[:-1]) + 1
            touched = tgt[np.concatenate(([0], bounds))]
        vals = program.gather_values(self.mg, self.state, e_sel)
        alg = program.algebra
        acc = self._acc_scratch
        acc.fill(alg.identity)
        scatter_reduce(alg, acc, tgt, vals, counts=counts)
        return touched, acc[touched], int(e_sel.size)

    def out_targets(self, idx: np.ndarray) -> np.ndarray:
        """Global ids reached by the out-edges of local vertices ``idx``."""
        e_sel = self._edges_of(self.out_plan, idx)
        if e_sel.size == 0:
            return np.empty(0, dtype=np.int64)
        return self.mg.vertices[self.mg.edst[e_sel]]


class PowerGraphGASSyncEngine(BaseEngine):
    """Eager BSP engine for classic pull-style GAS programs.

    Shares the full :class:`BaseEngine` lifecycle (validation, simulator
    and tracer setup, exchange plane, result assembly) with the delta
    engines; only the runtime state (:class:`_GASMachine`) and the
    superstep loop are GAS-specific. Full vertex values travel on the
    ``gather`` / ``broadcast`` BSP channels, sized by the program's
    ``value_bytes`` (the delta engines ship ``delta_bytes`` records on
    the same-named channels — that size gap is the paper's Fig 9).
    """

    name = "powergraph-gas-sync"
    worker_runtime = "gas"

    def _make_runtimes(self) -> List[_GASMachine]:
        plans = self._plans or [None] * self.pgraph.num_machines
        return [
            _GASMachine(mg, self.program, plans=plans[i])
            for i, mg in enumerate(self.pgraph.machines)
        ]

    @property
    def machines(self) -> List[_GASMachine]:
        """Alias kept for the GAS benchmarks' direct machine access."""
        return self.runtimes

    # ------------------------------------------------------------------
    def _execute(self) -> bool:
        sim = self.sim
        prog = self.program
        alg = prog.algebra
        n = self.pgraph.graph.num_vertices
        schema = value_schema(prog)
        gather_ch = self.comms.open(GATHER, schema, Delivery.BSP)
        bcast_ch = self.comms.open(BROADCAST, schema, Delivery.BSP)

        # pull semantics: an "active" vertex re-gathers its in-edges, so
        # the initial frontier must also cover the out-neighbours of the
        # initially-active vertices (they are who can see the seed data).
        # The frontier and the staged accumulator live in backend shared
        # arrays: the gather/apply ops read them wherever they run.
        active = self.backend.shared_array("gas.active", (n,), bool, fill=False)
        for gm in self.runtimes:
            seed = prog.initially_active(gm.mg)
            active[gm.mg.vertices[seed]] = True
            active[gm.out_targets(np.flatnonzero(seed))] = True

        total = self.backend.shared_array("gas.total", (n,), np.float64)
        has = self.backend.shared_array("gas.has", (n,), bool)
        tracer = self.tracer
        shards = self.shards
        for step in range(self.max_supersteps):
            if not active.any():
                return True
            with tracer.span("superstep", category="superstep", superstep=step):
                # ---- gather: pull on every replica, combine at master ---
                with tracer.span("gather", category="phase") as sp:
                    total.fill(alg.identity)
                    has.fill(False)
                    gather_msgs = 0
                    results = self.backend.dispatch(
                        "gas_gather", {"superstep": step}
                    )
                    for machine_id, res in enumerate(results):
                        sim.add_compute(machine_id, res["edges"], 0)
                        if res["gids"].size:
                            alg.combine_at(total, res["gids"], res["acc"])
                            has[res["gids"]] = True
                            gather_msgs += res["mirrors"]
                    shards.merge()
                    vol1 = schema.bytes_for(gather_msgs)
                    sp.set(gather_msgs=gather_msgs, gather_bytes=vol1)
                    gather_ch.bsp_leg(vol1, gather_msgs)  # sync #1

                # active vertices with no in-edges anywhere still "apply"
                # the identity accumulator (e.g. the PR base-rank refresh)
                has |= active

                # ---- apply on every replica + broadcast -----------------
                with tracer.span("apply", category="phase") as sp:
                    applied = np.flatnonzero(has)
                    bcast = int((self.pgraph.num_replicas[applied] - 1).sum())
                    next_active = np.zeros(n, dtype=bool)
                    results = self.backend.dispatch(
                        "gas_apply", {"superstep": step}
                    )
                    for machine_id, res in enumerate(results):
                        if res["applies"] == 0:
                            continue
                        sim.add_compute(machine_id, 0, res["applies"])
                        if res["out_gids"].size:
                            next_active[res["out_gids"]] = True
                    shards.merge()
                    vol2 = schema.bytes_for(bcast)
                    sp.set(bcast_msgs=bcast, bcast_bytes=vol2)
                    bcast_ch.bsp_leg(vol2, bcast)  # sync #2

                # ---- scatter/activation already folded in ---------------
                with tracer.span("scatter", category="phase"):
                    self.comms.control.barrier()  # sync #3
                sim.stats.supersteps += 1
                active[:] = next_active
                if self.trace:
                    sim.stats.snapshot(
                        active=int(active.sum()), gather_msgs=gather_msgs,
                    )
        return False
