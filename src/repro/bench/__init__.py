"""Experiment harness behind the ``benchmarks/`` suite.

One module per concern:

* :mod:`repro.bench.configs` — experiment descriptions (graph ×
  algorithm × engine × machines) with the paper's per-figure defaults;
* :mod:`repro.bench.harness` — cached execution (partitioned graphs are
  built once per (graph, machines, partitioner) and reused across
  engines and figures) and the comparison helpers each figure needs;
* :mod:`repro.bench.reporting` — plain-text table/series printers that
  emit the same rows the paper's figures plot.
"""

from repro.bench.configs import (
    FIG9_ALGORITHMS,
    FIG9_GRAPHS,
    FIG12_GRAPHS,
    FIG12_MACHINES,
    ExperimentConfig,
    default_kcore_k,
    default_program_params,
)
from repro.bench.harness import (
    clear_caches,
    compare_lazy_vs_sync,
    get_partitioned,
    get_prepared_graph,
    run_config,
)
from repro.bench.expectations import (
    FIG_EXPECTATIONS,
    PAPER_INTERVAL_RULE,
    PAPER_MEAN_SPEEDUPS,
    PAPER_SPEEDUP_RANGE,
)
from repro.bench.plots import bar_chart, sparkline, timeline_plot
from repro.bench.reporting import format_series, format_table

__all__ = [
    "ExperimentConfig",
    "FIG9_GRAPHS",
    "FIG9_ALGORITHMS",
    "FIG12_GRAPHS",
    "FIG12_MACHINES",
    "default_kcore_k",
    "default_program_params",
    "run_config",
    "compare_lazy_vs_sync",
    "get_partitioned",
    "get_prepared_graph",
    "clear_caches",
    "format_table",
    "format_series",
    "sparkline",
    "bar_chart",
    "timeline_plot",
    "PAPER_SPEEDUP_RANGE",
    "PAPER_MEAN_SPEEDUPS",
    "PAPER_INTERVAL_RULE",
    "FIG_EXPECTATIONS",
]
