"""Plain-text table/series formatting for benchmark output.

The benchmark suite prints the same rows/series the paper's figures
plot; these helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

__all__ = ["format_table", "format_series"]

Cell = Union[str, int, float]


def _fmt(value: Cell, width: int) -> str:
    if isinstance(value, float):
        text = f"{value:.3f}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Cell]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    widths = [len(h) for h in headers]
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for i, cell in enumerate(row):
            text = f"{cell:.3f}" if isinstance(cell, float) else str(cell)
            widths[i] = max(widths[i], len(text))
            cells.append(cell)
        rendered.append(cells)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(_fmt(c, w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[Cell],
    series: Dict[str, Sequence[Cell]],
    title: str = "",
) -> str:
    """Render several y-series against one x-axis (a figure's line plot)."""
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series] for i, x in enumerate(xs)
    ]
    return format_table(headers, rows, title=title)
