"""Experiment description files: batch runs from JSON.

Lets a user script a whole study declaratively and run it with
``python -m repro experiment --config study.json``:

```json
{
  "name": "my-study",
  "defaults": {"machines": 24, "partitioner": "coordinated"},
  "experiments": [
    {"graph": "road-usa-mini", "algorithm": "sssp",
     "engine": "lazy-block"},
    {"graph": "road-usa-mini", "algorithm": "sssp",
     "engine": "powergraph-sync"},
    {"graph": "twitter-mini", "algorithm": "kcore",
     "params": {"k": 12}}
  ]
}
```

Unknown keys are rejected loudly — a typo'd field silently ignored is a
wrong experiment.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.bench.configs import ExperimentConfig
from repro.bench.harness import run_config
from repro.errors import ConfigError
from repro.runtime.result import EngineResult

__all__ = ["load_experiment_file", "run_experiment_file"]

_ALLOWED_KEYS = {
    "graph",
    "algorithm",
    "engine",
    "machines",
    "partitioner",
    "policy",
    "policy_opts",
    "seed",
    "lens",
    "lens_opts",
    "params",
}


def _build_config(entry: Dict, defaults: Dict, index: int) -> ExperimentConfig:
    merged = dict(defaults)
    merged.update(entry)
    removed = {"interval", "coherency_mode"} & set(merged)
    if removed:
        raise ConfigError(
            f"experiment #{index}: {sorted(removed)} were removed; use "
            f'"policy" / "policy_opts" (e.g. "policy_opts": '
            f'{{"interval": "simple", "mode": "a2a"}})'
        )
    unknown = set(merged) - _ALLOWED_KEYS
    if unknown:
        raise ConfigError(
            f"experiment #{index}: unknown keys {sorted(unknown)}; "
            f"allowed: {sorted(_ALLOWED_KEYS)}"
        )
    for required in ("graph", "algorithm"):
        if required not in merged:
            raise ConfigError(f"experiment #{index}: missing {required!r}")
    params = merged.pop("params", {})
    if not isinstance(params, dict):
        raise ConfigError(f"experiment #{index}: params must be an object")
    policy_opts = merged.pop("policy_opts", {})
    if not isinstance(policy_opts, dict):
        raise ConfigError(f"experiment #{index}: policy_opts must be an object")
    lens_opts = merged.pop("lens_opts", {})
    if not isinstance(lens_opts, dict):
        raise ConfigError(f"experiment #{index}: lens_opts must be an object")
    return ExperimentConfig(
        params=params, policy_opts=policy_opts, lens_opts=lens_opts, **merged
    )


def load_experiment_file(path: str) -> Tuple[str, List[ExperimentConfig]]:
    """Parse a study file; returns ``(study name, configs)``."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot read experiment file {path!r}: {exc}") from exc
    if not isinstance(doc, dict):
        raise ConfigError(f"{path}: top level must be an object")
    extras = set(doc) - {"name", "defaults", "experiments"}
    if extras:
        raise ConfigError(f"{path}: unknown top-level keys {sorted(extras)}")
    entries = doc.get("experiments")
    if not isinstance(entries, list) or not entries:
        raise ConfigError(f"{path}: 'experiments' must be a non-empty list")
    defaults = doc.get("defaults", {})
    if not isinstance(defaults, dict):
        raise ConfigError(f"{path}: 'defaults' must be an object")
    configs = [
        _build_config(e, defaults, i) for i, e in enumerate(entries)
    ]
    return str(doc.get("name", path)), configs


def run_experiment_file(
    path: str,
) -> Tuple[str, List[Tuple[ExperimentConfig, EngineResult]]]:
    """Load and execute every experiment in the file (cached harness)."""
    name, configs = load_experiment_file(path)
    results = [(cfg, run_config(cfg)) for cfg in configs]
    return name, results
