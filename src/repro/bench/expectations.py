"""The paper's reported numbers, as structured data.

Single source of truth for every paper value the reproduction compares
against (Table 1 lives with the dataset registry; this module holds the
evaluation-section numbers). Benches and the persistence layer import
from here instead of scattering literals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "PAPER_SPEEDUP_RANGE",
    "PAPER_MEAN_SPEEDUPS",
    "PAPER_CLUSTER",
    "PAPER_INTERVAL_RULE",
    "ShapeExpectation",
    "FIG_EXPECTATIONS",
]

# §5.2: "the speedups range from 1.25x to 10.69x across a variety of
# real-world graphs"
PAPER_SPEEDUP_RANGE: Tuple[float, float] = (1.25, 10.69)

# §5.2: "an average speedup of 3.95x on k-Core, 3.1x on PageRank,
# 4.57x on SSSP and 3.91x on CC"
PAPER_MEAN_SPEEDUPS: Dict[str, float] = {
    "kcore": 3.95,
    "pagerank": 3.1,
    "sssp": 4.57,
    "cc": 3.91,
}

# §5.1: the testbed
PAPER_CLUSTER: Dict[str, object] = {
    "machines": 48,
    "cores_per_machine": 8,
    "memory_gb": 32,
    "network": "1 GigE",
    "partitioner": "coordinated",
    "compiler": "GCC 4.8.1",
    "runs_averaged": 3,
}

# §4.2.1: the learned interval rule
PAPER_INTERVAL_RULE: Dict[str, float] = {
    "ev_threshold": 10.0,
    "trend_threshold": 0.07,
    "budget_multiplier": 3.0,
}


@dataclass(frozen=True)
class ShapeExpectation:
    """One falsifiable shape criterion derived from the paper's text."""

    figure: str
    claim: str
    bench: str


FIG_EXPECTATIONS: Tuple[ShapeExpectation, ...] = (
    ShapeExpectation(
        "Table 1",
        "λ rank order: road < web-Google/youtube < UK-2005 < LiveJournal "
        "< twitter/enwiki (coordinated cut, 48 partitions)",
        "benchmarks/bench_table1_graphs.py",
    ),
    ShapeExpectation(
        "Fig 9",
        "LazyGraph ≥ 1x everywhere; largest wins on road, smallest on "
        "twitter; speedup anti-correlates with λ (§5.3)",
        "benchmarks/bench_fig9_speedup.py",
    ),
    ShapeExpectation(
        "Fig 10",
        "normalized synchronizations < 1 everywhere, ≤ ~1/3 structurally; "
        "strongly correlated with Fig 9",
        "benchmarks/bench_fig10_syncs.py",
    ),
    ShapeExpectation(
        "Fig 11",
        "normalized traffic < 1 on the large majority of cells "
        "(documented exception: weighted road SSSP)",
        "benchmarks/bench_fig11_traffic.py",
    ),
    ShapeExpectation(
        "Fig 12(a-f)",
        "LazyGraph fastest at every machine count; Async degrades past "
        "16 machines on road workloads",
        "benchmarks/bench_fig12_scalability.py",
    ),
    ShapeExpectation(
        "Fig 12(g,h)",
        "LazyAsync's speedup over Sync exceeds Async's at 16 and 24 "
        "machines",
        "benchmarks/bench_fig12_scalability.py",
    ),
    ShapeExpectation(
        "Fig 8(a)",
        "the adaptive interval strategy beats (or ties) the simple "
        "always-lazy strategy on SSSP",
        "benchmarks/bench_fig8a_interval.py",
    ),
    ShapeExpectation(
        "Fig 8(b)",
        "a2a linear / m2m saturating-polynomial comm curves; a2a wins "
        "small traffic, m2m large; dynamic switch tracks the better mode",
        "benchmarks/bench_fig8b_commmodes.py",
    ),
)
