"""Persisting experiment results: regenerate the paper artifacts to disk.

``collect_all_figures()`` runs the full evaluation matrix (re-using the
harness caches) and returns one JSON-serializable document;
``write_results()`` saves it as ``results.json`` plus a human-readable
``RESULTS.md`` with the same tables the benchmarks print. Used by
``python -m repro figures`` so a reader can regenerate every number in
EXPERIMENTS.md with one command.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.bench.configs import (
    FIG9_ALGORITHMS,
    FIG9_GRAPHS,
    FIG12_GRAPHS,
    FIG12_MACHINES,
    ExperimentConfig,
)
from repro.bench.harness import (
    compare_lazy_vs_sync,
    get_partitioned,
    get_prepared_graph,
    run_config,
)
from repro.bench.reporting import format_series, format_table
from repro.graph.datasets import dataset_info, load_dataset

__all__ = ["collect_all_figures", "write_results", "render_markdown"]


def _table1() -> list:
    rows = []
    for name in FIG9_GRAPHS:
        info = dataset_info(name)
        g = load_dataset(name)
        lam = get_partitioned(
            get_prepared_graph(name, False, False), 48
        ).replication_factor
        rows.append(
            {
                "graph": name,
                "class": info.category,
                "vertices": g.num_vertices,
                "edges": g.num_edges,
                "ev_ratio": round(g.ev_ratio, 3),
                "lambda": round(lam, 3),
                "paper_ev_ratio": info.paper_ev_ratio,
                "paper_lambda": info.paper_lambda,
            }
        )
    return rows


def _fig9_10_11() -> Dict:
    cells = {}
    for alg in FIG9_ALGORITHMS:
        for graph in FIG9_GRAPHS:
            row = compare_lazy_vs_sync(graph, alg, machines=48)
            cells[f"{alg}/{graph}"] = {
                "speedup": round(row["speedup"], 4),
                "norm_syncs": round(row["norm_syncs"], 4),
                "norm_traffic": round(row["norm_traffic"], 4),
                "sync_time_s": round(row["sync_time_s"], 5),
                "lazy_time_s": round(row["lazy_time_s"], 5),
            }
    return cells


def _fig12() -> Dict:
    out = {}
    for graph in FIG12_GRAPHS:
        for alg in ("pagerank", "sssp"):
            for engine in ("powergraph-sync", "powergraph-async", "lazy-block"):
                series = []
                for P in FIG12_MACHINES:
                    r = run_config(
                        ExperimentConfig(graph, alg, engine=engine, machines=P)
                    )
                    series.append(round(r.stats.modeled_time_s, 5))
                out[f"{alg}/{graph}/{engine}"] = series
    return out


def collect_all_figures() -> Dict:
    """Run (or fetch from cache) every table/figure; return one document."""
    return {
        "machines": 48,
        "fig12_machines": list(FIG12_MACHINES),
        "table1": _table1(),
        "fig9_10_11": _fig9_10_11(),
        "fig12": _fig12(),
    }


def render_markdown(doc: Dict) -> str:
    """Render the collected document as paper-style markdown tables."""
    parts = ["# Regenerated results\n"]

    rows = [
        [r["graph"], r["class"], r["vertices"], r["edges"],
         r["ev_ratio"], r["lambda"], r["paper_ev_ratio"], r["paper_lambda"]]
        for r in doc["table1"]
    ]
    parts.append(
        format_table(
            ["graph", "class", "#V", "#E", "E/V", "lambda", "paper E/V", "paper lambda"],
            rows,
            title="Table 1",
        )
    )

    for metric, title in (
        ("speedup", "Fig 9 — speedup over PowerGraph Sync"),
        ("norm_syncs", "Fig 10 — normalized synchronizations"),
        ("norm_traffic", "Fig 11 — normalized traffic"),
    ):
        rows = []
        for graph in FIG9_GRAPHS:
            rows.append(
                [graph]
                + [doc["fig9_10_11"][f"{alg}/{graph}"][metric] for alg in FIG9_ALGORITHMS]
            )
        parts.append("")
        parts.append(format_table(["graph"] + list(FIG9_ALGORITHMS), rows, title=title))

    for graph in FIG12_GRAPHS:
        for alg in ("pagerank", "sssp"):
            series = {
                engine: doc["fig12"][f"{alg}/{graph}/{engine}"]
                for engine in ("powergraph-sync", "powergraph-async", "lazy-block")
            }
            parts.append("")
            parts.append(
                format_series(
                    "machines",
                    doc["fig12_machines"],
                    series,
                    title=f"Fig 12 — {alg} on {graph}",
                )
            )
    return "\n".join(parts) + "\n"


def write_results(out_dir: str, doc: Optional[Dict] = None) -> Dict:
    """Collect (if needed) and write ``results.json`` + ``RESULTS.md``."""
    doc = doc or collect_all_figures()
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "results.json"), "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    with open(os.path.join(out_dir, "RESULTS.md"), "w", encoding="utf-8") as fh:
        fh.write(render_markdown(doc))
    return doc
