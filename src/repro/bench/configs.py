"""Experiment configurations mirroring the paper's evaluation setup.

§5.1: 48-node cluster, coordinated vertex-cut, four algorithms
(k-core, PageRank, SSSP, CC) over the Table 1 graphs; Fig 12 sweeps
machine counts on one representative graph per class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.graph.datasets import dataset_info

__all__ = [
    "ExperimentConfig",
    "FIG9_GRAPHS",
    "FIG9_ALGORITHMS",
    "FIG12_GRAPHS",
    "FIG12_MACHINES",
    "default_kcore_k",
    "default_program_params",
]

# Table 1 order (the order every per-graph figure uses)
FIG9_GRAPHS: Tuple[str, ...] = (
    "web-uk-mini",
    "web-google-mini",
    "road-usa-mini",
    "road-ca-mini",
    "twitter-mini",
    "livejournal-mini",
    "enwiki-mini",
    "youtube-mini",
)

FIG9_ALGORITHMS: Tuple[str, ...] = ("kcore", "pagerank", "sssp", "cc")

# Fig 12: one representative per class (web / road / social)
FIG12_GRAPHS: Tuple[str, ...] = ("web-uk-mini", "road-usa-mini", "twitter-mini")
FIG12_MACHINES: Tuple[int, ...] = (8, 16, 24, 32, 40, 48)


def default_kcore_k(graph_name: str) -> int:
    """Per-class K for k-core decomposition.

    Road networks (mean degree ≈ 2.5 undirected) use the paper's
    illustrative K=3; denser web/social graphs use K=10 so the peeling
    cascade is non-trivial in both directions.
    """
    return 3 if dataset_info(graph_name).category == "road" else 10


def default_program_params(algorithm: str, graph_name: str) -> Dict:
    """Per-(algorithm, graph) program parameters used by every figure."""
    if algorithm == "kcore":
        return {"k": default_kcore_k(graph_name)}
    if algorithm == "pagerank":
        return {"tolerance": 1e-3}
    if algorithm in ("sssp", "bfs"):
        return {"source": 0}
    if algorithm == "cc":
        return {}
    raise ConfigError(f"no default parameters for algorithm {algorithm!r}")


@dataclass(frozen=True)
class ExperimentConfig:
    """One engine run in one figure's sweep."""

    graph: str
    algorithm: str
    engine: str = "lazy-block"
    machines: int = 48
    partitioner: str = "coordinated"
    seed: int = 0
    lens: bool = False
    #: CoherencyLens keyword overrides (sample_size / seed / rollup_after
    #: / rollup_every / sharded); a non-empty dict implies ``lens``.
    lens_opts: Dict = field(default_factory=dict)
    #: Named coherency policy (see :func:`repro.policy_names`), default
    #: the ``"paper"`` policy on lazy engines; ``policy_opts`` overlays
    #: ``--policy-opt``-style overrides (``interval=…``, ``mode=…``,
    #: ``max_delta_age=…``, controller options).
    policy: Optional[str] = None
    policy_opts: Dict = field(default_factory=dict)
    #: Execution backend (``"serial"`` / ``"process"``) and worker count
    #: (process backend only; ``None`` = host CPU count capped at the
    #: machine count). Results are bit-identical across backends.
    backend: str = "serial"
    workers: Optional[int] = None
    params: Dict = field(default_factory=dict)

    def resolved_params(self) -> Dict:
        """Program parameters: per-figure defaults overlaid with overrides."""
        out = default_program_params(self.algorithm, self.graph)
        out.update(self.params)
        return out

    def label(self) -> str:
        return f"{self.algorithm}/{self.graph}@{self.machines}:{self.engine}"

    def to_run_config(self):
        """This experiment's run-level knobs as a shared ``RunConfig``.

        Mapping notes: ``policy_opts`` overlays the named policy (the
        ``"paper"`` policy when none is named, matching the run API
        default — the harness still constructs eager engines without
        complaint because it resolves with ``strict_policy=False``);
        ``"serial"`` maps to backend ``None`` (the engine's default) so
        the harness keeps constructing serial engines without an
        explicit backend kwarg.
        """
        from repro.core.policy import get_policy
        from repro.runtime.run_config import RunConfig

        policy = None
        if self.policy is not None or self.policy_opts:
            pol = get_policy(self.policy or "paper")
            if self.policy_opts:
                pol = pol.apply_opts(self.policy_opts)
            policy = pol
        return RunConfig(
            engine=self.engine,
            policy=policy,
            lens=bool(self.lens or self.lens_opts),
            lens_opts=dict(self.lens_opts) if self.lens_opts else None,
            backend=None if self.backend == "serial" else self.backend,
            workers=self.workers,
            params=self.resolved_params(),
        )
