"""Cached experiment execution.

Partitioning dominates setup cost, and every figure reuses the same
(graph, machines) partitions across engines and algorithms sharing a
graph *shape* (directed / symmetrized / weighted). The harness caches

* prepared graphs per (dataset, symmetric, weighted),
* partitioned graphs per (prepared graph, machines, partitioner, seed),
* completed run results per full config label

so the whole benchmark suite re-executes each distinct engine run once.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bench.configs import ExperimentConfig
from repro.cluster.network import NetworkModel
from repro.core.transmission import build_lazy_graph
from repro.graph.datasets import load_dataset
from repro.graph.digraph import DiGraph
from repro.partition.edge_splitter import EdgeSplitConfig
from repro.partition.partitioned_graph import PartitionedGraph
from repro.runtime.registry import get_engine
from repro.runtime.result import EngineResult
from repro.utils.timer import Timer

__all__ = [
    "get_prepared_graph",
    "get_partitioned",
    "run_config",
    "compare_lazy_vs_sync",
    "clear_caches",
]

_GRAPH_CACHE: Dict[Tuple, DiGraph] = {}
_PARTITION_CACHE: Dict[Tuple, PartitionedGraph] = {}
_RESULT_CACHE: Dict[Tuple, EngineResult] = {}


def clear_caches() -> None:
    """Drop all harness caches (tests use this for isolation)."""
    _GRAPH_CACHE.clear()
    _PARTITION_CACHE.clear()
    _RESULT_CACHE.clear()


def get_prepared_graph(
    name: str, symmetric: bool, weighted: bool
) -> DiGraph:
    """Dataset in the shape an algorithm needs, cached."""
    key = (name, symmetric, weighted)
    if key not in _GRAPH_CACHE:
        g = load_dataset(name, weighted=weighted)
        if symmetric:
            sym = g.symmetrized()
            sym.name = g.name
            g = sym
        _GRAPH_CACHE[key] = g
    return _GRAPH_CACHE[key]


def get_partitioned(
    graph: DiGraph,
    machines: int,
    partitioner: str = "coordinated",
    seed: int = 0,
    split: Optional[EdgeSplitConfig] = None,
) -> PartitionedGraph:
    """Partitioned graph, cached by identity of the prepared graph."""
    key = (id(graph), machines, partitioner, seed, split)
    if key not in _PARTITION_CACHE:
        _PARTITION_CACHE[key] = build_lazy_graph(
            graph, machines, partitioner=partitioner, split_config=split, seed=seed
        )
    return _PARTITION_CACHE[key]


def run_config(
    config: ExperimentConfig,
    network: Optional[NetworkModel] = None,
    split: Optional[EdgeSplitConfig] = None,
    use_cache: bool = True,
) -> EngineResult:
    """Execute one experiment config (cached by its full identity)."""
    # config.params is a dict (unhashable); key on the canonical tuple
    key = (
        config.label(),
        config.partitioner,
        config.policy,
        tuple(sorted(config.policy_opts.items())),
        config.seed,
        config.lens,
        tuple(sorted(config.lens_opts.items())),
        config.backend,
        config.workers,
        tuple(sorted(config.resolved_params().items())),
        split,
        network,
    )
    if use_cache and key in _RESULT_CACHE:
        return _RESULT_CACHE[key]

    spec = get_engine(config.engine)
    timer = Timer()
    timer.start()
    program = spec.make_program(config.algorithm, **config.resolved_params())
    timer.lap("program")
    graph = get_prepared_graph(
        config.graph, program.requires_symmetric, program.needs_weights
    )
    timer.lap("graph")
    pgraph = get_partitioned(
        graph, config.machines, config.partitioner, config.seed, split
    )
    timer.lap("partition")
    # one shared resolve path (RunConfig.engine_kwargs) with the
    # harness's historical leniency: no policy error on eager engines
    # (strict_policy=False silently drops the paper-policy default there)
    rc = config.to_run_config()
    rc.network = network
    kwargs = rc.engine_kwargs(spec, seed=config.seed, strict_policy=False)
    result = spec.cls(pgraph, program, **kwargs).run()
    timer.lap("engine")
    timer.stop()
    # host-side cost split (distinct from the modeled cluster time)
    for stage, seconds in timer.laps.items():
        result.stats.extra[f"host_{stage}_s"] = seconds
    if use_cache:
        _RESULT_CACHE[key] = result
    return result


def compare_lazy_vs_sync(
    graph: str,
    algorithm: str,
    machines: int = 48,
    network: Optional[NetworkModel] = None,
    **overrides,
) -> Dict[str, float]:
    """The row every per-graph figure needs: lazy vs PowerGraph Sync.

    Returns speedup plus the normalized sync and traffic ratios that
    Figs 10 and 11 plot.
    """
    base = dict(graph=graph, algorithm=algorithm, machines=machines)
    base.update(overrides)
    sync = run_config(
        ExperimentConfig(engine="powergraph-sync", **base), network=network
    )
    lazy = run_config(
        ExperimentConfig(engine="lazy-block", **base), network=network
    )
    return {
        "speedup": sync.stats.modeled_time_s / lazy.stats.modeled_time_s,
        "sync_time_s": sync.stats.modeled_time_s,
        "lazy_time_s": lazy.stats.modeled_time_s,
        "norm_syncs": lazy.stats.global_syncs / max(sync.stats.global_syncs, 1),
        "norm_traffic": lazy.stats.comm_bytes / max(sync.stats.comm_bytes, 1.0),
        "sync_syncs": float(sync.stats.global_syncs),
        "lazy_syncs": float(lazy.stats.global_syncs),
        "sync_traffic_mb": sync.stats.comm_bytes / 1e6,
        "lazy_traffic_mb": lazy.stats.comm_bytes / 1e6,
    }
