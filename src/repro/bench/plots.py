"""Plain-text plotting for run traces (no plotting dependencies).

Terminal-friendly sparklines and bar charts over
:attr:`~repro.cluster.stats.RunStats.timeline` entries — enough to *see*
a run's convergence behaviour (the active-count ascent/descent that
drives the §4.2.1 trend feature) without matplotlib.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["sparkline", "bar_chart", "timeline_plot"]

_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render values as a unicode sparkline, optionally resampled.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if width is not None and width > 0 and len(vals) > width:
        # resample by bucket means
        out = []
        for i in range(width):
            lo = i * len(vals) // width
            hi = max(lo + 1, (i + 1) * len(vals) // width)
            out.append(sum(vals[lo:hi]) / (hi - lo))
        vals = out
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _TICKS[0] * len(vals)
    span = hi - lo
    return "".join(
        _TICKS[min(len(_TICKS) - 1, int((v - lo) / span * len(_TICKS)))]
        for v in vals
    )


def bar_chart(
    labels: Sequence[str], values: Sequence[float], width: int = 40
) -> str:
    """Horizontal bar chart with aligned labels and values.

    >>> print(bar_chart(["a", "b"], [1.0, 2.0], width=4))
    a  ██    1
    b  ████  2
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return ""
    vmax = max(max(values), 1e-300)
    lwidth = max(len(l) for l in labels)
    lines: List[str] = []
    rendered = [f"{v:g}" for v in values]
    for label, v, text in zip(labels, values, rendered):
        n = int(round(v / vmax * width))
        lines.append(f"{label.ljust(lwidth)}  {('█' * n).ljust(width)}  {text}")
    return "\n".join(lines)


def timeline_plot(timeline: Sequence[dict], width: int = 60) -> str:
    """Summarize an engine trace: active counts + cumulative time.

    Expects the entries produced by running an engine with
    ``trace=True``. Returns a small multi-line text panel.
    """
    if not timeline:
        return "(no trace recorded — run with trace=True)"
    actives = [e.get("active", 0) for e in timeline]
    times = [e.get("modeled_time_s", 0.0) for e in timeline]
    lines = [
        f"supersteps: {len(timeline)}   "
        f"peak active: {max(actives)}   "
        f"final time: {times[-1]:.4f}s",
        f"active  {sparkline(actives, width)}",
        f"time    {sparkline(times, width)}",
    ]
    if any("trend" in e for e in timeline):
        lazy_on = ["+" if e.get("do_local") else "." for e in timeline]
        if len(lazy_on) > width:
            step = len(lazy_on) / width
            lazy_on = [lazy_on[int(i * step)] for i in range(width)]
        lines.append(f"lazy    {''.join(lazy_on)}   (+ = local stage on)")
    return "\n".join(lines)
