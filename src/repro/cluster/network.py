"""Network and compute cost models for the simulated cluster.

The paper's performance story is counter-driven: LazyGraph wins by doing
fewer global synchronizations and moving fewer bytes (Figs 9–11). The
cost model here converts the *measured* counters into modeled seconds so
benchmarks can report times and speedups with the same shape.

Communication-time curves (paper §4.2.2)
----------------------------------------
The paper fits, on its 48-node 1-GigE cluster,

* all-to-all:          ``T = 0.0029·x + c``            (linear)
* mirrors-to-master:   ``T = −6e−7·x² + 0.0045·x + c`` (polynomial)

with ``x`` the exchanged volume (MB here). The printed constants are
partially garbled in the paper text; we use intercepts that satisfy the
stated qualitative behaviour ("all-to-all is appropriate for a small
amount of traffic, mirrors-to-master for a large amount"): a2a pays one
cluster-wide round latency, m2m pays two (gather at master, then
broadcast). The m2m polynomial is clamped at its vertex so modeled time
never decreases with volume. At the coherency stage each mode is priced
on *its own* volume (the paper's ``comm_a2a``/``comm_m2m`` equations,
implemented in :mod:`repro.core.coherency`), which is what makes m2m win
for heavily-replicated vertices.

Compute model
-------------
Per-machine compute is priced at ``TEPS`` traversed edges per second plus
a per-vertex apply cost. The default TEPS is scaled down from real
hardware in proportion to the mini datasets (DESIGN.md §2): what matters
for reproduction is the *balance* between per-superstep compute and the
fixed synchronization/communication costs, which drives every crossover
in the paper. All constants are explicit fields, so the ablation benches
can sweep them.

Scaling with machine count
--------------------------
Round latencies grow logarithmically with P (tree/dissemination
collectives) and per-MB costs are held constant; barrier latency also
grows with log2(P). This reproduces the Fig 12 shape: adding machines
divides compute but multiplies fixed synchronization costs.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

__all__ = ["CommMode", "NetworkModel"]


class CommMode(enum.Enum):
    """Delta-exchange communication mode at a data coherency point."""

    ALL_TO_ALL = "all_to_all"
    MIRRORS_TO_MASTER = "mirrors_to_master"


@dataclass(frozen=True)
class NetworkModel:
    """Calibrated cost constants for the simulated cluster.

    Attributes
    ----------
    teps:
        Per-machine traversed-edges-per-second rate (compute model).
    apply_cost_factor:
        A vertex apply costs this many edge-traversal equivalents.
    a2a_latency_s / a2a_s_per_mb:
        Fixed and volume cost of one all-to-all exchange round at the
        reference machine count.
    m2m_latency_s / m2m_s_per_mb / m2m_quad_s_per_mb2:
        Mirrors-to-master: two-round fixed cost and the paper's
        polynomial volume terms.
    barrier_latency_s:
        One global barrier at the reference machine count.
    msg_latency_s:
        Per-message overhead for the Async engine's fine-grained sends
        (pipelining is modeled by the engine, not here).
    async_unbatched_penalty:
        The eager Async engine sends per-update messages instead of
        batched rounds; its volume cost is multiplied by this factor
        (packet and locking overhead per small message).
    async_round_overhead_s:
        Fixed per-round engine overhead of the Async engine (distributed
        locking, fiber scheduling, termination detection) — the known
        reason PowerGraph Async loses to Sync on high-diameter inputs.
    reference_machines:
        Machine count the latencies were "fitted" at (the paper's 48).
    """

    teps: float = 200_000.0
    apply_cost_factor: float = 1.0
    a2a_latency_s: float = 0.010
    a2a_s_per_mb: float = 0.030
    m2m_latency_s: float = 0.011
    m2m_s_per_mb: float = 0.031
    m2m_quad_s_per_mb2: float = -0.0031
    barrier_latency_s: float = 0.001
    msg_latency_s: float = 5e-5
    async_unbatched_penalty: float = 2.0
    async_round_overhead_s: float = 0.02
    reference_machines: int = 48

    # NOTE on calibration: the paper's fit is against full-size graphs
    # whose exchanges move 100s of MB; our mini datasets move 10^4–10^6
    # bytes. The per-MB coefficients keep the paper's a2a:m2m slope
    # ratio (0.0029 : 0.0045) but are rescaled so that, on the mini
    # datasets, one eager superstep's volume cost is comparable to its
    # fixed cost (2 rounds + 3 barriers) — the balance the paper's
    # cluster exhibits and the driver of every crossover in Figs 9–12.
    # The m2m quadratic is likewise rescaled to put the fit's saturation
    # horizon (polynomial vertex) at ~5 model-MB so Fig 8(b)'s curve
    # shapes survive the unit change.

    # ------------------------------------------------------------------
    def _scale(self, num_machines: int) -> float:
        """Collective-latency growth relative to the reference cluster."""
        if num_machines <= 1:
            return 0.0
        ref = math.log2(self.reference_machines)
        return math.log2(num_machines) / ref

    # ------------------------------------------------------------------
    def compute_time(self, edge_ops: float, vertex_ops: float = 0.0) -> float:
        """Seconds one machine spends traversing/applying the given ops."""
        return (edge_ops + self.apply_cost_factor * vertex_ops) / self.teps

    def barrier_time(self, num_machines: int) -> float:
        """One global barrier."""
        return self.barrier_latency_s * self._scale(num_machines)

    def a2a_time(self, volume_bytes: float, num_machines: int) -> float:
        """One all-to-all exchange round of ``volume_bytes`` total."""
        mb = volume_bytes / 1e6
        return (
            self.a2a_latency_s * self._scale(num_machines)
            + self.a2a_s_per_mb * mb
        )

    def m2m_time(self, volume_bytes: float, num_machines: int) -> float:
        """One mirrors-to-master gather + broadcast of ``volume_bytes``.

        The polynomial is clamped at its vertex (the fit's validity
        horizon) so time is nondecreasing in volume.
        """
        mb = volume_bytes / 1e6
        if self.m2m_quad_s_per_mb2 < 0:
            vertex_mb = -self.m2m_s_per_mb / (2.0 * self.m2m_quad_s_per_mb2)
            mb_eff = min(mb, vertex_mb)
        else:
            mb_eff = mb
        poly = self.m2m_quad_s_per_mb2 * mb_eff**2 + self.m2m_s_per_mb * mb_eff
        return self.m2m_latency_s * self._scale(num_machines) + poly

    def exchange_time(
        self, mode: CommMode, volume_bytes: float, num_machines: int
    ) -> float:
        """Time of a coherency exchange in the given mode."""
        if mode is CommMode.ALL_TO_ALL:
            return self.a2a_time(volume_bytes, num_machines)
        return self.m2m_time(volume_bytes, num_machines)

    def round_time(self, volume_bytes: float, num_machines: int) -> float:
        """One generic bulk round (eager engine's gather or broadcast)."""
        return self.a2a_time(volume_bytes, num_machines)

    def async_exchange_time(
        self, mode: CommMode, volume_bytes: float, num_machines: int
    ) -> float:
        """Exposed cost of one *pipelined* (barrier-free) exchange.

        Asynchronous engines overlap successive exchanges with continued
        local processing, so the cluster-wide round latency is hidden;
        what remains on the critical path is the bandwidth term (at the
        unbatched small-message rate) plus a per-machine dispatch
        overhead for initiating the transfers.
        """
        latency_free = self.exchange_time(
            mode, volume_bytes, num_machines
        ) - self.exchange_time(mode, 0.0, num_machines)
        return (
            latency_free * self.async_unbatched_penalty
            + self.msg_latency_s * num_machines
        )

    def async_messages_time(self, num_messages: float) -> float:
        """Serialized overhead of fine-grained Async messages on one machine."""
        return num_messages * self.msg_latency_s

    # ------------------------------------------------------------------
    def pick_mode(
        self, volume_a2a_bytes: float, volume_m2m_bytes: float, num_machines: int
    ) -> CommMode:
        """Dynamic mode switch (§4.2.2): choose the cheaper predicted mode."""
        t_a = self.a2a_time(volume_a2a_bytes, num_machines)
        t_m = self.m2m_time(volume_m2m_bytes, num_machines)
        return CommMode.ALL_TO_ALL if t_a <= t_m else CommMode.MIRRORS_TO_MASTER
