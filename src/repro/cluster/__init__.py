"""Deterministic in-process cluster simulation.

This package is the substitution for the paper's 48-node EC2-like
testbed (see DESIGN.md §2). It provides:

* :class:`~repro.cluster.stats.RunStats` — the measured counters (global
  synchronizations, network bytes/messages, supersteps, edge work) that
  the paper's Figs 10–11 report directly;
* :class:`~repro.cluster.network.NetworkModel` — the calibrated cost
  model converting those counters into modeled wall-clock seconds,
  including the paper's fitted all-to-all / mirrors-to-master
  communication-time curves (§4.2.2);
* :class:`~repro.cluster.simulator.ClusterSim` — P simulated machines
  with mailboxes, bulk exchanges and barriers. All engine communication
  flows through it, so the counters cannot be bypassed.
"""

from repro.cluster.machine import Machine
from repro.cluster.network import CommMode, NetworkModel
from repro.cluster.simulator import ClusterSim
from repro.cluster.stats import RunStats

__all__ = ["Machine", "NetworkModel", "CommMode", "ClusterSim", "RunStats"]
