"""One simulated machine: local state, a mailbox, a busy-time meter."""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["Machine"]


class Machine:
    """A machine in the simulated cluster.

    Engines keep their per-machine arrays in :attr:`state` (a free-form
    dict); anything another machine should see must travel through
    :meth:`repro.cluster.simulator.ClusterSim.send`, which deposits it in
    :attr:`mailbox` and accounts the traffic.
    """

    __slots__ = ("machine_id", "state", "mailbox", "busy_s")

    def __init__(self, machine_id: int) -> None:
        self.machine_id = machine_id
        self.state: Dict[str, Any] = {}
        self.mailbox: List[Tuple[int, Any]] = []  # (sender, payload)
        self.busy_s: float = 0.0  # modeled compute since last barrier

    def drain_mailbox(self) -> List[Tuple[int, Any]]:
        """Return and clear all pending (sender, payload) messages."""
        out = self.mailbox
        self.mailbox = []
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Machine({self.machine_id}, pending={len(self.mailbox)})"
