"""Distributed termination detection for the asynchronous engines.

Engines without global barriers cannot simply *look* at the whole
cluster and see that it is quiet — a real deployment runs a termination
detection protocol. We implement the classic four-counter scheme
(Mattern 1987), the same family PowerGraph's async engine uses:

* every machine keeps monotone counters of messages sent and received;
* a coordinator runs a *probe*: a (modeled) control round collecting
  ``(idle, sent, received)`` from every machine;
* termination is declared only after **two consecutive** probes in
  which every machine is idle and the global sent == received totals
  are unchanged and balanced — one probe alone can race with a message
  in flight between two machines.

Each probe costs a control round: latency plus a few bytes per machine,
charged through the simulator so the async engines' modeled time and
traffic include the real cost of *knowing* they are done (BSP engines
get this for free from their barriers, which is part of the trade the
paper's Fig 12 measures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cluster.simulator import ClusterSim

__all__ = ["TerminationDetector", "PROBE_BYTES_PER_MACHINE"]

PROBE_BYTES_PER_MACHINE = 24  # idle flag + two uint64 counters


@dataclass
class _ProbeRecord:
    all_idle: bool
    sent: int
    received: int


class TerminationDetector:
    """Four-counter termination detection over a :class:`ClusterSim`.

    When given the exchange plane's ``control`` channel, probe traffic
    is charged through it (so control bytes/rounds reconcile per-channel
    against the run totals); without one it charges the simulator
    directly — the standalone mode the unit tests exercise.
    """

    def __init__(self, sim: ClusterSim, channel=None) -> None:
        self.sim = sim
        self.channel = channel
        self.probes = 0
        self._last: Optional[_ProbeRecord] = None

    def reset(self) -> None:
        """Forget history (any observed activity invalidates old probes)."""
        self._last = None

    def probe(
        self,
        idle_flags: Sequence[bool],
        sent_total: int,
        received_total: int,
    ) -> bool:
        """Run one control probe; True once termination is certain.

        ``sent_total``/``received_total`` are the cluster's monotone
        message counters (sums of the per-machine counters the probe
        collects; in the lockstep simulation only the totals matter).
        """
        self.probes += 1
        # control round: every machine answers the coordinator
        volume = PROBE_BYTES_PER_MACHINE * self.sim.num_machines
        if self.channel is not None:
            self.channel.transfer(volume, self.sim.num_machines)
            self.channel.round(volume)
        else:
            self.sim.bulk_transfer(volume, self.sim.num_machines)
            self.sim.exchange_round(volume)
        self.sim.stats.bump("termination_probes")

        record = _ProbeRecord(
            all_idle=all(idle_flags),
            sent=int(sent_total),
            received=int(received_total),
        )
        previous, self._last = self._last, record
        if not record.all_idle or record.sent != record.received:
            self._last = None  # activity: start over
            return False
        if previous is None:
            return False
        # two consecutive quiet probes with frozen, balanced counters
        return (
            previous.all_idle
            and previous.sent == record.sent
            and previous.received == record.received
        )
