"""The lockstep cluster simulator engines run on.

Every engine (eager PowerGraph baselines and the lazy LazyGraph engines)
drives its machines through this object. The rules that keep the
measurement honest:

* all inter-machine data moves via :meth:`send` / bulk-exchange helpers,
  which count bytes and messages into :class:`RunStats` — local
  (same-machine) delivery is free, exactly like the paper's local writes;
* modeled compute is charged per machine via :meth:`add_compute` and
  folded into cluster time as the *maximum* across machines at each
  :meth:`barrier` (BSP semantics);
* each :meth:`barrier` counts one global synchronization.

Engines that avoid barriers (Async, LazyVertexAsync) instead call
:meth:`settle_async`, which folds machine busy-times without counting a
synchronization and charges fine-grained message latencies.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.network import CommMode, NetworkModel
from repro.cluster.stats import RunStats
from repro.errors import EngineError

__all__ = ["ClusterSim"]


class ClusterSim:
    """P simulated machines, a network model, and a stats ledger."""

    def __init__(
        self,
        num_machines: int,
        network: Optional[NetworkModel] = None,
        stats: Optional[RunStats] = None,
    ) -> None:
        if num_machines < 1:
            raise EngineError(f"num_machines must be >= 1, got {num_machines}")
        self.num_machines = num_machines
        self.network = network or NetworkModel()
        self.stats = stats or RunStats()
        self.machines: List[Machine] = [Machine(m) for m in range(num_machines)]

    # ------------------------------------------------------------------
    # Compute accounting
    # ------------------------------------------------------------------
    def add_compute(
        self, machine_id: int, edge_ops: float, vertex_ops: float = 0.0
    ) -> None:
        """Charge modeled compute to one machine; counters updated."""
        self.machines[machine_id].busy_s += self.network.compute_time(
            edge_ops, vertex_ops
        )
        self.stats.edge_traversals += int(edge_ops)
        self.stats.vertex_updates += int(vertex_ops)

    def _fold_busy(self) -> float:
        """Max busy time across machines since last fold; meters reset.

        Also feeds the imbalance ledger (``stats.compute_skew``): under
        BSP semantics the cluster waits for the busiest machine, so the
        gap between max and mean busy time is pure load-imbalance loss.
        """
        busiest = max(m.busy_s for m in self.machines)
        mean = sum(m.busy_s for m in self.machines) / self.num_machines
        self.stats.busy_max_total_s += busiest
        self.stats.busy_mean_total_s += mean
        for m in self.machines:
            m.busy_s = 0.0
        return busiest

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def send(
        self, src: int, dst: int, payload: Any, nbytes: Optional[int] = None
    ) -> None:
        """Deliver ``payload`` from machine ``src`` to machine ``dst``.

        Remote sends are counted (bytes + one message); same-machine
        delivery is a free local write. ``nbytes`` defaults to the
        payload's ``nbytes`` attribute (NumPy arrays).
        """
        if nbytes is None:
            nbytes = getattr(payload, "nbytes", None)
            if nbytes is None:
                raise EngineError(
                    "payload has no .nbytes; pass nbytes= explicitly"
                )
        if src != dst:
            self.stats.comm_bytes += float(nbytes)
            self.stats.comm_messages += 1
        self.machines[dst].mailbox.append((src, payload))

    def bulk_transfer(self, nbytes: float, nmessages: int) -> None:
        """Account traffic of a vectorized bulk exchange.

        Engines move replica data through vectorized global staging
        arrays for speed; they must report the implied network traffic
        here (bytes and point-to-point message count). Local (same
        machine) shares must already be excluded by the caller; the
        conservation tests cross-check these counts against replica
        topology.
        """
        self.stats.comm_bytes += float(nbytes)
        self.stats.comm_messages += int(nmessages)

    def exchange_round(self, volume_bytes: float) -> None:
        """Account one bulk communication round of already-sent traffic.

        The modeled time uses the generic (all-to-all flavored) round
        cost; callers that exchanged via mirrors-to-master should use
        :meth:`coherency_exchange` instead.
        """
        self.stats.comm_rounds += 1
        self.stats.add_comm(
            self.network.round_time(volume_bytes, self.num_machines)
        )

    def coherency_exchange(self, mode: CommMode, volume_bytes: float) -> None:
        """Account one delta-exchange at a data coherency point."""
        self.stats.comm_rounds += 1
        self.stats.add_comm(
            self.network.exchange_time(mode, volume_bytes, self.num_machines)
        )

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Global barrier: fold compute, count one synchronization."""
        self.stats.global_syncs += 1
        self.stats.add_compute(self._fold_busy())
        self.stats.add_sync(self.network.barrier_time(self.num_machines))

    def settle_async_overlapped(self, comm_seconds: float) -> None:
        """Fold compute and communication that run concurrently.

        Asynchronous engines pipeline network transfers behind local
        vertex processing (paper §3.4 on LazyVertexAsync: it "hides the
        network latency by pipeline of vertex processing"), so a round
        costs ``max(compute, comm)`` rather than their sum. The
        breakdown attributes the busy time to compute and only the
        *exposed* remainder of the transfer to communication.
        """
        busy = self._fold_busy()
        self.stats.add_compute(busy)
        exposed = max(0.0, comm_seconds - busy)
        if exposed:
            self.stats.add_comm(exposed)

    def settle_async(self, per_machine_messages: Optional[np.ndarray] = None) -> None:
        """Fold compute without a barrier (asynchronous engines).

        ``per_machine_messages`` — remote messages each machine sent in
        the settled window; the busiest machine's serialized message
        overhead is added (they pipeline across machines but serialize
        per NIC).
        """
        busy = self._fold_busy()
        if per_machine_messages is not None and per_machine_messages.size:
            busy += self.network.async_messages_time(
                float(np.max(per_machine_messages))
            )
        self.stats.add_compute(busy)

    # ------------------------------------------------------------------
    def drain_all(self) -> Dict[int, List[Tuple[int, Any]]]:
        """Drain every machine's mailbox (post-exchange delivery)."""
        return {m.machine_id: m.drain_mailbox() for m in self.machines}
