"""Run statistics: the measured quantities behind every figure.

The paper explains its speedups (Fig 9) through two directly-measured
counters — the number of global synchronizations (Fig 10) and the
communication traffic in bytes (Fig 11). :class:`RunStats` collects
exactly those, plus the work/time breakdown the scalability study
(Fig 12) needs. Engines only ever *increment* these counters through
:class:`~repro.cluster.simulator.ClusterSim`; nothing here is modeled
or estimated except ``modeled_time_s``, which integrates the
:class:`~repro.cluster.network.NetworkModel` costs as the run proceeds.

Since the observability refactor, ``RunStats`` is built on the
:mod:`repro.obs` layer:

* every instance owns a :class:`~repro.obs.metrics.MetricsRegistry`;
  the historical free-form ``extra`` annotations are a dict-compatible
  view over ``extra.*`` registry counters (``bump`` increments one);
* every model-time charge (``add_compute``/``add_comm``/``add_sync``)
  is forwarded to a bound :class:`~repro.obs.tracer.Tracer`, which is
  how spans learn their modeled durations;
* ``trace=True`` timeline snapshots share one schema across all engines
  (``superstep``/``global_syncs``/``comm_bytes``/``modeled_time_s``/
  ``active`` plus engine-specific fields) and are mirrored to the
  tracer as counter samples.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, List

from repro.obs.metrics import ExtraView, MetricsRegistry

__all__ = ["RunStats"]


@dataclass
class RunStats:
    """Counters accumulated over one engine run.

    Attributes
    ----------
    global_syncs:
        Number of global synchronizations (barriers). PowerGraph Sync
        performs three per superstep; LazyBlockAsync one per data
        coherency point (paper §2.2 / §3.2).
    comm_bytes:
        Total bytes crossing the (simulated) network.
    comm_messages:
        Number of point-to-point network messages those bytes rode in.
    comm_rounds:
        Number of bulk communication rounds (a gather or broadcast over
        the whole cluster counts as one round).
    supersteps:
        Outer-loop iterations of the engine.
    local_iterations:
        Micro-iterations inside lazy local-computation stages (0 for the
        eager engines).
    coherency_points:
        Data coherency stages executed (lazy engines only).
    edge_traversals:
        Total edges processed across all machines (work measure; the
        numerator of the TEPS compute model).
    vertex_updates:
        Apply operations executed across all machines.
    modeled_time_s:
        Modeled cluster wall-clock, integrated from the network model:
        per-superstep max-machine compute + communication + barriers.
    compute_time_s / comm_time_s / sync_time_s:
        Breakdown of ``modeled_time_s``.
    converged:
        True when the run reached its fixpoint/tolerance (as opposed to
        hitting ``max_supersteps``).
    metrics:
        The run's :class:`~repro.obs.metrics.MetricsRegistry` (created
        per instance). ``extra`` is a dict-compatible view over its
        ``extra.*`` counters.
    timeline:
        Optional per-superstep snapshots (engines populate it when
        constructed with ``trace=True``): dicts with the superstep
        index, active count, cumulative syncs/bytes/modeled time, and
        engine-specific fields. Powers convergence plots and the
        adaptive interval model's offline analysis.
    """

    global_syncs: int = 0
    comm_bytes: float = 0.0
    comm_messages: int = 0
    comm_rounds: int = 0
    supersteps: int = 0
    local_iterations: int = 0
    coherency_points: int = 0
    edge_traversals: int = 0
    vertex_updates: int = 0
    modeled_time_s: float = 0.0
    compute_time_s: float = 0.0
    comm_time_s: float = 0.0
    sync_time_s: float = 0.0
    converged: bool = False
    busy_max_total_s: float = 0.0  # Σ per-fold busiest-machine compute
    busy_mean_total_s: float = 0.0  # Σ per-fold mean machine compute

    def __post_init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.extra = ExtraView(self.metrics)
        self.timeline: List[Dict] = []
        self._tracer = None

    # ------------------------------------------------------------------
    def bind_tracer(self, tracer) -> None:
        """Route every model-time charge and snapshot to ``tracer``.

        Called by :meth:`repro.obs.tracer.Tracer.bind_stats`; engines
        bind through :class:`~repro.runtime.base_engine.BaseEngine`.
        """
        self._tracer = tracer

    def _charge(self, kind: str, seconds: float) -> None:
        if self._tracer is not None:
            self._tracer.on_charge(kind, seconds)

    # ------------------------------------------------------------------
    def add_compute(self, seconds: float) -> None:
        """Account modeled compute time (already max-reduced over machines)."""
        self.compute_time_s += seconds
        self.modeled_time_s += seconds
        self._charge("compute", seconds)

    def add_comm(self, seconds: float) -> None:
        """Account modeled communication time."""
        self.comm_time_s += seconds
        self.modeled_time_s += seconds
        self._charge("comm", seconds)

    def add_sync(self, seconds: float) -> None:
        """Account modeled synchronization (barrier) time."""
        self.sync_time_s += seconds
        self.modeled_time_s += seconds
        self._charge("sync", seconds)

    def bump(self, key: str, amount: float = 1.0) -> None:
        """Increment a free-form ``extra.*`` counter in the registry."""
        self.metrics.counter(ExtraView.PREFIX + key).inc(amount)

    @property
    def compute_skew(self) -> float:
        """Load imbalance: busiest-machine compute over mean compute.

        1.0 = perfectly balanced; the paper's §2.2 notes this blows up
        for high-degree vertices under edge-cut placement (the vertex-cut
        motivation) — measured here per fold (barrier/settle window).
        """
        if self.busy_mean_total_s <= 0:
            return 1.0
        return self.busy_max_total_s / self.busy_mean_total_s

    def snapshot(self, active: int, **fields_) -> Dict:
        """Append a timeline entry (cumulative counters + caller fields).

        ``active`` is mandatory — it is the one engine-state field every
        engine can report, and the uniform-schema contract the trace
        tests assert: every entry carries ``superstep``,
        ``global_syncs``, ``comm_bytes``, ``modeled_time_s``, ``active``.
        """
        entry = {
            "superstep": self.supersteps,
            "global_syncs": self.global_syncs,
            "comm_bytes": self.comm_bytes,
            "modeled_time_s": self.modeled_time_s,
            "active": int(active),
        }
        entry.update(fields_)
        self.timeline.append(entry)
        if self._tracer is not None:
            self._tracer.counter("active_vertices", int(active))
        return entry

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dump: counters + registry + derived skew."""
        out: Dict[str, Any] = {f.name: getattr(self, f.name) for f in fields(self)}
        out["compute_skew"] = self.compute_skew
        out["extra"] = dict(self.extra)
        out["metrics"] = self.metrics.export()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunStats":
        """Rebuild stats from :meth:`to_dict` output.

        Dataclass counters are restored directly; the registry comes
        back through :meth:`MetricsRegistry.from_export` (so ``extra``
        keeps working — its ``extra.*`` counters live in the registry,
        and the exported ``extra`` dict is redundant with them);
        ``compute_skew`` is derived and ignored. The ``timeline`` is a
        trace artifact and is not serialized — a restored instance has
        an empty one.
        """
        known = {f.name for f in fields(cls)}
        stats = cls(**{k: v for k, v in data.items() if k in known})
        metrics = data.get("metrics")
        if metrics:
            stats.metrics = MetricsRegistry.from_export(metrics)
            stats.extra = ExtraView(stats.metrics)
        return stats

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line human-readable digest (used by examples and benches)."""
        return (
            f"time={self.modeled_time_s:.4f}s syncs={self.global_syncs} "
            f"traffic={self.comm_bytes / 1e6:.3f}MB msgs={self.comm_messages} "
            f"supersteps={self.supersteps} cpoints={self.coherency_points} "
            f"liters={self.local_iterations} converged={self.converged}"
        )
