"""Adaptive interval between data coherency points (paper §4.2.1).

How long should replica coherency be delayed? The paper trains a
decision-tree classifier over two features and reports the learned rule;
we implement that rule directly (and keep the trainable machinery in
:func:`fit_interval_rule` for the ablation bench):

* **turnOnLazy()** — lazy mode turns on iff
  ``E/V <= 10  or  trend >= 0.07``, where
  ``trend = (cnt_{t-1} − cnt_t) / cnt_{t-1}`` is the relative decrease
  of the active-vertex count between coherency points. Intuition: poor
  locality (high E/V) in the *ascent* phase (growing frontier) needs
  frequent synchronization; descent phases and local graphs do not.
* **doLC()** — a local computation stage may run for at most
  ``3·T``, where ``T`` is the modeled time of the stage's first
  micro-iteration (measured online).

Alternative strategies used in Fig 8(a)'s comparison:

* :class:`SimpleIntervalModel` — lazy always on, every local stage runs
  to local quiescence;
* :class:`NeverLazyModel` — lazy never on (every superstep is a
  coherency point; isolates the 3-syncs→1-sync saving from laziness).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigError

__all__ = [
    "IntervalModel",
    "AdaptiveIntervalModel",
    "SimpleIntervalModel",
    "NeverLazyModel",
    "make_interval_model",
    "fit_interval_rule",
]


class IntervalModel(abc.ABC):
    """Strategy deciding lazy-mode activation and local-stage budgets."""

    name = "abstract"

    @abc.abstractmethod
    def turn_on_lazy(self, ev_ratio: float, trend: float) -> bool:
        """Should the next iteration run a local computation stage?"""

    @abc.abstractmethod
    def local_budget(self, first_iteration_time: float) -> float:
        """Max modeled seconds the local stage may run (∞ = to quiescence)."""


@dataclass(frozen=True)
class AdaptiveIntervalModel(IntervalModel):
    """The paper's learned input-behaviour-interval rule."""

    ev_threshold: float = 10.0
    trend_threshold: float = 0.07
    budget_multiplier: float = 3.0

    name = "adaptive"

    def turn_on_lazy(self, ev_ratio: float, trend: float) -> bool:
        return ev_ratio <= self.ev_threshold or trend >= self.trend_threshold

    def local_budget(self, first_iteration_time: float) -> float:
        return self.budget_multiplier * first_iteration_time


@dataclass(frozen=True)
class SimpleIntervalModel(IntervalModel):
    """Fig 8(a)'s strawman: always lazy, local stage runs to convergence."""

    name = "simple"

    def turn_on_lazy(self, ev_ratio: float, trend: float) -> bool:
        return True

    def local_budget(self, first_iteration_time: float) -> float:
        return math.inf


@dataclass(frozen=True)
class NeverLazyModel(IntervalModel):
    """Coherency at every superstep (no local stages at all)."""

    name = "never"

    def turn_on_lazy(self, ev_ratio: float, trend: float) -> bool:
        return False

    def local_budget(self, first_iteration_time: float) -> float:
        return 0.0


def make_interval_model(name: str, **kwargs) -> IntervalModel:
    """Build an interval model by name: adaptive | simple | never."""
    table = {
        "adaptive": AdaptiveIntervalModel,
        "simple": SimpleIntervalModel,
        "never": NeverLazyModel,
    }
    try:
        return table[name](**kwargs)
    except KeyError:
        raise ConfigError(
            f"unknown interval model {name!r}; known: {', '.join(sorted(table))}"
        ) from None


# ----------------------------------------------------------------------
# Trainable variant (decision stumps, as in the paper's methodology)
# ----------------------------------------------------------------------
def fit_interval_rule(
    samples: Sequence[Tuple[float, float, bool]],
    ev_candidates: Optional[Sequence[float]] = None,
    trend_candidates: Optional[Sequence[float]] = None,
) -> AdaptiveIntervalModel:
    """Learn (ev_threshold, trend_threshold) from labelled observations.

    ``samples`` are ``(ev_ratio, trend, lazy_was_beneficial)`` tuples —
    e.g. produced by running both interval settings over a grid of
    workloads. The rule family is the paper's disjunction
    ``E/V <= a or trend >= b``; we grid-search the (a, b) pair with the
    fewest misclassifications (ties: smallest a then largest b, i.e. the
    most conservative rule).
    """
    if not samples:
        raise ConfigError("fit_interval_rule needs at least one sample")
    evs = sorted({s[0] for s in samples})
    trends = sorted({s[1] for s in samples})
    ev_candidates = list(ev_candidates) if ev_candidates else evs
    trend_candidates = list(trend_candidates) if trend_candidates else trends
    best: Optional[Tuple[int, float, float]] = None
    for a in ev_candidates:
        for b in trend_candidates:
            errors = sum(
                1
                for ev, tr, label in samples
                if ((ev <= a) or (tr >= b)) != label
            )
            key = (errors, a, -b)
            if best is None or key < (best[0], best[1], -best[2]):
                best = (errors, a, b)
    assert best is not None
    return AdaptiveIntervalModel(ev_threshold=best[1], trend_threshold=best[2])
