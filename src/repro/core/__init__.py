"""The paper's contribution: the LazyAsync execution model.

Replicas of a vertex are treated as *independent vertices* that evolve
local views from local messages only, accumulating ``deltaMsg``; they
re-converge to a shared global view by *computation* at sparse data
coherency points (paper §3). This package provides:

* :class:`LazyBlockAsyncEngine` — paper Algorithm 1 (the engine behind
  every evaluation figure): bulk local-computation stages separated by
  single-barrier coherency stages;
* :class:`LazyVertexAsyncEngine` — paper Algorithm 2 (left as future
  work in the paper; implemented here): no global barrier, per-replica
  coherency triggered by delta age;
* :class:`CoherencyExchanger` — the delta exchange in both all-to-all
  and mirrors-to-master modes with the paper's §4.2.2 dynamic switch;
* the adaptive interval model (§4.2.1) deciding when lazy mode turns on
  and how long a local stage may run;
* the coherency-controller layer (:mod:`repro.core.policy`)
  generalizing the interval model: pluggable
  :class:`CoherencyController` strategies fed a per-superstep
  :class:`CoherencySignals` snapshot, unified behind the
  :class:`CoherencyPolicy` knob;
* :func:`build_lazy_graph` — one-call partition + edge-split pipeline.
"""

from repro.core.coherency import CoherencyExchanger, ExchangeReport
from repro.core.interval_model import (
    AdaptiveIntervalModel,
    IntervalModel,
    NeverLazyModel,
    SimpleIntervalModel,
    make_interval_model,
)
from repro.core.lazy_block_async import LazyBlockAsyncEngine
from repro.core.lazy_vertex_async import LazyVertexAsyncEngine
from repro.core.policy import (
    BatchedController,
    CoherencyController,
    CoherencyPolicy,
    CoherencySignals,
    ExchangeDirective,
    PaperRuleController,
    SignalTap,
    StalenessController,
    controller_names,
    get_policy,
    make_controller,
    policy_names,
    register_policy,
    resolve_policy,
)
from repro.core.transmission import build_lazy_graph

__all__ = [
    "CoherencyExchanger",
    "ExchangeReport",
    "IntervalModel",
    "AdaptiveIntervalModel",
    "SimpleIntervalModel",
    "NeverLazyModel",
    "make_interval_model",
    "CoherencyController",
    "CoherencyPolicy",
    "CoherencySignals",
    "ExchangeDirective",
    "SignalTap",
    "PaperRuleController",
    "StalenessController",
    "BatchedController",
    "make_controller",
    "controller_names",
    "register_policy",
    "get_policy",
    "policy_names",
    "resolve_policy",
    "LazyBlockAsyncEngine",
    "LazyVertexAsyncEngine",
    "build_lazy_graph",
]
