"""LazyBlockAsync — paper Algorithm 1, the engine behind every figure.

Execution alternates two stages:

* **local computation stage** (optional, gated by ``turnOnLazy()``):
  machines run Apply/ScatterGatherMsg micro-iterations entirely on local
  data — replicas of a vertex drift apart, new local views become
  visible to local neighbours immediately, and one-edge messages
  accumulate into ``deltaMsg``. No communication, no synchronization.
  The stage is bounded by the interval model's ``doLC()`` budget
  (``3·T`` of the stage's first micro-iteration by default) or ends at
  local quiescence.
* **data coherency stage**: one delta exchange (all-to-all or
  mirrors-to-master, dynamically switched) followed by **one** global
  barrier — against the eager baseline's two rounds and three barriers —
  then the coherency point's Apply+Scatter restores the shared view and
  seeds the next stage.

The first iteration runs without a local stage (paper §4.2.1 point 3);
afterwards ``turnOnLazy`` is re-evaluated at every coherency point from
the graph's E/V ratio and the active-count trend.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

from repro.api.vertex_program import DeltaProgram
from repro.cluster.network import NetworkModel
from repro.comms import Delivery
from repro.core.coherency import CoherencyExchanger
from repro.core.interval_model import IntervalModel
from repro.core.policy import (
    CoherencyController,
    CoherencySignals,
    PaperRuleController,
    SignalTap,
)
from repro.errors import EngineError
from repro.obs.lens import CoherencyLens
from repro.partition.partitioned_graph import PartitionedGraph
from repro.runtime.base_engine import BaseEngine

__all__ = ["LazyBlockAsyncEngine"]

_MAX_LOCAL_ITERS = 100_000  # hard stop against pathological programs


class LazyBlockAsyncEngine(BaseEngine):
    """The lazy bulk engine (Algorithm 1).

    Parameters
    ----------
    interval_model:
        Strategy for ``turnOnLazy``/``doLC`` (default: the paper's
        adaptive rule). Shorthand for
        ``controller=PaperRuleController(interval_model)``; mutually
        exclusive with ``controller``.
    controller:
        A :class:`~repro.core.policy.CoherencyController` deciding the
        coherency points from the full :class:`CoherencySignals`
        snapshot (default: the paper rule, bit-identical to the
        pre-controller engine).
    coherency_mode:
        ``"dynamic"`` (paper default), ``"a2a"`` or ``"m2m"``.
    lens:
        Enable the coherency lens (:mod:`repro.obs.lens`): staleness/
        divergence probes and the decision audit log. Off by default —
        the hot path then only touches the no-op ``NULL_LENS``.
    """

    name = "lazy-block"

    def __init__(
        self,
        pgraph: PartitionedGraph,
        program: DeltaProgram,
        network: Optional[NetworkModel] = None,
        interval_model: Optional[IntervalModel] = None,
        coherency_mode: str = "dynamic",
        max_supersteps: int = 100_000,
        trace: bool = False,
        tracer=None,
        lens: "Union[bool, dict]" = False,
        controller: Optional[CoherencyController] = None,
        backend=None,
        plans=None,
    ) -> None:
        super().__init__(
            pgraph, program, network, max_supersteps, trace, tracer,
            backend=backend, plans=plans,
        )
        if controller is not None and interval_model is not None:
            raise EngineError(
                "pass either interval_model or controller, not both"
            )
        self.controller = controller or PaperRuleController(interval_model)
        # kept for introspection/back-compat; None for controllers that
        # do not wrap an interval model
        self.interval_model = getattr(self.controller, "interval_model", None)
        self._tap = (
            SignalTap(self.runtimes, pgraph, program)
            if self.controller.needs_signals
            else None
        )
        if lens:
            # lens may be True or a dict of CoherencyLens kwargs
            # (sample_size/seed/rollup_after/rollup_every/sharded)
            opts = lens if isinstance(lens, dict) else {}
            self.lens = CoherencyLens.for_engine(self, **opts)
        self.exchanger = CoherencyExchanger(
            pgraph, program, self.runtimes, coherency_mode, self.sim.network,
            tracer=self.tracer, plane=self.comms, delivery=Delivery.BSP,
            lens=self.lens,
        )

    # ------------------------------------------------------------------
    def _local_micro_iteration(self, stage=None) -> "tuple[bool, float]":
        """One Apply+Scatter sweep on every machine; local writes only.

        Returns ``(did_work, modeled_iteration_seconds)`` where the time
        is the slowest machine's share (machines run concurrently).
        ``stage`` optionally accumulates per-machine ``(busy_s, edges,
        applies)`` for the stage's ``machine-work`` trace instants.
        """
        worked = False
        slowest = 0.0
        results = self.backend.dispatch(
            "apply_step", {"track_delta": True, "span": False}
        )
        for m, res in enumerate(results):
            if res["applies"]:
                worked = True
                self.sim.add_compute(m, res["edges"], res["applies"])
                seconds = res["busy_s"]
                slowest = max(slowest, seconds)
                if stage is not None:
                    stage[0][m] += seconds
                    stage[1][m] += res["edges"]
                    stage[2][m] += res["applies"]
        return worked, slowest

    def _local_stage(self, step: int) -> None:
        """Run the bounded local computation stage (Stage 1).

        No model-time charge happens here — machines' compute meters
        accumulate and fold at the next coherency barrier (BSP max
        semantics) — so the span carries the stage's slowest-machine
        estimate in ``est_compute_s`` instead of a modeled width. With
        tracing on, each machine's stage total rides out as one
        ``machine-work`` instant (micro-iterations have no per-machine
        spans — that would multiply the trace by the iteration count).
        """
        shards = self.shards
        nm = self.sim.num_machines
        stage = (
            ([0.0] * nm, [0] * nm, [0] * nm) if self.tracer.enabled else None
        )
        with self.tracer.span("local-computation", category="phase") as sp:
            budget = None
            spent = 0.0
            iters = 0
            for _ in range(_MAX_LOCAL_ITERS):
                worked, seconds = self._local_micro_iteration(stage)
                if not worked:
                    break  # local quiescence: nothing left to do anywhere
                self.sim.stats.local_iterations += 1
                iters += 1
                if budget is None:
                    # doLC(): measure the stage's first micro-iteration
                    # online. The decision instant goes straight to the
                    # tracer, so flush the shard buffers first to keep
                    # the stream in emission order.
                    shards.merge()
                    budget = self.controller.local_budget(seconds)
                    self.lens.decision(
                        "local_budget",
                        rule=self.controller.rule_name,
                        verdict="budget",
                        controller=self.controller.name,
                        first_iteration_s=seconds,
                        budget_s=budget,
                    )
                spent += seconds
                if spent >= budget:
                    break
            if stage is not None:
                shards.tick()
                busy, s_edges, s_applies = stage
                for m in range(nm):
                    if s_edges[m] or s_applies[m]:
                        shards.collectors[m].instant(
                            "machine-work",
                            machine=m, superstep=step,
                            busy_s=busy[m], edges=int(s_edges[m]),
                            applies=s_applies[m], iterations=iters,
                        )
            shards.merge()
            sp.set(iterations=iters, est_compute_s=spent,
                   budget_s=budget if budget is not None else 0.0)

    # ------------------------------------------------------------------
    def _execute(self) -> bool:
        sim = self.sim
        self._bootstrap(track_delta=True)

        do_local = False  # first iteration has no local stage (§4.2.1)
        prev_active: Optional[int] = None
        ev_ratio = self.pgraph.graph.ev_ratio

        tracer = self.tracer
        lens = self.lens
        controller = self.controller
        tap = self._tap
        for step in range(self.max_supersteps):
            with tracer.span("superstep", category="superstep", superstep=step):
                lens.begin_superstep(step)
                # ---- Stage 1: local computation -----------------------
                if do_local:
                    self._local_stage(step)

                # pre-exchange reading: how much divergence did the local
                # stage build up before this coherency point repairs it
                lens.probe()
                # extended controller signals must also read the
                # *pre*-exchange state (the exchange clears the pending
                # mass the controller is reasoning about); trend/active
                # are patched in once known
                ext = tap.read(step, ev_ratio, 0.0, 0) if tap else None

                # ---- Stage 2: data coherency --------------------------
                with tracer.span("coherency", category="phase") as sp:
                    report = self.exchanger.exchange()
                    self.exchanger.deliver(report)  # one round + one barrier
                    sim.stats.coherency_points += 1
                    sp.set(mode=report.mode.value,
                           volume_bytes=report.volume_bytes,
                           exchanged=report.vertices_exchanged)
                # every counted coherency point gets its audit entry +
                # post-exchange invariant probe (full exchange: nothing
                # may stay pending)
                lens.on_exchange(report, rule="superstep-coherency")

                active = self._global_active_count()
                if active == 0:
                    sim.stats.extra["mode_switches"] = self.exchanger.mode_switches
                    if self.trace:
                        sim.stats.snapshot(active=0, do_local=do_local)
                    return True

                # trend of the active-vertex count between coherency points
                if prev_active:
                    trend = (prev_active - active) / prev_active
                else:
                    trend = 0.0
                if ext is not None:
                    signals = replace(ext, trend=trend, active=active)
                else:
                    signals = CoherencySignals(step, ev_ratio, trend, active)
                do_local = controller.turn_on_lazy(signals)
                tracer.instant(
                    "interval-decision",
                    superstep=step, ev_ratio=ev_ratio, trend=trend,
                    do_local=do_local, active=active,
                )
                lens.decision(
                    "turn_on_lazy",
                    rule=controller.rule_name,
                    verdict="lazy-on" if do_local else "lazy-off",
                    controller=controller.name,
                    **signals.as_inputs(),
                )
                prev_active = active
                if self.trace:
                    sim.stats.snapshot(
                        active=active,
                        trend=trend,
                        do_local=do_local,
                        mode=report.mode.value,
                        exchanged=report.vertices_exchanged,
                    )

                # ---- data coherency point: Apply + Scatter ------------
                with tracer.span("coherency-apply", category="phase"):
                    results = self.backend.dispatch(
                        "apply_step",
                        {"track_delta": True, "span": True, "superstep": step},
                    )
                    for m, res in enumerate(results):
                        self.sim.add_compute(m, res["edges"], res["applies"])
                    self.shards.merge()
                sim.stats.supersteps += 1
        return False
