"""Delta exchange at data coherency points (paper §3.2 + §4.2.2).

At a coherency point every participating replica contributes the
``deltaMsg`` it accumulated from one-edge-mode messages since the last
point; every replica of an exchanged vertex then folds *the other
replicas' deltas* into its inbox and replays Apply — restoring a shared
global view by computation.

Two wire protocols carry the same information (paper Fig 5):

* **all-to-all** — each replica with a delta sends it to every other
  replica: ``Σ_v N_v^hasDelta · (Num_v − 1)`` messages;
* **mirrors-to-master** — mirrors send deltas to the master, the master
  combines and broadcasts one total; each replica removes its own
  contribution with the algebra's ``Inverse`` (or relies on idempotency):
  ``Σ_v (N_v^hasDelta + Num_v − 2)`` messages.

Both are implemented over the same vectorized staging (results are
bit-identical — a tested invariant); they differ in the traffic charged
and the time model used. The ``dynamic`` policy evaluates both volumes
with the fitted time curves and picks the cheaper (§4.2.2).

Partial exchanges (used by LazyVertexAsync) are supported: only
*participating* replicas contribute and clear their deltas; every
replica of an exchanged vertex still receives the participants' data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.api.vertex_program import DeltaProgram
from repro.cluster.network import CommMode, NetworkModel
from repro.comms import (
    DELTA_A2A,
    DELTA_M2M,
    Delivery,
    ExchangePlane,
    delta_schema,
)
from repro.errors import EngineError
from repro.kernels.segment_reduce import scatter_reduce
from repro.obs.lens import NULL_LENS
from repro.obs.tracer import NULL_TRACER
from repro.partition.partitioned_graph import PartitionedGraph
from repro.runtime.machine_runtime import MachineRuntime

__all__ = ["CoherencyExchanger", "ExchangeReport", "no_participants"]

ParticipantFn = Callable[[MachineRuntime], np.ndarray]


def no_participants(rt: MachineRuntime) -> np.ndarray:
    """Participant mask selecting nobody — a *deferred* exchange.

    Coherency controllers that postpone a partial exchange still run the
    exchanger with this mask so the empty-exchange bookkeeping (clearing
    unreplicated vertices' deltas, sweeping subsumed deltas) happens
    exactly as on a superstep where no replica came due.
    """
    return np.zeros(rt.mg.num_local_vertices, dtype=bool)


@dataclass(frozen=True)
class ExchangeReport:
    """What one coherency exchange moved and how it was priced."""

    mode: CommMode
    volume_bytes: float
    messages: int
    volume_a2a_bytes: float
    volume_m2m_bytes: float
    vertices_exchanged: int

    @property
    def empty(self) -> bool:
        return self.vertices_exchanged == 0


class CoherencyExchanger:
    """Executes delta exchanges over a partitioned graph's replicas."""

    def __init__(
        self,
        pgraph: PartitionedGraph,
        program: DeltaProgram,
        runtimes: List[MachineRuntime],
        mode: str = "dynamic",
        network: Optional[NetworkModel] = None,
        tracer=None,
        plane: Optional[ExchangePlane] = None,
        delivery: Delivery = Delivery.BSP,
        lens=None,
    ) -> None:
        if mode not in ("dynamic", "a2a", "m2m"):
            raise EngineError(f"unknown coherency mode {mode!r}")
        if mode in ("dynamic", "m2m") and not program.algebra.supports_mirrors_to_master:
            raise EngineError(
                f"algebra {program.algebra.name!r} supports neither Inverse "
                f"nor idempotency; only mode='a2a' is sound"
            )
        self.pgraph = pgraph
        self.program = program
        self.runtimes = runtimes
        self.mode = mode
        self.network = network or NetworkModel()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.lens = lens if lens is not None else NULL_LENS
        # channel plan: both wire protocols get their own typed channel;
        # deliver() picks per exchange, matching the dynamic switching.
        # Without a plane the exchanger only stages (unit-test mode).
        self.a2a_ch = self.m2m_ch = None
        if plane is not None:
            schema = delta_schema(program)
            self.a2a_ch = plane.open(
                DELTA_A2A, schema, delivery, comm_mode=CommMode.ALL_TO_ALL
            )
            self.m2m_ch = plane.open(
                DELTA_M2M, schema, delivery, comm_mode=CommMode.MIRRORS_TO_MASTER
            )
        n = pgraph.graph.num_vertices
        self._total = np.empty(n, dtype=np.float64)
        self._cnt = np.zeros(n, dtype=np.int64)
        self._switches = 0
        self._last_mode: Optional[CommMode] = None
        # Subsumption filter (idempotent ⊕ only): the shared view as of
        # the last coherency point, per replica. A delta that does not
        # strictly improve on it is implied by already-exchanged data
        # (every past improvement travelled through some earlier delta),
        # so shipping it again is pure redundancy — this is what keeps
        # lazy label-correction traffic below the eager baseline's.
        self._shared: Optional[List[np.ndarray]] = None
        if program.algebra.idempotent:
            # initial shared view = the initial vdata (identical on every
            # replica by the DeltaProgram.make_state contract)
            self._shared = [rt.values().astype(np.float64).copy() for rt in runtimes]

    @property
    def mode_switches(self) -> int:
        """How many times the dynamic policy changed wire protocol."""
        return self._switches

    def _channel_for(self, report: "ExchangeReport"):
        return self.a2a_ch if report.mode is CommMode.ALL_TO_ALL else self.m2m_ch

    def deliver(self, report: "ExchangeReport") -> float:
        """Move one exchange's traffic over its wire-protocol channel.

        BSP channels run the coherency point's single round + barrier
        (even an empty exchange pays the barrier — LazyBlockAsync's one
        global synchronization per superstep) and return ``0.0``; async
        channels skip empty exchanges entirely and return the modeled
        transfer latency for the engine to pipeline behind local work.
        """
        ch = self._channel_for(report)
        if ch.delivery is Delivery.BSP:
            ch.transfer(report.volume_bytes, report.messages)
            if not report.empty:
                ch.round(report.volume_bytes)
            ch.barrier()  # the single global synchronization
            return 0.0
        if report.empty:
            return 0.0
        ch.transfer(report.volume_bytes, report.messages)
        return ch.round(report.volume_bytes)

    # ------------------------------------------------------------------
    def exchange(
        self, participants: Optional[ParticipantFn] = None
    ) -> ExchangeReport:
        """Run one coherency exchange; returns the traffic report.

        ``participants`` selects, per machine, which local replicas
        contribute their delta (boolean mask over local vertices);
        ``None`` means every replica with a pending delta participates
        (the LazyBlockAsync full exchange).
        """
        alg = self.program.algebra
        ident = alg.identity
        total, cnt = self._total, self._cnt
        total.fill(ident)
        cnt.fill(0)

        # ---- collect participants' deltas -----------------------------
        # Stage per-machine (gids, deltas) then fold once: within one
        # machine local gids are unique, and concatenation preserves the
        # historical machine-order fold, so the single kernel pass is
        # bit-identical to the old per-machine ufunc.at loop.
        part_idx: List[np.ndarray] = []
        staged_gids: List[np.ndarray] = []
        staged_deltas: List[np.ndarray] = []
        for mi, rt in enumerate(self.runtimes):
            mask = rt.has_delta & (rt.mg.num_replicas > 1)
            if self._shared is not None:
                # subsumption filter: a delta that does not strictly
                # improve the last shared view carries no new information
                improves = alg.combine(rt.delta_msg, self._shared[mi]) != self._shared[mi]
                subsumed = np.flatnonzero(mask & ~improves)
                if subsumed.size:
                    rt.clear_deltas(subsumed)
                mask = mask & improves
            if participants is not None:
                mask = mask & participants(rt)
            idx = np.flatnonzero(mask)
            part_idx.append(idx)
            if idx.size:
                staged_gids.append(rt.mg.vertices[idx])
                staged_deltas.append(rt.delta_msg[idx])
        if staged_gids:
            all_gids = np.concatenate(staged_gids)
            all_deltas = np.concatenate(staged_deltas)
            scatter_reduce(alg, total, all_gids, all_deltas)
            # replica counts are pure integer sums — no ⊕ semantics needed
            cnt[:] = np.bincount(all_gids, minlength=cnt.size)
            if self.lens.enabled:
                # delta mass this exchange ships (monoid-measured)
                self.lens.on_staged(alg.magnitude(all_deltas))

        exchanged = np.flatnonzero(cnt > 0)
        if exchanged.size == 0:
            # still clear deltas of unreplicated vertices (they have no
            # peers to inform; their messages were applied locally)
            for rt, idx in zip(self.runtimes, part_idx):
                solo = np.flatnonzero(rt.has_delta & (rt.mg.num_replicas == 1))
                if solo.size:
                    rt.clear_deltas(solo)
            return ExchangeReport(
                CommMode.ALL_TO_ALL, 0.0, 0, 0.0, 0.0, 0
            )

        # ---- price both wire protocols (paper's volume equations) -----
        nrep = self.pgraph.num_replicas[exchanged]
        nhas = cnt[exchanged]
        b = float(self.program.delta_bytes)
        msgs_a2a = int((nhas * (nrep - 1)).sum())
        msgs_m2m = int((nhas + nrep - 2).sum())
        vol_a2a = msgs_a2a * b
        vol_m2m = msgs_m2m * b
        if self.mode == "a2a":
            mode = CommMode.ALL_TO_ALL
        elif self.mode == "m2m":
            mode = CommMode.MIRRORS_TO_MASTER
        else:
            mode = self.network.pick_mode(
                vol_a2a, vol_m2m, self.pgraph.num_machines
            )
        if self._last_mode is not None and mode is not self._last_mode:
            self._switches += 1
            self.tracer.instant(
                "mode-switch", to=mode.value, switches=self._switches
            )
        self._last_mode = mode
        volume = vol_a2a if mode is CommMode.ALL_TO_ALL else vol_m2m
        messages = msgs_a2a if mode is CommMode.ALL_TO_ALL else msgs_m2m
        self.tracer.instant(
            "coherency-exchange",
            mode=mode.value,
            volume_a2a_bytes=vol_a2a,
            volume_m2m_bytes=vol_m2m,
            messages=messages,
            vertices=int(exchanged.size),
        )

        # ---- deliver: every replica folds the others' combined delta --
        use_inverse = not alg.idempotent
        for mi, (rt, idx) in enumerate(zip(self.runtimes, part_idx)):
            gids_all = rt.mg.vertices
            c = cnt[gids_all]
            participated = np.zeros(rt.mg.num_local_vertices, dtype=bool)
            participated[idx] = True
            others = c - participated.astype(np.int64)
            recv = np.flatnonzero(others > 0)
            if recv.size:
                tot = total[gids_all[recv]]
                if use_inverse:
                    own = np.where(
                        participated[recv], rt.delta_msg[recv], ident
                    )
                    incoming = alg.inverse(tot, own)
                else:
                    # idempotent ⊕: re-folding own contribution is a no-op
                    incoming = tot
                rt.msg[recv] = alg.combine(rt.msg[recv], incoming)
                rt.has_msg[recv] = True
            # advance this replica's shared-view snapshot with everything
            # exchanged for its vertices (participants' combined deltas)
            if self._shared is not None:
                touched = np.flatnonzero(c > 0)
                if touched.size:
                    shared = self._shared[mi]
                    shared[touched] = alg.combine(
                        shared[touched], total[gids_all[touched]]
                    )
            # participants' deltas are now delivered; unreplicated
            # vertices' deltas are dead weight either way
            clear = np.flatnonzero(
                participated | (rt.has_delta & (rt.mg.num_replicas == 1))
            )
            if clear.size:
                rt.clear_deltas(clear)

        return ExchangeReport(
            mode=mode,
            volume_bytes=volume,
            messages=messages,
            volume_a2a_bytes=vol_a2a,
            volume_m2m_bytes=vol_m2m,
            vertices_exchanged=int(exchanged.size),
        )
