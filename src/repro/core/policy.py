"""The coherency-controller layer: pluggable coherency-point policies.

The paper's adaptive rule (§4.2.1) decides coherency points from two
features only — ``E/V`` and the active-count trend. The coherency lens
(PR 4) showed that laziness actually trades away *measurable* quantities
the rule never sees: pending ``deltaMsg`` mass, replica staleness age,
and master↔mirror drift. This module generalizes the interval model
into a :class:`CoherencyController` protocol fed a per-superstep
:class:`CoherencySignals` snapshot carrying all five signals, computed
cheaply inline by a :class:`SignalTap` (not via the lens probes, so
controllers work with ``lens=False``).

Shipped controllers:

* :class:`PaperRuleController` (``"paper"``, the default) — wraps an
  :class:`~repro.core.interval_model.IntervalModel` and reproduces the
  paper's behaviour bit-identically (it never requests the extended
  signals, so the default hot path computes nothing new);
* :class:`StalenessController` (``"staleness"``) — accumulated-delta-
  magnitude driven (cf. *Maiter* / *Delayed Asynchronous Iterative
  Graph Algorithms*): on LazyVertexAsync it delays partial exchanges
  while the pending mass decays below a fraction of its running peak
  (shipping dribbles of mass is what inflates the sync count), bounded
  by a hard staleness-age cap; on LazyBlockAsync it keeps lazy mode on
  through the decay phase for the same reason;
* :class:`BatchedController` (``"batched"``) — LazyVertexAsync
  partial-exchange batching: instead of letting each replica trigger
  its own exchange as it comes due, coalesce — wait until the *oldest*
  pending delta reaches ``max_delta_age``, then ship **everything**
  pending in one partial exchange. No delta waits longer than the same
  ``max_delta_age`` bound, but exchanges fire ~``max_delta_age``×
  less often.

The user-facing knob is :class:`CoherencyPolicy`: one typed dataclass
collapsing the previously scattered coherency arguments (``interval``,
``coherency_mode``, ``max_delta_age``) plus the controller choice and
its options. Policies are registered by name (:func:`register_policy` /
:func:`get_policy`) so ``repro.run(policy="staleness")``, the CLI's
``--policy`` and ``ExperimentConfig(policy=...)`` all share one
vocabulary.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.interval_model import (
    AdaptiveIntervalModel,
    IntervalModel,
    make_interval_model,
)
from repro.errors import ConfigError

__all__ = [
    "CoherencySignals",
    "SignalTap",
    "ExchangeDirective",
    "CoherencyController",
    "PaperRuleController",
    "StalenessController",
    "BatchedController",
    "CoherencyPolicy",
    "make_controller",
    "controller_names",
    "register_policy",
    "get_policy",
    "policy_names",
    "resolve_policy",
]


# ----------------------------------------------------------------------
# Signals
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CoherencySignals:
    """One superstep's controller inputs.

    ``ev_ratio``/``trend``/``active`` are the paper's features (free to
    compute); ``pending_mass``/``pending_replicas``/``staleness_max``/
    ``drift_sample`` are the lens-grade extended signals, filled in only
    when the active controller sets ``needs_signals`` (they cost one
    pass over the pending deltas plus a small drift sample).
    """

    superstep: int
    ev_ratio: float
    trend: float
    active: int
    pending_mass: float = 0.0
    pending_replicas: int = 0
    staleness_max: int = 0
    drift_sample: float = 0.0

    def as_inputs(self) -> Dict[str, float]:
        """Flat snapshot for the lens decision audit log."""
        return {
            "ev_ratio": float(self.ev_ratio),
            "trend": float(self.trend),
            "active": int(self.active),
            "pending_mass": float(self.pending_mass),
            "pending_replicas": int(self.pending_replicas),
            "staleness_max": int(self.staleness_max),
            "drift_sample": float(self.drift_sample),
        }


class SignalTap:
    """Cheap inline reader of the extended coherency signals.

    Unlike the lens probes this never touches the tracer or metrics —
    it is the controller's private measurement path, available with
    ``lens=False``. Engines construct one only when the controller
    declares ``needs_signals``, so the default (paper) configuration
    computes nothing extra.
    """

    def __init__(
        self,
        runtimes,
        pgraph,
        program,
        sample_size: int = 8,
        seed: int = 0,
    ) -> None:
        self.runtimes = list(runtimes)
        self.algebra = program.algebra
        # deterministic drift sample: a handful of replicated vertices
        # mapped to their (machine, local index) replica slots
        replicated = np.flatnonzero(pgraph.num_replicas > 1)
        if replicated.size > sample_size:
            rng = np.random.default_rng(seed)
            replicated = np.sort(
                rng.choice(replicated, size=sample_size, replace=False)
            )
        pos = {int(g): i for i, g in enumerate(replicated)}
        locations: List[List[Tuple[int, int]]] = [
            [] for _ in range(replicated.size)
        ]
        for mi, rt in enumerate(self.runtimes):
            for li, gid in enumerate(rt.mg.vertices):
                slot = pos.get(int(gid))
                if slot is not None:
                    locations[slot].append((mi, li))
        self._locations = locations

    def drift_sample(self) -> float:
        """Max master↔mirror value gap over the deterministic sample."""
        worst = 0.0
        values = [rt.values() for rt in self.runtimes]
        for locs in self._locations:
            lo = math.inf
            hi = -math.inf
            for mi, li in locs:
                v = float(values[mi][li])
                lo = min(lo, v)
                hi = max(hi, v)
            gap = hi - lo
            if math.isfinite(gap) and gap > worst:
                worst = gap
        return worst

    def read(
        self,
        superstep: int,
        ev_ratio: float,
        trend: float,
        active: int,
        ages: Optional[List[np.ndarray]] = None,
    ) -> CoherencySignals:
        """Snapshot all signals (``ages``: per-machine staleness clocks)."""
        mass = 0.0
        count = 0
        stale = 0
        for mi, rt in enumerate(self.runtimes):
            idx = np.flatnonzero(rt.has_delta)
            if idx.size == 0:
                continue
            mass += self.algebra.magnitude(rt.delta_msg[idx])
            count += int(idx.size)
            if ages is not None:
                stale = max(stale, int(ages[mi][idx].max()))
        return CoherencySignals(
            superstep=superstep,
            ev_ratio=float(ev_ratio),
            trend=float(trend),
            active=int(active),
            pending_mass=float(mass),
            pending_replicas=count,
            staleness_max=stale,
            drift_sample=self.drift_sample(),
        )


# ----------------------------------------------------------------------
# Controllers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExchangeDirective:
    """One superstep's partial-exchange decision (LazyVertexAsync).

    ``execute=False`` defers: no replica participates this superstep
    (unreplicated and subsumed deltas are still swept). ``min_age``
    selects the participants of an executed exchange — every replica
    whose pending delta is at least that many local rounds old.
    """

    execute: bool
    min_age: int
    rule: str


#: The deferral directive shared by all controllers.
DEFER = ExchangeDirective(execute=False, min_age=0, rule="defer")


class CoherencyController(abc.ABC):
    """Strategy deciding both engines' coherency points.

    One controller instance lives for one engine run (controllers may
    keep cross-superstep state such as running peaks); build a fresh one
    per run via :meth:`CoherencyPolicy.make_controller`.
    """

    name = "abstract"
    #: Request the extended (mass/staleness/drift) signals. The default
    #: controller leaves this off so the paper path stays bit-identical
    #: *and* computation-identical.
    needs_signals = False

    @property
    def rule_name(self) -> str:
        """Label used in the decision audit log's ``rule`` field."""
        return self.name

    # ---- LazyBlockAsync hooks ----------------------------------------
    @abc.abstractmethod
    def turn_on_lazy(self, signals: CoherencySignals) -> bool:
        """Should the next superstep run a local computation stage?"""

    @abc.abstractmethod
    def local_budget(self, first_iteration_time: float) -> float:
        """Max modeled seconds a local stage may run (∞ = quiescence)."""

    # ---- LazyVertexAsync hook ----------------------------------------
    def partial_exchange(
        self, signals: CoherencySignals, max_delta_age: int
    ) -> ExchangeDirective:
        """Decide this superstep's partial exchange (default: paper rule —
        replicas due at ``max_delta_age`` trigger their own exchange)."""
        return ExchangeDirective(True, max_delta_age, "max-delta-age")


class PaperRuleController(CoherencyController):
    """The paper's behaviour behind the controller protocol (default).

    Wraps an :class:`IntervalModel` (adaptive by default) for the
    LazyBlockAsync decisions and keeps LazyVertexAsync's per-replica
    ``max_delta_age`` trigger. Bit-identical to the pre-controller
    engines — the golden-number pins hold under this controller.
    """

    name = "paper"

    def __init__(self, interval_model: Optional[IntervalModel] = None) -> None:
        self.interval_model = interval_model or AdaptiveIntervalModel()

    @property
    def rule_name(self) -> str:
        return self.interval_model.name

    def turn_on_lazy(self, signals: CoherencySignals) -> bool:
        return self.interval_model.turn_on_lazy(signals.ev_ratio, signals.trend)

    def local_budget(self, first_iteration_time: float) -> float:
        return self.interval_model.local_budget(first_iteration_time)


class StalenessController(CoherencyController):
    """Delay exchanges while the pending delta mass decays.

    Tracks the running peak of the pending ``deltaMsg`` mass. Once the
    run enters its decay phase (pending mass below ``mass_floor`` × the
    peak) the accumulated magnitude no longer pays for a sync every
    superstep, so due replicas are *deferred* and their deltas keep
    coalescing — until either the mass climbs back over the floor or
    the oldest pending delta hits the hard age cap
    (``age_cap_factor × max_delta_age`` local rounds). On LazyBlockAsync
    the same signal keeps lazy mode on through the decay phase.
    """

    name = "staleness"
    needs_signals = True

    def __init__(
        self,
        interval_model: Optional[IntervalModel] = None,
        mass_floor: float = 0.5,
        age_cap_factor: float = 2.0,
    ) -> None:
        if not 0.0 < mass_floor <= 1.0:
            raise ConfigError(
                f"staleness controller: mass_floor must be in (0, 1], "
                f"got {mass_floor}"
            )
        if age_cap_factor < 1.0:
            raise ConfigError(
                f"staleness controller: age_cap_factor must be >= 1, "
                f"got {age_cap_factor}"
            )
        self.interval_model = interval_model or AdaptiveIntervalModel()
        self.mass_floor = float(mass_floor)
        self.age_cap_factor = float(age_cap_factor)
        self._peak_mass = 0.0

    def _decaying(self, pending_mass: float) -> bool:
        self._peak_mass = max(self._peak_mass, pending_mass)
        return 0.0 < pending_mass < self.mass_floor * self._peak_mass

    def turn_on_lazy(self, signals: CoherencySignals) -> bool:
        base = self.interval_model.turn_on_lazy(signals.ev_ratio, signals.trend)
        return base or self._decaying(signals.pending_mass)

    def local_budget(self, first_iteration_time: float) -> float:
        return self.interval_model.local_budget(first_iteration_time)

    def partial_exchange(
        self, signals: CoherencySignals, max_delta_age: int
    ) -> ExchangeDirective:
        cap = max(max_delta_age + 1, int(math.ceil(
            self.age_cap_factor * max_delta_age
        )))
        decaying = self._decaying(signals.pending_mass)
        if signals.staleness_max >= cap:
            # the backlog hit the hard staleness bound: coalesce — ship
            # everything pending, not just the replicas that came due
            return ExchangeDirective(True, 1, "staleness-cap")
        if decaying:
            return ExchangeDirective(False, 0, "mass-decaying")
        return ExchangeDirective(True, max_delta_age, "mass-due")


class BatchedController(CoherencyController):
    """Coalesce LazyVertexAsync partial exchanges under ``max_delta_age``.

    The per-replica age trigger spreads many tiny partial exchanges over
    consecutive supersteps (replicas come due one superstep apart). This
    controller batches them: defer while the oldest pending delta is
    younger than ``max_delta_age``, then ship *every* pending delta in
    one exchange. The staleness bound is unchanged — no delta ever waits
    more than ``max_delta_age`` local rounds — but the exchange count
    drops by roughly that factor. On LazyBlockAsync it falls back to the
    paper rule (there is nothing to batch: Algorithm 1 already runs one
    full exchange per superstep).
    """

    name = "batched"
    needs_signals = True

    def __init__(self, interval_model: Optional[IntervalModel] = None) -> None:
        self.interval_model = interval_model or AdaptiveIntervalModel()

    def turn_on_lazy(self, signals: CoherencySignals) -> bool:
        return self.interval_model.turn_on_lazy(signals.ev_ratio, signals.trend)

    def local_budget(self, first_iteration_time: float) -> float:
        return self.interval_model.local_budget(first_iteration_time)

    def partial_exchange(
        self, signals: CoherencySignals, max_delta_age: int
    ) -> ExchangeDirective:
        if signals.staleness_max >= max_delta_age:
            return ExchangeDirective(True, 1, "batched-coalesce")
        return ExchangeDirective(False, 0, "batch-accumulate")


_CONTROLLERS: Dict[str, type] = {
    "paper": PaperRuleController,
    "staleness": StalenessController,
    "batched": BatchedController,
}


def controller_names() -> Tuple[str, ...]:
    """All known controller names, sorted."""
    return tuple(sorted(_CONTROLLERS))


def make_controller(
    name: str,
    interval_model: Optional[IntervalModel] = None,
    **options,
) -> CoherencyController:
    """Build a fresh controller by name (controllers are stateful)."""
    try:
        cls = _CONTROLLERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown coherency controller {name!r}; known: "
            f"{', '.join(controller_names())}"
        ) from None
    try:
        return cls(interval_model=interval_model, **options)
    except TypeError as exc:
        raise ConfigError(
            f"controller {name!r} rejected options {sorted(options)}: {exc}"
        ) from None


# ----------------------------------------------------------------------
# The unified policy knob
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CoherencyPolicy:
    """Every coherency knob in one typed, hashable value.

    Collapses the previously scattered arguments — ``run()``'s
    ``interval``/``coherency_mode`` and the engines' ``max_delta_age`` —
    plus the controller choice and its numeric options. Accepted by
    :func:`repro.run` (``policy=``), the CLI (``--policy`` /
    ``--policy-opt k=v``) and
    :class:`~repro.bench.configs.ExperimentConfig`.
    """

    controller: str = "paper"
    interval: Union[str, IntervalModel] = "adaptive"
    mode: str = "dynamic"
    max_delta_age: int = 3
    options: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.controller not in _CONTROLLERS:
            raise ConfigError(
                f"unknown coherency controller {self.controller!r}; known: "
                f"{', '.join(controller_names())}"
            )
        if self.mode not in ("dynamic", "a2a", "m2m"):
            raise ConfigError(
                f"unknown coherency mode {self.mode!r}; known: dynamic, a2a, m2m"
            )
        if self.max_delta_age < 1:
            raise ConfigError(
                f"max_delta_age must be >= 1, got {self.max_delta_age}"
            )

    # ------------------------------------------------------------------
    def make_interval_model(self) -> IntervalModel:
        if isinstance(self.interval, IntervalModel):
            return self.interval
        return make_interval_model(self.interval)

    def make_controller(self) -> CoherencyController:
        """A fresh (per-run) controller configured by this policy."""
        return make_controller(
            self.controller,
            interval_model=self.make_interval_model(),
            **dict(self.options),
        )

    def apply_opts(self, opts: Mapping[str, object]) -> "CoherencyPolicy":
        """Overlay ``--policy-opt``-style key=value overrides.

        The policy's own fields (``controller``, ``interval``, ``mode``,
        ``max_delta_age``) are recognized by name; anything else becomes
        a numeric controller option.
        """
        pol = self
        for key, value in opts.items():
            if key == "controller":
                pol = replace(pol, controller=str(value))
            elif key == "interval":
                pol = replace(pol, interval=str(value))
            elif key == "mode":
                pol = replace(pol, mode=str(value))
            elif key == "max_delta_age":
                pol = replace(pol, max_delta_age=int(value))
            else:
                try:
                    numeric = float(value)
                except (TypeError, ValueError):
                    raise ConfigError(
                        f"policy option {key!r} must be numeric, got {value!r}"
                    ) from None
                merged = dict(pol.options)
                merged[key] = numeric
                pol = replace(pol, options=tuple(sorted(merged.items())))
        return pol

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (bench outputs, experiment reports)."""
        interval = (
            self.interval.name
            if isinstance(self.interval, IntervalModel)
            else self.interval
        )
        return {
            "controller": self.controller,
            "interval": interval,
            "mode": self.mode,
            "max_delta_age": self.max_delta_age,
            "options": dict(self.options),
        }


_POLICIES: Dict[str, CoherencyPolicy] = {}


def register_policy(name: str, policy: CoherencyPolicy) -> CoherencyPolicy:
    """Add a named policy to the registry (name must be unused)."""
    if name in _POLICIES:
        raise ConfigError(f"policy {name!r} is already registered")
    if not isinstance(policy, CoherencyPolicy):
        raise ConfigError(
            f"policy {name!r} must be a CoherencyPolicy, got "
            f"{type(policy).__name__}"
        )
    _POLICIES[name] = policy
    return policy


def get_policy(name: str) -> CoherencyPolicy:
    """Look a policy up by name (:class:`ConfigError` if unknown)."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown coherency policy {name!r}; known: "
            f"{', '.join(policy_names())}"
        ) from None


def policy_names() -> Tuple[str, ...]:
    """All registered policy names, sorted."""
    return tuple(sorted(_POLICIES))


# Builtin vocabulary: the paper rule and its Fig 8(a) strawmen, plus the
# two signal-driven controllers this layer introduces.
register_policy("paper", CoherencyPolicy())
register_policy("simple", CoherencyPolicy(interval="simple"))
register_policy("never", CoherencyPolicy(interval="never"))
register_policy("staleness", CoherencyPolicy(controller="staleness"))
register_policy("batched", CoherencyPolicy(controller="batched"))


# ----------------------------------------------------------------------
# Policy resolution (the run()/harness path)
# ----------------------------------------------------------------------
def resolve_policy(
    policy: Union[str, CoherencyPolicy, None] = None,
    interval: Union[str, IntervalModel, None] = None,
    coherency_mode: Optional[str] = None,
    max_delta_age: Optional[int] = None,
) -> Tuple[CoherencyPolicy, bool]:
    """Resolve a ``policy`` value (name / instance / None) to a policy.

    Returns ``(policy, explicit)`` where ``explicit`` is True when the
    caller named a policy — the knob that is an error on engines without
    a coherency-controller layer.

    The pre-PR-10 scattered knobs (``interval=`` / ``coherency_mode=`` /
    ``max_delta_age=``) were removed after a deprecation cycle; passing
    one raises :class:`ConfigError` with the ``policy=`` migration hint.
    """
    if interval is not None:
        raise ConfigError(
            "run(interval=...) was removed; use "
            "policy=CoherencyPolicy(interval=...) or a named --policy"
        )
    if coherency_mode is not None:
        raise ConfigError(
            "run(coherency_mode=...) was removed; use "
            "policy=CoherencyPolicy(mode=...) or --policy-opt mode=..."
        )
    if max_delta_age is not None:
        raise ConfigError(
            "max_delta_age= was removed; use "
            "policy=CoherencyPolicy(max_delta_age=...) or "
            "--policy-opt max_delta_age=..."
        )
    explicit = policy is not None
    if isinstance(policy, str):
        policy = get_policy(policy)
    pol = policy if policy is not None else get_policy("paper")
    return pol, explicit
