"""Transmission-mode planning: the one-call lazy-graph builder.

The two message transmission modes (paper §3.3) are realized by data
layout, not engine branches:

* **one-edge** — the edge lives on one machine;
  :meth:`MachineRuntime.scatter` folds its messages into the target's
  ``deltaMsg``, so remote replicas receive them at coherency points;
* **parallel-edges** — the edge is copied onto every machine hosting the
  target's replicas (with source replicas added by the dispatch
  fixpoint); its messages are local writes on every machine and never
  enter ``deltaMsg``.

:func:`build_lazy_graph` composes the full §4.1 pipeline —
vertex-cut partitioning, edge-splitter selection, dispatch — into one
call used by the public API, examples, and benches.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.digraph import DiGraph
from repro.partition.base import partition_graph
from repro.partition.edge_splitter import EdgeSplitConfig, select_parallel_edges
from repro.partition.partitioned_graph import PartitionedGraph
from repro.utils.rng import SeedLike

__all__ = ["build_lazy_graph"]


def build_lazy_graph(
    graph: DiGraph,
    num_machines: int,
    partitioner: str = "coordinated",
    split_config: Optional[EdgeSplitConfig] = None,
    bidirectional: bool = False,
    seed: SeedLike = None,
) -> PartitionedGraph:
    """Partition ``graph`` for LazyGraph execution (paper §4.1).

    Parameters
    ----------
    partitioner:
        Vertex-cut algorithm (``coordinated`` is the paper's choice).
    split_config:
        Edge-splitter budget/criteria; ``None`` disables parallel-edges
        (every edge in one-edge mode — also what the eager baselines
        use, since parallel-edges only pay off with lazy coherency).
    bidirectional:
        Dispatch parallel edges for bidirectional algorithms (copies on
        both endpoints' machines).
    """
    assignment = partition_graph(graph, num_machines, partitioner, seed=seed)
    parallel = (
        select_parallel_edges(graph, num_machines, split_config)
        if split_config is not None
        else None
    )
    return PartitionedGraph.build(
        graph,
        assignment,
        num_machines,
        parallel_eids=parallel,
        bidirectional=bidirectional,
    )
