"""LazyVertexAsync — paper Algorithm 2 (future work there; built here).

No global barrier anywhere: machines continuously drain their local
queues (Apply + Scatter with immediate local visibility), and a replica
participates in a *partial* coherency exchange only when its own
``needDataCoherency`` predicate fires — here, when its delta has been
pending for ``max_delta_age`` local rounds (freshly-updated hot vertices
keep computing locally; stale deltas get shipped). Exchanges deliver to
all replicas of the exchanged vertices but clear only the participants,
so replicas synchronize pairwise-asynchronously, "as soon as possible",
hiding network latency behind continued local work.

Cost accounting follows the Async conventions: no ``global_syncs``, the
exchange volume is charged at the fine-grained (unbatched) rate, and
compute folds without barriers. Unlike eager Async there is no
per-update locking — replicas are independent by construction — so no
``async_round_overhead`` applies; that is precisely the paper's argument
for lazy coherency in an asynchronous setting.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.api.vertex_program import DeltaProgram
from repro.cluster.network import NetworkModel
from repro.cluster.termination import TerminationDetector
from repro.comms import Delivery
from repro.core.coherency import CoherencyExchanger, no_participants
from repro.core.policy import (
    CoherencyController,
    CoherencySignals,
    PaperRuleController,
    SignalTap,
)
from repro.errors import EngineError
from repro.obs.lens import CoherencyLens
from repro.partition.partitioned_graph import PartitionedGraph
from repro.runtime.base_engine import BaseEngine
from repro.runtime.machine_runtime import MachineRuntime

__all__ = ["LazyVertexAsyncEngine"]


class LazyVertexAsyncEngine(BaseEngine):
    """The lazy per-vertex asynchronous engine (Algorithm 2).

    Parameters
    ----------
    max_delta_age:
        A replica's pending delta is exchanged once it is this many
        local rounds old. 1 = exchange every round (most coherent);
        larger values trade staleness for fewer exchanges.
    controller:
        A :class:`~repro.core.policy.CoherencyController` whose
        ``partial_exchange`` directive can defer or widen each
        superstep's partial exchange (default: the paper rule — every
        due replica triggers its own exchange, bit-identical to the
        pre-controller engine).
    lens:
        Enable the coherency lens (:mod:`repro.obs.lens`): staleness/
        divergence probes and the decision audit log. Off by default.
    """

    name = "lazy-vertex"

    def __init__(
        self,
        pgraph: PartitionedGraph,
        program: DeltaProgram,
        network: Optional[NetworkModel] = None,
        coherency_mode: str = "dynamic",
        max_delta_age: int = 3,
        max_supersteps: int = 100_000,
        trace: bool = False,
        tracer=None,
        lens: "Union[bool, dict]" = False,
        controller: Optional[CoherencyController] = None,
        backend=None,
        plans=None,
    ) -> None:
        super().__init__(
            pgraph, program, network, max_supersteps, trace, tracer,
            backend=backend, plans=plans,
        )
        if max_delta_age < 1:
            raise EngineError(f"max_delta_age must be >= 1, got {max_delta_age}")
        self.max_delta_age = max_delta_age
        self.controller = controller or PaperRuleController()
        self._tap = (
            SignalTap(self.runtimes, pgraph, program)
            if self.controller.needs_signals
            else None
        )
        if lens:
            # lens may be True or a dict of CoherencyLens kwargs
            # (sample_size/seed/rollup_after/rollup_every/sharded)
            opts = lens if isinstance(lens, dict) else {}
            self.lens = CoherencyLens.for_engine(self, **opts)
        self.exchanger = CoherencyExchanger(
            pgraph, program, self.runtimes, coherency_mode, self.sim.network,
            tracer=self.tracer, plane=self.comms,
            delivery=Delivery.ASYNC_PIPELINED,
            lens=self.lens,
        )
        self._age: List[np.ndarray] = [
            np.zeros(mg.num_local_vertices, dtype=np.int64)
            for mg in pgraph.machines
        ]

    # ------------------------------------------------------------------
    def _execute(self) -> bool:
        sim = self.sim
        detector = TerminationDetector(sim, channel=self.comms.control)
        idle_flags = [True] * sim.num_machines
        sent_total = 0
        self._bootstrap(track_delta=True)

        tracer = self.tracer
        lens = self.lens
        controller = self.controller
        shards = self.shards
        tap = self._tap
        ev_ratio = self.pgraph.graph.ev_ratio
        for step in range(self.max_supersteps):
            with tracer.span("superstep", category="superstep", superstep=step):
                lens.begin_superstep(step)
                # ---- continuous local processing (one round) -----------
                with tracer.span("local-round", category="phase") as sp:
                    round_edges = 0
                    round_applies = 0
                    results = self.backend.dispatch(
                        "apply_step",
                        {"track_delta": True, "span": True, "superstep": step},
                    )
                    for m, res in enumerate(results):
                        sim.add_compute(m, res["edges"], res["applies"])
                        round_edges += res["edges"]
                        round_applies += res["applies"]
                    shards.merge()
                    sp.set(edges=round_edges, applies=round_applies)

                # ---- age deltas; stale ones trigger their own coherency
                for rt, age in zip(self.runtimes, self._age):
                    age[rt.has_delta] += 1
                    age[~rt.has_delta] = 0

                # pre-exchange reading: staleness ages + the pending mass
                # the due replicas are about to ship
                lens.probe()

                idle = self._globally_idle()
                due = None
                directive = None
                if not idle:
                    # the controller decides this superstep's partial
                    # exchange: execute at some due-age floor, or defer
                    # and let the pending deltas keep coalescing
                    if tap is not None:
                        signals = tap.read(
                            step, ev_ratio, 0.0,
                            self._global_active_count(), ages=self._age,
                        )
                    else:
                        signals = CoherencySignals(step, ev_ratio, 0.0, 0)
                    directive = controller.partial_exchange(
                        signals, self.max_delta_age
                    )
                    lens.decision(
                        "partial_exchange",
                        rule=directive.rule,
                        verdict="exchange" if directive.execute else "defer",
                        controller=controller.name,
                        min_age=directive.min_age,
                        **signals.as_inputs(),
                    )
                    if directive.execute:
                        def due(rt: MachineRuntime, _ages=self._age,
                                _m=directive.min_age) -> np.ndarray:
                            return _ages[rt.mg.machine_id] >= _m

                with tracer.span("partial-coherency", category="phase") as sp:
                    if idle:
                        # drain everything before concluding: a final full
                        # exchange may reactivate replicas
                        report = self.exchanger.exchange()
                    elif due is not None:
                        report = self.exchanger.exchange(participants=due)
                    else:
                        # deferred: no replica participates; the empty
                        # path still sweeps unreplicated/subsumed deltas
                        report = self.exchanger.exchange(
                            participants=no_participants
                        )
                    comm_seconds = self.exchanger.deliver(report)
                    if not report.empty:
                        sim.stats.coherency_points += 1
                        sent_total += report.messages
                        # audit entry + invariant probe while the due mask
                        # still reflects pre-exchange ages: a full (idle)
                        # drain must clear everything, a partial exchange
                        # everything at/above the directive's age floor +
                        # unreplicated vertices
                        lens.on_exchange(
                            report,
                            due=None if idle else due,
                            rule="idle-drain" if idle else directive.rule,
                            controller=controller.name,
                            max_delta_age=self.max_delta_age,
                        )
                        for rt, age in zip(self.runtimes, self._age):
                            age[~rt.has_delta] = 0
                    # transfers pipeline behind local processing (§3.4)
                    sim.settle_async_overlapped(comm_seconds)
                    sp.set(mode=report.mode.value,
                           exchanged=report.vertices_exchanged,
                           volume_bytes=report.volume_bytes)
                sim.stats.supersteps += 1
                if self.trace:
                    sim.stats.snapshot(
                        active=self._global_active_count(),
                        exchanged=report.vertices_exchanged,
                        mode=report.mode.value,
                    )

                if idle and report.empty and self._globally_idle():
                    # quiescence is only *known* via termination detection
                    with tracer.span("termination-probe", category="phase"):
                        done = detector.probe(idle_flags, sent_total, sent_total)
                    if done:
                        return True
                else:
                    detector.reset()
        return False
