"""Deterministic random-number management.

Everything random in this library (graph generation, random partitioning,
tie breaking) flows through a :class:`numpy.random.Generator` created here,
so that a single integer seed reproduces an entire experiment bit-for-bit.

Independent subsystems should not share one generator — drawing numbers in
one would perturb the other. :func:`derive_seed` derives stable child seeds
from a parent seed and a string label, and :class:`RngStream` packages the
pattern: one parent seed, many named, mutually independent child streams.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 0x5A2E_61AF


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a stable 63-bit child seed from ``parent_seed`` and ``label``.

    The derivation uses CRC32 over the label mixed with the parent seed via
    splitmix64-style avalanching, so distinct labels give well-separated
    child seeds and the mapping is stable across Python/NumPy versions
    (unlike ``hash()``, which is salted per process).
    """
    x = (parent_seed ^ (zlib.crc32(label.encode("utf-8")) * 0x9E3779B97F4A7C15)) & (
        2**64 - 1
    )
    # splitmix64 finalizer
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & (2**64 - 1)
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & (2**64 - 1)
    x = x ^ (x >> 31)
    return int(x & (2**63 - 1))


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` maps to a fixed library-wide default seed — this library is
    a reproduction harness, so *unseeded* still means *deterministic*.
    An existing ``Generator`` is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    if not isinstance(seed, (int, np.integer)):
        raise TypeError(f"seed must be int, Generator or None, got {type(seed)!r}")
    return np.random.default_rng(int(seed))


class RngStream:
    """A family of named, independent random generators under one seed.

    Example
    -------
    >>> streams = RngStream(seed=7)
    >>> g1 = streams.get("graph")
    >>> g2 = streams.get("partition")
    >>> streams.get("graph") is g1   # cached per label
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = _DEFAULT_SEED if seed is None else int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, label: str) -> np.random.Generator:
        """Return the generator for ``label``, creating it on first use."""
        if label not in self._streams:
            self._streams[label] = np.random.default_rng(
                derive_seed(self.seed, label)
            )
        return self._streams[label]

    def child(self, label: str) -> "RngStream":
        """Return a new :class:`RngStream` seeded from ``label``."""
        return RngStream(derive_seed(self.seed, label))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RngStream(seed={self.seed}, labels={sorted(self._streams)})"
