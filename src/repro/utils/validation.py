"""Small argument-validation helpers shared across the library.

Keeping these in one place gives consistent, informative error messages
from public entry points while the numeric kernels stay assertion-free.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def check_type(
    value: Any, types: Union[Type, Tuple[Type, ...]], name: str
) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = " or ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
    return value


def check_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value
