"""Shared utilities: seeded RNG management, timers, validation helpers."""

from repro.utils.rng import RngStream, derive_seed, make_rng
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_nonnegative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RngStream",
    "derive_seed",
    "make_rng",
    "Timer",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_type",
]
