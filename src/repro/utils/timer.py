"""Lightweight wall-clock timing helpers used by the bench harness.

These measure *host* time (how long the simulator takes to run), which is
distinct from the *modeled* cluster time reported by
:class:`repro.cluster.stats.RunStats`.
"""

from __future__ import annotations

import time
from typing import Dict, Optional


class Timer:
    """Context-manager stopwatch with named laps.

    >>> with Timer() as t:
    ...     sum(range(1000))
    499500
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._last_lap: Optional[float] = None
        self.elapsed: float = 0.0
        self.laps: Dict[str, float] = {}

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        self._start = time.perf_counter()
        self._last_lap = self._start

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        self._last_lap = None
        return self.elapsed

    def lap(self, name: str) -> float:
        """Record the split since the previous lap (or ``start()``) as ``name``.

        The timer keeps running; repeated ``lap`` calls with the same
        name accumulate, so the laps always partition the elapsed time:
        ``sum(t.laps.values()) <= t.elapsed``.
        """
        if self._start is None:
            raise RuntimeError("Timer.lap() called before start()")
        now = time.perf_counter()
        split = now - self._last_lap
        self._last_lap = now
        self.laps[name] = self.laps.get(name, 0.0) + split
        return split
