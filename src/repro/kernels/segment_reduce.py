"""Monoid-specialized scatter-reductions (``buf[idx] ⊕= values``).

Exactness contract
------------------
Every kernel here is **bit-identical** to the generic fallback
``algebra.ufunc.at(buf, idx, values)``. That is cheap to promise for
min/max — they are exact operations, so any regrouping of the fold
returns the same value — but needs care for sums, where floating-point
addition does not reassociate. The sum kernel leans on two facts:

* ``np.bincount`` accumulates each bin *sequentially in input order*,
  exactly the per-slot order ``np.add.at`` uses; and
* prepending the +0.0 identity to a fold is exact
  (``fold(+0.0, vs) == fold_bincount(vs)`` operation-for-operation),
  and appending a single value to a non-zero slot is exact
  (``buf + bincount([v]) == buf + v`` since ``x + ±0.0 == x``).

So a slot is *provably exact* under ``buf[slot] += binsum`` when the
slot holds +0.0 (the ⊕-identity every engine buffer is filled with) or
receives exactly one contribution. The rare remaining slots — an
already-accumulated slot hit by several duplicates in one call, e.g.
``deltaMsg`` across lazy micro-iterations — are re-folded through
``ufunc.at`` on just their elements, preserving bit-identity at full
speed for the common case.

Dispatch policy
---------------
On NumPy ≥ 1.25 a bare ``ufunc.at`` already runs an indexed inner loop
(one memory-bound pass), so re-deriving per-slot structure inside the
kernel cannot beat it. The specialized paths therefore fire when they
get structure for free:

* sums — when the caller passes **precomputed per-slot counts** (a
  :class:`~repro.kernels.csr.CSRPlan` full sweep precomputes them), one
  ``bincount`` plus O(n) masked adds replaces the scatter, and
  :func:`apply_segment_sums` lets one ``bincount`` feed *two* target
  buffers (``message`` and ``deltaMsg``) — the fold-once/apply-twice
  path;
* min/max — when the values arrive **pre-grouped by target**
  (:func:`fold_segments_presorted`, grouping precomputed in the plan),
  one ``reduceat`` replaces the scatter; the per-call sort variant
  exists for older NumPy (``minmax_spec="always"``).

Everything else — small scatters, plan-less calls on modern NumPy,
non-float64 buffers — goes straight to ``ufunc.at``.

All kernels operate on float64 buffers (the engines' message dtype).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.config import get_config

__all__ = [
    "monoid_kind",
    "scatter_reduce",
    "segment_sum",
    "apply_segment_sums",
    "reduce_segments",
    "fold_segments_presorted",
]

# kernel labels returned by scatter_reduce (stable API for stats/tests)
K_GENERIC = "ufunc_at"
K_SUM = "bincount"
K_MINMAX = "sort_reduceat"
K_NOOP = "noop"


def monoid_kind(algebra) -> str:
    """Classify an algebra's ⊕ for dispatch: sum | min | max | generic."""
    uf = algebra.ufunc
    if uf is np.add:
        return "sum"
    if uf is np.minimum:
        return "min"
    if uf is np.maximum:
        return "max"
    return "generic"


# ----------------------------------------------------------------------
# specialized folds
# ----------------------------------------------------------------------
def apply_segment_sums(
    buf: np.ndarray,
    sums: np.ndarray,
    counts: np.ndarray,
    idx: np.ndarray,
    values: np.ndarray,
) -> None:
    """Fold precomputed per-slot sums into ``buf``, bit-identically.

    ``sums``/``counts`` are the per-slot totals and contribution counts
    of the scatter ``(idx, values)`` (``np.bincount`` outputs, length ≥
    ``buf.size`` slots used). Slots where ``buf[slot] += sums[slot]`` is
    provably exact (see module docstring) take the O(n) vectorized add;
    the rest re-fold their elements through ``np.add.at``. Computing
    ``sums`` once and applying it to several buffers is the
    fold-once/apply-twice path the dense sweep uses for ``message`` and
    ``deltaMsg``.
    """
    n = buf.size
    counts = counts[:n]
    touched = counts > 0
    # exact cases (see module docstring): slot at the +0.0 identity, or a
    # single contribution into a non-zero slot
    pos_zero = (buf == 0.0) & ~np.signbit(buf)
    safe = touched & (pos_zero | ((counts == 1) & (buf != 0.0)))
    np.add(buf, sums[:n], out=buf, where=safe)
    resid = touched & ~safe
    if resid.any():
        keep = resid[idx]
        np.add.at(buf, idx[keep], values[keep])


def _sum_bincount(
    buf: np.ndarray,
    idx: np.ndarray,
    values: np.ndarray,
    counts: Optional[np.ndarray] = None,
) -> None:
    """Exact bincount-based ``buf[idx] += values`` with duplicates folded."""
    n = buf.size
    if counts is None:
        counts = np.bincount(idx, minlength=n)
    sums = np.bincount(idx, weights=values, minlength=n)
    apply_segment_sums(buf, sums, counts, idx, values)


def _minmax_sort_reduceat(
    ufunc: np.ufunc, buf: np.ndarray, idx: np.ndarray, values: np.ndarray
) -> None:
    """Stable sort + reduceat segment fold for idempotent min/max ⊕."""
    order = np.argsort(idx, kind="stable")
    si = idx[order]
    sv = values[order]
    starts = np.empty(0, dtype=np.int64)
    if si.size:
        starts = np.concatenate(
            ([0], np.flatnonzero(si[1:] != si[:-1]) + 1)
        ).astype(np.int64)
    seg = ufunc.reduceat(sv, starts)
    targets = si[starts]
    buf[targets] = ufunc(buf[targets], seg)


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def scatter_reduce(
    algebra,
    buf: np.ndarray,
    idx: np.ndarray,
    values: np.ndarray,
    counts: Optional[np.ndarray] = None,
) -> str:
    """``buf[idx] ⊕= values`` with duplicates folded; returns kernel label.

    Selects the fastest sound kernel for the algebra and problem shape
    under the active :class:`~repro.kernels.config.KernelConfig`;
    results are bit-identical to ``algebra.ufunc.at(buf, idx, values)``.
    ``counts``, when given, must equal ``np.bincount(idx,
    minlength=buf.size)`` — plan callers precompute it once, unlocking
    the buffered sum kernel at zero setup cost.
    """
    m = idx.size
    if m == 0:
        return K_NOOP
    values = np.asarray(values)
    if values.shape != idx.shape:  # scalar / broadcastable payloads
        values = np.broadcast_to(values, idx.shape)
    cfg = get_config()
    if (
        cfg.mode == "generic"
        or m < cfg.min_specialize
        or buf.dtype != np.float64
    ):
        algebra.ufunc.at(buf, idx, values)
        return K_GENERIC
    kind = monoid_kind(algebra)
    if kind == "sum" and (counts is not None or cfg.sum_spec == "always"):
        _sum_bincount(buf, idx, np.asarray(values, dtype=np.float64), counts)
        return K_SUM
    if kind in ("min", "max") and cfg.minmax_spec == "always":
        _minmax_sort_reduceat(
            algebra.ufunc, buf, idx, np.asarray(values, dtype=np.float64)
        )
        return K_MINMAX
    algebra.ufunc.at(buf, idx, values)
    return K_GENERIC


def segment_sum(idx: np.ndarray, values: np.ndarray, n: int) -> np.ndarray:
    """Per-slot sum of ``values`` grouped by ``idx`` (fresh identity buffer).

    Equivalent to ``np.add.at(np.zeros(n), idx, values)`` — including
    bit-for-bit, since bincount folds each bin in input order from the
    same +0.0 start — but one buffered pass. Used by the single-machine
    reference implementations' inner loops and the dense sweep's
    fold-once/apply-twice path.
    """
    if idx.size == 0:
        return np.zeros(n, dtype=np.float64)
    if get_config().mode == "generic":
        out = np.zeros(n, dtype=np.float64)
        np.add.at(out, idx, values)
        return out
    return np.bincount(idx, weights=values, minlength=n)[:n]


def reduce_segments(
    ufunc: np.ufunc, values_sorted: np.ndarray, starts: np.ndarray
) -> np.ndarray:
    """Per-segment ⊕ of pre-grouped values (one ``reduceat``, no sort).

    Segment ``k`` spans ``values_sorted[starts[k]:starts[k+1]]``; the
    caller pairs the result with the segments' target slots. Computing
    the segments once and applying them to several buffers is the
    min/max half of the fold-once/apply-twice path.
    """
    if values_sorted.size == 0:
        return values_sorted[:0]
    return ufunc.reduceat(values_sorted, starts)


def fold_segments_presorted(
    algebra,
    buf: np.ndarray,
    values_sorted: np.ndarray,
    starts: np.ndarray,
    targets: np.ndarray,
) -> None:
    """Fold pre-grouped values into ``buf`` (one reduceat, no sort).

    ``values_sorted`` must be grouped by target with segment ``k``
    spanning ``[starts[k], starts[k+1])`` and belonging to slot
    ``targets[k]`` (the dense-sweep layout a
    :class:`~repro.kernels.csr.CSRPlan` precomputes). Only sound for
    idempotent min/max ⊕ — sums must keep their original fold order for
    bit-identity and go through :func:`scatter_reduce` instead.
    """
    if values_sorted.size == 0:
        return
    seg = reduce_segments(algebra.ufunc, values_sorted, starts)
    buf[targets] = algebra.ufunc(buf[targets], seg)
