"""Cached CSR flatten structures and the frontier-adaptive sweep choice.

Both engine families repeatedly expand "the edges of these vertices"
from a grouped-by-key edge list. Doing that per call with
``np.repeat``/``np.cumsum``/``np.arange`` re-derives the same index
arithmetic and allocates fresh buffers every round; a :class:`CSRPlan`
precomputes everything that depends only on the graph — the stable edge
order, the per-key slices, the key/value arrays in sorted order, the
by-destination grouping for presorted segment folds — plus reusable
scratch, at machine-runtime construction.

:meth:`CSRPlan.select` is the push/pull-style mode switch: when the
frontier's edges cover enough of the local CSR (the
``dense_sweep_fraction`` tunable), expanding per-vertex ranges costs
more than sweeping the whole edge list with a boolean mask (or, for a
full frontier, no mask at all), so the plan returns the dense selection
instead of the sparse flatten. Positions are always returned in
sorted-key order restricted to the frontier — the same edge order the
sparse flatten produces for ascending ``idx`` — so downstream folds are
bit-identical across modes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kernels.config import get_config

__all__ = ["CSRPlan"]

SPARSE = "sparse"
DENSE = "dense"
DENSE_FULL = "dense-full"


class CSRPlan:
    """Grouped view of an edge list keyed by one endpoint.

    Parameters
    ----------
    key:
        Per-edge grouping key (local source index for out-CSRs, local
        target index for in-CSRs).
    n:
        Number of key slots (local vertices).
    dst:
        Optional per-edge companion array (the other endpoint); when
        given, ``dst_sorted`` and the by-destination grouping used by
        presorted dense folds are precomputed as well.
    """

    def __init__(
        self, key: np.ndarray, n: int, dst: Optional[np.ndarray] = None
    ) -> None:
        order = np.argsort(key, kind="stable").astype(np.int64)
        self.eorder = order
        self.key_sorted = key[order]
        self.indptr = np.searchsorted(
            self.key_sorted, np.arange(n + 1)
        ).astype(np.int64)
        self.counts = np.diff(self.indptr)
        self.num_slots = n
        self.num_edges = int(order.size)
        # slots that own at least one edge — the full sweep's touched set
        self.nonempty_slots = np.flatnonzero(self.counts > 0)
        self._arange = np.arange(self.num_edges, dtype=np.int64)
        self._mask_scratch = np.zeros(n, dtype=bool)
        self.dst_sorted: Optional[np.ndarray] = None
        self.dst_counts_full: Optional[np.ndarray] = None
        self.dst_targets: Optional[np.ndarray] = None
        self._by_dst: Optional[np.ndarray] = None
        self._dst_starts: Optional[np.ndarray] = None
        if dst is not None:
            ds = dst[order]
            self.dst_sorted = ds
            # per-target contribution counts of a full sweep — the
            # precomputed `counts` hint that unlocks the buffered sum
            # kernel (scatter_reduce) at zero per-call cost
            self.dst_counts_full = np.bincount(ds, minlength=n).astype(np.int64)
            # targets a full sweep touches, ascending (for has_msg flags)
            self.dst_targets = np.flatnonzero(self.dst_counts_full[:n] > 0)

    # -- lazy by-destination grouping (reduceat-style presorted folds) --
    @property
    def by_dst(self) -> np.ndarray:
        """Stable by-destination grouping of the key-sorted edge list.

        Per destination, edges keep their key-sorted order, so a
        presorted segment fold sees values in the same per-slot order as
        the sparse path. Computed on first use — the default dispatch
        folds full sweeps through per-slot scratch instead (see
        ``docs/performance.md``), so most runs never pay this sort.
        """
        if self._by_dst is None:
            if self.dst_sorted is None:
                raise ValueError("CSRPlan was built without a dst array")
            self._by_dst = np.argsort(self.dst_sorted, kind="stable").astype(
                np.int64
            )
        return self._by_dst

    @property
    def dst_starts(self) -> np.ndarray:
        """Segment starts of the by-destination grouping (for reduceat)."""
        if self._dst_starts is None:
            dsts = self.dst_sorted[self.by_dst]
            if dsts.size:
                self._dst_starts = np.concatenate(
                    ([0], np.flatnonzero(dsts[1:] != dsts[:-1]) + 1)
                ).astype(np.int64)
            else:
                self._dst_starts = np.empty(0, dtype=np.int64)
        return self._dst_starts

    # ------------------------------------------------------------------
    def flatten(self, idx: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Sparse expansion: positions (into sorted order) of ``idx``'s
        edges, plus the per-vertex counts. Positions preserve the order
        of ``idx`` and, within a vertex, sorted-edge order."""
        starts = self.indptr[idx]
        counts = self.indptr[idx + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return self._arange[:0], counts
        base = np.repeat(starts, counts)
        reps = np.repeat(np.cumsum(counts) - counts, counts)
        pos = base + (self._arange[:total] - reps)
        return pos, counts

    def select(
        self, idx: np.ndarray
    ) -> Tuple[str, Optional[np.ndarray], Optional[np.ndarray], int]:
        """Frontier-adaptive edge selection for the vertices ``idx``.

        Returns ``(mode, pos, counts, total)``:

        * ``mode == "sparse"`` — ``pos`` are the frontier's edge
          positions from :meth:`flatten`, ``counts`` the per-vertex
          edge counts (for ``np.repeat``-style payload expansion);
        * ``mode == "dense"`` — ``pos`` from one boolean sweep over the
          whole CSR (``counts`` is None; expand payloads via a full
          per-slot array instead);
        * ``mode == "dense-full"`` — the frontier covers every edge;
          ``pos`` is None meaning "all edges in sorted order".

        ``idx`` must be sorted ascending (every engine frontier is — it
        comes from ``np.flatnonzero``) so that all three modes emit
        edges in the same order.
        """
        cfg = get_config()
        starts = self.indptr[idx]
        counts = self.indptr[idx + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return SPARSE, self._arange[:0], counts, 0
        dense_ok = (
            cfg.mode != "generic"
            and self.num_edges >= cfg.dense_min_edges
            and total >= cfg.dense_sweep_fraction * self.num_edges
        )
        if not dense_ok:
            base = np.repeat(starts, counts)
            reps = np.repeat(np.cumsum(counts) - counts, counts)
            pos = base + (self._arange[:total] - reps)
            return SPARSE, pos, counts, total
        if total == self.num_edges:
            return DENSE_FULL, None, None, total
        mask = self._mask_scratch
        mask[:] = False
        mask[idx] = True
        pos = np.flatnonzero(mask[self.key_sorted])
        return DENSE, pos, None, total
