"""Process-wide tunables for kernel dispatch and sweep selection.

The defaults encode crossovers *measured on this class of host* (see
``benchmarks/bench_kernels.py`` and ``BENCH_kernels.json``). Two facts
drive them:

* NumPy ≥ 1.25 registers indexed inner loops for ``add``/``minimum``/
  ``maximum``, so a bare ``ufunc.at`` is already a single memory-bound
  pass — a specialized fold only wins when it can reuse structure that
  was *precomputed once* (per-slot counts, a by-target grouping) instead
  of re-deriving it per call. ``sum_spec="plan"`` / ``minmax_spec="plan"``
  say exactly that: specialize only when the caller hands over plan
  structure, fall back to ``ufunc.at`` otherwise.
* On older NumPy, ``ufunc.at`` is an unbuffered 10–100× slower loop;
  there the ``"always"`` settings (bincount sums, sort+reduceat min/max
  regardless of plan structure) are the right choice. The property suite
  runs both settings — they are bit-identical, only speed differs.

``mode="generic"`` pins every fold *and* every sweep decision to the
pre-kernel behaviour (per-call flatten + ``ufunc.at``), which the bench
harness and the property suite use as the bit-identical baseline.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace

from repro.errors import ConfigError

__all__ = ["KernelConfig", "get_config", "set_config", "configured"]

_MODES = ("auto", "generic")
_SPECS = ("plan", "always")


@dataclass(frozen=True)
class KernelConfig:
    """Dispatch thresholds; one process-wide instance (see get_config).

    Attributes
    ----------
    mode:
        ``"auto"`` picks specialized kernels; ``"generic"`` forces the
        per-call flatten + ``ufunc.at`` fallback everywhere (baseline
        measurements).
    min_specialize:
        Scatters smaller than this always use ``ufunc.at`` (setup cost
        dominates below it).
    sum_spec:
        ``"plan"`` — the bincount sum kernel runs only when the caller
        provides precomputed per-slot counts (a
        :class:`~repro.kernels.csr.CSRPlan` full sweep); ``"always"`` —
        run it for any large-enough scatter (older NumPy without
        indexed ``ufunc.at`` loops).
    minmax_spec:
        ``"plan"`` — min/max segment folds run only presorted (the
        sort amortized into a :class:`~repro.kernels.csr.CSRPlan`);
        ``"always"`` — per-call stable sort + ``reduceat`` for any
        large-enough scatter (older NumPy).
    dense_sweep_fraction:
        :meth:`repro.kernels.csr.CSRPlan.select` switches from the
        frontier-driven flatten to the dense full-CSR sweep when the
        frontier covers at least this fraction of local edges.
    dense_min_edges:
        Dense sweeps need at least this many local edges to be worth
        the O(E) masking.
    """

    mode: str = "auto"
    min_specialize: int = 32
    sum_spec: str = "plan"
    minmax_spec: str = "plan"
    dense_sweep_fraction: float = 0.5
    dense_min_edges: int = 256

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigError(
                f"kernel mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.sum_spec not in _SPECS:
            raise ConfigError(
                f"sum_spec must be one of {_SPECS}, got {self.sum_spec!r}"
            )
        if self.minmax_spec not in _SPECS:
            raise ConfigError(
                f"minmax_spec must be one of {_SPECS}, got {self.minmax_spec!r}"
            )
        if not 0.0 <= self.dense_sweep_fraction:
            raise ConfigError("dense_sweep_fraction must be >= 0")


_config = KernelConfig()


def get_config() -> KernelConfig:
    """The active kernel configuration."""
    return _config


def set_config(**overrides) -> KernelConfig:
    """Replace fields of the active configuration; returns the new one."""
    global _config
    _config = replace(_config, **overrides)
    return _config


@contextmanager
def configured(**overrides):
    """Temporarily override the active configuration.

    >>> with configured(mode="generic"):
    ...     pass  # every fold inside uses the ufunc.at baseline
    """
    global _config
    prev = _config
    _config = replace(prev, **overrides)
    try:
        yield _config
    finally:
        _config = prev
