"""Host-time accounting for kernel invocations.

Each :class:`~repro.runtime.machine_runtime.MachineRuntime` keeps one
:class:`KernelStats`; the engine merges them into
``RunStats.extra["kernel_*"]`` at the end of a run, so traces and bench
output show where host time went and which sweep modes/kernels fired.
"""

from __future__ import annotations

from typing import Dict, Iterable

__all__ = ["KernelStats"]


class KernelStats:
    """Per-label call counts and host seconds (label = op/mode/kernel)."""

    __slots__ = ("calls", "seconds")

    def __init__(self) -> None:
        self.calls: Dict[str, int] = {}
        self.seconds: Dict[str, float] = {}

    def add(self, label: str, dt: float) -> None:
        self.calls[label] = self.calls.get(label, 0) + 1
        self.seconds[label] = self.seconds.get(label, 0.0) + dt

    def merge(self, other: "KernelStats") -> "KernelStats":
        for k, v in other.calls.items():
            self.calls[k] = self.calls.get(k, 0) + v
        for k, v in other.seconds.items():
            self.seconds[k] = self.seconds.get(k, 0.0) + v
        return self

    @classmethod
    def merged(cls, many: Iterable["KernelStats"]) -> "KernelStats":
        out = cls()
        for ks in many:
            out.merge(ks)
        return out

    def as_extra(self) -> Dict[str, float]:
        """Flatten into ``RunStats.extra``-compatible counter entries."""
        out: Dict[str, float] = {}
        for k, v in self.calls.items():
            out[f"kernel_{k}_calls"] = float(v)
        for k, v in self.seconds.items():
            out[f"kernel_{k}_host_s"] = v
        return out

    def __bool__(self) -> bool:
        return bool(self.calls)
