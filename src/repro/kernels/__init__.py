"""Monoid-specialized hot-path kernels for the simulator's NumPy core.

Every message fold in every engine is a *scatter-reduction*: combine
``values`` into ``buf`` at positions ``idx`` with the program's ⊕,
folding duplicate indices. The portable NumPy spelling is ``ufunc.at``;
this package picks the fastest sound kernel per
:class:`~repro.api.vertex_program.DeltaAlgebra` and per problem shape:

* **sum-like ⊕** (``np.add``) — ``np.bincount`` with weights, plus an
  exact residual path so results stay bit-identical to ``ufunc.at``
  (see :mod:`repro.kernels.segment_reduce` for the argument); one
  bincount can feed several target buffers (fold once, apply twice);
* **min/max ⊕** — ``ufunc.reduceat`` segment folds over pre-grouped
  values, with the grouping sort amortized into the cached CSR plan
  (min/max are exact under regrouping, so any association is
  bit-identical);
* **anything else** — the ``ufunc.at`` generic fallback.

The bigger structural win lives in :class:`~repro.kernels.csr.CSRPlan`:
cached CSR flatten structures (edge order, per-source slices, by-target
grouping, per-slot counts, scratch buffers) and the frontier-adaptive
sparse/dense sweep decision used by
:class:`~repro.runtime.machine_runtime.MachineRuntime` — dense sweeps
skip the per-call ``repeat``/``cumsum``/``arange`` flatten entirely.

Dispatch is governed by the process-wide :class:`KernelConfig`
(:func:`configured` temporarily overrides it; ``mode="generic"``
forces the old per-call-flatten + ``ufunc.at`` path everywhere, which
is how the bench harness measures old-vs-new).
"""

from repro.kernels.config import (
    KernelConfig,
    configured,
    get_config,
    set_config,
)
from repro.kernels.csr import CSRPlan
from repro.kernels.segment_reduce import (
    apply_segment_sums,
    fold_segments_presorted,
    monoid_kind,
    reduce_segments,
    scatter_reduce,
    segment_sum,
)
from repro.kernels.stats import KernelStats

__all__ = [
    "KernelConfig",
    "configured",
    "get_config",
    "set_config",
    "CSRPlan",
    "scatter_reduce",
    "segment_sum",
    "apply_segment_sums",
    "reduce_segments",
    "fold_segments_presorted",
    "monoid_kind",
    "KernelStats",
]
