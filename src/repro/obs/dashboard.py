"""Offline single-file HTML dashboard for one traced run.

``repro dashboard run.trace.jsonl -o run.html`` turns a saved trace
(JSONL or Chrome format) into a self-contained HTML page — inline SVG
and CSS only, no JavaScript frameworks, no network fetches — that a
reviewer can open from disk:

* **run summary** — engine/algorithm/machines plus the headline
  counters (modeled time, supersteps, coherency points, traffic);
* **anomaly flags** — :class:`~repro.obs.audit.LensAuditor` verdicts,
  rendered with the status palette (icon + label, never color alone);
* **critical path** (``id="critical-path"``) — a ribbon of supersteps on
  the model clock, colored by gating leg, tooltips naming the gating
  machine/channel (from :mod:`repro.obs.critical_path`);
* **stragglers** (``id="stragglers"``) — per-machine modeled busy time,
  gated-superstep counts, and the max/mean imbalance next to the
  partition's replication factor λ;
* **convergence** (``id="convergence"``) — active-vertex count over
  modeled cluster time;
* **coherency lens** — pending delta mass and sampled replica drift per
  superstep, and the staleness-age histogram (lens-enabled runs only);
* **per-machine timeline** (``id="machine-timeline"``) — host-clock
  lanes of per-machine work spans;
* **per-channel traffic** — cumulative bytes per exchange-plane channel
  over supersteps, from the lens's ledger snapshots.

Every section degrades to an explanatory placeholder when its records
are absent (e.g. a trace from a ``lens=False`` run), so the dashboard
is valid for any trace the repo can produce.
"""

from __future__ import annotations

import html
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.audit import LensAuditor
from repro.obs.report import TraceData

__all__ = ["render_dashboard", "render_compare_dashboard"]

# Palette: the validated reference instance (categorical slots in fixed
# order, chrome inks, reserved status colors) — see docs/observability.md.
_CSS = """
:root { color-scheme: light; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
.viz-root {
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
  --good: #0ca30c; --warning: #fab219; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page: #0d0d0d; --surface-1: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 2px; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
section {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 18px; margin: 0 0 16px;
  max-width: 760px;
}
.section-note { color: var(--muted); font-size: 13px; margin: 2px 0 10px; }
.tiles { display: flex; flex-wrap: wrap; gap: 24px; }
.tile .v { font-size: 24px; font-weight: 600; }
.tile .k { color: var(--ink-2); font-size: 12px; }
.flag { display: flex; gap: 8px; align-items: baseline; margin: 4px 0; }
.flag .dot { font-size: 13px; font-weight: 700; }
.flag.good .dot { color: var(--good); }
.flag.warning .dot { color: var(--warning); }
.flag.critical .dot { color: var(--critical); }
.flag code { color: var(--ink-2); font-size: 12px; }
.legend { display: flex; flex-wrap: wrap; gap: 14px; margin: 6px 0 0; }
.legend .item { display: flex; gap: 6px; align-items: center;
  color: var(--ink-2); font-size: 12px; }
.legend .swatch { width: 10px; height: 10px; border-radius: 2px; }
svg text { fill: var(--muted); font-size: 11px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
svg .axis { stroke: var(--baseline); }
svg .grid { stroke: var(--grid); }
svg .tick-label { font-variant-numeric: tabular-nums; }
"""

_W, _H = 720, 220
_ML, _MR, _MT, _MB = 56, 16, 10, 30


def _fmt(v: float) -> str:
    """Compact human number for tick labels and tooltips."""
    if v != v or v in (math.inf, -math.inf):
        return str(v)
    a = abs(v)
    if a >= 1e9:
        return f"{v / 1e9:.3g}G"
    if a >= 1e6:
        return f"{v / 1e6:.3g}M"
    if a >= 1e4:
        return f"{v / 1e3:.3g}k"
    if a and a < 1e-3:
        return f"{v:.2e}"
    return f"{v:.4g}"


def _esc(s: Any) -> str:
    return html.escape(str(s), quote=True)


def _ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi] (1/2/5 steps)."""
    if hi <= lo:
        return [lo]
    span = hi - lo
    raw = span / max(1, n - 1)
    mag = 10.0 ** math.floor(math.log10(raw))
    for m in (1.0, 2.0, 5.0, 10.0):
        if raw <= m * mag:
            step = m * mag
            break
    first = math.ceil(lo / step) * step
    out = []
    t = first
    while t <= hi + 1e-12 * span:
        out.append(0.0 if abs(t) < step * 1e-9 else t)
        t += step
    return out or [lo]


class _Scale:
    """Linear data→pixel mapping for one axis."""

    def __init__(self, lo: float, hi: float, p0: float, p1: float) -> None:
        if hi <= lo:
            hi = lo + 1.0
        self.lo, self.hi, self.p0, self.p1 = lo, hi, p0, p1

    def __call__(self, v: float) -> float:
        f = (v - self.lo) / (self.hi - self.lo)
        return self.p0 + f * (self.p1 - self.p0)


def _frame(
    xs: _Scale, ys: _Scale, xlabel: str, ylabel: str
) -> List[str]:
    """Gridlines, baseline axis, and tick labels for a chart."""
    parts: List[str] = []
    for t in _ticks(ys.lo, ys.hi):
        y = ys(t)
        parts.append(
            f'<line class="grid" x1="{_ML}" x2="{_W - _MR}" '
            f'y1="{y:.1f}" y2="{y:.1f}"/>'
        )
        parts.append(
            f'<text class="tick-label" x="{_ML - 6}" y="{y + 3:.1f}" '
            f'text-anchor="end">{_fmt(t)}</text>'
        )
    for t in _ticks(xs.lo, xs.hi, 6):
        x = xs(t)
        parts.append(
            f'<text class="tick-label" x="{x:.1f}" y="{_H - _MB + 16}" '
            f'text-anchor="middle">{_fmt(t)}</text>'
        )
    parts.append(
        f'<line class="axis" x1="{_ML}" x2="{_W - _MR}" '
        f'y1="{ys(ys.lo):.1f}" y2="{ys(ys.lo):.1f}"/>'
    )
    parts.append(
        f'<text x="{(_ML + _W - _MR) / 2:.0f}" y="{_H - 2}" '
        f'text-anchor="middle">{_esc(xlabel)}</text>'
    )
    parts.append(
        f'<text x="12" y="{_MT + 8}" text-anchor="start">{_esc(ylabel)}</text>'
    )
    return parts


def _line_chart(
    series: Sequence[Tuple[str, List[Tuple[float, float]]]],
    xlabel: str,
    ylabel: str,
    tooltip: str = "{name}: x={x} y={y}",
) -> str:
    """Multi-series line chart; hoverable ≥8px markers on sparse series."""
    pts = [p for _, data in series for p in data]
    if not pts:
        return '<p class="section-note">no data points in this trace</p>'
    xlo = min(p[0] for p in pts)
    xhi = max(p[0] for p in pts)
    ylo = min(0.0, min(p[1] for p in pts))
    yhi = max(p[1] for p in pts)
    xs = _Scale(xlo, xhi, _ML, _W - _MR)
    ys = _Scale(ylo, yhi, _H - _MB, _MT)
    parts = [
        f'<svg viewBox="0 0 {_W} {_H}" role="img" '
        f'preserveAspectRatio="xMidYMid meet">'
    ]
    parts += _frame(xs, ys, xlabel, ylabel)
    for si, (name, data) in enumerate(series):
        color = f"var(--s{si % 4 + 1})"
        coords = " ".join(f"{xs(x):.1f},{ys(y):.1f}" for x, y in data)
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="2" '
            f'stroke-linejoin="round" points="{coords}"/>'
        )
        if len(data) <= 120:  # hover targets only when they stay legible
            for x, y in data:
                tip = tooltip.format(name=name, x=_fmt(x), y=_fmt(y))
                parts.append(
                    f'<circle cx="{xs(x):.1f}" cy="{ys(y):.1f}" r="4" '
                    f'fill="{color}"><title>{_esc(tip)}</title></circle>'
                )
    parts.append("</svg>")
    return "".join(parts)


def _bar_chart(
    bars: Sequence[Tuple[str, float]], xlabel: str, ylabel: str
) -> str:
    """Single-series bar chart with 2px surface gaps and rounded ends."""
    if not bars or all(v == 0 for _, v in bars):
        return '<p class="section-note">no observations in this trace</p>'
    yhi = max(v for _, v in bars)
    ys = _Scale(0.0, yhi, _H - _MB, _MT)
    n = len(bars)
    slot = (_W - _ML - _MR) / n
    bw = max(4.0, slot - 2.0)  # 2px surface gap between fills
    parts = [
        f'<svg viewBox="0 0 {_W} {_H}" role="img" '
        f'preserveAspectRatio="xMidYMid meet">'
    ]
    for t in _ticks(0.0, yhi):
        y = ys(t)
        parts.append(
            f'<line class="grid" x1="{_ML}" x2="{_W - _MR}" '
            f'y1="{y:.1f}" y2="{y:.1f}"/>'
        )
        parts.append(
            f'<text class="tick-label" x="{_ML - 6}" y="{y + 3:.1f}" '
            f'text-anchor="end">{_fmt(t)}</text>'
        )
    base = ys(0.0)
    for i, (label, v) in enumerate(bars):
        x = _ML + i * slot + (slot - bw) / 2
        top = ys(v)
        h = max(0.0, base - top)
        parts.append(
            f'<rect x="{x:.1f}" y="{top:.1f}" width="{bw:.1f}" '
            f'height="{h:.1f}" rx="4" fill="var(--s1)">'
            f"<title>{_esc(label)}: {_fmt(v)}</title></rect>"
        )
        parts.append(
            f'<text class="tick-label" x="{x + bw / 2:.1f}" '
            f'y="{_H - _MB + 16}" text-anchor="middle">{_esc(label)}</text>'
        )
    parts.append(
        f'<line class="axis" x1="{_ML}" x2="{_W - _MR}" '
        f'y1="{base:.1f}" y2="{base:.1f}"/>'
    )
    parts.append(
        f'<text x="{(_ML + _W - _MR) / 2:.0f}" y="{_H - 2}" '
        f'text-anchor="middle">{_esc(xlabel)}</text>'
    )
    parts.append(
        f'<text x="12" y="{_MT + 8}" text-anchor="start">{_esc(ylabel)}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _legend(names: Sequence[str]) -> str:
    items = []
    for i, name in enumerate(names):
        items.append(
            f'<span class="item"><span class="swatch" '
            f'style="background: var(--s{i % 4 + 1})"></span>'
            f"{_esc(name)}</span>"
        )
    return f'<div class="legend">{"".join(items)}</div>'


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def _summary_section(trace: TraceData) -> str:
    stats = trace.stats
    meta = trace.meta
    tiles = []
    for key, label, fmt in (
        ("modeled_time_s", "modeled time", lambda v: f"{v:.4f}s"),
        ("supersteps", "supersteps", lambda v: f"{int(v)}"),
        ("coherency_points", "coherency points", lambda v: f"{int(v)}"),
        ("global_syncs", "global syncs", lambda v: f"{int(v)}"),
        ("comm_bytes", "traffic", lambda v: f"{v / 1e6:.3f}MB"),
        ("comm_messages", "messages", lambda v: f"{int(v)}"),
    ):
        if key in stats:
            tiles.append(
                f'<div class="tile"><div class="v">{_esc(fmt(stats[key]))}'
                f'</div><div class="k">{_esc(label)}</div></div>'
            )
    title = (
        f"{meta.get('engine', '?')} / {meta.get('algorithm', '?')} — "
        f"{meta.get('machines', '?')} machines"
    )
    converged = stats.get("converged")
    state = "" if converged is None else (
        " · converged" if converged else " · NOT CONVERGED"
    )
    return (
        f"<h1>{_esc(title)}</h1>"
        f'<p class="sub">coherency-lens run dashboard{_esc(state)}</p>'
        f'<section id="summary"><div class="tiles">{"".join(tiles)}'
        f"</div></section>"
    )


def _anomaly_section(trace: TraceData) -> str:
    anomalies = LensAuditor(trace).audit()
    rows = []
    if not anomalies:
        rows.append(
            '<div class="flag good"><span class="dot">✓</span>'
            "<span>all lens invariants hold for this trace</span></div>"
        )
    for a in anomalies:
        icon = "✕" if a.severity == "critical" else "!"
        rows.append(
            f'<div class="flag {a.severity}"><span class="dot">{icon} '
            f"{a.severity}</span><span>{_esc(a.message)} "
            f"<code>{_esc(a.code)}</code></span></div>"
        )
    return (
        '<section id="anomalies"><h2>Anomaly flags</h2>'
        '<p class="section-note">LensAuditor invariant checks: untracked '
        "charges, post-exchange pending mass, final drift, decision-log "
        "and channel-ledger reconciliation</p>"
        f'{"".join(rows)}</section>'
    )


def _serving_section(trace: TraceData) -> str:
    """Service panel: request waterfalls + cost attribution (serve traces).

    Rendered only when the trace carries ``serve.request`` spans (a
    merged trace from ``repro serve --trace-out``); empty string
    otherwise so batch-run dashboards are unchanged.
    """
    from repro.obs.request_trace import analyze_serve_trace, is_serve_trace

    if not is_serve_trace(trace):
        return ""
    a = analyze_serve_trace(trace)
    t = a["totals"]
    tiles = []
    for value, label in (
        (t["requests"], "requests"),
        (t["engine_runs"], "engine runs"),
        (t["cache_hits"], "cache hits"),
        (t["fused"], "fused"),
        (f"{t['attributed_cost_s']:.4f}s", "attributed cost"),
        ("exact" if t["latency_exact"] and t["attribution_exact"]
         else "MISMATCH", "reconstruction"),
    ):
        tiles.append(
            f'<div class="tile"><div class="v">{_esc(value)}</div>'
            f'<div class="k">{_esc(label)}</div></div>'
        )

    # per-request waterfall: stacked horizontal bars, one per request
    reqs = a["requests"][:40]
    max_lat = max((r["latency_s"] for r in reqs), default=0.0) or 1.0
    bars = []
    legs = ("queue_s", "batch_s", "run_s", "serialize_s")
    for r in reqs:
        segs = []
        for i, leg in enumerate(legs):
            w = 100.0 * r[leg] / max_lat
            if w <= 0:
                continue
            segs.append(
                f'<span class="seg" style="width:{w:.2f}%; '
                f'background: var(--s{i % 4 + 1})"></span>'
            )
        how = "hit" if r["cached"] else ("fused" if r["batched"] else "run")
        if r["outcome"] != "ok":
            how = r["outcome"]
        bars.append(
            f'<div class="wf-row"><span class="wf-label">'
            f'#{r["request_id"]} {_esc(r["class"])} ({_esc(how)})</span>'
            f'<span class="wf-bar">{"".join(segs)}</span>'
            f'<span class="wf-ms">{r["latency_s"] * 1e3:.2f}ms</span></div>'
        )
    waterfall = (
        '<div class="waterfall" style="display:grid; gap:2px">'
        + "".join(bars) + "</div>"
        + _legend(["queue", "batch", "run", "serialize"])
    )

    cls_rows = []
    for cls, c in a["classes"].items():
        cls_rows.append(
            f"<tr><td>{_esc(cls)}</td><td>{c['requests']}</td>"
            f"<td>{c['cache_hits']}</td><td>{c['fused']}</td>"
            f"<td>{c['engine_cost_s'] * 1e3:.3f}</td>"
            f"<td>{100.0 * c['cost_share']:.1f}%</td>"
            f"<td>{c['latency_p50_s'] * 1e3:.3f}</td>"
            f"<td>{c['latency_p95_s'] * 1e3:.3f}</td></tr>"
        )
    cls_table = (
        "<table><thead><tr><th>class</th><th>requests</th><th>hits</th>"
        "<th>fused</th><th>cost (ms)</th><th>share</th><th>p50 (ms)</th>"
        "<th>p95 (ms)</th></tr></thead>"
        f'<tbody>{"".join(cls_rows)}</tbody></table>'
    )

    style = (
        "<style>.wf-row{display:grid;grid-template-columns:14em 1fr 6em;"
        "align-items:center;gap:6px;font-size:12px}"
        ".wf-bar{display:flex;height:10px;background:rgba(127,127,127,.12);"
        "border-radius:2px;overflow:hidden}"
        ".wf-ms{text-align:right;font-variant-numeric:tabular-nums}"
        "</style>"
    )
    return (
        f'<section id="serving">{style}<h2>Service requests</h2>'
        '<p class="section-note">request-scoped tracing: each bar tiles '
        "one request's submit-to-answer host time into its queue / "
        "batch / run / serialize legs; engine cost is the modeled run "
        "time attributed to the request (fused runs split bit-exactly "
        "across riders, cache hits attribute zero)</p>"
        f'<div class="tiles">{"".join(tiles)}</div>'
        f"{waterfall}<h2>Cost by query class</h2>{cls_table}</section>"
    )


def _convergence_section(trace: TraceData) -> str:
    points = [
        (float(c.get("model_t", 0.0)), float(c.get("value", 0.0)))
        for c in trace.counters
        if c.get("name") == "active_vertices"
    ]
    chart = _line_chart(
        [("active vertices", points)],
        "modeled cluster time (s)",
        "active vertices",
        tooltip="{name} at t={x}s: {y}",
    )
    return (
        '<section id="convergence"><h2>Convergence</h2>'
        '<p class="section-note">active-vertex count over modeled cluster '
        "time — the run's convergence residual</p>"
        f"{chart}</section>"
    )


def _lens_sections(trace: TraceData) -> str:
    probes = [i for i in trace.instants if i.get("name") == "lens-probe"]
    if not probes:
        return (
            '<section id="lens"><h2>Coherency lens</h2>'
            '<p class="section-note">trace has no lens probes — rerun '
            "with lens=True (CLI: --lens) to record replica staleness, "
            "pending delta mass and drift</p></section>"
        )
    mass = []
    drift = []
    stale = []
    for p in probes:
        a = p.get("attrs") or {}
        s = float(a.get("superstep", 0))
        mass.append((s, float(a.get("pending_mass", 0.0))))
        drift.append((s, float(a.get("drift_max", 0.0))))
        stale.append((s, float(a.get("staleness_max", 0))))
    hist = (trace.stats.get("metrics") or {}).get("lens.staleness") or {}
    bars = []
    for key, v in hist.items():
        if key.startswith("le_"):
            bars.append((f"≤{key[3:]}", float(v)))
    out = [
        '<section id="lens-mass"><h2>Pending delta mass</h2>',
        '<p class="section-note">monoid-measured deltaMsg mass awaiting '
        "exchange, per superstep (pre-exchange probe)</p>",
        _line_chart(
            [("pending mass", mass)], "superstep", "pending delta mass",
        ),
        "</section>",
        '<section id="lens-drift"><h2>Replica drift</h2>',
        '<p class="section-note">max master↔mirror value gap over the '
        "deterministic vertex sample, per superstep</p>",
        _line_chart([("sampled drift", drift)], "superstep", "max drift"),
        "</section>",
        '<section id="lens-staleness"><h2>Replica staleness</h2>',
        '<p class="section-note">histogram of how many supersteps pending '
        "deltas aged before their exchange (all probes pooled)</p>",
        _bar_chart(bars, "staleness age (supersteps)", "observations"),
        _line_chart(
            [("max staleness", stale)], "superstep", "max staleness age",
        ),
        "</section>",
    ]
    return "".join(out)


def _critical_path_section(trace: TraceData, analysis: Dict[str, Any]) -> str:
    """Critical-path ribbon: one rect per superstep on the model clock,
    colored by its gating leg, tooltip naming the gating machine/channel."""
    head = (
        '<section id="critical-path"><h2>Critical path</h2>'
        '<p class="section-note">each superstep\'s width on the modeled '
        "cluster clock, colored by the leg that gated it; hover for the "
        "gating machine/channel (text form: repro analyze)</p>"
    )
    steps = analysis.get("supersteps") or []
    if not steps:
        return head + (
            '<p class="section-note">trace has no superstep spans — '
            "rerun with trace=True</p></section>"
        )
    t0 = min(r["model_t0"] for r in steps)
    t1 = max(r["model_t1"] for r in steps)
    xs = _Scale(0.0, max(t1 - t0, 1e-12), _ML, _W - _MR)
    leg_names: List[str] = []
    for r in steps:
        leg = r["gating"].get("leg", "?")
        if leg not in leg_names:
            leg_names.append(leg)
    hue = {n: i for i, n in enumerate(leg_names)}
    ribbon_h = 26
    height = _MT + ribbon_h + _MB
    parts = [
        head,
        f'<svg viewBox="0 0 {_W} {height}" role="img" '
        f'preserveAspectRatio="xMidYMid meet">',
    ]
    for r in steps:
        x0 = xs(r["model_t0"] - t0)
        x1 = xs(r["model_t1"] - t0)
        gate = r["gating"]
        who = (
            f"machine {gate.get('machine')}"
            if gate.get("kind") == "machine"
            else f"channel {gate.get('channel')}"
        )
        color = f"var(--s{hue[gate.get('leg', '?')] % 4 + 1})"
        parts.append(
            f'<rect x="{x0:.1f}" y="{_MT}" width="{max(x1 - x0, 0.6):.1f}" '
            f'height="{ribbon_h}" fill="{color}">'
            f"<title>superstep {r['superstep']}: {_fmt(r['model_s'])}s — "
            f"{_esc(gate.get('leg', '?'))} gated by {_esc(who)}"
            f"</title></rect>"
        )
    for t in _ticks(0.0, t1 - t0, 6):
        parts.append(
            f'<text class="tick-label" x="{xs(t):.1f}" '
            f'y="{height - _MB + 16}" text-anchor="middle">{_fmt(t)}</text>'
        )
    parts.append(
        f'<text x="{(_ML + _W - _MR) / 2:.0f}" y="{height - 2}" '
        f'text-anchor="middle">modeled cluster time (s)</text>'
    )
    parts.append("</svg>")
    parts.append(_legend(leg_names))
    parts.append("</section>")
    return "".join(parts)


def _straggler_section(trace: TraceData, analysis: Dict[str, Any]) -> str:
    """Per-machine busy bars + gated-superstep counts + imbalance vs λ."""
    head = (
        '<section id="stragglers"><h2>Stragglers / load balance</h2>'
        '<p class="section-note">modeled busy seconds per machine '
        "(from the shard collectors' work spans); hover for the number "
        "of supersteps that machine gated</p>"
    )
    md = analysis.get("machines_detail") or {}
    busy = md.get("busy_s") or []
    if not busy or not any(busy):
        return head + (
            '<p class="section-note">trace has no machine-attributed '
            "busy time — rerun with trace=True</p></section>"
        )
    gated = md.get("gated_supersteps") or [0] * len(busy)
    bars = [
        (f"m{m} ({gated[m]}×)", b) for m, b in enumerate(busy)
    ]
    st = analysis.get("stragglers") or {}
    notes = []
    if st.get("machine") is not None:
        notes.append(
            f"straggler: machine {st['machine']} — busy imbalance "
            f"max/mean = {st.get('imbalance', 1.0):.3f}"
        )
    lam = st.get("replication_factor")
    if isinstance(lam, (int, float)):
        notes.append(
            f"replication factor λ = {lam:.3f}: λ prices the exchange "
            "volume laziness avoids; the imbalance says how much of the "
            "remaining time one straggler gates"
        )
    note_html = "".join(
        f'<p class="section-note">{_esc(n)}</p>' for n in notes
    )
    return (
        head
        + _bar_chart(bars, "machine (×supersteps gated)", "busy seconds")
        + note_html
        + "</section>"
    )


def _machine_timeline_section(trace: TraceData) -> str:
    spans = [s for s in trace.spans if s.get("cat") == "machine"]
    head = (
        '<section id="machine-timeline"><h2>Per-machine timeline</h2>'
        '<p class="section-note">host-clock lanes of per-machine work '
        "spans (one lane per machine)</p>"
    )
    if not spans:
        return head + (
            '<p class="section-note">trace has no per-machine spans — '
            "rerun with trace=True</p></section>"
        )
    machines = sorted(
        {int((s.get("attrs") or {}).get("machine", -1)) for s in spans}
    )
    names = sorted({str(s.get("name")) for s in spans})
    lane = {m: i for i, m in enumerate(machines)}
    hue = {n: i for i, n in enumerate(names)}
    t0 = min(float(s.get("host_t0", 0.0)) for s in spans)
    t1 = max(float(s.get("host_t1", 0.0)) for s in spans)
    lane_h = 18
    height = _MT + len(machines) * lane_h + _MB
    xs = _Scale(0.0, max(t1 - t0, 1e-9), _ML, _W - _MR)
    parts = [
        head,
        f'<svg viewBox="0 0 {_W} {height}" role="img" '
        f'preserveAspectRatio="xMidYMid meet">',
    ]
    for m in machines:
        y = _MT + lane[m] * lane_h
        parts.append(
            f'<line class="grid" x1="{_ML}" x2="{_W - _MR}" '
            f'y1="{y + lane_h - 1:.1f}" y2="{y + lane_h - 1:.1f}"/>'
        )
        parts.append(
            f'<text class="tick-label" x="{_ML - 6}" '
            f'y="{y + lane_h - 5:.1f}" text-anchor="end">m{m}</text>'
        )
    for s in spans:
        a = s.get("attrs") or {}
        m = int(a.get("machine", -1))
        x0 = xs(float(s.get("host_t0", 0.0)) - t0)
        x1 = xs(float(s.get("host_t1", 0.0)) - t0)
        y = _MT + lane[m] * lane_h + 2
        w = max(x1 - x0, 1.0)
        color = f"var(--s{hue[str(s.get('name'))] % 4 + 1})"
        dur = (float(s.get("host_t1", 0.0)) - float(s.get("host_t0", 0.0)))
        tip = f"m{m} {s.get('name')}: {dur * 1e3:.3f}ms host"
        if "superstep" in a:
            tip += f" · superstep {a['superstep']}"
        if "busy_s" in a:
            tip += f" · modeled busy {_fmt(float(a['busy_s']))}s"
        parts.append(
            f'<rect x="{x0:.1f}" y="{y}" width="{w:.1f}" '
            f'height="{lane_h - 4}" rx="2" fill="{color}">'
            f"<title>{_esc(tip)}</title></rect>"
        )
    for t in _ticks(0.0, t1 - t0, 6):
        parts.append(
            f'<text class="tick-label" x="{xs(t):.1f}" '
            f'y="{height - _MB + 16}" text-anchor="middle">'
            f"{_fmt(t * 1e3)}ms</text>"
        )
    parts.append(
        f'<text x="{(_ML + _W - _MR) / 2:.0f}" y="{height - 2}" '
        f'text-anchor="middle">host time since first span</text>'
    )
    parts.append("</svg>")
    parts.append(_legend(names))
    parts.append("</section>")
    return "".join(parts)


def _channel_section(trace: TraceData) -> str:
    ledgers = [
        i for i in trace.instants if i.get("name") == "channel-ledger"
    ]
    head = (
        '<section id="channels"><h2>Per-channel traffic</h2>'
        '<p class="section-note">cumulative bytes moved per exchange-plane '
        "channel, sampled once per superstep by the lens</p>"
    )
    if not ledgers:
        return head + (
            '<p class="section-note">trace has no channel-ledger '
            "snapshots (lens=False run)</p></section>"
        )
    names: List[str] = []
    series: Dict[str, List[Tuple[float, float]]] = {}
    for inst in ledgers:
        a = inst.get("attrs") or {}
        s = float(a.get("superstep", 0))
        for key, v in a.items():
            if key.endswith(".bytes"):
                name = key[: -len(".bytes")]
                if name not in series:
                    series[name] = []
                    names.append(name)
                series[name].append((s, float(v)))
    chart = _line_chart(
        [(n, series[n]) for n in names],
        "superstep",
        "cumulative bytes",
        tooltip="{name} through superstep {x}: {y}B",
    )
    return head + chart + _legend(names) + "</section>"


def _decision_section(trace: TraceData) -> str:
    decisions = [
        i for i in trace.instants if i.get("name") == "coherency-decision"
    ]
    if not decisions:
        return ""
    by_kind: Dict[str, Dict[str, int]] = {}
    for d in decisions:
        a = d.get("attrs") or {}
        kind = str(a.get("kind", "?"))
        verdict = str(a.get("verdict", "?"))
        by_kind.setdefault(kind, {})
        by_kind[kind][verdict] = by_kind[kind].get(verdict, 0) + 1
    rows = []
    for kind in sorted(by_kind):
        verdicts = ", ".join(
            f"{v}×{n}" for v, n in sorted(by_kind[kind].items())
        )
        rows.append(f"<div><strong>{_esc(kind)}</strong>: {_esc(verdicts)}</div>")
    return (
        '<section id="decisions"><h2>Coherency decisions</h2>'
        '<p class="section-note">audit-log verdict counts per decision '
        f'kind ({len(decisions)} entries)</p>{"".join(rows)}</section>'
    )


# ----------------------------------------------------------------------
# Two-run comparison (``repro dashboard --compare a.jsonl b.jsonl``)
# ----------------------------------------------------------------------
def _active_series(trace: TraceData) -> List[Tuple[float, float]]:
    return [
        (float(c.get("model_t", 0.0)), float(c.get("value", 0.0)))
        for c in trace.counters
        if c.get("name") == "active_vertices"
    ]


def _traffic_series(trace: TraceData) -> List[Tuple[float, float]]:
    """Cumulative bytes over supersteps, summed across all channels."""
    points: List[Tuple[float, float]] = []
    for inst in trace.instants:
        if inst.get("name") != "channel-ledger":
            continue
        a = inst.get("attrs") or {}
        total = sum(
            float(v) for k, v in a.items() if k.endswith(".bytes")
        )
        points.append((float(a.get("superstep", 0)), total))
    return points


def _decision_timeline(trace: TraceData) -> List[Tuple[float, float]]:
    """Cumulative executed coherency points over supersteps."""
    points: List[Tuple[float, float]] = []
    count = 0
    for inst in trace.instants:
        if inst.get("name") != "coherency-decision":
            continue
        a = inst.get("attrs") or {}
        if a.get("kind") != "coherency" or a.get("verdict") != "exchange":
            continue
        count += 1
        points.append((float(a.get("superstep", 0)), float(count)))
    return points


def _compare_summary_section(
    traces: Sequence[TraceData], labels: Sequence[str]
) -> str:
    keys = (
        ("modeled_time_s", "modeled time", lambda v: f"{v:.4f}s"),
        ("supersteps", "supersteps", lambda v: f"{int(v)}"),
        ("coherency_points", "coherency points", lambda v: f"{int(v)}"),
        ("global_syncs", "global syncs", lambda v: f"{int(v)}"),
        ("comm_bytes", "traffic", lambda v: f"{v / 1e6:.3f}MB"),
        ("comm_messages", "messages", lambda v: f"{int(v)}"),
    )
    blocks = []
    for label, trace in zip(labels, traces):
        stats = trace.stats
        meta = trace.meta
        tiles = []
        for key, name, fmt in keys:
            if key in stats:
                tiles.append(
                    f'<div class="tile"><div class="v">{_esc(fmt(stats[key]))}'
                    f'</div><div class="k">{_esc(name)}</div></div>'
                )
        sub = (
            f"{meta.get('engine', '?')} / {meta.get('algorithm', '?')} — "
            f"{meta.get('machines', '?')} machines"
        )
        blocks.append(
            f"<h2>{_esc(label)}</h2>"
            f'<p class="section-note">{_esc(sub)}</p>'
            f'<div class="tiles">{"".join(tiles)}</div>'
        )
    return (
        "<h1>Run comparison</h1>"
        f'<p class="sub">{_esc(labels[0])} vs {_esc(labels[1])}</p>'
        f'<section id="compare-summary">{"".join(blocks)}</section>'
    )


def render_compare_dashboard(
    traces: Sequence[TraceData],
    labels: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Overlay two traces: convergence, traffic and decision timelines.

    The A/B view behind ``repro dashboard --compare a.jsonl b.jsonl`` —
    one self-contained HTML document (inline SVG/CSS, no scripts) with
    both runs' series on shared axes, so a policy ablation reads off a
    single page.
    """
    traces = list(traces)
    if len(traces) != 2:
        raise ValueError(
            f"render_compare_dashboard takes exactly 2 traces, "
            f"got {len(traces)}"
        )
    labels = [str(x) for x in (labels or ["run A", "run B"])]
    convergence = _line_chart(
        [(lbl, _active_series(t)) for lbl, t in zip(labels, traces)],
        "modeled cluster time (s)",
        "active vertices",
        tooltip="{name} at t={x}s: {y}",
    )
    traffic = _line_chart(
        [(lbl, _traffic_series(t)) for lbl, t in zip(labels, traces)],
        "superstep",
        "cumulative bytes (all channels)",
        tooltip="{name} through superstep {x}: {y}B",
    )
    decisions = _line_chart(
        [(lbl, _decision_timeline(t)) for lbl, t in zip(labels, traces)],
        "superstep",
        "executed coherency points",
        tooltip="{name}: {y} exchanges by superstep {x}",
    )
    legend = _legend(labels)
    body = "".join([
        _compare_summary_section(traces, labels),
        '<section id="convergence"><h2>Convergence</h2>'
        '<p class="section-note">active-vertex count over modeled cluster '
        "time, both runs</p>" + convergence + legend + "</section>",
        '<section id="traffic"><h2>Traffic</h2>'
        '<p class="section-note">cumulative exchange-plane bytes per '
        "superstep (lens channel-ledger snapshots; empty for lens=False "
        "traces)</p>" + traffic + legend + "</section>",
        '<section id="decisions"><h2>Decision timeline</h2>'
        '<p class="section-note">cumulative executed coherency exchanges '
        "from the decision audit log</p>" + decisions + legend
        + "</section>",
    ])
    doc_title = title or f"compare — {labels[0]} vs {labels[1]}"
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width, initial-scale=1">'
        f"<title>{_esc(doc_title)}</title>"
        f"<style>{_CSS}</style></head>"
        f'<body class="viz-root">{body}</body></html>\n'
    )


# ----------------------------------------------------------------------
def render_dashboard(trace: TraceData, title: Optional[str] = None) -> str:
    """Render one trace as a complete standalone HTML document."""
    doc_title = title or (
        f"coherency lens — {trace.meta.get('engine', '?')}/"
        f"{trace.meta.get('algorithm', '?')}"
    )
    from repro.obs.critical_path import analyze_trace

    analysis = analyze_trace(trace)
    body = "".join([
        _summary_section(trace),
        _serving_section(trace),
        _anomaly_section(trace),
        _critical_path_section(trace, analysis),
        _straggler_section(trace, analysis),
        _convergence_section(trace),
        _lens_sections(trace),
        _machine_timeline_section(trace),
        _channel_section(trace),
        _decision_section(trace),
    ])
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width, initial-scale=1">'
        f"<title>{_esc(doc_title)}</title>"
        f"<style>{_CSS}</style></head>"
        f'<body class="viz-root">{body}</body></html>\n'
    )
