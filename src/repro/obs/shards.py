"""Per-machine observability shards, merged deterministically at barriers.

Today every engine runs inside one process, so the tracer can be written
to from anywhere and the lens can read any machine's buffers directly.
That single-stream convenience is exactly what blocks the ROADMAP's
process-parallel backend: once machines live in their own processes,
*nothing* may write to the global tracer (or read another machine's
state) mid-superstep. This module introduces the shard discipline now,
while the lockstep simulator still makes it testable bit-for-bit:

* :class:`MachineCollector` — one per machine. During a superstep the
  machine's observability events (per-machine work spans, ``sweep-mode``
  instants, local work aggregates) are appended to a machine-local
  buffer; nothing touches the tracer.
* :class:`ShardedObs` — the merge point. At superstep barriers and
  coherency points (more precisely: at the end of every machine-loop
  pass, while the enclosing phase span is still open and before any
  model-time charge lands) the engine calls :meth:`ShardedObs.merge`,
  which folds every machine buffer into the tracer's single stream.

Why the merge is deterministic *and* bit-identical to the legacy
inline-emission order: every event is stamped ``(epoch, seq)`` where
``epoch`` is a machine-local pass counter (advanced by ``tick()`` once
per machine-loop pass / micro-iteration — information each machine knows
locally) and ``seq`` orders events within one machine's pass. The
lockstep engines iterate epoch-major, machine-minor, so sorting the
union by ``(epoch, machine_id, seq)`` reproduces the exact order the
legacy code emitted events in. Model-time bookkeeping also survives the
deferral: no model-time charge ever lands while a machine loop runs
(``ClusterSim.add_compute`` only feeds the per-machine busy meters;
charges happen at the following barrier/settle), so a span emitted at
merge time carries the same ``model_t0 == model_t1`` and empty charge
map the inline path recorded.

``buffered=False`` switches a collector to *passthrough*: every call
delegates straight to the tracer, which IS the legacy global-write path.
The shard-equivalence tests run each engine once per mode and assert the
record streams are identical event-for-event — that oracle is what lets
the process-parallel backend later swap real IPC under ``merge()``
without an observability rewrite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

__all__ = ["MachineCollector", "ShardedObs", "ProbeSample"]


@dataclass
class ProbeSample:
    """One machine's contribution to a lens probe (shippable payload).

    Everything the :class:`~repro.obs.lens.CoherencyLens` needs from one
    machine per superstep, computed from that machine's state alone:
    pending ``deltaMsg`` mass and replica count, the active count, the
    staleness-age bincount of its live deltas, and the machine's values
    at its slots of the deterministic drift sample (``(slot, value)``
    pairs). The lens merger folds these machine-ascending, replaying
    the legacy global-read path's float operations in the same order —
    which is what keeps the merged metrics and instants bit-identical.
    """

    machine: int
    mass: float
    pending: int
    active: int
    #: np.bincount of live staleness ages (length 0 when none pending)
    stale_counts: Any = None
    #: [(drift-sample slot, local value), ...] for this machine's replicas
    drift_values: List[Tuple[int, float]] = field(default_factory=list)

_SPAN = 0
_INSTANT = 1


class _BufferedSpan:
    """Handle for one open span on a machine-local buffer.

    Mirrors the :class:`~repro.obs.tracer.Span` interface (``set`` /
    ``end`` / context manager) so engine loops are mode-oblivious. Host
    times are captured absolutely at work time and made epoch-relative
    at merge.
    """

    __slots__ = ("collector", "name", "category", "attrs", "host_t0", "_open")

    def __init__(
        self,
        collector: "MachineCollector",
        name: str,
        category: str,
        attrs: Dict[str, Any],
    ) -> None:
        self.collector = collector
        self.name = name
        self.category = category
        self.attrs = attrs
        self.host_t0 = time.perf_counter()
        self._open = True

    def set(self, **attrs) -> "_BufferedSpan":
        self.attrs.update(attrs)
        return self

    def end(self) -> None:
        if self._open:
            self._open = False
            self.collector._close_span(self)

    def __enter__(self) -> "_BufferedSpan":
        return self

    def __exit__(self, *exc) -> None:
        self.end()


class MachineCollector:
    """One machine's local observability buffer.

    Parameters
    ----------
    machine_id:
        The machine this collector belongs to (the merge sort key's
        middle component).
    tracer:
        The run's tracer. Passthrough mode delegates to it directly;
        buffered mode only touches it inside :meth:`ShardedObs.merge`.
    buffered:
        ``True`` buffers locally until the next merge; ``False`` is the
        passthrough/legacy path. Always forced off when the tracer is
        disabled (events would be dropped anyway — passthrough onto the
        ``NullTracer`` keeps the disabled hot path at one method call).
    """

    def __init__(self, machine_id: int, tracer, buffered: bool = True) -> None:
        self.machine_id = machine_id
        self.tracer = tracer
        self.buffered = bool(buffered) and tracer.enabled
        self.epoch = 0
        self._seq = 0
        # (epoch, seq, kind, name, category, host_t0, host_t1, attrs)
        self.events: List[Tuple] = []

    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "machine", **attrs):
        """Open a per-machine work span (buffered or passthrough).

        Buffered spans must not nest within one collector: span order at
        merge is close order, which only equals the tracer's open-order
        id allocation for non-overlapping siblings (all current
        per-machine spans are leaves, enforced by the equivalence tests).
        """
        if not self.buffered:
            return self.tracer.span(name, category=category, **attrs)
        return _BufferedSpan(self, name, category, attrs)

    def instant(self, name: str, **attrs) -> None:
        """A machine-local point event (e.g. a ``sweep-mode`` switch)."""
        if not self.buffered:
            self.tracer.instant(name, **attrs)
            return
        self.events.append((
            self.epoch, self._seq, _INSTANT, name, "",
            time.perf_counter(), 0.0, attrs,
        ))
        self._seq += 1

    def _close_span(self, span: _BufferedSpan) -> None:
        self.events.append((
            self.epoch, self._seq, _SPAN, span.name, span.category,
            span.host_t0, time.perf_counter(), span.attrs,
        ))
        self._seq += 1

    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Advance the machine-local pass clock (one machine-loop pass)."""
        self.epoch += 1
        self._seq = 0

    def reset(self) -> None:
        """Rewind the pass clock after a merge drained the buffer."""
        self.epoch = 0
        self._seq = 0


class ShardedObs:
    """The engine-side handle: all machine collectors + the merge point.

    Engines call :meth:`tick` before every machine-loop pass and
    :meth:`merge` at superstep barriers / coherency points (end of each
    pass group, inside the still-open phase span, before any model-time
    charge). ``set_buffered(False)`` flips every collector to the
    passthrough oracle; the single engine code path serves both modes.
    """

    def __init__(self, tracer, num_machines: int) -> None:
        self.tracer = tracer
        self.collectors = [
            MachineCollector(m, tracer) for m in range(num_machines)
        ]
        self.merges = 0

    # ------------------------------------------------------------------
    @property
    def buffered(self) -> bool:
        return any(c.buffered for c in self.collectors)

    def set_buffered(self, flag: bool) -> None:
        for c in self.collectors:
            c.buffered = bool(flag) and self.tracer.enabled

    def collector(self, machine_id: int) -> MachineCollector:
        return self.collectors[machine_id]

    def tick(self) -> None:
        """Start a new pass epoch on every machine (local clocks only)."""
        for c in self.collectors:
            c.tick()

    # ------------------------------------------------------------------
    def merge(self) -> int:
        """Fold all machine buffers into the tracer's single stream.

        Events are globally ordered by ``(epoch, machine_id, seq)`` —
        exactly the lockstep engines' emission order — then emitted
        through the tracer while the enclosing phase span is still open,
        so parent ids, span-id allocation order, and model-time stamps
        all match the passthrough path bit-for-bit. Returns the number
        of events merged (0 is the common fast path: passthrough mode,
        tracer off, or an empty pass).
        """
        batch: List[Tuple] = []
        for c in self.collectors:
            if c.events:
                mid = c.machine_id
                batch.extend(
                    (ev[0], mid, ev[1]) + ev[2:] for ev in c.events
                )
                c.events.clear()
            c.reset()
        if not batch:
            return 0
        batch.sort(key=lambda ev: (ev[0], ev[1], ev[2]))
        tracer = self.tracer
        for (_e, _m, _s, kind, name, cat, host_t0, host_t1, attrs) in batch:
            if kind == _SPAN:
                tracer.emit_closed_span(name, cat, host_t0, host_t1, attrs)
            else:
                tracer.emit_instant_at(name, host_t0, attrs)
        self.merges += 1
        return len(batch)
