"""Nested span tracing on two clocks: host time and modeled cluster time.

Every engine drives a :class:`Tracer` through a single handle on
:class:`~repro.runtime.base_engine.BaseEngine`. Spans nest —
superstep → phase (gather / apply / scatter, local-computation,
coherency) → per-machine work — and each records

* **host time** (``time.perf_counter``): how long the simulator itself
  took, and
* **modeled cluster time**: the :class:`~repro.cluster.stats.RunStats`
  ``modeled_time_s`` position at open/close. The tracer learns about
  model-time advancement by observing every ``add_compute`` /
  ``add_comm`` / ``add_sync`` charge (the :class:`NetworkModel` charge
  points), attributing each charge to the innermost open span.

Because the model clock advances *only* through observed charges, the
modeled durations of the ``phase``-category spans tile the run exactly:
their sum equals ``RunStats.modeled_time_s`` (charges landing while no
span is open are kept in :attr:`Tracer.untracked` so nothing is lost).
Note the BSP fold semantics: per-machine compute meters accumulate
silently and become a charge at the next barrier/settle, so lazy
local-computation stages show near-zero *modeled* width (their compute
is folded into the following coherency barrier) while still carrying
host time and an ``est_compute_s`` attribute.

The tracer is also the default in-memory sink; additional sinks
(:mod:`repro.obs.sinks`) receive each record as it completes.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = ["Tracer", "NullTracer", "Span", "NULL_TRACER", "PHASE", "SERVE"]

PHASE = "phase"  # the category whose modeled durations tile the run
SERVE = "serve"  # service-plane spans (request legs / engine-run roots)
# in a merged serve trace (repro.obs.request_trace); engine-analysis
# passes (report / critical path) skip this category, serve analysis
# (repro analyze --serve) reads only it


class Span:
    """Handle for one open span; close via ``with`` or :meth:`end`."""

    __slots__ = (
        "tracer", "span_id", "parent_id", "name", "category",
        "host_t0", "model_t0", "attrs", "charges", "_open",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        attrs: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.host_t0 = time.perf_counter()
        self.model_t0 = tracer.model_now
        self.attrs = attrs
        self.charges: Dict[str, float] = {}
        self._open = True

    def set(self, **attrs) -> "Span":
        """Attach/overwrite attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def end(self) -> None:
        if self._open:
            self._open = False
            self.tracer._end_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.end()


class _NullSpan:
    """Shared no-op span so disabled tracing costs one attribute lookup."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    Engines call the tracer unconditionally; when tracing is off this
    keeps the hot paths at a method call of overhead.
    """

    enabled = False

    def span(self, name: str, category: str = "span", **attrs) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **attrs) -> None:
        pass

    def counter(self, name: str, value: float) -> None:
        pass

    def emit_closed_span(
        self, name, category, host_t0, host_t1, attrs, charges=None
    ) -> None:
        pass

    def emit_instant_at(self, name, host_t, attrs) -> None:
        pass

    def bind_stats(self, stats) -> None:
        pass

    def finish(self, **meta) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Records nested spans, instant events and counter samples.

    Parameters
    ----------
    sinks:
        Optional list of :class:`~repro.obs.sinks.Sink` objects; each
        completed record is streamed to every sink (the tracer itself
        always keeps the in-memory copy).
    """

    enabled = True

    def __init__(self, sinks: Optional[List] = None) -> None:
        self.records: List[Dict[str, Any]] = []
        self.sinks = list(sinks) if sinks else []
        self.meta: Dict[str, Any] = {}
        self.model_now: float = 0.0
        self.untracked: Dict[str, float] = {}
        self.host_epoch = time.perf_counter()
        self._stack: List[Span] = []
        self._next_id = 1
        self._stats = None
        self._finished = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind_stats(self, stats) -> None:
        """Observe a RunStats ledger's model-time charges.

        Every subsequent ``add_compute``/``add_comm``/``add_sync`` on
        ``stats`` is routed to :meth:`on_charge`; the tracer's model
        clock starts at the ledger's current position.
        """
        self._stats = stats
        self.model_now = stats.modeled_time_s
        stats.bind_tracer(self)

    def on_charge(self, kind: str, seconds: float) -> None:
        """One model-time charge (kind: compute | comm | sync)."""
        self.model_now += seconds
        if self._stack:
            span = self._stack[-1]
            span.charges[kind] = span.charges.get(kind, 0.0) + seconds
        else:
            self.untracked[kind] = self.untracked.get(kind, 0.0) + seconds

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "span", **attrs) -> Span:
        """Open a nested span; close it with ``with`` or ``.end()``."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self, self._next_id, parent, name, category, attrs)
        self._next_id += 1
        self._stack.append(span)
        return span

    def _end_span(self, span: Span) -> None:
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            # a forgotten child: close it implicitly at the same instant
            top._open = False
            self._emit_span(top)
        self._emit_span(span)

    def _emit_span(self, span: Span) -> None:
        self._emit({
            "type": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "cat": span.category,
            "host_t0": span.host_t0 - self.host_epoch,
            "host_t1": time.perf_counter() - self.host_epoch,
            "model_t0": span.model_t0,
            "model_t1": self.model_now,
            "charges": span.charges,
            "attrs": span.attrs,
        })

    def emit_closed_span(
        self,
        name: str,
        category: str,
        host_t0: float,
        host_t1: float,
        attrs: Dict[str, Any],
        charges: Optional[Dict[str, float]] = None,
    ) -> int:
        """Record an already-closed span (the shard-merge entry point).

        Allocates the next span id and parents it to the innermost open
        span, exactly as :meth:`span` would have at the event's original
        position in the stream; host times are absolute
        ``perf_counter`` readings captured at work time and converted to
        epoch-relative here. Both model stamps read the current model
        clock — the shard contract (no charges land between the buffered
        work and its merge) makes that equal to the inline reading.
        """
        parent = self._stack[-1].span_id if self._stack else None
        span_id = self._next_id
        self._next_id += 1
        self._emit({
            "type": "span",
            "id": span_id,
            "parent": parent,
            "name": name,
            "cat": category,
            "host_t0": host_t0 - self.host_epoch,
            "host_t1": host_t1 - self.host_epoch,
            "model_t0": self.model_now,
            "model_t1": self.model_now,
            "charges": dict(charges) if charges else {},
            "attrs": attrs,
        })
        return span_id

    def emit_instant_at(
        self, name: str, host_t: float, attrs: Dict[str, Any]
    ) -> None:
        """Record an instant captured earlier on a machine shard.

        ``host_t`` is the absolute work-time ``perf_counter`` reading;
        the model stamp reads the current clock (see
        :meth:`emit_closed_span` for why that is exact).
        """
        self._emit({
            "type": "instant",
            "name": name,
            "host_t": host_t - self.host_epoch,
            "model_t": self.model_now,
            "attrs": attrs,
        })

    def instant(self, name: str, **attrs) -> None:
        """A point event on both clocks (e.g. an interval-rule decision)."""
        self._emit({
            "type": "instant",
            "name": name,
            "host_t": time.perf_counter() - self.host_epoch,
            "model_t": self.model_now,
            "attrs": attrs,
        })

    def counter(self, name: str, value: float) -> None:
        """Sample a time-series counter (e.g. the active-vertex count)."""
        self._emit({
            "type": "counter",
            "name": name,
            "model_t": self.model_now,
            "value": float(value),
        })

    def _emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)
        for sink in self.sinks:
            sink.emit(record)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finish(self, **meta) -> None:
        """Close open spans, record run metadata, flush and close sinks.

        ``meta`` normally includes ``engine``/``algorithm`` and the final
        ``stats`` dict (see ``RunStats.to_dict``). Idempotent.
        """
        if self._finished:
            return
        while self._stack:
            self._stack[-1].end()
        self.meta.update(meta)
        if self.untracked:
            self.meta["untracked_charges"] = dict(self.untracked)
        self._emit({"type": "run_meta", "meta": self.meta})
        for sink in self.sinks:
            sink.close(self.meta)
        self._finished = True

    # ------------------------------------------------------------------
    # Queries (used by tests and the in-memory workflow)
    # ------------------------------------------------------------------
    def spans(self, category: Optional[str] = None) -> List[Dict[str, Any]]:
        out = [r for r in self.records if r["type"] == "span"]
        if category is not None:
            out = [r for r in out if r["cat"] == category]
        return out

    def instants(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        out = [r for r in self.records if r["type"] == "instant"]
        if name is not None:
            out = [r for r in out if r["name"] == name]
        return out
