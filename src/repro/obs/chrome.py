"""Chrome ``trace_event`` export — open a lazy run in Perfetto.

Produces the JSON object format of the Trace Event spec:
``{"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}``,
loadable in ``chrome://tracing`` and https://ui.perfetto.dev.

Mapping
-------
* **pid 0 — "cluster (modeled time)"**: superstep/phase/exchange spans
  as complete (``"X"``) events whose timestamps are the *modeled*
  cluster clock in microseconds. Because the model clock advances only
  through metered charges, the summed durations of the ``phase`` events
  reproduce ``RunStats.modeled_time_s`` exactly (an asserted invariant).
  Instant events (interval-rule decisions, mode switches) and counter
  tracks (active vertices …) live on the same timeline.
* **pid 1 — "host (wall time)"**: per-machine work spans on the host
  clock, one thread row per simulated machine — this is where you see
  how long the *simulator* spent, and on which machine's share.

``otherData`` embeds the run metadata including the full ``RunStats``
dump, which is how ``repro report`` recovers sync/traffic totals from a
Chrome-format file.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["chrome_trace_document", "CLUSTER_PID", "HOST_PID"]

CLUSTER_PID = 0  # modeled-cluster-time timeline
HOST_PID = 1  # host wall-time timeline (per-machine rows)

_US = 1e6  # seconds -> microseconds


def _span_event(record: Dict[str, Any]) -> Dict[str, Any]:
    """One tracer span -> one Chrome complete ("X") event."""
    attrs = dict(record.get("attrs") or {})
    machine = attrs.get("machine")
    args: Dict[str, Any] = attrs
    charges = record.get("charges") or {}
    for kind, seconds in charges.items():
        args[f"charge_{kind}_s"] = seconds
    if record["cat"] == "machine" and machine is not None:
        # host-time axis, one thread row per machine
        pid, tid = HOST_PID, int(machine)
        t0, t1 = record["host_t0"], record["host_t1"]
    else:
        pid, tid = CLUSTER_PID, 0
        t0, t1 = record["model_t0"], record["model_t1"]
    return {
        "name": record["name"],
        "cat": record["cat"],
        "ph": "X",
        "ts": t0 * _US,
        "dur": (t1 - t0) * _US,
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def chrome_trace_document(
    records: List[Dict[str, Any]], meta: Dict[str, Any]
) -> Dict[str, Any]:
    """Convert tracer records + run meta into a Chrome trace document."""
    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": CLUSTER_PID, "tid": 0,
         "args": {"name": "cluster (modeled time)"}},
        {"name": "process_name", "ph": "M", "pid": HOST_PID, "tid": 0,
         "args": {"name": "host (wall time)"}},
    ]
    named_threads = set()
    other_data = dict(meta)
    for record in records:
        rtype = record["type"]
        if rtype == "span":
            event = _span_event(record)
            key = (event["pid"], event["tid"])
            if event["pid"] == HOST_PID and key not in named_threads:
                named_threads.add(key)
                events.append({
                    "name": "thread_name", "ph": "M", "pid": HOST_PID,
                    "tid": event["tid"],
                    "args": {"name": f"machine {event['tid']}"},
                })
            events.append(event)
        elif rtype == "instant":
            events.append({
                "name": record["name"],
                "ph": "i",
                "s": "g",  # global scope: draw the line across the track
                "ts": record["model_t"] * _US,
                "pid": CLUSTER_PID,
                "tid": 0,
                "args": dict(record.get("attrs") or {}),
            })
        elif rtype == "counter":
            events.append({
                "name": record["name"],
                "ph": "C",
                "ts": record["model_t"] * _US,
                "pid": CLUSTER_PID,
                "tid": 0,
                "args": {"value": record["value"]},
            })
        elif rtype == "run_meta":
            other_data.update(record.get("meta") or {})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other_data,
    }
