"""The coherency lens: replica-staleness probes and the decision audit log.

The paper's whole argument is that letting replicas *diverge* between
sparse coherency points is safe and profitable — yet time/sync/byte
counters never measure the divergence itself. The lens closes that gap
for the lazy engines with three families of observations, all read-only
and all behind an opt-in flag (``lens=True``) so the default hot path
stays bit-identical:

* **staleness & divergence probes** — once per superstep: per-machine
  pending ``deltaMsg`` mass (monoid-measured through
  :meth:`~repro.api.vertex_program.DeltaAlgebra.magnitude`), replica
  staleness age (supersteps a delta has been pending), and
  master↔mirror value drift on a deterministic sample of replicated
  vertices;
* **coherency-decision audit log** — a structured
  :class:`CoherencyDecision` for every interval-rule evaluation
  (``turn_on_lazy`` / ``local_budget``) and one per executed coherency
  exchange, so a report can answer *why did the coherency point happen
  then*;
* **post-exchange invariant probes** — immediately after each exchange
  the lens re-measures the pending mass in the scope the exchange was
  responsible for clearing (everything for a full exchange, the due
  replicas for a partial one). :class:`~repro.obs.audit.LensAuditor`
  flags any non-zero reading at report time.

Everything is emitted twice: as tracer instants (``lens-probe`` /
``lens-exchange`` / ``coherency-decision`` / ``channel-ledger`` /
``lens-final``) so saved traces carry the full timeline, and as
metrics (``lens.*`` histograms/gauges/counters) on the run's
:class:`~repro.cluster.stats.RunStats` registry so summaries ride into
``stats.to_dict()``. :data:`NULL_LENS` is the no-op twin engines hold
when the lens is off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

__all__ = [
    "CoherencyDecision",
    "CoherencyLens",
    "NullLens",
    "NULL_LENS",
    "STALENESS_BUCKETS",
    "MASS_BUCKETS",
]

#: Staleness-age histogram boundaries (supersteps a delta stayed pending).
STALENESS_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
#: Pending/exchanged delta-mass histogram boundaries (monoid units).
MASS_BUCKETS = (0.0, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6)


@dataclass(frozen=True)
class CoherencyDecision:
    """One structured entry of the coherency-decision audit log.

    Attributes
    ----------
    superstep:
        Superstep index the decision was taken in.
    kind:
        ``"turn_on_lazy"`` / ``"local_budget"`` (interval-rule
        evaluations) or ``"coherency"`` (one per executed coherency
        exchange — the audit invariant is that the count of these
        equals ``RunStats.coherency_points``).
    rule:
        Name of the rule that decided (interval-model name,
        ``"max-delta-age"``, ``"idle-drain"``).
    verdict:
        Human-readable outcome (``"lazy-on"``, ``"exchange"``, …).
    inputs:
        The numeric inputs the rule saw (``ev_ratio``, ``trend``,
        ``budget_s``, ``ready_replicas`` …).
    """

    superstep: int
    kind: str
    rule: str
    verdict: str
    inputs: Dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        """Flat JSON-serializable form (the trace-instant attrs)."""
        out: Dict[str, Any] = {
            "superstep": self.superstep,
            "kind": self.kind,
            "rule": self.rule,
            "verdict": self.verdict,
        }
        out.update(self.inputs)
        return out


class NullLens:
    """Disabled lens: every hook is a no-op (the default on hot paths)."""

    enabled = False

    def begin_superstep(self, step: int) -> None:
        pass

    def probe(self) -> None:
        pass

    def on_staged(self, staged_mass: float) -> None:
        pass

    def decision(self, kind: str, rule: str, verdict: str, **inputs) -> None:
        pass

    def on_exchange(
        self, report, due: Optional[Callable] = None, rule: str = "", **inputs
    ) -> None:
        pass

    def finish(self, converged: bool) -> None:
        pass


NULL_LENS = NullLens()


class CoherencyLens:
    """Live replica-coherency observability for one lazy engine run.

    Parameters
    ----------
    runtimes / pgraph / program:
        The engine's per-machine runtimes, partitioned graph and delta
        program (the lens only ever *reads* them).
    tracer:
        Span tracer to emit instants through (``NULL_TRACER`` is fine —
        metrics still accumulate).
    stats:
        The run's :class:`~repro.cluster.stats.RunStats`; lens metrics
        are registered on its registry and summary counters land in
        ``stats.extra``.
    plane:
        The engine's :class:`~repro.comms.ExchangePlane`; each probe
        snapshots the per-channel ledgers into the plane timeline and a
        ``channel-ledger`` instant so traffic lines up with decisions.
    sample_size / seed:
        Deterministic master↔mirror drift sample: up to ``sample_size``
        replicated vertices drawn with a seeded generator.
    rollup_after / rollup_every:
        Trace-size rollup for long runs: past superstep ``rollup_after``
        only every ``rollup_every``-th superstep emits the per-superstep
        tracer instants (``lens-probe`` / ``channel-ledger``). Metrics
        histograms and the decision audit log always stay complete —
        only the instant *timeline* is sampled, so the LensAuditor's
        decision/coherency reconciliation is unaffected.
    sharded:
        ``True`` (default) routes each probe through per-machine
        :class:`~repro.obs.shards.ProbeSample` payloads folded at the
        merge point — the process-parallel-ready discipline. ``False``
        keeps the legacy direct global read; both are bit-identical
        (asserted by the shard-equivalence tests).
    """

    enabled = True

    def __init__(
        self,
        runtimes,
        pgraph,
        program,
        tracer=None,
        stats=None,
        plane=None,
        sample_size: int = 32,
        seed: int = 0,
        rollup_after: int = 10_000,
        rollup_every: int = 100,
        sharded: bool = True,
    ) -> None:
        from repro.obs.tracer import NULL_TRACER

        self.runtimes = list(runtimes)
        self.pgraph = pgraph
        self.program = program
        self.algebra = program.algebra
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = stats
        self.plane = plane
        self.decisions: List[CoherencyDecision] = []
        self.exchanges = 0
        self.probes = 0
        self.superstep = -1
        if rollup_after < 0 or rollup_every < 1:
            raise ValueError(
                f"rollup_after must be >= 0 and rollup_every >= 1, got "
                f"{rollup_after}/{rollup_every}"
            )
        self.rollup_after = rollup_after
        self.rollup_every = rollup_every
        self.rolled_up = 0  # probe instants suppressed by the rollup
        # sharded=True routes each probe through per-machine ProbeSamples
        # folded machine-ascending (the process-parallel-ready path);
        # False keeps the legacy direct global read as the equivalence
        # oracle. Both produce bit-identical metrics and instants.
        self.sharded = sharded
        self.final_drift: Optional[float] = None
        self.invariant_breaks = 0
        # staleness ages: supersteps each replica's delta has been pending
        self._ages = [
            np.zeros(rt.mg.num_local_vertices, dtype=np.int64)
            for rt in self.runtimes
        ]
        self._sample = self._pick_drift_sample(sample_size, seed)
        # the same sample keyed per machine: machine → [(slot, local idx)]
        # so a shard probe can read its drift contributions locally
        self._sample_by_machine: List[List] = [[] for _ in self.runtimes]
        for slot, locs in enumerate(self._sample[1]):
            for mi, li in locs:
                self._sample_by_machine[mi].append((slot, li))
        if stats is not None:
            m = stats.metrics
            self.h_staleness = m.histogram(
                "lens.staleness",
                "supersteps a pending delta aged before exchange",
                buckets=STALENESS_BUCKETS,
            )
            self.h_pending = m.histogram(
                "lens.pending_mass",
                "per-probe total pending deltaMsg mass (monoid units)",
                buckets=MASS_BUCKETS,
            )
            self.h_staged = m.histogram(
                "lens.exchange_mass",
                "delta mass shipped per coherency exchange",
                buckets=MASS_BUCKETS,
            )
            self.g_drift = m.gauge(
                "lens.drift_max", "last sampled master↔mirror drift"
            )
        else:
            self.h_staleness = self.h_pending = self.h_staged = None
            self.g_drift = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_engine(cls, engine, **kwargs) -> "CoherencyLens":
        """Build a lens wired to a :class:`BaseEngine`'s run objects."""
        return cls(
            engine.runtimes,
            engine.pgraph,
            engine.program,
            tracer=engine.tracer,
            stats=engine.sim.stats,
            plane=engine.comms,
            **kwargs,
        )

    def _pick_drift_sample(self, sample_size: int, seed: int):
        """Deterministic replicated-vertex sample → replica locations.

        Returns ``(gids, [(machine, local_idx), ...] per gid)``; empty
        when the partition has no replicated vertices (1 machine).
        """
        replicated = np.flatnonzero(self.pgraph.num_replicas > 1)
        if replicated.size == 0:
            return np.empty(0, dtype=np.int64), []
        if replicated.size > sample_size:
            rng = np.random.default_rng(seed)
            replicated = np.sort(
                rng.choice(replicated, size=sample_size, replace=False)
            )
        locations: List[List] = [[] for _ in range(replicated.size)]
        pos = {int(g): i for i, g in enumerate(replicated)}
        for mi, rt in enumerate(self.runtimes):
            for li, gid in enumerate(rt.mg.vertices):
                slot = pos.get(int(gid))
                if slot is not None:
                    locations[slot].append((mi, li))
        return replicated, locations

    # ------------------------------------------------------------------
    # Measurements (all read-only)
    # ------------------------------------------------------------------
    def _pending_mass(self, rt, mask: Optional[np.ndarray] = None) -> float:
        sel = rt.has_delta if mask is None else (rt.has_delta & mask)
        idx = np.flatnonzero(sel)
        if idx.size == 0:
            return 0.0
        return self.algebra.magnitude(rt.delta_msg[idx])

    def _pending_count(self, rt, mask: Optional[np.ndarray] = None) -> int:
        sel = rt.has_delta if mask is None else (rt.has_delta & mask)
        return int(np.count_nonzero(sel))

    def sample_drift(self) -> float:
        """Max |master − mirror| value gap over the deterministic sample."""
        gids, locations = self._sample
        if gids.size == 0:
            return 0.0
        values = [rt.values() for rt in self.runtimes]
        worst = 0.0
        for locs in locations:
            lo = np.inf
            hi = -np.inf
            for mi, li in locs:
                v = float(values[mi][li])
                lo = min(lo, v)
                hi = max(hi, v)
            gap = hi - lo
            if np.isfinite(gap) and gap > worst:
                worst = gap
        return float(worst)

    def full_drift(self) -> float:
        """Max cross-replica value gap over *all* vertices (finish-time)."""
        n = self.pgraph.graph.num_vertices
        lo = np.full(n, np.inf)
        hi = np.full(n, -np.inf)
        for rt in self.runtimes:
            vals = rt.values()
            gids = rt.mg.vertices
            np.minimum.at(lo, gids, vals)
            np.maximum.at(hi, gids, vals)
        with np.errstate(invalid="ignore"):
            diff = hi - lo  # ∞−∞ → nan: replicas all at ∞ agree
        finite = np.isfinite(diff)
        return float(diff[finite].max()) if finite.any() else 0.0

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def begin_superstep(self, step: int) -> None:
        """Advance the staleness clocks at the top of a superstep."""
        self.superstep = step
        for ages, rt in zip(self._ages, self.runtimes):
            ages[rt.has_delta] += 1
            ages[~rt.has_delta] = 0

    def _probe_shard(self, mi: int) -> "ProbeSample":
        """One machine's probe contribution — reads only machine ``mi``.

        This is the payload a process-parallel machine would ship to the
        merge point: scalar mass/pending/active readings, the bincount
        of its live staleness ages, and its values at its slots of the
        deterministic drift sample.
        """
        from repro.obs.shards import ProbeSample

        rt = self.runtimes[mi]
        ages = self._ages[mi]
        live = ages[rt.has_delta]
        counts = (
            np.bincount(live) if live.size else np.empty(0, dtype=np.int64)
        )
        mine = self._sample_by_machine[mi]
        if mine:
            vals = rt.values()
            drift_values = [(slot, float(vals[li])) for slot, li in mine]
        else:
            drift_values = []
        return ProbeSample(
            machine=mi,
            mass=self._pending_mass(rt),
            pending=self._pending_count(rt),
            active=rt.num_active,
            stale_counts=counts,
            drift_values=drift_values,
        )

    def _merge_drift(self, samples) -> float:
        """Fold the shards' drift-sample values (legacy op order).

        Per slot, contributions arrive machine-ascending — the same
        order :meth:`sample_drift`'s location lists were built in — so
        the min/max folds and the finite-gap comparisons replay the
        direct path exactly.
        """
        nslots = len(self._sample[1])
        if nslots == 0:
            return 0.0
        per_slot: List[List[float]] = [[] for _ in range(nslots)]
        for s in samples:
            for slot, v in s.drift_values:
                per_slot[slot].append(v)
        worst = 0.0
        for vals in per_slot:
            lo = np.inf
            hi = -np.inf
            for v in vals:
                lo = min(lo, v)
                hi = max(hi, v)
            gap = hi - lo
            if np.isfinite(gap) and gap > worst:
                worst = gap
        return float(worst)

    def _merge_probe(self, samples) -> None:
        """Fold per-machine :class:`ProbeSample` payloads into the
        single-stream outputs, replaying the legacy global-read path's
        float-operation order bit-for-bit: masses sum machine-ascending,
        staleness histograms observe per machine in ascending-age order,
        and drift folds per sample slot in machine order.
        """
        masses = [s.mass for s in samples]
        pending = [s.pending for s in samples]
        total_mass = float(sum(masses))
        stale_max = 0
        for s in samples:
            counts = s.stale_counts
            if counts.size:
                # bincount's top index is the machine's max live age
                stale_max = max(stale_max, int(counts.size - 1))
                if self.h_staleness is not None:
                    for age_value in np.flatnonzero(counts):
                        self.h_staleness.observe(
                            float(age_value), int(counts[age_value])
                        )
        if self.h_pending is not None:
            self.h_pending.observe(total_mass)
        drift = self._merge_drift(samples)
        if self.g_drift is not None:
            self.g_drift.set(drift)
        active = int(sum(s.active for s in samples))
        tracer = self.tracer
        if tracer.enabled and not self._instants_due():
            self.rolled_up += 1
            return
        if tracer.enabled:
            tracer.counter("active_vertices", active)
            tracer.instant(
                "lens-probe",
                superstep=self.superstep,
                pending_mass=total_mass,
                pending_replicas=int(sum(pending)),
                staleness_max=stale_max,
                drift_max=drift,
                machine_mass=[float(m) for m in masses],
            )
        self._snapshot_channels()

    def probe(self) -> None:
        """Per-superstep staleness/divergence gauges (pre-exchange)."""
        self.probes += 1
        if self.sharded:
            self._merge_probe(
                [self._probe_shard(mi) for mi in range(len(self.runtimes))]
            )
            return
        # ---- legacy direct global read (the shard-equivalence oracle)
        masses = [self._pending_mass(rt) for rt in self.runtimes]
        pending = [self._pending_count(rt) for rt in self.runtimes]
        total_mass = float(sum(masses))
        stale_max = 0
        for ages, rt in zip(self._ages, self.runtimes):
            live = ages[rt.has_delta]
            if live.size:
                stale_max = max(stale_max, int(live.max()))
                if self.h_staleness is not None:
                    counts = np.bincount(live)
                    for age_value in np.flatnonzero(counts):
                        self.h_staleness.observe(
                            float(age_value), int(counts[age_value])
                        )
        if self.h_pending is not None:
            self.h_pending.observe(total_mass)
        drift = self.sample_drift()
        if self.g_drift is not None:
            self.g_drift.set(drift)
        active = int(sum(rt.num_active for rt in self.runtimes))
        tracer = self.tracer
        if tracer.enabled and not self._instants_due():
            # rollup window: keep the timeline bounded on long runs
            # (metrics above already accumulated this probe)
            self.rolled_up += 1
            return
        if tracer.enabled:
            tracer.counter("active_vertices", active)
            tracer.instant(
                "lens-probe",
                superstep=self.superstep,
                pending_mass=total_mass,
                pending_replicas=int(sum(pending)),
                staleness_max=stale_max,
                drift_max=drift,
                machine_mass=[float(m) for m in masses],
            )
        self._snapshot_channels()

    def _instants_due(self) -> bool:
        """Is this superstep inside the full-resolution window?"""
        return (
            self.superstep < self.rollup_after
            or self.rollup_every == 1
            or self.superstep % self.rollup_every == 0
        )

    def _snapshot_channels(self) -> None:
        """Per-superstep per-channel ledger timeline (traffic vs decisions)."""
        if self.plane is None:
            return
        entry = self.plane.snapshot(self.superstep)
        if self.tracer.enabled:
            attrs: Dict[str, Any] = {"superstep": self.superstep}
            for name, counters in entry.items():
                if name == "superstep":
                    continue
                attrs[f"{name}.bytes"] = float(counters["bytes"])
                attrs[f"{name}.messages"] = int(counters["messages"])
                attrs[f"{name}.syncs"] = int(counters["syncs"])
                attrs[f"{name}.rounds"] = int(counters["rounds"])
            self.tracer.instant("channel-ledger", **attrs)

    def on_staged(self, staged_mass: float) -> None:
        """Delta mass shipped by the exchanger in the current exchange."""
        if self.h_staged is not None:
            self.h_staged.observe(float(staged_mass))

    def decision(self, kind: str, rule: str, verdict: str, **inputs) -> None:
        """Record one interval-rule / coherency decision."""
        d = CoherencyDecision(self.superstep, kind, rule, verdict, inputs)
        self.decisions.append(d)
        if self.tracer.enabled:
            self.tracer.instant("coherency-decision", **d.to_record())

    def on_exchange(
        self, report, due: Optional[Callable] = None, rule: str = "", **inputs
    ) -> None:
        """Post-exchange probe + the exchange's ``"coherency"`` decision.

        ``due`` scopes the invariant: ``None`` means the exchange was
        *full* (every pending delta must be gone afterwards); otherwise
        ``due(rt)`` masks the replicas that were due for exchange (only
        those, plus unreplicated vertices, must be clean).
        """
        self.exchanges += 1
        full = due is None
        # per-machine readings folded machine-ascending: each (mass,
        # count) pair reads one machine's state only, so this path is
        # already shard-shaped — a process-parallel machine ships the
        # two scalars and the fold below is the merge
        mass_after = 0.0
        count_after = 0
        for rt in self.runtimes:
            if full:
                mask = None
            else:
                mask = due(rt) | (rt.mg.num_replicas == 1)
            mass_after += self._pending_mass(rt, mask)
            count_after += self._pending_count(rt, mask)
        ok = count_after == 0 and mass_after == 0.0
        if not ok:
            self.invariant_breaks += 1
        self.decision(
            "coherency",
            rule=rule,
            verdict="exchange" if not report.empty else "empty-exchange",
            mode=report.mode.value,
            vertices=int(report.vertices_exchanged),
            volume_bytes=float(report.volume_bytes),
            **inputs,
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "lens-exchange",
                superstep=self.superstep,
                full=full,
                mass_after=float(mass_after),
                pending_after=int(count_after),
                vertices=int(report.vertices_exchanged),
                mode=report.mode.value,
            )

    def finish(self, converged: bool) -> None:
        """Final drift measurement + summary publication (idempotent)."""
        if self.final_drift is not None:
            return
        self.final_drift = self.full_drift()
        if self.stats is not None:
            self.stats.extra["lens.decisions"] = float(len(self.decisions))
            self.stats.extra["lens.exchanges"] = float(self.exchanges)
            self.stats.extra["lens.probes"] = float(self.probes)
            self.stats.extra["lens.final_drift"] = self.final_drift
            self.stats.extra["lens.invariant_breaks"] = float(
                self.invariant_breaks
            )
            self.stats.extra["lens.rolled_up"] = float(self.rolled_up)
        if self.tracer.enabled:
            self.tracer.instant(
                "lens-final",
                converged=bool(converged),
                drift=self.final_drift,
                decisions=len(self.decisions),
                coherency_decisions=sum(
                    1 for d in self.decisions if d.kind == "coherency"
                ),
                exchanges=self.exchanges,
                invariant_breaks=self.invariant_breaks,
                rolled_up=self.rolled_up,
            )
