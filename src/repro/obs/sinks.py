"""Pluggable trace sinks: in-memory, JSONL stream, Chrome trace_event.

A sink receives every completed tracer record (span / instant / counter /
run_meta dicts — see :mod:`repro.obs.tracer`) via :meth:`Sink.emit` and
is :meth:`Sink.close`-d with the run metadata once the engine finishes.

* :class:`InMemorySink` — zero-dependency default; the tracer itself
  also always keeps an in-memory copy, so this exists mainly as the
  reference implementation and for fan-out tests.
* :class:`JsonlSink` — streams one JSON object per line; the native
  round-trippable on-disk format (``repro report`` reads it back).
* :class:`ChromeTraceSink` — buffers records and writes a Chrome
  ``trace_event`` JSON on close, loadable in ``chrome://tracing`` or
  Perfetto (see :mod:`repro.obs.chrome`).

``export_trace`` writes a finished tracer's records post-hoc in either
format — the path the CLI's ``--trace-out``/``--trace-format`` takes.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.obs.chrome import chrome_trace_document

__all__ = [
    "Sink",
    "InMemorySink",
    "JsonlSink",
    "ChromeTraceSink",
    "export_trace",
    "TRACE_FORMATS",
]

TRACE_FORMATS = ("jsonl", "chrome")


class Sink:
    """Interface: receives records as they complete, then a final close."""

    def emit(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self, meta: Dict[str, Any]) -> None:  # noqa: B027 - optional hook
        pass


class InMemorySink(Sink):
    """Keep records in a list (the zero-dependency default)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self.meta: Optional[Dict[str, Any]] = None

    def emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def close(self, meta: Dict[str, Any]) -> None:
        self.meta = meta


class JsonlSink(Sink):
    """Stream records to ``path``, one JSON object per line.

    The first line is a ``trace_header``; the tracer's final
    ``run_meta`` record (carrying the RunStats dump) arrives through the
    normal stream, so the file is self-describing.
    """

    VERSION = 1

    def __init__(self, path: str) -> None:
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._write({"type": "trace_header", "format": "repro-trace",
                     "version": self.VERSION})

    def _write(self, obj: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(obj, sort_keys=True) + "\n")

    def emit(self, record: Dict[str, Any]) -> None:
        self._write(record)

    def close(self, meta: Dict[str, Any]) -> None:
        self._fh.close()


class ChromeTraceSink(Sink):
    """Buffer records; write a Chrome ``trace_event`` JSON on close."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._records: List[Dict[str, Any]] = []

    def emit(self, record: Dict[str, Any]) -> None:
        self._records.append(record)

    def close(self, meta: Dict[str, Any]) -> None:
        doc = chrome_trace_document(self._records, meta)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)


def export_trace(tracer, path: str, format: str = "jsonl") -> str:
    """Write a finished tracer's records to ``path`` in ``format``.

    Returns the path written. The tracer must have been ``finish()``-ed
    (engines do this in ``run()``); records already carry the final
    ``run_meta`` line.
    """
    if format not in TRACE_FORMATS:
        raise ValueError(
            f"unknown trace format {format!r}; known: {', '.join(TRACE_FORMATS)}"
        )
    if format == "chrome":
        sink: Sink = ChromeTraceSink(path)
    else:
        sink = JsonlSink(path)
    for record in tracer.records:
        sink.emit(record)
    sink.close(tracer.meta)
    return str(path)
