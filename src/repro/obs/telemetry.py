"""Service telemetry plane: rolling health samples for `GraphService`.

Request traces (:mod:`repro.obs.request_trace`) answer "why was *this*
query slow"; this module answers "is the service healthy *now*". A
:class:`TelemetrySink` attached to a running service samples its state
on a background ticker — queue depth, in-flight requests, LRU cache
size and hit rate, per-class latency quantiles over a sliding window,
and :class:`~repro.runtime.process_backend.WorkerPool` liveness /
last-op-age heartbeats — and appends one JSON line per tick to an
append-only ``service.telemetry.jsonl``.

The file format is versioned: line one is a ``telemetry_header`` record
(``format: "repro-telemetry"``, ``version: 1``); every subsequent line
is a ``telemetry`` tick. Consumers: ``repro top`` (live/one-shot text
view, :func:`format_top`), ``repro slo`` (threshold gate,
:func:`check_slo`, non-zero exit on violation), ``repro report`` (the
"service" section via :func:`summarize_telemetry`) and the HTML
dashboard's serving panel.

Neutrality contract: the sink only *reads* service state (plus its own
per-class windows fed from ``observe``) — it never touches the
service's ``MetricsRegistry``, so ``serve.*`` counters and served
answers are bit-identical with telemetry on or off.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, TextIO

__all__ = [
    "TelemetrySink",
    "load_telemetry",
    "summarize_telemetry",
    "check_slo",
    "format_top",
    "format_service_report",
    "iter_follow",
    "is_telemetry_file",
    "TELEMETRY_FORMAT",
    "TELEMETRY_VERSION",
]

TELEMETRY_FORMAT = "repro-telemetry"
TELEMETRY_VERSION = 1

#: latency quantiles reported per sliding window
WINDOW_QUANTILES = (0.50, 0.95, 0.99)


def _window_quantile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[idx]


class _ClassWindow:
    """Sliding window of (monotonic time, latency, cached) per class."""

    def __init__(self, window_s: float) -> None:
        self.window_s = window_s
        self._events: deque = deque()

    def observe(self, now: float, latency_s: float, cached: bool) -> None:
        self._events.append((now, latency_s, cached))
        self._trim(now)

    def _trim(self, now: float) -> None:
        horizon = now - self.window_s
        ev = self._events
        while ev and ev[0][0] < horizon:
            ev.popleft()

    def snapshot(self, now: float) -> Dict[str, Any]:
        self._trim(now)
        lats = sorted(e[1] for e in self._events)
        hits = sum(1 for e in self._events if e[2])
        n = len(self._events)
        out: Dict[str, Any] = {
            "count": n,
            "cache_hits": hits,
            "hit_rate": hits / n if n else 0.0,
        }
        for q in WINDOW_QUANTILES:
            out[f"p{int(q * 100)}_ms"] = _window_quantile(lats, q) * 1e3
        return out


class TelemetrySink:
    """Background ticker appending service health samples as JSONL.

    ``service`` must expose ``telemetry_snapshot()`` (see
    :meth:`repro.serve.GraphService.telemetry_snapshot`); the service
    calls :meth:`observe` as each request finishes to feed the
    per-class sliding windows. Thread-safe; the ticker is a daemon
    thread so a wedged service can't block interpreter exit.
    """

    def __init__(
        self,
        service: Any,
        path: str,
        interval_s: float = 1.0,
        window_s: float = 60.0,
    ) -> None:
        self.service = service
        self.path = str(path)
        self.interval_s = max(float(interval_s), 0.01)
        self.window_s = float(window_s)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh: Optional[TextIO] = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self._windows: Dict[str, _ClassWindow] = {}
        self._seq = 0
        self._t0 = time.monotonic()
        self._stop = threading.Event()
        self._write({
            "type": "telemetry_header",
            "format": TELEMETRY_FORMAT,
            "version": TELEMETRY_VERSION,
            "interval_s": self.interval_s,
            "window_s": self.window_s,
            "t_start_unix": time.time(),
        })
        self._thread = threading.Thread(
            target=self._ticker, name="repro-telemetry", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    def _write(self, obj: Dict[str, Any]) -> None:
        fh = self._fh
        if fh is None:
            return
        fh.write(json.dumps(obj, sort_keys=True) + "\n")
        fh.flush()

    def observe(self, query_class: str, latency_s: float, cached: bool) -> None:
        """Feed one finished request into the sliding windows."""
        now = time.monotonic()
        with self._lock:
            for key in (query_class, "_all"):
                win = self._windows.get(key)
                if win is None:
                    win = self._windows[key] = _ClassWindow(self.window_s)
                win.observe(now, latency_s, cached)

    def _ticker(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.tick()

    def tick(self) -> Dict[str, Any]:
        """Sample the service and append one telemetry line."""
        now = time.monotonic()
        try:
            snap = self.service.telemetry_snapshot()
        except Exception as exc:  # service mid-close; keep the ticker alive
            snap = {"error": repr(exc)}
        with self._lock:
            classes = {
                name: win.snapshot(now)
                for name, win in sorted(self._windows.items())
            }
            record: Dict[str, Any] = {
                "type": "telemetry",
                "seq": self._seq,
                "t_wall": time.time(),
                "uptime_s": now - self._t0,
                "window_s": self.window_s,
                "classes": classes,
            }
            record.update(snap)
            self._seq += 1
            self._write(record)
        return record

    def close(self) -> None:
        """Stop the ticker, write one final tick, close the file."""
        if self._stop.is_set():
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self.tick()
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# File consumers (``repro top`` / ``repro slo`` / ``repro report``)
# ----------------------------------------------------------------------
def is_telemetry_file(path: str) -> bool:
    """Sniff whether ``path`` is a service telemetry JSONL file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            first = fh.readline().strip()
        if not first:
            return False
        rec = json.loads(first)
    except (OSError, ValueError):
        return False
    return (
        isinstance(rec, dict)
        and rec.get("type") == "telemetry_header"
        and rec.get("format") == TELEMETRY_FORMAT
    )


def load_telemetry(path: str) -> Dict[str, Any]:
    """Load a telemetry file -> ``{"header": ..., "ticks": [...]}``.

    Unknown record types are ignored (forward compatibility); a
    truncated trailing line (sink killed mid-write) is dropped.
    """
    header: Dict[str, Any] = {}
    ticks: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            rtype = rec.get("type")
            if rtype == "telemetry_header":
                header = rec
            elif rtype == "telemetry":
                ticks.append(rec)
    if header.get("format") not in (None, TELEMETRY_FORMAT):
        raise ValueError(f"not a telemetry file: {path}")
    return {"header": header, "ticks": ticks}


def summarize_telemetry(data: Dict[str, Any]) -> Dict[str, Any]:
    """Aggregate a telemetry stream for the report "service" section."""
    ticks = data.get("ticks") or []
    if not ticks:
        return {"ticks": 0}
    last = ticks[-1]
    queue_depths = [t.get("queue_depth", 0) for t in ticks]
    counters = last.get("counters") or {}
    latency = last.get("latency") or {}
    summary: Dict[str, Any] = {
        "ticks": len(ticks),
        "uptime_s": last.get("uptime_s", 0.0),
        "interval_s": (data.get("header") or {}).get("interval_s"),
        "queue_depth_last": last.get("queue_depth", 0),
        "queue_depth_max": max(queue_depths) if queue_depths else 0,
        "inflight_last": last.get("inflight", 0),
        "cache": last.get("cache") or {},
        "counters": counters,
        "hit_rate": last.get("hit_rate", 0.0),
        "latency": latency,
        "classes": last.get("classes") or {},
        "pool": last.get("pool"),
        "session": last.get("session") or {},
    }
    return summary


def check_slo(
    data: Dict[str, Any],
    p95_ms: Optional[float] = None,
    min_hit_rate: Optional[float] = None,
    max_queue_depth: Optional[int] = None,
) -> List[str]:
    """Evaluate SLO thresholds; returns violation messages (empty = pass).

    ``p95_ms`` gates the *cumulative* service p95 from the final tick's
    latency histogram export (the stable whole-workload number, not a
    sliding window that may be empty by shutdown); ``min_hit_rate``
    gates the final cumulative cache hit rate; ``max_queue_depth``
    gates the maximum sampled queue depth over all ticks.
    """
    ticks = data.get("ticks") or []
    if not ticks:
        return ["no telemetry ticks in file"]
    last = ticks[-1]
    violations: List[str] = []
    if p95_ms is not None:
        latency = last.get("latency") or {}
        got_ms = float(latency.get("p95", 0.0)) * 1e3
        if got_ms > p95_ms:
            violations.append(
                f"p95 latency {got_ms:.3f} ms > threshold {p95_ms:.3f} ms"
            )
    if min_hit_rate is not None:
        got = float(last.get("hit_rate", 0.0))
        if got < min_hit_rate:
            violations.append(
                f"cache hit rate {got:.3f} < threshold {min_hit_rate:.3f}"
            )
    if max_queue_depth is not None:
        got_q = max(int(t.get("queue_depth", 0)) for t in ticks)
        if got_q > max_queue_depth:
            violations.append(
                f"max queue depth {got_q} > threshold {max_queue_depth}"
            )
    return violations


def format_service_report(summary: Dict[str, Any]) -> str:
    """Render :func:`summarize_telemetry` output as the report "service"
    section (``repro report service.telemetry.jsonl``)."""
    from repro.bench.reporting import format_table

    if not summary.get("ticks"):
        return "service telemetry: no ticks recorded"
    lines: List[str] = []
    lines.append(
        f"service telemetry — {summary['ticks']} ticks over "
        f"{summary.get('uptime_s', 0.0):.1f}s "
        f"(interval {summary.get('interval_s')}s)"
    )
    counters = summary.get("counters") or {}
    rows = [[k, f"{v:g}"] for k, v in sorted(counters.items())]
    rows.append(["serve.cache_hit_rate", f"{summary.get('hit_rate', 0.0):.3f}"])
    cache = summary.get("cache") or {}
    rows.append([
        "cache entries",
        f"{cache.get('entries', 0)}/{cache.get('capacity', 0)}",
    ])
    rows.append(["queue depth (last/max)",
                 f"{summary.get('queue_depth_last', 0)}"
                 f"/{summary.get('queue_depth_max', 0)}"])
    lines.append(format_table(["counter", "value"], rows, title="service"))
    latency = summary.get("latency") or {}
    if latency.get("count"):
        lrows = [
            [k, round(float(latency[k]) * 1e3, 3)]
            for k in ("p50", "p95", "p99", "mean", "min", "max")
            if k in latency
        ]
        lrows.append(["count", int(latency.get("count", 0))])
        lines.append(format_table(
            ["quantile", "ms"], lrows, title="latency (cumulative)"
        ))
    classes = summary.get("classes") or {}
    crows = [
        [name, c.get("count", 0), f"{c.get('hit_rate', 0.0):.2f}",
         round(c.get("p50_ms", 0.0), 3), round(c.get("p95_ms", 0.0), 3)]
        for name, c in classes.items()
    ]
    if crows:
        lines.append(format_table(
            ["class", "count", "hit", "p50_ms", "p95_ms"],
            crows, title="final sliding window",
        ))
    pool = summary.get("pool")
    if pool:
        age = pool.get("last_op_age_s")
        lines.append(
            f"worker pool: {pool.get('spawned', 0)} spawned, "
            f"{pool.get('idle', 0)} idle, "
            f"{pool.get('ops_dispatched', 0)} ops dispatched, last op "
            + (f"{age:.1f}s before the final tick" if age is not None
               else "never")
        )
    return "\n\n".join(lines)


def format_top(tick: Dict[str, Any], header: Optional[Dict] = None) -> str:
    """Render one telemetry tick as the ``repro top`` text panel."""
    from repro.bench.reporting import format_table

    lines: List[str] = []
    uptime = tick.get("uptime_s", 0.0)
    counters = tick.get("counters") or {}
    lines.append(
        f"repro top — seq {tick.get('seq', '?')}  uptime {uptime:.1f}s  "
        f"queue {tick.get('queue_depth', 0)}  "
        f"inflight {tick.get('inflight', 0)}"
    )
    cache = tick.get("cache") or {}
    lines.append(
        f"queries {counters.get('serve.queries', 0)}  "
        f"runs {counters.get('serve.runs', 0)}  "
        f"batches {counters.get('serve.batches', 0)}  "
        f"fused {counters.get('serve.fused_queries', 0)}  "
        f"cache {cache.get('entries', 0)}/{cache.get('capacity', 0)} "
        f"(hit rate {tick.get('hit_rate', 0.0):.2f})"
    )
    latency = tick.get("latency") or {}
    if latency.get("count"):
        lines.append(
            "latency (cumulative): "
            f"p50 {latency.get('p50', 0.0) * 1e3:.3f} ms  "
            f"p95 {latency.get('p95', 0.0) * 1e3:.3f} ms  "
            f"p99 {latency.get('p99', 0.0) * 1e3:.3f} ms  "
            f"n={latency.get('count', 0)}"
        )
    classes = tick.get("classes") or {}
    rows = []
    for name, c in classes.items():
        rows.append([
            name, c.get("count", 0), f"{c.get('hit_rate', 0.0):.2f}",
            round(c.get("p50_ms", 0.0), 3), round(c.get("p95_ms", 0.0), 3),
            round(c.get("p99_ms", 0.0), 3),
        ])
    if rows:
        win = tick.get("window_s", 0)
        lines.append(format_table(
            ["class", "count", "hit", "p50_ms", "p95_ms", "p99_ms"],
            rows, title=f"sliding window ({win:.0f}s)",
        ))
    pool = tick.get("pool")
    if pool:
        age = pool.get("last_op_age_s")
        age_s = f"{age:.1f}s ago" if age is not None else "never"
        lines.append(
            f"worker pool: {pool.get('spawned', 0)} spawned, "
            f"{pool.get('idle', 0)} idle, "
            f"{pool.get('ops_dispatched', 0)} ops, last op {age_s}"
        )
    else:
        lines.append("worker pool: not spawned (serial backend)")
    sess = tick.get("session") or {}
    if sess:
        lines.append(
            f"session: graph v{sess.get('graph_version', '?')}, "
            f"{sess.get('runs_completed', 0)} runs, "
            f"{sess.get('prepared_graphs', 0)} prepared graphs, "
            f"{sess.get('plans', 0)} plan sets"
        )
    return "\n".join(lines)


def iter_follow(
    path: str, poll_s: float = 0.5, stop: Optional[threading.Event] = None
) -> Iterable[Dict[str, Any]]:
    """Yield telemetry ticks from a growing file (``repro top --follow``).

    Tails the file forever (until ``stop`` is set or the reader is
    interrupted); partial trailing lines are retried on the next poll.
    """
    with open(path, "r", encoding="utf-8") as fh:
        buf = ""
        while stop is None or not stop.is_set():
            chunk = fh.readline()
            if not chunk:
                time.sleep(poll_s)
                continue
            buf += chunk
            if not buf.endswith("\n"):
                continue
            line, buf = buf.strip(), ""
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if rec.get("type") == "telemetry":
                yield rec
