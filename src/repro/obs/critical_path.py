"""Critical-path / straggler analysis over a machine-attributed trace.

The sharded observability plane (:mod:`repro.obs.shards`) stamps every
per-machine work span with its machine id and modeled busy seconds
(``busy_s``), and the lazy-block local stage emits per-machine
``machine-work`` instants. This module reconstructs from such a trace:

* **per-superstep timelines** — each superstep's phase legs (gather /
  apply / scatter, local-computation / coherency, …) with their modeled
  widths and charge breakdown;
* **the modeled-time critical path** — since the lockstep simulator
  advances the model clock only at barriers/settles, a superstep's
  duration is gated by exactly one entity per leg: the slowest machine
  on a compute leg (BSP ``max`` fold), or the priced channel on a
  comm/sync leg. The analyzer names a gating machine or channel for
  *every* superstep (falling back to the ``control``/barrier channel
  when a superstep did no attributable work);
* **straggler and load-imbalance summaries** — per-machine busy totals,
  shares, gating counts, and the ``max/mean`` imbalance, reported next
  to the partition layer's replication factor λ (the paper's speedup
  predictor: a vertex-cut that lowers λ lowers exchange volume, but a
  *skewed* cut shifts the gate to one straggler machine — the two
  numbers together say which lever matters);
* **host wall-clock columns** — the same per-machine busy totals and
  gating machines measured on the *host* clock (the width of each
  machine span's ``host_t0``/``host_t1`` window). Under the serial
  backend the two planes agree up to kernel constants; under the
  process backend the host columns show the real parallel wall-clock
  split across workers while the modeled columns stay bit-identical.
  ``machine-work`` instants carry no host width, so lazy local-stage
  host time attributes to the enclosing spans only.

Accounting invariant (asserted by the integration tests): bootstrap +
Σ superstep widths + untracked charges = ``RunStats.modeled_time_s``.

Entry points: :func:`analyze_trace` (dict, JSON-ready) and
:func:`format_analysis` (the ``repro analyze`` text rendering). Both
JSONL and Chrome traces work: with span ids the parent links are used
directly; without (Chrome), nesting is recovered from emission order —
children always close before their parent.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.report import TraceData

__all__ = ["analyze_trace", "extract_run", "format_analysis"]

#: phase-leg name → the channel that prices its barrier/traffic when the
#: leg itself carries no mode attribute (see _leg_channel)
_LEG_CHANNELS = {
    "gather": "gather",
    "apply": "broadcast",
    "scatter": "control",
    "exchange-apply": "one_edge",
    "termination-probe": "control",
}

#: coherency-exchange wire mode → delta channel (CommMode enum values)
_MODE_CHANNELS = {"all_to_all": "delta_a2a", "mirrors_to_master": "delta_m2m"}


def _leg_channel(name: str, attrs: Dict[str, Any]) -> str:
    """The channel that gates a leg's comm/sync time."""
    mode = attrs.get("mode")
    if mode in _MODE_CHANNELS:
        return _MODE_CHANNELS[mode]
    return _LEG_CHANNELS.get(name, "control")


def _nest_spans(
    trace: TraceData,
) -> Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]]]:
    """Recover (bootstrap, supersteps-with-legs) from the span stream.

    Each superstep dict gains ``legs`` (its phase children, in emission
    order) and each leg gains ``machine_spans``. When span ids are
    present (JSONL / live tracer) parent links are used; otherwise
    (Chrome) nesting falls out of emission order: span records are
    emitted at close, so a child's record always precedes its parent's.
    """
    have_ids = all(
        "id" in s for s in trace.spans if s.get("cat") in ("superstep", "phase")
    ) and bool(trace.spans)
    bootstrap = None
    supersteps: List[Dict[str, Any]] = []
    if have_ids:
        legs_by_parent: Dict[Any, List[Dict[str, Any]]] = {}
        machines_by_parent: Dict[Any, List[Dict[str, Any]]] = {}
        for s in trace.spans:
            cat = s.get("cat")
            if cat == "phase":
                legs_by_parent.setdefault(s.get("parent"), []).append(s)
            elif cat == "machine":
                machines_by_parent.setdefault(s.get("parent"), []).append(s)
        for s in trace.spans:
            cat = s.get("cat")
            if cat == "phase":
                s["machine_spans"] = machines_by_parent.get(s.get("id"), [])
                if s.get("parent") is None and s["name"] == "bootstrap":
                    bootstrap = s
            elif cat == "superstep":
                s["legs"] = legs_by_parent.get(s.get("id"), [])
                supersteps.append(s)
        # a top-level bootstrap parented to nothing (parent id None)
        if bootstrap is None:
            for s in trace.spans:
                if s.get("cat") == "phase" and s["name"] == "bootstrap":
                    bootstrap = s
                    break
        return bootstrap, supersteps

    pending_machines: List[Dict[str, Any]] = []
    pending_phases: List[Dict[str, Any]] = []
    for s in trace.spans:
        cat = s.get("cat")
        if cat == "machine":
            pending_machines.append(s)
        elif cat == "phase":
            s["machine_spans"] = pending_machines
            pending_machines = []
            if s["name"] == "bootstrap":
                bootstrap = s
            else:
                pending_phases.append(s)
        elif cat == "superstep":
            s["legs"] = pending_phases
            pending_phases = []
            supersteps.append(s)
    return bootstrap, supersteps


def _machine_work(trace: TraceData) -> Dict[int, List[Dict[str, Any]]]:
    """``machine-work`` instants (lazy local stages) keyed by superstep."""
    out: Dict[int, List[Dict[str, Any]]] = {}
    for inst in trace.instants:
        if inst.get("name") != "machine-work":
            continue
        attrs = inst.get("attrs") or {}
        out.setdefault(int(attrs.get("superstep", -1)), []).append(attrs)
    return out


def _gating_machine(
    leg: Dict[str, Any], work: List[Dict[str, Any]]
) -> Tuple[Optional[int], float]:
    """Slowest machine on a leg: (machine id, busy_s), or (None, 0.0).

    Busy seconds come from the shards' ``busy_s`` span attribute (or a
    ``machine-work`` instant for the lazy local stage); ties break to
    the lowest machine id, matching the simulator's deterministic folds.
    """
    best: Optional[int] = None
    best_busy = 0.0
    rows: List[Dict[str, Any]] = [
        (s.get("attrs") or {}) for s in leg.get("machine_spans", [])
    ]
    if leg["name"] == "local-computation":
        rows += work
    for attrs in rows:
        busy = float(attrs.get("busy_s", 0.0))
        machine = attrs.get("machine")
        if machine is None:
            continue
        if busy > best_busy or best is None:
            if busy > best_busy:
                best = int(machine)
                best_busy = busy
            elif best is None:
                best = int(machine)
    return best, best_busy


def extract_run(trace: TraceData, run_id: int) -> TraceData:
    """One engine run's sub-trace out of a merged serve trace.

    The serve-trace writer (:mod:`repro.obs.request_trace`) stamps every
    merged engine record with its ``run_id`` and folds each run's
    ``run_meta`` into a ``run-meta`` instant. This reverses that: the
    returned :class:`TraceData` holds only that run's engine spans /
    instants / counters plus its original meta, so the standard
    critical-path analysis applies to one served run exactly as it does
    to a standalone ``--trace-out`` file.
    """
    sub = TraceData()
    for span in trace.spans:
        attrs = span.get("attrs") or {}
        if span.get("cat") != "serve" and attrs.get("run_id") == run_id:
            sub.spans.append(span)
    for inst in trace.instants:
        attrs = inst.get("attrs") or {}
        if attrs.get("run_id") != run_id:
            continue
        if inst.get("name") == "run-meta":
            sub.meta.update(attrs.get("meta") or {})
        else:
            sub.instants.append(inst)
    sub.counters = list(trace.counters)
    return sub


def analyze_trace(
    trace: TraceData, run_id: Optional[int] = None
) -> Dict[str, Any]:
    """Critical-path / straggler analysis of one run's trace.

    Returns a JSON-serializable dict; see the module docstring for the
    semantics of each section. ``run_id`` narrows a merged serve trace
    (``repro serve --trace-out``) to one engine run via
    :func:`extract_run` before analyzing.
    """
    if run_id is not None:
        trace = extract_run(trace, run_id)
    meta = trace.meta
    stats = trace.stats
    num_machines = int(meta.get("machines", 0) or 0)
    bootstrap, steps = _nest_spans(trace)
    work_by_step = _machine_work(trace)
    untracked = meta.get("untracked_charges") or {}
    untracked_s = float(sum(untracked.values()))
    bootstrap_s = (
        float(bootstrap["model_t1"] - bootstrap["model_t0"]) if bootstrap else 0.0
    )

    busy_total: Dict[int, float] = {}
    host_busy_total: Dict[int, float] = {}
    gated_machine: Dict[int, int] = {}
    host_gated_machine: Dict[int, int] = {}
    gated_channel: Dict[str, int] = {}
    leg_totals: Dict[str, Dict[str, float]] = {}
    leg_order: List[str] = []
    rows: List[Dict[str, Any]] = []
    supersteps_s = 0.0

    for ss in steps:
        ss_attrs = ss.get("attrs") or {}
        step = int(ss_attrs.get("superstep", len(rows)))
        width = float(ss["model_t1"] - ss["model_t0"])
        supersteps_s += width
        work = work_by_step.get(step, [])
        # per-machine busy accumulated across this superstep's legs so
        # far: the settle legs (coherency / partial-coherency) carry the
        # compute charge for work done in *earlier* sibling legs, so a
        # compute-dominated leg with no machine spans of its own is
        # gated by the superstep's running straggler
        step_busy: Dict[int, float] = {}
        for attrs in work:
            m = int(attrs.get("machine", -1))
            busy = float(attrs.get("busy_s", 0.0))
            busy_total[m] = busy_total.get(m, 0.0) + busy
            step_busy[m] = step_busy.get(m, 0.0) + busy
        legs: List[Dict[str, Any]] = []
        child_s = 0.0
        step_host_busy: Dict[int, float] = {}
        for leg in ss.get("legs", []):
            name = leg["name"]
            model_s = float(leg["model_t1"] - leg["model_t0"])
            child_s += model_s
            charges = leg.get("charges") or {}
            compute_s = float(charges.get("compute", 0.0))
            comm_s = float(charges.get("comm", 0.0))
            sync_s = float(charges.get("sync", 0.0))
            attrs = leg.get("attrs") or {}
            machine, busy = _gating_machine(leg, work)
            for sp in leg.get("machine_spans", []):
                a = sp.get("attrs") or {}
                if a.get("machine") is not None:
                    m = int(a["machine"])
                    b = float(a.get("busy_s", 0.0))
                    busy_total[m] = busy_total.get(m, 0.0) + b
                    step_busy[m] = step_busy.get(m, 0.0) + b
                    hb = float(
                        sp.get("host_t1", 0.0) or 0.0
                    ) - float(sp.get("host_t0", 0.0) or 0.0)
                    if hb > 0.0:
                        host_busy_total[m] = host_busy_total.get(m, 0.0) + hb
                        step_host_busy[m] = step_host_busy.get(m, 0.0) + hb
            channel = _leg_channel(name, attrs)
            if machine is None and compute_s >= comm_s + sync_s and step_busy:
                # a settle leg: charge came from earlier legs' machines
                machine = min(
                    step_busy, key=lambda m: (-step_busy[m], m)
                )
                busy = step_busy[machine]
            # who gates this leg: on a compute-dominated leg the BSP max
            # fold waits on the slowest machine; comm/sync-priced legs
            # wait on their channel. Compute-dominated with no machine
            # attribution (an all-idle leg) falls back to the channel.
            if machine is not None and compute_s >= comm_s + sync_s:
                gate: Dict[str, Any] = {
                    "kind": "machine", "machine": machine, "busy_s": busy,
                }
            else:
                gate = {"kind": "channel", "channel": channel}
            row = {
                "name": name, "model_s": model_s, "compute_s": compute_s,
                "comm_s": comm_s, "sync_s": sync_s,
                "machine": machine, "machine_busy_s": busy,
                "channel": channel, "gating": gate,
            }
            legs.append(row)
            agg = leg_totals.get(name)
            if agg is None:
                agg = leg_totals[name] = {"model_s": 0.0, "count": 0.0}
                leg_order.append(name)
            agg["model_s"] += model_s
            agg["count"] += 1
        self_s = width - child_s
        # the gating leg is the widest on the model clock; an all-zero
        # superstep (everything idle) is gated by the control barrier
        gating_leg = max(legs, key=lambda r: r["model_s"], default=None)
        if gating_leg is not None and gating_leg["model_s"] > 0.0:
            gate = dict(gating_leg["gating"])
            gate["leg"] = gating_leg["name"]
        else:
            gate = {
                "kind": "channel", "channel": "control",
                "leg": gating_leg["name"] if gating_leg else "(idle)",
            }
        if gate["kind"] == "machine":
            gated_machine[gate["machine"]] = (
                gated_machine.get(gate["machine"], 0) + 1
            )
        else:
            gated_channel[gate["channel"]] = (
                gated_channel.get(gate["channel"], 0) + 1
            )
        # host-clock gating machine: who actually burned the most host
        # wall-clock inside this superstep's machine spans (None when no
        # span carried a host width — e.g. an all-idle superstep)
        if step_host_busy:
            host_machine = min(
                step_host_busy, key=lambda m: (-step_host_busy[m], m)
            )
            host_gated_machine[host_machine] = (
                host_gated_machine.get(host_machine, 0) + 1
            )
            host_gate: Optional[Dict[str, Any]] = {
                "machine": host_machine,
                "host_busy_s": step_host_busy[host_machine],
            }
        else:
            host_gate = None
        rows.append({
            "superstep": step, "model_s": width, "self_s": self_s,
            "model_t0": float(ss["model_t0"]),
            "model_t1": float(ss["model_t1"]),
            "gating": gate, "host_gating": host_gate, "legs": legs,
        })

    # bootstrap busy/machine attribution (its sweep instants carry no
    # busy seconds; the compute charge folds at the first barrier)
    total_modeled_s = float(stats.get("modeled_time_s", 0.0))
    accounted_s = bootstrap_s + supersteps_s + untracked_s

    machines_section: Dict[str, Any] = {}
    stragglers: Dict[str, Any] = {}
    if num_machines:
        busy = [busy_total.get(m, 0.0) for m in range(num_machines)]
        host_busy = [host_busy_total.get(m, 0.0) for m in range(num_machines)]
        total_busy = sum(busy)
        total_host = sum(host_busy)
        mean_busy = total_busy / num_machines if num_machines else 0.0
        max_busy = max(busy) if busy else 0.0
        argmax = busy.index(max_busy) if busy else None
        mean_host = total_host / num_machines if num_machines else 0.0
        max_host = max(host_busy) if host_busy else 0.0
        host_argmax = (
            host_busy.index(max_host) if total_host > 0 else None
        )
        machines_section = {
            "busy_s": busy,
            "share": [
                (b / total_busy if total_busy > 0 else 0.0) for b in busy
            ],
            "gated_supersteps": [
                gated_machine.get(m, 0) for m in range(num_machines)
            ],
            "host_busy_s": host_busy,
            "host_share": [
                (b / total_host if total_host > 0 else 0.0)
                for b in host_busy
            ],
            "host_gated_supersteps": [
                host_gated_machine.get(m, 0) for m in range(num_machines)
            ],
        }
        stragglers = {
            "machine": argmax,
            "max_busy_s": max_busy,
            "mean_busy_s": mean_busy,
            "imbalance": (max_busy / mean_busy) if mean_busy > 0 else 1.0,
            "host_machine": host_argmax,
            "host_max_busy_s": max_host,
            "host_mean_busy_s": mean_host,
            "host_imbalance": (
                (max_host / mean_host) if mean_host > 0 else 1.0
            ),
            "compute_skew": stats.get("compute_skew"),
            "replication_factor": meta.get("replication_factor"),
        }

    return {
        "engine": meta.get("engine", "?"),
        "algorithm": meta.get("algorithm", "?"),
        "machines": num_machines,
        "replication_factor": meta.get("replication_factor"),
        "total_modeled_s": total_modeled_s,
        "accounted_s": accounted_s,
        "bootstrap_s": bootstrap_s,
        "supersteps_s": supersteps_s,
        "untracked_s": untracked_s,
        "critical_path": [
            {"name": n, **leg_totals[n]} for n in leg_order
        ],
        "supersteps": rows,
        "machines_detail": machines_section,
        "stragglers": stragglers,
        "gated_channels": gated_channel,
    }


def _gate_label(gate: Dict[str, Any]) -> str:
    if gate.get("kind") == "machine":
        return f"machine {gate['machine']}"
    return f"channel {gate.get('channel', '?')}"


def format_analysis(analysis: Dict[str, Any], max_rows: int = 40) -> str:
    """Render an analysis dict as the ``repro analyze`` text report."""
    from repro.bench.reporting import format_table

    lines: List[str] = []
    lam = analysis.get("replication_factor")
    lines.append(
        f"critical-path analysis — {analysis['engine']}/"
        f"{analysis['algorithm']}, {analysis['machines']} machines"
        + (f", λ={lam:.3f}" if isinstance(lam, (int, float)) else "")
    )

    total = analysis["total_modeled_s"]
    acct = [
        ["bootstrap", round(analysis["bootstrap_s"], 6)],
        ["supersteps", round(analysis["supersteps_s"], 6)],
        ["untracked", round(analysis["untracked_s"], 6)],
        ["accounted", round(analysis["accounted_s"], 6)],
        ["modeled total", round(total, 6)],
    ]
    lines.append(format_table(
        ["segment", "model_s"], acct, title="modeled-time accounting",
    ))

    cp_rows = []
    for row in analysis["critical_path"]:
        share = 100.0 * row["model_s"] / total if total > 0 else 0.0
        cp_rows.append([
            row["name"], int(row["count"]), round(row["model_s"], 6),
            round(share, 1),
        ])
    if cp_rows:
        lines.append(format_table(
            ["leg", "count", "model_s", "%"],
            cp_rows, title="critical path by leg",
        ))

    steps = analysis["supersteps"]
    step_rows = []
    shown = steps if len(steps) <= max_rows else steps[:max_rows]
    have_host = any(row.get("host_gating") for row in steps)
    for row in shown:
        cells = [
            row["superstep"], round(row["model_s"], 6),
            row["gating"].get("leg", "?"), _gate_label(row["gating"]),
        ]
        if have_host:
            hg = row.get("host_gating")
            cells.append(f"machine {hg['machine']}" if hg else "-")
        step_rows.append(cells)
    if step_rows:
        title = "per-superstep gating"
        if len(steps) > len(shown):
            title += f" (first {len(shown)} of {len(steps)})"
        headers = ["superstep", "model_s", "gating leg", "gated by"]
        if have_host:
            headers.append("host gate")
        lines.append(format_table(headers, step_rows, title=title))

    md = analysis.get("machines_detail") or {}
    if md.get("busy_s"):
        host_busy = md.get("host_busy_s") or []
        have_host = any(b > 0.0 for b in host_busy)
        m_rows = []
        for m, b in enumerate(md["busy_s"]):
            cells = [
                m, round(b, 6), round(100.0 * md["share"][m], 1),
                md["gated_supersteps"][m],
            ]
            if have_host:
                cells += [
                    round(host_busy[m], 6),
                    round(100.0 * md["host_share"][m], 1),
                    md["host_gated_supersteps"][m],
                ]
            m_rows.append(cells)
        headers = ["machine", "busy_s", "share %", "gated supersteps"]
        if have_host:
            headers += ["host_busy_s", "host %", "host gated"]
        lines.append(format_table(
            headers, m_rows, title="per-machine load (modeled | host clock)"
            if have_host else "per-machine load",
        ))

    st = analysis.get("stragglers") or {}
    if st:
        imb = st.get("imbalance")
        skew = st.get("compute_skew")
        lam = st.get("replication_factor")
        host_m = st.get("host_machine")
        parts = [
            f"straggler: machine {st.get('machine')}"
            f" (busy {st.get('max_busy_s', 0.0):.6f}s,"
            f" mean {st.get('mean_busy_s', 0.0):.6f}s)",
            f"imbalance max/mean = {imb:.3f}" if imb is not None else "",
            (
                f"host-clock straggler: machine {host_m}"
                f" (host busy {st.get('host_max_busy_s', 0.0):.6f}s,"
                f" mean {st.get('host_mean_busy_s', 0.0):.6f}s,"
                f" imbalance {st.get('host_imbalance', 1.0):.3f})"
                if host_m is not None else ""
            ),
            f"compute skew = {skew:.3f}" if isinstance(skew, (int, float)) else "",
            (
                f"replication factor λ = {lam:.3f} — λ prices the exchange "
                f"volume a lazy run avoids; the imbalance above says how "
                f"much of the remaining time one straggler gates"
                if isinstance(lam, (int, float)) else ""
            ),
        ]
        lines.append("\n".join(p for p in parts if p))

    ch = analysis.get("gated_channels") or {}
    if ch:
        lines.append(
            "supersteps gated by channel: " + ", ".join(
                f"{name}×{count}" for name, count in sorted(ch.items())
            )
        )
    return "\n\n".join(lines)
