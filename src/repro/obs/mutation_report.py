"""Mutation-stream analysis: re-convergence cost and λ drift over time.

Consumes the JSONL event stream ``repro mutate`` (and
``benchmarks/bench_dynamic.py``) emit — one ``{"event": "apply", ...}``
record per applied batch, interleaved with ``{"event": "run", ...}``
records for the engine runs that re-converged after each — and distills
the two questions the dynamic-graph story hangs on:

* **supersteps-to-reconverge**: how many supersteps (and how much
  modeled time) each incremental run needed, against the from-scratch
  cost where the stream recorded a cold comparison run;
* **λ drift**: how far the patched vertex-cut's replication factor
  wandered from the baseline partitioning as mutations accumulated,
  and where the repartition valve fired.

``repro analyze --mutations PATH`` prints the result.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.bench.reporting import format_table

__all__ = [
    "load_mutation_stream",
    "analyze_mutation_stream",
    "format_mutation_analysis",
]


def load_mutation_stream(path: str) -> List[Dict[str, Any]]:
    """Parse a mutation-stream JSONL file into its event records."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            events.append(json.loads(line))
    return events


def is_mutation_stream(events: Iterable[Dict[str, Any]]) -> bool:
    return any(e.get("event") == "apply" for e in events)


def _worst_lambda(apply_ev: Dict[str, Any]) -> float:
    lam = apply_ev.get("worst_lambda")
    if lam is not None:
        return float(lam)
    patches = apply_ev.get("patches", {})
    return max(
        (float(p.get("lambda_after", 0.0)) for p in patches.values()),
        default=0.0,
    )


def analyze_mutation_stream(
    events: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Roll a mutation event stream up into steps + totals.

    Each *step* is one applied batch joined with the run records that
    followed it (incremental, and cold when the stream carries a
    comparison run — either as a separate ``mode: "cold"`` record or as
    ``cold_supersteps`` fields inline on the incremental record).
    """
    steps: List[Dict[str, Any]] = []
    baseline: Dict[str, Any] = {}
    current: Dict[str, Any] = {}
    baseline_lambda = 0.0
    for ev in events:
        kind = ev.get("event")
        if kind == "apply":
            if current:
                steps.append(current)
            lam = _worst_lambda(ev)
            if not steps and baseline_lambda == 0.0:
                # λ before the first patch is the partition baseline
                patches = ev.get("patches", {})
                baseline_lambda = max(
                    (
                        float(p.get("lambda_before", 0.0))
                        for p in patches.values()
                    ),
                    default=0.0,
                )
            current = {
                "graph_version": ev.get("graph_version"),
                "edges_added": ev.get("edges_added", 0),
                "edges_removed": ev.get("edges_removed", 0),
                "lambda": lam,
                "repartitioned": sum(
                    len(p.get("repartitioned_vertices", []))
                    for p in ev.get("patches", {}).values()
                ),
            }
        elif kind == "run":
            mode = ev.get("mode", "incremental")
            record = {
                "supersteps": ev.get("supersteps"),
                "modeled_time_s": ev.get("modeled_time_s"),
            }
            if mode == "baseline":
                baseline = {
                    "algorithm": ev.get("algorithm"),
                    **record,
                }
            elif not current:
                continue  # run before any apply: ignore
            elif mode == "cold":
                current["cold"] = record
            else:
                current["incremental"] = {
                    **record,
                    "warm_start": ev.get("warm_start"),
                    "reseeded": ev.get("reseeded"),
                    "injections": ev.get("injections"),
                }
                if ev.get("cold_supersteps") is not None:
                    current["cold"] = {
                        "supersteps": ev.get("cold_supersteps"),
                        "modeled_time_s": ev.get("cold_modeled_time_s"),
                    }
    if current:
        steps.append(current)

    inc_ss = [
        s["incremental"]["supersteps"]
        for s in steps
        if s.get("incremental", {}).get("supersteps") is not None
    ]
    cold_ss = [
        s["cold"]["supersteps"]
        for s in steps
        if s.get("cold", {}).get("supersteps") is not None
        and s.get("incremental", {}).get("supersteps") is not None
    ]
    inc_t = [
        s["incremental"]["modeled_time_s"]
        for s in steps
        if s.get("incremental", {}).get("modeled_time_s") is not None
    ]
    cold_t = [
        s["cold"]["modeled_time_s"]
        for s in steps
        if s.get("cold", {}).get("modeled_time_s") is not None
        and s.get("incremental", {}).get("modeled_time_s") is not None
    ]
    lambdas = [s["lambda"] for s in steps if s.get("lambda")]
    totals: Dict[str, Any] = {
        "steps": len(steps),
        "edges_added": sum(s.get("edges_added", 0) for s in steps),
        "edges_removed": sum(s.get("edges_removed", 0) for s in steps),
        "mean_supersteps_to_reconverge": (
            sum(inc_ss) / len(inc_ss) if inc_ss else None
        ),
        "baseline_lambda": baseline_lambda or None,
        "final_lambda": lambdas[-1] if lambdas else None,
        "lambda_drift": (
            lambdas[-1] / baseline_lambda - 1.0
            if lambdas and baseline_lambda
            else None
        ),
        "repartition_events": sum(
            1 for s in steps if s.get("repartitioned", 0)
        ),
    }
    if cold_ss:
        totals["superstep_speedup"] = (
            sum(cold_ss) / sum(inc_ss) if sum(inc_ss) else float("inf")
        )
    if cold_t:
        totals["modeled_time_speedup"] = (
            sum(cold_t) / sum(inc_t) if sum(inc_t) else float("inf")
        )
    return {"baseline": baseline, "steps": steps, "totals": totals}


def format_mutation_analysis(
    analysis: Dict[str, Any], max_rows: int = 40
) -> str:
    """Human-readable table for ``repro analyze --mutations``."""
    out: List[str] = []
    baseline = analysis.get("baseline") or {}
    if baseline:
        out.append(
            f"baseline: {baseline.get('algorithm')} converged in "
            f"{baseline.get('supersteps')} supersteps "
            f"({baseline.get('modeled_time_s', 0.0):.6f}s modeled)"
        )
    rows = []
    for s in analysis["steps"][:max_rows]:
        inc = s.get("incremental", {})
        cold = s.get("cold", {})
        rows.append([
            s.get("graph_version"),
            f"+{s.get('edges_added', 0)}/-{s.get('edges_removed', 0)}",
            round(s.get("lambda", 0.0), 3),
            s.get("repartitioned", 0) or "",
            inc.get("supersteps", ""),
            cold.get("supersteps", ""),
            inc.get("reseeded", ""),
            inc.get("injections", ""),
        ])
    if rows:
        out.append(format_table(
            [
                "ver", "edges", "lambda", "repart",
                "inc_ss", "cold_ss", "reseeded", "injected",
            ],
            rows,
            title="mutation stream",
        ))
    t = analysis["totals"]
    parts = [f"{t['steps']} batches "
             f"(+{t['edges_added']}/-{t['edges_removed']} edges)"]
    if t.get("mean_supersteps_to_reconverge") is not None:
        parts.append(
            f"mean supersteps to re-converge "
            f"{t['mean_supersteps_to_reconverge']:.1f}"
        )
    if t.get("superstep_speedup") is not None:
        parts.append(f"superstep speedup {t['superstep_speedup']:.1f}x")
    if t.get("modeled_time_speedup") is not None:
        parts.append(
            f"modeled-time speedup {t['modeled_time_speedup']:.1f}x"
        )
    if t.get("lambda_drift") is not None:
        parts.append(
            f"lambda drift {t['lambda_drift']:+.2%} "
            f"({t['baseline_lambda']:.3f} -> {t['final_lambda']:.3f})"
        )
    if t.get("repartition_events"):
        parts.append(f"repartition valve fired {t['repartition_events']}x")
    out.append("totals: " + "; ".join(parts))
    return "\n".join(out)
