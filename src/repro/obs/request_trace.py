"""Request-scoped tracing for the resident serving stack.

A batch run has one trace; a serving workload has *requests* — many
small queries riding shared engine runs, caches, and batching windows.
This module gives each :meth:`repro.serve.GraphService.submit` a
:class:`RequestContext` (request id + the host timestamps of its four
service legs) and writes one **merged JSONL trace** joining the service
plane to the engine plane:

* per request, four service spans that tile submit-to-completion host
  time exactly — ``serve.queue`` (enqueue → dispatch), ``serve.batch``
  (dispatch → run start: canonicalization, cache lookup, fusion
  planning), ``serve.run`` (the engine run, zero-width on cache hits)
  and ``serve.serialize`` (run end → answer handed out) — under one
  ``serve.request`` root span carrying the request's outcome;
* per engine run, one ``serve.engine-run`` span whose children are the
  run's own :class:`~repro.obs.tracer.Tracer` records (span ids
  offset, top-level run spans re-parented, host clocks rebased onto
  the service epoch), so a served query's trace drills from its
  ``serve.run`` leg through ``run_id`` into superstep/phase/machine
  spans;
* **cost attribution**: a fused / single-flight run's modeled engine
  cost is split across the riding requests with :func:`split_cost`,
  whose shares sum *bit-exactly* back to the run's modeled time; cache
  hits record the ``(graph_version, engine, program, …)`` artifact key
  they hit and attribute zero engine cost.

Exactness contract: each leg span stores its width (``dur_s``) as the
float difference of the two ``perf_counter`` stamps that bound it, and
the root span stores ``latency_s`` as the left-to-right sum of the four
widths — the same expression :attr:`RequestContext.latency_s` computes
and :class:`~repro.serve.ServedResult` reports. JSON round-trips floats
exactly, so :func:`analyze_serve_trace` reproduces every request's
end-to-end latency bit-for-bit from its spans (``repro analyze
--serve`` asserts it and prints the per-request waterfalls plus a
"cost by query class" table).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.tracer import SERVE as SERVE_CATEGORY

__all__ = [
    "RequestContext",
    "ServeTraceWriter",
    "split_cost",
    "analyze_serve_trace",
    "format_serve_analysis",
    "is_serve_trace",
]

#: canonical order of a request's service legs; the waterfall sum and
#: ``RequestContext.latency_s`` both add widths in exactly this order
LEG_NAMES = ("serve.queue", "serve.batch", "serve.run", "serve.serialize")


def split_cost(total: float, n: int) -> List[float]:
    """Split ``total`` seconds across ``n`` riders, summing bit-exactly.

    The first ``n - 1`` shares are ``total / n``; the last share is
    ``total`` minus the left-to-right float sum of the others, so the
    left-to-right sum of all ``n`` shares reproduces ``total`` exactly
    (the final add is exact by Sterbenz' lemma: the partial sum lies
    within a factor of two of ``total`` for every ``n >= 2``).
    """
    if n <= 0:
        return []
    if n == 1:
        return [float(total)]
    share = total / n
    shares = [share] * (n - 1)
    partial = 0.0
    for s in shares:
        partial += s
    shares.append(total - partial)
    return shares


@dataclass
class RequestContext:
    """One served request's identity, timestamps, and attribution.

    Host timestamps are absolute ``time.perf_counter`` readings stamped
    at the leg boundaries; each leg's width is the float difference of
    its two stamps, and :attr:`latency_s` is their left-to-right sum —
    the service reports exactly this number, and the trace analyzer
    reproduces it exactly from the written spans.
    """

    request_id: int
    algorithm: str
    sources: tuple = ()
    t_enqueue: float = field(default_factory=time.perf_counter)
    t_dispatch: float = 0.0
    t_run0: float = 0.0
    t_run1: float = 0.0
    t_done: float = 0.0
    outcome: str = "pending"  # ok | error | cancelled
    cached: bool = False
    batched: bool = False
    batch_id: Optional[int] = None
    batch_size: int = 1
    run_id: Optional[int] = None
    sources_served: tuple = ()
    engine_cost_s: float = 0.0
    cache_key: Optional[str] = None
    error: Optional[str] = None

    @property
    def queue_s(self) -> float:
        return self.t_dispatch - self.t_enqueue

    @property
    def batch_s(self) -> float:
        return self.t_run0 - self.t_dispatch

    @property
    def run_s(self) -> float:
        return self.t_run1 - self.t_run0

    @property
    def serialize_s(self) -> float:
        return self.t_done - self.t_run1

    @property
    def latency_s(self) -> float:
        """Sum of the four leg widths, in canonical leg order."""
        return self.queue_s + self.batch_s + self.run_s + self.serialize_s

    def leg_widths(self) -> Dict[str, float]:
        return {
            "serve.queue": self.queue_s,
            "serve.batch": self.batch_s,
            "serve.run": self.run_s,
            "serve.serialize": self.serialize_s,
        }


class ServeTraceWriter:
    """Streams the merged service + engine trace as JSONL.

    Records use the tracer's span schema (``type``/``id``/``parent``/
    ``host_t0``/``host_t1``/``attrs``) so :func:`repro.obs.report.
    load_trace` reads the file unchanged; service spans carry
    ``cat: "serve"``. All writes happen on the service's dispatcher
    thread except :meth:`close` (guarded by a lock).
    """

    VERSION = 1

    def __init__(self, path: str) -> None:
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self._next_id = 1
        self.epoch = time.perf_counter()
        self._closed = False
        self._write({
            "type": "trace_header", "format": "repro-trace",
            "version": self.VERSION, "profile": "serve",
        })

    # ------------------------------------------------------------------
    def _write(self, obj: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(obj, sort_keys=True) + "\n")

    def _emit(self, record: Dict[str, Any]) -> None:
        with self._lock:
            if not self._closed:
                self._write(record)

    def _span(
        self,
        name: str,
        t0: float,
        t1: float,
        parent: Optional[int] = None,
        dur_s: Optional[float] = None,
        **attrs: Any,
    ) -> int:
        """Emit one closed service span; returns its id.

        ``dur_s`` is the exact width (difference of the bounding
        ``perf_counter`` stamps); the epoch-relative ``host_t0/t1``
        fields place the span on the shared timeline but are *not* the
        exactness carrier — ``attrs["dur_s"]`` is.
        """
        span_id = self._next_id
        self._next_id += 1
        attrs["dur_s"] = dur_s if dur_s is not None else (t1 - t0)
        self._emit({
            "type": "span",
            "id": span_id,
            "parent": parent,
            "name": name,
            "cat": SERVE_CATEGORY,
            "host_t0": t0 - self.epoch,
            "host_t1": t1 - self.epoch,
            "model_t0": 0.0,
            "model_t1": 0.0,
            "charges": {},
            "attrs": attrs,
        })
        return span_id

    # ------------------------------------------------------------------
    def record_run(
        self,
        run_id: int,
        batch_id: int,
        algorithm: str,
        sources: tuple,
        request_ids: List[int],
        t_run0: float,
        t_run1: float,
        result: Any = None,
        tracer: Any = None,
        error: Optional[str] = None,
    ) -> int:
        """One ``serve.engine-run`` span + the run's merged engine spans.

        ``request_ids`` lists the riding requests in attribution order —
        the order their :func:`split_cost` shares were assigned, which
        is the order the analyzer re-sums them in.
        """
        attrs: Dict[str, Any] = {
            "run_id": run_id,
            "batch_id": batch_id,
            "algorithm": algorithm,
            "sources": list(sources),
            "request_ids": list(request_ids),
        }
        if result is not None:
            attrs["modeled_time_s"] = float(result.stats.modeled_time_s)
            attrs["engine"] = result.engine
            attrs["supersteps"] = int(result.stats.supersteps)
            attrs["converged"] = bool(result.stats.converged)
        if error is not None:
            attrs["error"] = error
        span_id = self._span("serve.engine-run", t_run0, t_run1, **attrs)
        if tracer is not None and getattr(tracer, "records", None):
            self._merge_engine_records(tracer, span_id, run_id)
        return span_id

    def _merge_engine_records(
        self, tracer: Any, parent_id: int, run_id: int
    ) -> None:
        """Re-emit one engine tracer's stream under an engine-run span.

        Span ids are offset into this writer's id space, top-level run
        spans re-parent to ``parent_id``, and host stamps rebase from
        the engine tracer's epoch onto the service epoch. Model-clock
        stamps pass through unchanged (each run's model clock starts at
        zero). The run's ``run_meta`` record is folded into a
        ``run-meta`` instant rather than a trace-level meta record so N
        runs in one file cannot clobber each other's stats.
        """
        offset = self._next_id
        shift = tracer.host_epoch - self.epoch
        max_id = 0
        for rec in tracer.records:
            rtype = rec.get("type")
            if rtype == "span":
                r = dict(rec)
                max_id = max(max_id, int(rec["id"]))
                r["id"] = int(rec["id"]) + offset
                r["parent"] = (
                    int(rec["parent"]) + offset
                    if rec.get("parent") is not None else parent_id
                )
                r["host_t0"] = rec["host_t0"] + shift
                r["host_t1"] = rec["host_t1"] + shift
                attrs = dict(r.get("attrs") or {})
                attrs["run_id"] = run_id
                r["attrs"] = attrs
                self._emit(r)
            elif rtype == "instant":
                r = dict(rec)
                if "host_t" in r:
                    r["host_t"] = rec["host_t"] + shift
                attrs = dict(r.get("attrs") or {})
                attrs["run_id"] = run_id
                r["attrs"] = attrs
                self._emit(r)
            elif rtype == "counter":
                self._emit(dict(rec))
            elif rtype == "run_meta":
                self._emit({
                    "type": "instant",
                    "name": "run-meta",
                    "host_t": tracer.host_epoch - self.epoch,
                    "model_t": 0.0,
                    "attrs": {"run_id": run_id, "meta": rec.get("meta") or {}},
                })
        self._next_id = offset + max_id + 1

    def record_request(self, ctx: RequestContext) -> int:
        """The four leg spans + the ``serve.request`` root for one request."""
        root_attrs: Dict[str, Any] = {
            "request_id": ctx.request_id,
            "algorithm": ctx.algorithm,
            "class": ctx.algorithm,
            "sources": list(ctx.sources),
            "sources_served": list(ctx.sources_served),
            "outcome": ctx.outcome,
            "cached": ctx.cached,
            "batched": ctx.batched,
            "batch_id": ctx.batch_id,
            "batch_size": ctx.batch_size,
            "run_id": ctx.run_id,
            "engine_cost_s": ctx.engine_cost_s,
            "latency_s": ctx.latency_s,
        }
        if ctx.cache_key is not None:
            root_attrs["cache_key"] = ctx.cache_key
        if ctx.error is not None:
            root_attrs["error"] = ctx.error
        root = self._span(
            "serve.request", ctx.t_enqueue, ctx.t_done, dur_s=ctx.latency_s,
            **root_attrs,
        )
        bounds = {
            "serve.queue": (ctx.t_enqueue, ctx.t_dispatch),
            "serve.batch": (ctx.t_dispatch, ctx.t_run0),
            "serve.run": (ctx.t_run0, ctx.t_run1),
            "serve.serialize": (ctx.t_run1, ctx.t_done),
        }
        widths = ctx.leg_widths()
        for name in LEG_NAMES:
            t0, t1 = bounds[name]
            self._span(
                name, t0, t1, parent=root, dur_s=widths[name],
                request_id=ctx.request_id, run_id=ctx.run_id,
            )
        return root

    def close(self, meta: Optional[Dict[str, Any]] = None) -> None:
        """Write the trailing ``run_meta`` (service stats) and close."""
        with self._lock:
            if self._closed:
                return
            final = {"service": True}
            final.update(meta or {})
            self._write({"type": "run_meta", "meta": final})
            self._closed = True
            self._fh.close()


# ----------------------------------------------------------------------
# Analysis (``repro analyze --serve``)
# ----------------------------------------------------------------------
def is_serve_trace(trace: Any) -> bool:
    """Whether a loaded :class:`TraceData` carries service-plane spans."""
    return any(
        s.get("cat") == SERVE_CATEGORY and s.get("name") == "serve.request"
        for s in trace.spans
    )


def _quantile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[idx]


def analyze_serve_trace(trace: Any) -> Dict[str, Any]:
    """Per-request waterfalls + cost attribution from a merged serve trace.

    Returns a JSON-serializable dict:

    * ``requests`` — one row per request in request-id order: the four
      leg widths, ``latency_s`` (re-summed from the leg spans in
      canonical order — bit-identical to what the service reported,
      asserted via ``exact``), outcome, cache/batch flags, attributed
      engine cost and artifact key;
    * ``runs`` — one row per engine run: modeled time, riding request
      ids, and ``attribution_exact`` (the riders' shares re-summed in
      attribution order equal the run's modeled time bit-for-bit);
    * ``classes`` — the "cost by query class" table: per algorithm,
      request/hit/fused counts, attributed engine cost and its share,
      and latency quantiles;
    * ``totals`` — request counts, total attributed cost vs total run
      cost, and whether every exactness check passed.
    """
    legs_by_parent: Dict[Any, Dict[str, Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    runs: List[Dict[str, Any]] = []
    for s in trace.spans:
        if s.get("cat") != SERVE_CATEGORY:
            continue
        name = s.get("name")
        if name == "serve.request":
            roots.append(s)
        elif name in LEG_NAMES:
            legs_by_parent.setdefault(s.get("parent"), {})[name] = s
        elif name == "serve.engine-run":
            runs.append(s)

    requests: List[Dict[str, Any]] = []
    for root in sorted(
        roots, key=lambda s: (s.get("attrs") or {}).get("request_id", 0)
    ):
        attrs = root.get("attrs") or {}
        legs = legs_by_parent.get(root.get("id"), {})
        total = 0.0
        widths: Dict[str, float] = {}
        for name in LEG_NAMES:
            leg = legs.get(name)
            w = float((leg.get("attrs") or {}).get("dur_s", 0.0)) if leg else 0.0
            widths[name] = w
            total = total + w
        reported = float(attrs.get("latency_s", 0.0))
        requests.append({
            "request_id": attrs.get("request_id"),
            "class": attrs.get("class", attrs.get("algorithm", "?")),
            "algorithm": attrs.get("algorithm", "?"),
            "sources": attrs.get("sources", []),
            "sources_served": attrs.get("sources_served", []),
            "outcome": attrs.get("outcome", "?"),
            "cached": bool(attrs.get("cached", False)),
            "batched": bool(attrs.get("batched", False)),
            "batch_id": attrs.get("batch_id"),
            "run_id": attrs.get("run_id"),
            "engine_cost_s": float(attrs.get("engine_cost_s", 0.0)),
            "cache_key": attrs.get("cache_key"),
            "queue_s": widths["serve.queue"],
            "batch_s": widths["serve.batch"],
            "run_s": widths["serve.run"],
            "serialize_s": widths["serve.serialize"],
            "latency_s": total,
            "reported_latency_s": reported,
            "exact": total == reported,
        })

    # per-run attribution conservation, re-summed in attribution order
    req_by_id = {r["request_id"]: r for r in requests}
    run_rows: List[Dict[str, Any]] = []
    total_run_cost = 0.0
    for run in sorted(
        runs, key=lambda s: (s.get("attrs") or {}).get("run_id", 0)
    ):
        attrs = run.get("attrs") or {}
        modeled = float(attrs.get("modeled_time_s", 0.0))
        member_ids = list(attrs.get("request_ids") or [])
        attributed = 0.0
        for rid in member_ids:
            row = req_by_id.get(rid)
            if row is not None:
                attributed = attributed + row["engine_cost_s"]
        total_run_cost += modeled
        run_rows.append({
            "run_id": attrs.get("run_id"),
            "batch_id": attrs.get("batch_id"),
            "algorithm": attrs.get("algorithm", "?"),
            "engine": attrs.get("engine"),
            "sources": attrs.get("sources", []),
            "request_ids": member_ids,
            "riders": len(member_ids),
            "modeled_time_s": modeled,
            "attributed_s": attributed,
            "attribution_exact": attributed == modeled,
            "host_s": float((attrs or {}).get("dur_s", 0.0)),
            "supersteps": attrs.get("supersteps"),
            "error": attrs.get("error"),
        })

    classes: Dict[str, Dict[str, Any]] = {}
    total_cost = 0.0
    for row in requests:
        cls = row["class"]
        c = classes.setdefault(cls, {
            "requests": 0, "cache_hits": 0, "fused": 0, "errors": 0,
            "engine_cost_s": 0.0, "latencies": [],
        })
        c["requests"] += 1
        c["cache_hits"] += 1 if row["cached"] else 0
        c["fused"] += 1 if row["batched"] else 0
        c["errors"] += 1 if row["outcome"] == "error" else 0
        c["engine_cost_s"] = c["engine_cost_s"] + row["engine_cost_s"]
        total_cost = total_cost + row["engine_cost_s"]
        if row["outcome"] == "ok":
            c["latencies"].append(row["latency_s"])
    class_rows: Dict[str, Dict[str, Any]] = {}
    for cls, c in sorted(classes.items()):
        lat = sorted(c.pop("latencies"))
        class_rows[cls] = {
            **c,
            "cost_share": (
                c["engine_cost_s"] / total_cost if total_cost > 0 else 0.0
            ),
            "latency_p50_s": _quantile(lat, 0.50),
            "latency_p95_s": _quantile(lat, 0.95),
            "latency_max_s": lat[-1] if lat else 0.0,
        }

    meta = trace.meta or {}
    return {
        "requests": requests,
        "runs": run_rows,
        "classes": class_rows,
        "totals": {
            "requests": len(requests),
            "cache_hits": sum(1 for r in requests if r["cached"]),
            "fused": sum(1 for r in requests if r["batched"]),
            "errors": sum(1 for r in requests if r["outcome"] == "error"),
            "cancelled": sum(
                1 for r in requests if r["outcome"] == "cancelled"
            ),
            "engine_runs": len(run_rows),
            "attributed_cost_s": total_cost,
            "run_cost_s": total_run_cost,
            "latency_exact": all(r["exact"] for r in requests),
            "attribution_exact": all(
                r["attribution_exact"] for r in run_rows
            ),
        },
        "service_stats": meta.get("service_stats") or {},
    }


def format_serve_analysis(
    analysis: Dict[str, Any], max_rows: int = 40
) -> str:
    """Render a serve analysis as the ``repro analyze --serve`` text."""
    from repro.bench.reporting import format_table

    t = analysis["totals"]
    lines: List[str] = []
    lines.append(
        f"serve trace — {t['requests']} requests, {t['engine_runs']} engine "
        f"runs, {t['cache_hits']} cache hits, {t['fused']} fused, "
        f"{t['errors']} errors, {t['cancelled']} cancelled"
    )

    reqs = analysis["requests"]
    shown = reqs if len(reqs) <= max_rows else reqs[:max_rows]
    rows = []
    for r in shown:
        how = "hit" if r["cached"] else ("fused" if r["batched"] else "run")
        if r["outcome"] != "ok":
            how = r["outcome"]
        rows.append([
            r["request_id"], r["class"],
            round(r["queue_s"] * 1e3, 3), round(r["batch_s"] * 1e3, 3),
            round(r["run_s"] * 1e3, 3), round(r["serialize_s"] * 1e3, 3),
            round(r["latency_s"] * 1e3, 3),
            round(r["engine_cost_s"] * 1e3, 3),
            how, "yes" if r["exact"] else "NO",
        ])
    if rows:
        title = "per-request waterfall (host ms; cost = modeled ms)"
        if len(reqs) > len(shown):
            title += f" — first {len(shown)} of {len(reqs)}"
        lines.append(format_table(
            ["req", "class", "queue", "batch", "run", "serialize",
             "latency", "cost", "how", "exact"],
            rows, title=title,
        ))

    run_rows = []
    for r in analysis["runs"][:max_rows]:
        run_rows.append([
            r["run_id"], r["algorithm"], r["riders"],
            round(r["modeled_time_s"] * 1e3, 3),
            round(r["attributed_s"] * 1e3, 3),
            "yes" if r["attribution_exact"] else "NO",
        ])
    if run_rows:
        lines.append(format_table(
            ["run", "algorithm", "riders", "modeled_ms", "attributed_ms",
             "exact"],
            run_rows, title="engine runs and cost attribution",
        ))

    cls_rows = []
    for cls, c in analysis["classes"].items():
        cls_rows.append([
            cls, c["requests"], c["cache_hits"], c["fused"],
            round(c["engine_cost_s"] * 1e3, 3),
            round(100.0 * c["cost_share"], 1),
            round(c["latency_p50_s"] * 1e3, 3),
            round(c["latency_p95_s"] * 1e3, 3),
        ])
    if cls_rows:
        lines.append(format_table(
            ["class", "requests", "hits", "fused", "cost_ms", "cost %",
             "p50_ms", "p95_ms"],
            cls_rows, title="cost by query class",
        ))

    checks = []
    checks.append(
        "latency reconstruction: "
        + ("exact for every request" if t["latency_exact"]
           else "MISMATCH (see 'exact' column)")
    )
    checks.append(
        "cost attribution: "
        + ("shares sum bit-exactly to each run's modeled time"
           if t["attribution_exact"] else "MISMATCH (see runs table)")
    )
    lines.append("\n".join(checks))
    return "\n\n".join(lines)
