"""repro.obs — structured tracing and metrics for every engine run.

The observability layer the paper's counter-driven evaluation implies:

* :mod:`repro.obs.tracer` — nested spans (superstep → phase →
  per-machine work) on both the host clock and the modeled cluster
  clock, fed by every :class:`~repro.cluster.stats.RunStats` charge;
* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram registry that
  ``RunStats`` is built on;
* :mod:`repro.obs.sinks` — in-memory (default), JSONL stream, and
  Chrome ``trace_event`` export (``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.report` — summarize a saved trace (``repro report``);
* :mod:`repro.obs.shards` — per-machine collectors buffering each
  machine's events during a superstep, merged deterministically into the
  tracer's single stream at barriers / coherency points;
* :mod:`repro.obs.critical_path` — critical-path / straggler analysis
  of a trace (``repro analyze``): per-superstep gating machine/channel,
  load imbalance vs the replication factor λ;
* :mod:`repro.obs.lens` — the coherency lens: replica-staleness and
  divergence probes plus the coherency-decision audit log for the lazy
  engines (opt-in via ``lens=True``);
* :mod:`repro.obs.audit` — :class:`LensAuditor` invariant checks over a
  finished trace (untracked charges, pending-mass leaks, final drift,
  ledger reconciliation);
* :mod:`repro.obs.dashboard` — offline single-file HTML run dashboard
  (``repro dashboard``);
* :mod:`repro.obs.request_trace` — request-scoped tracing for the
  serving layer: per-request ``serve.*`` spans joined to engine run
  spans in one merged trace, with bit-exact cost attribution
  (``repro analyze --serve``);
* :mod:`repro.obs.telemetry` — the service telemetry plane: a
  background ticker sampling queue depth / cache hit rate /
  sliding-window latency quantiles / worker-pool heartbeats into
  versioned JSONL (``repro top`` / ``repro slo``).
"""

from repro.obs.audit import Anomaly, LensAuditor
from repro.obs.chrome import chrome_trace_document
from repro.obs.critical_path import analyze_trace, format_analysis
from repro.obs.dashboard import render_dashboard
from repro.obs.lens import (
    NULL_LENS,
    CoherencyDecision,
    CoherencyLens,
    NullLens,
)
from repro.obs.metrics import (
    Counter,
    ExtraView,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.shards import MachineCollector, ProbeSample, ShardedObs
from repro.obs.report import (
    TraceData,
    format_report,
    load_trace,
    summarize_trace,
)
from repro.obs.sinks import (
    ChromeTraceSink,
    InMemorySink,
    JsonlSink,
    Sink,
    TRACE_FORMATS,
    export_trace,
)
from repro.obs.request_trace import (
    RequestContext,
    ServeTraceWriter,
    analyze_serve_trace,
    format_serve_analysis,
    is_serve_trace,
    split_cost,
)
from repro.obs.telemetry import (
    TelemetrySink,
    check_slo,
    format_top,
    is_telemetry_file,
    load_telemetry,
    summarize_telemetry,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ExtraView",
    "Sink",
    "InMemorySink",
    "JsonlSink",
    "ChromeTraceSink",
    "export_trace",
    "TRACE_FORMATS",
    "chrome_trace_document",
    "TraceData",
    "load_trace",
    "summarize_trace",
    "format_report",
    "analyze_trace",
    "format_analysis",
    "MachineCollector",
    "ShardedObs",
    "ProbeSample",
    "CoherencyLens",
    "CoherencyDecision",
    "NullLens",
    "NULL_LENS",
    "LensAuditor",
    "Anomaly",
    "render_dashboard",
    "RequestContext",
    "ServeTraceWriter",
    "split_cost",
    "analyze_serve_trace",
    "format_serve_analysis",
    "is_serve_trace",
    "TelemetrySink",
    "load_telemetry",
    "summarize_telemetry",
    "check_slo",
    "format_top",
    "is_telemetry_file",
]
