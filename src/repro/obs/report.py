"""Load a saved trace (JSONL or Chrome format) and summarize the run.

``repro report TRACE`` prints what the paper's figures are made of, for
one run, straight from its trace file:

* the per-phase modeled-time breakdown (gather/apply/scatter for the
  eager engines; local-computation/coherency for the lazy ones), whose
  total reproduces ``RunStats.modeled_time_s``;
* the sync/traffic totals behind Figs 10–11;
* the interval-rule decision log (``turnOnLazy`` outcomes and the comm
  mode chosen at each coherency exchange).

Both on-disk formats round-trip losslessly enough for this: the JSONL
format is the tracer's native record stream; the Chrome format keeps
phase durations as ``"X"`` event ``dur`` fields and the RunStats dump in
``otherData``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = [
    "TraceData",
    "load_trace",
    "trace_from_tracer",
    "summarize_trace",
    "format_report",
]

_US = 1e6


@dataclass
class TraceData:
    """Normalized in-memory view of a saved trace."""

    spans: List[Dict[str, Any]] = field(default_factory=list)
    instants: List[Dict[str, Any]] = field(default_factory=list)
    counters: List[Dict[str, Any]] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def stats(self) -> Dict[str, Any]:
        return self.meta.get("stats", {})

    def phase_spans(self) -> List[Dict[str, Any]]:
        return [s for s in self.spans if s.get("cat") == "phase"]


def _load_jsonl(lines: List[str]) -> TraceData:
    trace = TraceData()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        rtype = record.get("type")
        if rtype == "span":
            trace.spans.append(record)
        elif rtype == "instant":
            trace.instants.append(record)
        elif rtype == "counter":
            trace.counters.append(record)
        elif rtype == "run_meta":
            trace.meta.update(record.get("meta") or {})
        # trace_header / unknown types: ignored (forward compatibility)
    return trace


def _load_chrome(doc: Dict[str, Any]) -> TraceData:
    trace = TraceData()
    trace.meta.update(doc.get("otherData") or {})
    for event in doc.get("traceEvents", []):
        ph = event.get("ph")
        if ph == "X":
            args = dict(event.get("args") or {})
            charges = {}
            for key in list(args):
                if key.startswith("charge_") and key.endswith("_s"):
                    charges[key[len("charge_"):-2]] = args.pop(key)
            t0 = event.get("ts", 0.0) / _US
            t1 = t0 + event.get("dur", 0.0) / _US
            span = {
                "type": "span",
                "name": event.get("name"),
                "cat": event.get("cat"),
                "charges": charges,
                "attrs": args,
            }
            if event.get("cat") == "machine":
                span.update(host_t0=t0, host_t1=t1, model_t0=0.0, model_t1=0.0)
            else:
                span.update(model_t0=t0, model_t1=t1)
            trace.spans.append(span)
        elif ph == "i":
            trace.instants.append({
                "type": "instant",
                "name": event.get("name"),
                "model_t": event.get("ts", 0.0) / _US,
                "attrs": dict(event.get("args") or {}),
            })
        elif ph == "C":
            trace.counters.append({
                "type": "counter",
                "name": event.get("name"),
                "model_t": event.get("ts", 0.0) / _US,
                "value": (event.get("args") or {}).get("value", 0.0),
            })
    return trace


def load_trace(path: str) -> TraceData:
    """Read a trace file, auto-detecting JSONL vs Chrome JSON."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path}: empty trace file")
    if stripped.startswith("{") and '"traceEvents"' in stripped[:4096]:
        return _load_chrome(json.loads(text))
    return _load_jsonl(text.splitlines())


def trace_from_tracer(tracer) -> TraceData:
    """Normalize a finished in-memory :class:`Tracer` into a TraceData.

    The same view ``load_trace`` produces from a JSONL file — the
    round-trip tests assert the two agree — so reports, audits and
    dashboards run identically on live runs and saved traces.
    """
    trace = TraceData()
    for record in tracer.records:
        rtype = record.get("type")
        if rtype == "span":
            trace.spans.append(record)
        elif rtype == "instant":
            trace.instants.append(record)
        elif rtype == "counter":
            trace.counters.append(record)
        elif rtype == "run_meta":
            trace.meta.update(record.get("meta") or {})
    if not trace.meta:
        trace.meta.update(tracer.meta)
    return trace


# ----------------------------------------------------------------------
def summarize_trace(trace: TraceData) -> Dict[str, Any]:
    """Aggregate a trace into the report's tables.

    Returns a dict with ``phases`` (ordered per-phase rows), ``totals``
    (the RunStats dump), ``decisions`` (interval-rule log summary) and
    ``modes`` (coherency-exchange wire-protocol counts).
    """
    phases: Dict[str, Dict[str, float]] = {}
    order: List[str] = []
    for span in trace.phase_spans():
        name = span["name"]
        if name not in phases:
            phases[name] = {
                "count": 0, "model_s": 0.0,
                "compute_s": 0.0, "comm_s": 0.0, "sync_s": 0.0,
            }
            order.append(name)
        row = phases[name]
        row["count"] += 1
        row["model_s"] += span["model_t1"] - span["model_t0"]
        for kind, seconds in (span.get("charges") or {}).items():
            row[f"{kind}_s"] = row.get(f"{kind}_s", 0.0) + seconds
    untracked = trace.meta.get("untracked_charges") or {}
    if untracked:
        phases["(untracked)"] = {
            "count": 0,
            "model_s": sum(untracked.values()),
            "compute_s": untracked.get("compute", 0.0),
            "comm_s": untracked.get("comm", 0.0),
            "sync_s": untracked.get("sync", 0.0),
        }
        order.append("(untracked)")
    total_phase_s = sum(row["model_s"] for row in phases.values())

    # histogram distributions (p50/p95/p99 ride in Histogram.export())
    distributions: List[Dict[str, Any]] = []
    for name in sorted(trace.stats.get("metrics") or {}):
        export = (trace.stats.get("metrics") or {}).get(name)
        if not isinstance(export, dict) or "p50" not in export:
            continue  # gauges/counters have no quantiles
        distributions.append({
            "name": name,
            "count": export.get("count", 0),
            "mean": export.get("mean", 0.0),
            "p50": export.get("p50", 0.0),
            "p95": export.get("p95", 0.0),
            "p99": export.get("p99", 0.0),
            "max": export.get("max", 0.0),
        })

    # straggler / gating digest (full detail: ``repro analyze``)
    from repro.obs.critical_path import analyze_trace

    analysis = analyze_trace(trace)
    gating: Dict[str, Any] = {}
    stragglers = analysis.get("stragglers") or {}
    if analysis["supersteps"]:
        md = analysis.get("machines_detail") or {}
        gating = {
            "channels": analysis.get("gated_channels") or {},
            "machines": {
                m: count
                for m, count in enumerate(md.get("gated_supersteps") or [])
                if count
            },
            "straggler": stragglers.get("machine"),
            "imbalance": stragglers.get("imbalance"),
            "replication_factor": stragglers.get("replication_factor"),
        }

    decisions = [
        i for i in trace.instants if i.get("name") == "interval-decision"
    ]
    lazy_on = sum(1 for d in decisions if (d.get("attrs") or {}).get("do_local"))
    modes: Dict[str, int] = {}
    for i in trace.instants:
        if i.get("name") == "coherency-exchange":
            mode = (i.get("attrs") or {}).get("mode", "?")
            modes[mode] = modes.get(mode, 0) + 1

    return {
        "engine": trace.meta.get("engine", "?"),
        "algorithm": trace.meta.get("algorithm", "?"),
        "phases": [{"name": n, **phases[n]} for n in order],
        "total_phase_s": total_phase_s,
        "totals": trace.stats,
        "distributions": distributions,
        "decisions": {
            "total": len(decisions),
            "lazy_on": lazy_on,
            "lazy_off": len(decisions) - lazy_on,
        },
        "modes": modes,
        "gating": gating,
        # present when the trace came from a GraphService (serve
        # --trace-out): the closing serve.* counter/histogram export
        "service": trace.meta.get("service_stats") or {},
    }


def format_report(summary: Dict[str, Any]) -> str:
    """Render a summary as the plain-text report the CLI prints."""
    from repro.bench.reporting import format_table

    lines: List[str] = []
    lines.append(
        f"trace report — {summary['engine']}/{summary['algorithm']}"
    )
    total = summary["total_phase_s"]
    rows = []
    for row in summary["phases"]:
        share = 100.0 * row["model_s"] / total if total > 0 else 0.0
        rows.append([
            row["name"], int(row["count"]), round(row["model_s"], 6),
            round(share, 1), round(row.get("compute_s", 0.0), 6),
            round(row.get("comm_s", 0.0), 6), round(row.get("sync_s", 0.0), 6),
        ])
    rows.append(["total", "", round(total, 6), 100.0 if total > 0 else 0.0,
                 "", "", ""])
    lines.append(format_table(
        ["phase", "count", "model_s", "%", "compute_s", "comm_s", "sync_s"],
        rows, title="per-phase modeled time",
    ))

    stats = summary["totals"]
    if stats:
        total_rows = []
        for key, label in (
            ("modeled_time_s", "modeled time (s)"),
            ("global_syncs", "global syncs"),
            ("comm_bytes", "traffic (bytes)"),
            ("comm_messages", "messages"),
            ("comm_rounds", "comm rounds"),
            ("supersteps", "supersteps"),
            ("coherency_points", "coherency points"),
            ("local_iterations", "local iterations"),
            ("edge_traversals", "edge traversals"),
            ("vertex_updates", "vertex updates"),
            ("converged", "converged"),
        ):
            if key in stats:
                value = stats[key]
                if isinstance(value, float):
                    value = round(value, 6)
                total_rows.append([label, value])
        lines.append(format_table(
            ["metric", "value"], total_rows, title="run totals (RunStats)",
        ))

    distributions = summary.get("distributions") or []
    if distributions:
        dist_rows = []
        for d in distributions:
            dist_rows.append([
                d["name"], int(d["count"]), round(float(d["mean"]), 4),
                round(float(d["p50"]), 4), round(float(d["p95"]), 4),
                round(float(d["p99"]), 4), round(float(d["max"]), 4),
            ])
        lines.append(format_table(
            ["metric", "count", "mean", "p50", "p95", "p99", "max"],
            dist_rows,
            title="distributions (staleness / exchange mass quantiles)",
        ))

    decisions = summary["decisions"]
    if decisions["total"]:
        lines.append(
            f"interval rule: {decisions['total']} decisions — "
            f"lazy on {decisions['lazy_on']}, off {decisions['lazy_off']}"
        )
    if summary["modes"]:
        mode_text = ", ".join(
            f"{mode}×{count}" for mode, count in sorted(summary["modes"].items())
        )
        lines.append(f"coherency exchanges by mode: {mode_text}")

    service = summary.get("service") or {}
    if service:
        srv_rows = []
        for key in sorted(service):
            value = service[key]
            if isinstance(value, dict):
                continue  # histograms render below
            shown = round(value, 3) if isinstance(value, float) else value
            srv_rows.append([key, shown])
        lines.append(format_table(
            ["counter", "value"], srv_rows,
            title="service (serve.* counters at close)",
        ))
        latency = service.get("serve.latency_s")
        if isinstance(latency, dict) and latency.get("count"):
            lat_rows = [
                [k, round(float(latency[k]) * 1e3, 3)]
                for k in ("p50", "p95", "p99", "mean", "min", "max")
                if k in latency
            ]
            lat_rows.append(["count", int(latency.get("count", 0))])
            lines.append(format_table(
                ["quantile", "ms"], lat_rows, title="service latency",
            ))

    gating = summary.get("gating") or {}
    if gating:
        parts = []
        if gating.get("machines"):
            parts.append("machines " + ", ".join(
                f"{m}×{c}" for m, c in sorted(gating["machines"].items())
            ))
        if gating.get("channels"):
            parts.append("channels " + ", ".join(
                f"{ch}×{c}" for ch, c in sorted(gating["channels"].items())
            ))
        line = "supersteps gated by: " + "; ".join(parts)
        imb = gating.get("imbalance")
        if imb is not None and gating.get("straggler") is not None:
            line += (
                f"\nstraggler machine {gating['straggler']} — busy imbalance "
                f"max/mean = {imb:.3f} (details: repro analyze)"
            )
        lines.append(line)
    return "\n\n".join(lines)
