"""LensAuditor: invariant checks over a finished run's trace.

The coherency lens (:mod:`repro.obs.lens`) records what the lazy
runtime *believes* about replica coherency; the auditor cross-checks
those beliefs against the run's independent ledgers and flags every
contradiction as an :class:`Anomaly`:

* ``untracked-charges`` — the tracer observed model-time charges while
  no span was open (``meta["untracked_charges"]``): the span tree no
  longer tiles the run, so per-phase breakdowns are silently short;
* ``pending-after-exchange`` — a coherency exchange left non-zero
  pending deltaMsg mass in the scope it was responsible for clearing
  (full exchange: everything; partial: the due replicas);
* ``final-drift`` — master and mirror values still disagree after the
  final superstep of a converged run;
* ``decision-mismatch`` — the audit log's ``kind="coherency"`` decision
  count differs from ``RunStats.coherency_points`` (some exchange was
  counted but never audited, or vice versa);
* ``ledger-mismatch`` — the per-channel ``comms.*`` ledgers do not sum
  back to the RunStats traffic/sync totals (a byte moved outside the
  exchange plane).

The auditor is pure trace analysis — it runs identically on a live
:class:`~repro.obs.tracer.Tracer` (via
:func:`~repro.obs.report.trace_from_tracer`) and on a loaded trace
file, and never needs the engine objects. ``repro report --strict``
exits non-zero when any critical anomaly is found.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.obs.report import TraceData, trace_from_tracer

__all__ = ["Anomaly", "LensAuditor"]

#: Ledger counters cross-checked against their RunStats totals.
_LEDGER_KEYS = (
    ("bytes", "comm_bytes"),
    ("messages", "comm_messages"),
    ("rounds", "comm_rounds"),
    ("syncs", "global_syncs"),
)


@dataclass(frozen=True)
class Anomaly:
    """One flagged inconsistency between the lens and the run's ledgers."""

    code: str
    severity: str  # "warning" | "critical"
    message: str
    context: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


class LensAuditor:
    """Run the invariant checks over one finished trace."""

    def __init__(self, trace: TraceData, atol: float = 1e-9) -> None:
        self.trace = trace
        self.atol = atol

    @classmethod
    def from_tracer(cls, tracer, atol: float = 1e-9) -> "LensAuditor":
        """Audit a live (finished) tracer without a file round-trip."""
        return cls(trace_from_tracer(tracer), atol=atol)

    # ------------------------------------------------------------------
    def audit(self) -> List[Anomaly]:
        """All anomalies, criticals first (empty list = clean run)."""
        found: List[Anomaly] = []
        found += self._check_untracked()
        found += self._check_exchanges()
        found += self._check_final_drift()
        found += self._check_decision_count()
        found += self._check_ledgers()
        found.sort(key=lambda a: (a.severity != "critical", a.code))
        return found

    # ------------------------------------------------------------------
    def _instants(self, name: str) -> List[Dict[str, Any]]:
        return [i for i in self.trace.instants if i.get("name") == name]

    def _check_untracked(self) -> List[Anomaly]:
        untracked = self.trace.meta.get("untracked_charges") or {}
        total = sum(untracked.values())
        if total <= 0:
            return []
        return [Anomaly(
            "untracked-charges",
            "warning",
            f"{total:.6f}s of model-time charges landed outside every "
            f"span; per-phase breakdowns are incomplete",
            {"untracked": dict(untracked)},
        )]

    def _check_exchanges(self) -> List[Anomaly]:
        out: List[Anomaly] = []
        for inst in self._instants("lens-exchange"):
            attrs = inst.get("attrs") or {}
            mass = float(attrs.get("mass_after", 0.0))
            pending = int(attrs.get("pending_after", 0))
            if mass > self.atol or pending > 0:
                out.append(Anomaly(
                    "pending-after-exchange",
                    "critical",
                    f"coherency exchange at superstep "
                    f"{attrs.get('superstep', '?')} left {pending} due "
                    f"replica(s) pending (mass {mass:g})",
                    dict(attrs),
                ))
        return out

    def _check_final_drift(self) -> List[Anomaly]:
        finals = self._instants("lens-final")
        if not finals:
            return []
        attrs = finals[-1].get("attrs") or {}
        drift = float(attrs.get("drift", 0.0))
        converged = bool(attrs.get("converged", False))
        if not converged or drift <= self.atol:
            return []
        return [Anomaly(
            "final-drift",
            "critical",
            f"replicas still disagree by {drift:g} after the final "
            f"superstep of a converged run",
            dict(attrs),
        )]

    def _check_decision_count(self) -> List[Anomaly]:
        if not self._instants("lens-final"):
            return []  # lens was off: no audit log to reconcile
        decided = sum(
            1
            for i in self._instants("coherency-decision")
            if (i.get("attrs") or {}).get("kind") == "coherency"
        )
        counted = self.trace.stats.get("coherency_points")
        if counted is None or decided == counted:
            return []
        return [Anomaly(
            "decision-mismatch",
            "critical",
            f"audit log holds {decided} coherency decisions but RunStats "
            f"counted {counted} coherency points",
            {"decisions": decided, "coherency_points": counted},
        )]

    def _check_ledgers(self) -> List[Anomaly]:
        stats = self.trace.stats
        extra = stats.get("extra") or {}
        sums: Dict[str, float] = {key: 0.0 for key, _ in _LEDGER_KEYS}
        seen = False
        for name, value in extra.items():
            if not name.startswith("comms."):
                continue
            counter = name.rsplit(".", 1)[-1]
            if counter in sums:
                seen = True
                sums[counter] += value
        if not seen:
            return []  # pre-exchange-plane trace: nothing to reconcile
        out: List[Anomaly] = []
        for counter, stat_key in _LEDGER_KEYS:
            expected = stats.get(stat_key)
            if expected is None:
                continue
            if abs(sums[counter] - expected) > self.atol:
                out.append(Anomaly(
                    "ledger-mismatch",
                    "critical",
                    f"per-channel {counter} sum to {sums[counter]:g} but "
                    f"RunStats.{stat_key} is {expected:g}: traffic moved "
                    f"outside the exchange plane",
                    {
                        "counter": counter,
                        "channels_total": sums[counter],
                        "stats_total": expected,
                    },
                ))
        return out
