"""Typed metrics primitives: Counter, Gauge, Histogram, and a registry.

The paper's evaluation is counter-driven — speedups (Fig 9) are
*explained* by global-sync counts (Fig 10) and communication traffic
(Fig 11) — so measurements deserve first-class types instead of ad-hoc
dict writes. :class:`~repro.cluster.stats.RunStats` owns a
:class:`MetricsRegistry`; its free-form ``extra`` annotations are backed
by registry counters (``extra.<name>``), and engines/benches may
register their own instruments under any dotted namespace.

Semantics follow the Prometheus conventions the production north-star
will eventually export to:

* :class:`Counter` — monotone accumulate (``inc``); direct assignment is
  allowed only through the ``extra`` compatibility view;
* :class:`Gauge` — last-write-wins sample (``set``);
* :class:`Histogram` — streaming distribution summary (count/sum/min/
  max) plus fixed-boundary bucket counts.
"""

from __future__ import annotations

import math
from collections.abc import MutableMapping
from typing import Dict, Iterator, List, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "RestoredSummary",
    "MetricsRegistry",
    "ExtraView",
]


class Metric:
    """Common name/description plumbing for all instrument kinds."""

    kind = "metric"

    def __init__(self, name: str, description: str = "") -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.description = description

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}({self.name}={self.export()!r})"

    def export(self) -> Union[float, Dict[str, float]]:
        raise NotImplementedError


class Counter(Metric):
    """Monotonically-increasing accumulator."""

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> float:
        """Add ``amount`` (must be >= 0); returns the new value."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount
        return self.value

    def _set(self, value: float) -> None:
        """Direct assignment — only for the ``extra`` dict-compat view."""
        self.value = float(value)

    def export(self) -> float:
        return self.value


class Gauge(Metric):
    """Point-in-time sample; ``set`` overwrites."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self.value: float = 0.0

    def set(self, value: float) -> float:
        self.value = float(value)
        return self.value

    def export(self) -> float:
        return self.value


class Histogram(Metric):
    """Streaming distribution: count/sum/min/max + optional buckets.

    ``buckets`` are upper boundaries (a final +inf bucket is implicit).
    ``observe`` is O(len(buckets)) with no stored samples, so it is safe
    on hot paths (per-superstep, per-exchange).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, description)
        bounds = sorted(buckets) if buckets else []
        self.bounds: List[float] = [float(b) for b in bounds]
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``value`` seen ``count`` times (weighted observation).

        The weighted form keeps batch recording O(distinct values): the
        coherency lens folds thousands of identical per-replica
        staleness ages into one call per distinct age.
        """
        if count < 1:
            raise ValueError(
                f"histogram {self.name!r}: observation count must be >= 1"
            )
        value = float(value)
        self.count += count
        self.sum += value * count
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += count
                return
        self.bucket_counts[-1] += count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 <= q <= 1) from the bucket counts.

        Prometheus-style linear interpolation inside the target bucket,
        with the observed ``min``/``max`` tightening the open-ended
        first/last buckets (so estimates never leave the observed
        range). Bucketless histograms degrade to interpolating between
        ``min`` and ``max`` — only the endpoints are exact there.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if not self.bounds:
            if not (math.isfinite(self.min) and math.isfinite(self.max)):
                # ±inf endpoint: inf − inf would poison the interpolation
                return self.min if q < 0.5 else self.max
            return self.min + q * (self.max - self.min)
        target = q * self.count
        cum = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if cum + n >= target:
                lower = self.bounds[i - 1] if i > 0 else self.min
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                if upper <= lower:
                    return lower
                # non-finite endpoints (±inf observations, or a single
                # count in an open-ended bucket) make the interpolation
                # NaN (inf − inf) — clamp to the finite side instead
                if not math.isfinite(lower):
                    return upper
                if not math.isfinite(upper):
                    return lower
                frac = (target - cum) / n
                return lower + frac * (upper - lower)
            cum += n
        return self.max

    def export(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }
        for bound, n in zip(self.bounds + [math.inf], self.bucket_counts):
            out[f"le_{bound:g}"] = float(n)
        return out


class RestoredSummary(Metric):
    """A deserialized histogram: the exported summary dict, verbatim.

    Histograms export a lossy summary (count/sum/quantile estimates and
    bucket tallies — not the raw observations), so a histogram restored
    from an export cannot accept new observations. Storing the exported
    dict as-is instead makes the round trip *exactly* stable:
    ``export() == the dict it was restored from``, including the
    ``le_*`` bucket keys, which is the property result serialization
    (:meth:`repro.runtime.result.EngineResult.to_dict`) relies on.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        summary: Optional[Dict[str, float]] = None,
    ) -> None:
        super().__init__(name, description)
        self.summary: Dict[str, float] = dict(summary or {})

    def export(self) -> Dict[str, float]:
        return dict(self.summary)


class MetricsRegistry:
    """Get-or-create home for named instruments.

    Re-requesting a name returns the same instrument; requesting it as a
    different kind raises — a registry name means one thing for the whole
    run.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, description: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        metric = cls(name, description, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, description, buckets=buckets)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def export(self) -> Dict[str, Union[float, Dict[str, float]]]:
        """All instruments as plain JSON-serializable values."""
        return {name: m.export() for name, m in sorted(self._metrics.items())}

    @classmethod
    def from_export(
        cls, exported: Dict[str, Union[float, Dict[str, float]]]
    ) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`export` output.

        The export format erases the Counter/Gauge distinction (both
        export a bare float), so scalars come back as Counters — which
        keeps the ``extra.*`` :class:`ExtraView` working — and summary
        dicts come back as :class:`RestoredSummary` snapshots. A
        restored registry is a read-only snapshot in spirit: it exports
        exactly what went in, but histogram instruments cannot record
        further observations.
        """
        reg = cls()
        for name, value in exported.items():
            if isinstance(value, dict):
                reg._metrics[name] = RestoredSummary(name, summary=value)
            else:
                counter = Counter(name)
                counter._set(float(value))
                reg._metrics[name] = counter
        return reg


class ExtraView(MutableMapping):
    """Dict-compatible facade over a registry's ``extra.*`` counters.

    Preserves the historical ``RunStats.extra`` API (``stats.extra["x"]``
    reads/writes) while the values actually live in the registry, where
    sinks and reports can see them uniformly.
    """

    PREFIX = "extra."

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry

    def _counter(self, key: str) -> Counter:
        return self._registry.counter(self.PREFIX + key)

    def __getitem__(self, key: str) -> float:
        metric = self._registry.get(self.PREFIX + key)
        if metric is None:
            raise KeyError(key)
        return metric.export()

    def __setitem__(self, key: str, value: float) -> None:
        self._counter(key)._set(value)

    def __delitem__(self, key: str) -> None:
        if self._registry.get(self.PREFIX + key) is None:
            raise KeyError(key)
        del self._registry._metrics[self.PREFIX + key]

    def __iter__(self) -> Iterator[str]:
        plen = len(self.PREFIX)
        return (
            name[plen:]
            for name in self._registry.names()
            if name.startswith(self.PREFIX)
        )

    def __len__(self) -> int:
        return sum(1 for _ in iter(self))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ExtraView({dict(self)!r})"
