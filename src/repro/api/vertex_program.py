"""Push-style delta vertex programs and their message algebras.

Why an algebra object
---------------------
The paper's correctness argument (§3.5) rests on the user ``Sum`` (⊕)
being a commutative, associative combiner: replicas may then fold the
same message multiset in any order/grouping and agree at coherency
points. :class:`DeltaAlgebra` captures ⊕ together with the two extra
facts the runtime exploits:

* ``inverse`` — when ⊕ has an inverse (sums), the mirrors-to-master
  exchange can send one combined delta and let each replica subtract its
  own contribution (the paper's ``Inverse`` function);
* ``idempotent`` — when ⊕ is idempotent (min/max), re-applying a
  replica's own delta is harmless, so mirrors-to-master needs no
  inverse at all.

Why the engines — not the programs — own the message buffers
------------------------------------------------------------
A program only sees ``(local vertex indices, combined accum)`` in
:meth:`DeltaProgram.apply` and produces per-vertex out-deltas. All
accumulation (``message[v]``), coherency bookkeeping (``deltaMsg[v]``)
and activation scheduling live in the engines, which is exactly the
paper's split between user API functions and runtime graph operators
(§3.2).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import AlgorithmError
from repro.kernels.segment_reduce import scatter_reduce
from repro.partition.partitioned_graph import MachineGraph

__all__ = [
    "DeltaAlgebra",
    "DeltaProgram",
    "SUM_ALGEBRA",
    "MIN_ALGEBRA",
    "MAX_ALGEBRA",
]


@dataclass(frozen=True)
class DeltaAlgebra:
    """A commutative monoid over float64 deltas (the user ``Sum``).

    Attributes
    ----------
    name:
        Human-readable label.
    ufunc:
        The binary combiner as a NumPy ufunc (``np.add``/``np.minimum``…).
        Must be commutative and associative.
    identity:
        ⊕-identity (0 for add, +inf for min, −inf for max).
    inverse_ufunc:
        Ufunc with ``inverse(combine(a, b), b) == a``, or ``None``.
    idempotent:
        ``combine(a, a) == a`` for all a.
    magnitude_fn:
        Optional monoid-appropriate mass measure over a *batch* of
        pending deltas (1-D float64 array → scalar). Used by the
        coherency lens (:mod:`repro.obs.lens`) to quantify how much
        un-exchanged information replicas are sitting on. ``None``
        falls back to counting the entries that differ from the
        identity, which is sound for every monoid (an identity delta
        carries no information).
    """

    name: str
    ufunc: np.ufunc
    identity: float
    inverse_ufunc: Optional[np.ufunc] = None
    idempotent: bool = False
    magnitude_fn: Optional[Callable[[np.ndarray], float]] = None

    def combine(self, a, b):
        """Vectorized ⊕."""
        return self.ufunc(a, b)

    def combine_at(self, buf: np.ndarray, idx: np.ndarray, values) -> None:
        """Scatter-accumulate: ``buf[idx] ⊕= values`` with repeats folded.

        Dispatches to the monoid-specialized kernel layer
        (:mod:`repro.kernels`); bit-identical to ``ufunc.at``.
        """
        scatter_reduce(self, buf, idx, values)

    def inverse(self, total, own):
        """Remove ``own`` from ``total`` (requires an inverse)."""
        if self.inverse_ufunc is None:
            raise AlgorithmError(
                f"algebra {self.name!r} has no inverse; use the idempotent path"
            )
        return self.inverse_ufunc(total, own)

    def magnitude(self, values) -> float:
        """Mass of a batch of pending deltas (0.0 ⇔ empty batch).

        Sum-like algebras measure total absolute delta (how much value
        is still in flight); idempotent min/max algebras count entries
        carrying information (values differing from the identity).
        """
        v = np.asarray(values, dtype=np.float64)
        if v.size == 0:
            return 0.0
        if self.magnitude_fn is not None:
            return float(self.magnitude_fn(v))
        return float(np.count_nonzero(v != self.identity))

    @property
    def supports_mirrors_to_master(self) -> bool:
        """m2m delta exchange is sound iff invertible or idempotent."""
        return self.idempotent or self.inverse_ufunc is not None


def _abs_sum(v) -> float:
    # module-level (not a lambda) so SUM_ALGEBRA stays picklable for
    # spawn-based execution backends
    return float(np.abs(v).sum())


SUM_ALGEBRA = DeltaAlgebra(
    "sum", np.add, 0.0, inverse_ufunc=np.subtract, idempotent=False,
    magnitude_fn=_abs_sum,
)
MIN_ALGEBRA = DeltaAlgebra("min", np.minimum, np.inf, idempotent=True)
MAX_ALGEBRA = DeltaAlgebra("max", np.maximum, -np.inf, idempotent=True)


class DeltaProgram(abc.ABC):
    """A push-style delta vertex program (GatherMsg/Sum/Inverse/Apply/Scatter).

    Subclasses implement the four hooks below with *vectorized* NumPy
    operations over one machine's local arrays; the engines drive them
    identically whether coherency is eager or lazy.

    Class attributes
    ----------------
    name:
        Algorithm name (used in reports).
    algebra:
        The message :class:`DeltaAlgebra` (the user ``Sum``/``Inverse``).
    delta_bytes:
        Wire size of one delta message (for traffic accounting).
    requires_symmetric:
        Program semantics assume an undirected graph (CC, k-core); the
        harness symmetrizes inputs for such programs.
    needs_weights:
        Program reads edge weights (SSSP).
    supports_warm_start:
        The program's fixpoint can seed an incremental re-run after a
        graph mutation (:mod:`repro.runtime.warm_start`). Requires the
        whole algorithm state to live in per-vertex arrays that the
        warm planners understand (monotone value for idempotent
        algebras; value + unfired ``pending`` residual for invertible
        ones). Off by default — opt in per program.
    """

    name: str = "abstract"
    algebra: DeltaAlgebra = SUM_ALGEBRA
    delta_bytes: int = 16
    requires_symmetric: bool = False
    needs_weights: bool = False
    supports_warm_start: bool = False

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def make_state(self, mg: MachineGraph) -> Dict[str, np.ndarray]:
        """Allocate this machine's algorithm state (paper ``initData``).

        Called once per machine. Must depend only on the machine's local
        view plus global per-vertex facts already on ``mg`` (global
        degrees, replica counts), so that every replica of a vertex
        initializes identically.
        """

    @abc.abstractmethod
    def initial_scatter(
        self, mg: MachineGraph, state: Dict[str, np.ndarray]
    ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        """Initial activation (paper ``initMsg``).

        Returns ``(init_delta, active)``:

        * ``init_delta`` — per-local-vertex out-delta to scatter along
          local out-edges before the first superstep, or ``None`` when
          the initial activation carries no message (vertices then enter
          the first apply with the algebra identity as accum, e.g.
          k-core's bootstrap round);
        * ``active`` — boolean mask over local vertices to activate.
        """

    @abc.abstractmethod
    def apply(
        self,
        mg: MachineGraph,
        state: Dict[str, np.ndarray],
        idx: np.ndarray,
        accum: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Paper ``Apply``: fold ``accum`` into the vertices ``idx``.

        Must update ``state`` in place and return ``(delta_out, fire)``,
        both aligned with ``idx``: ``delta_out[k]`` is the new out-delta
        of vertex ``idx[k]`` and ``fire[k]`` says whether it scatters.
        The update must satisfy the iterative-equation contract: the
        final state depends only on the multiset of accums folded in,
        not on their grouping or order.
        """

    @abc.abstractmethod
    def edge_message(
        self,
        mg: MachineGraph,
        edge_sel: np.ndarray,
        delta_per_edge: np.ndarray,
    ) -> np.ndarray:
        """Paper ``Scatter``'s per-edge transform.

        ``edge_sel`` are local edge indices being scattered;
        ``delta_per_edge`` is each edge's source out-delta. Returns the
        message value deposited at each edge's target (e.g. PageRank
        divides by the source's global out-degree; SSSP adds the edge
        weight).
        """

    def edge_transform(
        self, mg: MachineGraph
    ) -> Optional[Tuple[str, Optional[np.ndarray]]]:
        """Declarative form of :meth:`edge_message` for kernel fusion.

        When the per-edge transform is a fixed elementwise op against a
        per-edge operand that does not change over the run, returning
        ``(op, operand)`` lets the runtime hoist the operand into the
        machine's cached CSR plan (in sorted edge order) and fuse the
        transform into the sweep, skipping :meth:`edge_message`'s
        per-call edge gathers. Supported ops:

        * ``("identity", None)`` — message is the delta unchanged;
        * ``("add", x)`` — ``delta + x`` (scalar or per-local-edge array);
        * ``("divide", x)`` — ``delta / x`` (scalar or per-local-edge
          array).

        The contract is **bit-identity**: for every edge selection ``e``
        and payload ``d``, ``edge_message(mg, e, d)`` must equal the
        declared op applied with ``operand[e]``, bit for bit (the ops
        are evaluated with the same ufunc either way). Return ``None``
        (the default) to keep the general ``edge_message`` path.
        """
        return None

    def initial_messages(
        self, mg: MachineGraph, state: Dict[str, np.ndarray]
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Pre-staged inbox messages folded in at bootstrap (default: none).

        Returns ``None`` (no injections) or ``(idx, accum)``: local
        vertex indices and accum-level values ⊕-folded straight into the
        inbox (``message[idx] ⊕= accum``) before the first superstep, as
        if delivered by edges that already fired. The warm-start adapter
        (:mod:`repro.runtime.warm_start`) uses this to seed correction
        deltas after a graph mutation.

        Injections must be **replica-consistent**: every machine hosting
        a replica of a vertex must inject the same combined value (the
        hook sees only local state, so derive injections from global
        facts). They are deliberately *not* folded into ``deltaMsg`` —
        each replica already holds the value, so forwarding it at a
        coherency point would double-count.
        """
        return None

    # ------------------------------------------------------------------
    def values(
        self, mg: MachineGraph, state: Dict[str, np.ndarray]
    ) -> np.ndarray:
        """Per-local-vertex result values (default: ``state['vdata']``)."""
        return state["vdata"]

    def validate(self) -> None:
        """Sanity-check the program definition (raises AlgorithmError)."""
        if self.delta_bytes <= 0:
            raise AlgorithmError(f"{self.name}: delta_bytes must be positive")
        if not isinstance(self.algebra, DeltaAlgebra):
            raise AlgorithmError(f"{self.name}: algebra must be a DeltaAlgebra")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<DeltaProgram {self.name} algebra={self.algebra.name}>"
