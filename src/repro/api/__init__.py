"""Public vertex-program abstractions (paper §3.1).

LazyGraph keeps the GAS programming interface but requires *push-style
delta programs*: the vertex value evolves as
``x_i^(t+1) = x_i^(t) +op ⊕_{j→i} Δ_j^(t)`` with a commutative,
associative ``Sum`` (⊕) and an optional ``Inverse``. The same program
object runs unchanged on the eager PowerGraph baselines and on the lazy
engines — mirroring the paper's claim that SSSP/CC/k-core code is
identical across systems.
"""

from repro.api.vertex_program import (
    DeltaAlgebra,
    DeltaProgram,
    MAX_ALGEBRA,
    MIN_ALGEBRA,
    SUM_ALGEBRA,
)

__all__ = [
    "DeltaAlgebra",
    "DeltaProgram",
    "SUM_ALGEBRA",
    "MIN_ALGEBRA",
    "MAX_ALGEBRA",
]
