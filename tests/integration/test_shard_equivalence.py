"""Shard-merge equivalence: buffered collectors ≡ the global-read path.

The tentpole guarantee of the sharded observability plane: for every
registered engine, running with per-machine buffered collectors merged
at barriers produces a record stream *bit-identical* to the legacy
passthrough path where every event writes the global tracer inline
(host-clock timestamps excepted — they are real wall time and differ
between any two runs; everything else, including span ids, parent
links, model-time stamps, charges, and the full RunStats dump with its
lens histograms, must match exactly).

Same discipline for the lens: ``sharded=True`` probes build per-machine
:class:`ProbeSample` payloads and merge them; ``sharded=False`` is the
legacy direct global read. Both must agree bit-for-bit and pass the
:class:`LensAuditor` strict-clean.

On top of the merged traces, the critical-path analyzer must name a
gating machine/channel for every superstep and its accounting must tile
``RunStats.modeled_time_s`` exactly.
"""

import pytest

from repro.obs.audit import LensAuditor
from repro.obs.critical_path import analyze_trace
from repro.obs.report import trace_from_tracer
from repro.obs.tracer import Tracer
from repro.core.transmission import build_lazy_graph
from repro.run_api import prepare_graph
from repro.runtime.registry import engine_names, get_engine

MACHINES = 6
ALGORITHMS = ("pagerank", "cc")
MATRIX = [
    (engine, alg) for engine in engine_names() for alg in ALGORITHMS
]


def _scrub(obj):
    """Drop host-clock values recursively: host span stamps and the
    ``*host_s`` host-side timings nested in the RunStats dump."""
    if isinstance(obj, dict):
        return {
            k: _scrub(v) for k, v in obj.items()
            if k not in ("host_t0", "host_t1", "host_t") and "host_s" not in k
        }
    if isinstance(obj, (list, tuple)):
        return [_scrub(v) for v in obj]
    return obj


def _run(engine, alg, er_graph, *, buffered, lens=None):
    spec = get_engine(engine)
    params = {"tolerance": 1e-3} if alg == "pagerank" else {}
    program = spec.make_program(alg, **params)
    g = prepare_graph(er_graph, program, seed=0)
    pg = build_lazy_graph(g, MACHINES, seed=1)
    tracer = Tracer()
    kwargs = {"tracer": tracer}
    if lens is not None:
        kwargs["lens"] = lens
    elif "lens" in spec.options:
        kwargs["lens"] = True
    eng = spec.cls(pg, program, **kwargs)
    if not buffered:
        eng.shards.set_buffered(False)
    result = eng.run()
    return tracer, result


@pytest.mark.parametrize("engine,alg", MATRIX)
class TestShardMergeBitExact:
    def test_merged_stream_identical_to_global_read(
        self, engine, alg, er_graph
    ):
        t_buf, _ = _run(engine, alg, er_graph, buffered=True)
        t_raw, _ = _run(engine, alg, er_graph, buffered=False)
        buf = [_scrub(r) for r in t_buf.records]
        raw = [_scrub(r) for r in t_raw.records]
        assert len(buf) == len(raw)
        for i, (b, r) in enumerate(zip(buf, raw)):
            assert b == r, f"record #{i} diverged: {b} != {r}"

    def test_buffered_mode_actually_buffered(self, engine, alg, er_graph):
        tracer, _ = _run(engine, alg, er_graph, buffered=True)
        # engines wire their runtimes to the ShardedObs collectors and
        # the collectors buffer (the oracle comparison above would pass
        # trivially if both runs were passthrough)
        spec = get_engine(engine)
        program = spec.make_program(
            alg, **({"tolerance": 1e-3} if alg == "pagerank" else {})
        )
        g = prepare_graph(er_graph, program, seed=0)
        pg = build_lazy_graph(g, MACHINES, seed=1)
        eng = spec.cls(pg, program, tracer=Tracer())
        assert eng.shards.buffered
        assert all(
            rt.obs is eng.shards.collectors[rt.mg.machine_id]
            for rt in eng.runtimes
            if hasattr(rt, "obs")
        )


@pytest.mark.parametrize("engine,alg", MATRIX)
class TestCriticalPathOnRealTraces:
    def test_every_superstep_gated_and_time_tiles(
        self, engine, alg, er_graph
    ):
        tracer, result = _run(engine, alg, er_graph, buffered=True)
        analysis = analyze_trace(trace_from_tracer(tracer))
        assert analysis["supersteps"], "no supersteps reconstructed"
        for row in analysis["supersteps"]:
            gate = row["gating"]
            assert gate["kind"] in ("machine", "channel")
            key = "machine" if gate["kind"] == "machine" else "channel"
            assert gate[key] is not None
            # leg durations + self time tile the superstep's width
            legs_s = sum(leg["model_s"] for leg in row["legs"])
            assert legs_s + row["self_s"] == pytest.approx(
                row["model_s"], abs=1e-12
            )
        total = result.stats.modeled_time_s
        assert analysis["accounted_s"] == pytest.approx(
            total, rel=1e-9, abs=1e-12
        )
        assert analysis["total_modeled_s"] == pytest.approx(total)


LENS_MATRIX = [
    (engine, alg)
    for engine in engine_names()
    if "lens" in get_engine(engine).options
    for alg in ALGORITHMS
]


@pytest.mark.parametrize("engine,alg", LENS_MATRIX)
class TestLensShardingBitExact:
    def test_sharded_probe_identical_to_global_read(
        self, engine, alg, er_graph
    ):
        t_shard, _ = _run(
            engine, alg, er_graph, buffered=True, lens={"sharded": True}
        )
        t_legacy, _ = _run(
            engine, alg, er_graph, buffered=True, lens={"sharded": False}
        )
        shard = [_scrub(r) for r in t_shard.records]
        legacy = [_scrub(r) for r in t_legacy.records]
        assert shard == legacy

    def test_auditor_strict_clean_on_sharded_run(
        self, engine, alg, er_graph
    ):
        tracer, _ = _run(
            engine, alg, er_graph, buffered=True, lens={"sharded": True}
        )
        anomalies = LensAuditor(trace_from_tracer(tracer)).audit()
        assert anomalies == [], [str(a) for a in anomalies]
