"""Incremental re-convergence ≡ from-scratch, across the matrix.

The tentpole guarantee of the dynamic-graph layer: after
``session.apply(batch)``, a warm-started ``session.run(...,
incremental=True)`` lands on the *same fixpoint* as a cold run over the
patched graph in the same session —

* **exactly** (bit-identical values) for the idempotent MIN/MAX
  programs (bfs, cc, sssp, msbfs), whose taint-and-reseed plan restores
  cold-start semantics wherever the old fixpoint lost support;
* **within the termination band** for the invertible SUM programs
  (pagerank, ppr), whose signed corrections cancel retracted mass —
  both runs stop when residual mass drops under ``tolerance``, so they
  agree to O(tolerance) like any two orderings of the same asynchronous
  execution;

and does so in no more supersteps than the cold run, under both the
serial and the spawn-started process backend, with the coherency lens
finding nothing to flag.

Comparisons happen *within one session* on purpose: synthetic weights
for patched graph versions are derived from the session seed and the
mutation log, so the session is the unit of reproducibility.
"""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi_graph
from repro.graph.mutation import MutationBatch
from repro.obs.audit import LensAuditor
from repro.obs.report import trace_from_tracer
from repro.obs.tracer import Tracer
from repro.session import GraphSession

MACHINES = 6
WORKERS = 2

#: (algorithm, params) -> exact agreement expected
EXACT = [
    ("bfs", {"source": 0}),
    ("cc", {}),
    ("sssp", {"source": 0}),
    ("msbfs", {"sources": (0, 3)}),
]
#: (algorithm, params) -> agreement to O(tolerance)
BAND = [
    ("pagerank", {"tolerance": 1e-4}),
    ("ppr", {"seeds": (0, 2), "tolerance": 1e-4}),
]


def _graph():
    return erdos_renyi_graph(150, 900, seed=11)


def _batch(graph):
    return (
        MutationBatch()
        .add_vertices(2)
        .add_edge(0, 150)
        .add_edge(150, 151)
        .add_edge(5, 40)
        .remove_edge(int(graph.src[3]), int(graph.dst[3]))
        .remove_edge(int(graph.src[400]), int(graph.dst[400]))
    )


def _roundtrip(alg, params, **run_kwargs):
    """cold@v0 -> apply -> (incremental@v1, cold@v1) in one session."""
    graph = _graph()
    with GraphSession.open(graph, machines=MACHINES, seed=0) as sess:
        sess.run(alg, **params, **run_kwargs)  # records the v0 fixpoint
        applied = sess.apply(_batch(graph))
        inc = sess.run(alg, incremental=True, **params, **run_kwargs)
        cold = sess.run(alg, **params, **run_kwargs)
    return applied, inc, cold


class TestExactReconvergence:
    @pytest.mark.parametrize("alg,params", EXACT, ids=lambda p: str(p))
    def test_incremental_matches_cold_bitwise(self, alg, params):
        applied, inc, cold = _roundtrip(alg, params)
        assert applied.graph_version == 1
        assert inc.stats.extra["warm_start"] == 1.0
        np.testing.assert_array_equal(inc.values, cold.values)
        assert inc.stats.supersteps <= cold.stats.supersteps


class TestBandReconvergence:
    @pytest.mark.parametrize("alg,params", BAND, ids=lambda p: str(p))
    def test_incremental_matches_cold_within_band(self, alg, params):
        applied, inc, cold = _roundtrip(alg, params)
        assert applied.graph_version == 1
        assert inc.stats.extra["warm_start"] == 1.0
        err = float(np.max(np.abs(inc.values - cold.values)))
        assert err <= 50 * params["tolerance"], err
        assert inc.stats.supersteps <= cold.stats.supersteps


class TestProcessBackend:
    """Spawn-started worker pool: same matrix guarantees hold."""

    @pytest.mark.parametrize("alg,params", [EXACT[0], EXACT[1]],
                             ids=lambda p: str(p))
    def test_exact_under_process_backend(self, alg, params):
        _, inc, cold = _roundtrip(
            alg, params, backend="process", workers=WORKERS
        )
        assert inc.stats.extra["warm_start"] == 1.0
        np.testing.assert_array_equal(inc.values, cold.values)

    def test_band_under_process_backend(self):
        alg, params = BAND[0]
        _, inc, cold = _roundtrip(
            alg, params, backend="process", workers=WORKERS
        )
        assert inc.stats.extra["warm_start"] == 1.0
        err = float(np.max(np.abs(inc.values - cold.values)))
        assert err <= 50 * params["tolerance"], err

    def test_process_incremental_identical_to_serial_incremental(self):
        """The warm-start plan is backend-invariant, bit for bit."""
        alg, params = EXACT[0]
        _, inc_s, _ = _roundtrip(alg, params)
        _, inc_p, _ = _roundtrip(
            alg, params, backend="process", workers=WORKERS
        )
        np.testing.assert_array_equal(inc_s.values, inc_p.values)
        assert inc_s.stats.supersteps == inc_p.stats.supersteps


class TestLensClean:
    """Injected warm-start messages respect the coherency invariants:
    the lens auditor finds nothing to flag on an incremental run."""

    @pytest.mark.parametrize(
        "alg,params",
        [("bfs", {"source": 0}), ("pagerank", {"tolerance": 1e-4})],
        ids=lambda p: str(p),
    )
    def test_auditor_finds_nothing(self, alg, params):
        graph = _graph()
        with GraphSession.open(graph, machines=MACHINES, seed=0) as sess:
            sess.run(alg, **params)
            sess.apply(_batch(graph))
            tracer = Tracer()
            inc = sess.run(
                alg, incremental=True, tracer=tracer, lens=True, **params
            )
        assert inc.stats.extra["warm_start"] == 1.0
        anomalies = LensAuditor(trace_from_tracer(tracer)).audit()
        assert anomalies == [], [str(a) for a in anomalies]
        assert inc.stats.extra["lens.invariant_breaks"] == 0.0


class TestWarmStartBookkeeping:
    def test_cold_fallback_then_warm(self):
        """incremental=True with no recorded fixpoint runs cold (marker
        0.0) and records one, so the next incremental run is warm."""
        graph = _graph()
        with GraphSession.open(graph, machines=MACHINES, seed=0) as sess:
            sess.apply(_batch(graph))  # mutate before any run
            first = sess.run("bfs", source=0, incremental=True)
            assert first.stats.extra["warm_start"] == 0.0
            sess.apply(MutationBatch().add_edge(1, 7))
            second = sess.run("bfs", source=0, incremental=True)
            assert second.stats.extra["warm_start"] == 1.0

    def test_identity_batch_reconverges_instantly(self):
        graph = _graph()
        with GraphSession.open(graph, machines=MACHINES, seed=0) as sess:
            base = sess.run("bfs", source=0)
            sess.apply(MutationBatch())  # version bump, no edge change
            inc = sess.run("bfs", source=0, incremental=True)
            np.testing.assert_array_equal(inc.values, base.values)
            assert inc.stats.supersteps == 0
