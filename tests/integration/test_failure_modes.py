"""Failure injection: the library must fail loudly and precisely.

A reproduction harness that silently produces wrong numbers is worse
than one that crashes; these tests pin the error paths.
"""

import numpy as np
import pytest

import repro
from repro.algorithms import PageRankDeltaProgram, SSSPProgram
from repro.api.vertex_program import DeltaProgram, SUM_ALGEBRA
from repro.core import LazyBlockAsyncEngine, build_lazy_graph
from repro.errors import ConvergenceError, EngineError
from repro.graph.digraph import DiGraph
from repro.powergraph import PowerGraphSyncEngine


class OscillatorProgram(DeltaProgram):
    """A deliberately non-converging program: every apply re-fires."""

    name = "oscillator"
    algebra = SUM_ALGEBRA

    def make_state(self, mg):
        return {"vdata": np.zeros(mg.num_local_vertices)}

    def initial_scatter(self, mg, state):
        return np.ones(mg.num_local_vertices), np.ones(
            mg.num_local_vertices, dtype=bool
        )

    def apply(self, mg, state, idx, accum):
        state["vdata"][idx] += accum
        return np.ones(idx.size), np.ones(idx.size, dtype=bool)

    def edge_message(self, mg, edge_sel, delta_per_edge):
        return delta_per_edge


class TestConvergenceFailure:
    def test_superstep_budget_enforced_eager(self, er_graph):
        pg = build_lazy_graph(er_graph, 4, seed=1)
        eng = PowerGraphSyncEngine(pg, OscillatorProgram(), max_supersteps=10)
        with pytest.raises(ConvergenceError, match="did not converge"):
            eng.run()

    def test_superstep_budget_enforced_lazy(self, er_graph):
        pg = build_lazy_graph(er_graph, 4, seed=1)
        eng = LazyBlockAsyncEngine(pg, OscillatorProgram(), max_supersteps=10)
        with pytest.raises(ConvergenceError):
            eng.run()

    def test_budget_must_be_positive(self, er_graph):
        pg = build_lazy_graph(er_graph, 4, seed=1)
        with pytest.raises(EngineError, match="max_supersteps"):
            PowerGraphSyncEngine(pg, PageRankDeltaProgram(), max_supersteps=0)

    def test_tight_budget_on_real_algorithm(self, er_graph):
        pg = build_lazy_graph(er_graph, 4, seed=1)
        eng = PowerGraphSyncEngine(
            pg, PageRankDeltaProgram(tolerance=1e-9), max_supersteps=2
        )
        with pytest.raises(ConvergenceError):
            eng.run()


class TestInputGuards:
    def test_weights_required_for_sssp(self, er_graph):
        pg = build_lazy_graph(er_graph, 4, seed=1)
        with pytest.raises(EngineError, match="weights"):
            LazyBlockAsyncEngine(pg, SSSPProgram(0))

    def test_run_api_attaches_weights_instead(self, er_graph):
        # the high-level API repairs the same situation
        r = repro.run(er_graph, "sssp", machines=4)
        assert r.stats.converged

    def test_empty_edge_graph(self):
        g = DiGraph(5, [], [])
        r = repro.run(g, "cc", machines=3)
        # five isolated vertices: each its own component
        assert np.array_equal(r.values, np.arange(5.0))

    def test_single_vertex_graph(self):
        g = DiGraph(1, [], [])
        r = repro.run(g, "pagerank", machines=2)
        assert r.values[0] == pytest.approx(0.15)

    def test_unreachable_source_component(self, er_weighted):
        # a source with no out-edges: everything else stays at infinity
        g = er_weighted
        sinks = np.flatnonzero(g.out_degrees() == 0)
        if sinks.size == 0:
            pytest.skip("no sink vertex in fixture")
        r = repro.run(g, "sssp", machines=4, source=int(sinks[0]))
        assert r.values[sinks[0]] == 0.0
        finite = np.isfinite(r.values)
        assert finite.sum() == 1


class TestMemoryFootprint:
    def test_footprint_reports(self, er_partitioned):
        fp = er_partitioned.memory_footprint()
        assert fp["total_bytes"] > 0
        assert fp["max_machine_bytes"] >= fp["mean_machine_bytes"]
        assert len(fp["per_machine_bytes"]) == er_partitioned.num_machines
        assert fp["edge_slots"] == er_partitioned.graph.num_edges

    def test_parallel_edges_cost_memory(self, er_graph):
        from repro.partition.edge_splitter import EdgeSplitConfig

        plain = build_lazy_graph(er_graph, 6, seed=1)
        split = build_lazy_graph(
            er_graph, 6, split_config=EdgeSplitConfig(textra=0.5), seed=1
        )
        assert (
            split.memory_footprint()["total_bytes"]
            > plain.memory_footprint()["total_bytes"]
        )
