"""Lens invariants across engines and algorithms.

The coherency lens makes the lazy engines' bookkeeping auditable.
These are the invariants that must hold on every clean run:

* after **every** coherency exchange, the pending-delta mass over the
  vertices the exchange was responsible for is exactly zero — lazy
  engines defer coherency, they never lose it;
* master/mirror drift is zero once the run has terminated (the final
  drain precedes termination);
* exactly one ``kind="coherency"`` decision is logged per executed
  coherency exchange, so the audit log and the counter ledger agree;
* the :class:`~repro.obs.audit.LensAuditor` finds nothing to flag.

Parametrized over both lazy engines × two algorithms with different
delta algebras (pagerank: SUM, cc: MIN) per the acceptance criteria,
plus the signal-driven coherency controllers (``staleness``,
``batched``) — deferring exchanges must never break the invariants.
"""

import pytest

from repro.obs import Tracer
from repro.obs.audit import LensAuditor
from repro.obs.report import trace_from_tracer
from repro.run_api import run

ENGINES = ["lazy-block", "lazy-vertex"]
ALGORITHMS = ["pagerank", "cc"]
MATRIX = [(e, a, "paper") for e in ENGINES for a in ALGORITHMS] + [
    ("lazy-vertex", "pagerank", "staleness"),
    ("lazy-vertex", "pagerank", "batched"),
    ("lazy-vertex", "cc", "batched"),
    ("lazy-block", "pagerank", "staleness"),
]


@pytest.fixture(scope="module", params=MATRIX,
                ids=lambda p: f"{p[0]}-{p[1]}-{p[2]}")
def lens_run(request):
    engine, algorithm, policy = request.param
    tracer = Tracer()
    result = run("road-ca-mini", algorithm, engine=engine, machines=8,
                 seed=0, policy=policy, tracer=tracer, lens=True)
    return engine, algorithm, policy, result, tracer


class TestLensInvariants:
    def test_pending_mass_zero_after_every_exchange(self, lens_run):
        *_, tracer = lens_run
        exchanges = tracer.instants("lens-exchange")
        assert exchanges, "no coherency exchange was instrumented"
        for ex in exchanges:
            assert ex["attrs"]["mass_after"] == 0.0, ex["attrs"]
            assert ex["attrs"]["pending_after"] == 0, ex["attrs"]

    def test_drift_zero_at_termination(self, lens_run):
        *_, result, _ = lens_run
        # exhaustive check over all replicated vertices, not the sample
        assert result.stats.extra["lens.final_drift"] <= 1e-9

    def test_decision_per_coherency_exchange(self, lens_run):
        *_, result, tracer = lens_run
        coherency_decisions = [
            d for d in tracer.instants("coherency-decision")
            if d["attrs"]["kind"] == "coherency"
        ]
        assert len(coherency_decisions) == result.stats.coherency_points

    def test_no_invariant_breaks_counted(self, lens_run):
        *_, result, _ = lens_run
        assert result.stats.extra["lens.invariant_breaks"] == 0.0

    def test_auditor_finds_nothing(self, lens_run):
        *_, tracer = lens_run
        anomalies = LensAuditor(trace_from_tracer(tracer)).audit()
        assert anomalies == [], [str(a) for a in anomalies]

    def test_probe_cadence_covers_every_superstep(self, lens_run):
        *_, result, tracer = lens_run
        probes = tracer.instants("lens-probe")
        assert len(probes) >= result.stats.supersteps

    def test_lens_does_not_change_the_answer(self, lens_run):
        engine, algorithm, policy, result, _ = lens_run
        # same config without the lens: identical protocol counters
        bare = run("road-ca-mini", algorithm, engine=engine, machines=8,
                   seed=0, policy=policy)
        assert bare.stats.supersteps == result.stats.supersteps
        assert bare.stats.coherency_points == result.stats.coherency_points
        assert bare.stats.comm_messages == result.stats.comm_messages
