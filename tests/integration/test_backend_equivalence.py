"""Backend equivalence: the process worker pool ≡ the serial backend.

The tentpole guarantee of the execution-backend layer: for every
registered engine, dispatching the per-machine ops to a spawn-started
shared-memory worker pool produces results *bit-identical* to the
inline serial backend — vertex values, the full RunStats dump (which
carries the per-channel byte ledgers in its ``comms.<name>.*`` extras),
and the merged trace stream record-for-record (host-clock stamps
excepted — they are real wall time; model time, span ids, parent links,
charges, and lens payloads must match exactly).

Determinism rests on the merge-point contract (every model-time fold
happens parent-side in machine-ascending order) and on the workers'
RNG being derived from the run seed — asserted here by the run-to-run
reproducibility cases.
"""

import numpy as np
import pytest

from repro.core.transmission import build_lazy_graph
from repro.obs.tracer import Tracer
from repro.run_api import prepare_graph
from repro.runtime.backend import resolve_backend
from repro.runtime.registry import engine_names, get_engine

MACHINES = 6
WORKERS = 2
ALGORITHMS = ("pagerank", "cc")
MATRIX = [
    (engine, alg) for engine in engine_names() for alg in ALGORITHMS
]


def _scrub(obj):
    """Drop host-clock values recursively: host span stamps and the
    ``*host_s`` host-side timings nested in the RunStats dump."""
    if isinstance(obj, dict):
        return {
            k: _scrub(v) for k, v in obj.items()
            if k not in ("host_t0", "host_t1", "host_t") and "host_s" not in k
        }
    if isinstance(obj, (list, tuple)):
        return [_scrub(v) for v in obj]
    return obj


def _run(engine, alg, er_graph, *, backend=None):
    spec = get_engine(engine)
    params = {"tolerance": 1e-3} if alg == "pagerank" else {}
    program = spec.make_program(alg, **params)
    g = prepare_graph(er_graph, program, seed=0)
    pg = build_lazy_graph(g, MACHINES, seed=1)
    tracer = Tracer()
    kwargs = {"tracer": tracer}
    if "lens" in spec.options:
        kwargs["lens"] = True
    if backend is not None:
        kwargs["backend"] = resolve_backend(backend, workers=WORKERS, seed=0)
    result = spec.cls(pg, program, **kwargs).run()
    return result, tracer.records


@pytest.mark.parametrize("engine,alg", MATRIX)
class TestProcessBackendBitExact:
    def test_process_identical_to_serial(self, engine, alg, er_graph):
        serial, rec_s = _run(engine, alg, er_graph)
        process, rec_p = _run(engine, alg, er_graph, backend="process")
        assert np.array_equal(serial.values, process.values)
        # RunStats dump covers modeled time, counters, and the
        # per-channel byte ledgers riding in the comms.* extras
        assert _scrub(serial.stats.to_dict()) == _scrub(
            process.stats.to_dict()
        )
        s, p = [_scrub(r) for r in rec_s], [_scrub(r) for r in rec_p]
        assert len(s) == len(p)
        for i, (a, b) in enumerate(zip(s, p)):
            assert a == b, f"record #{i} diverged: {a} != {b}"


# the full matrix already spawns 10 worker pools; run-to-run
# reproducibility (seeded worker RNG) is asserted on one engine per
# family — a lazy delta engine and the classic GAS pull engine
REPRO_CELLS = [("lazy-block", "pagerank"), ("powergraph-gas-sync", "cc")]


@pytest.mark.parametrize("engine,alg", REPRO_CELLS)
def test_process_run_to_run_reproducible(engine, alg, er_graph):
    r1, rec1 = _run(engine, alg, er_graph, backend="process")
    r2, rec2 = _run(engine, alg, er_graph, backend="process")
    assert np.array_equal(r1.values, r2.values)
    assert _scrub(r1.stats.to_dict()) == _scrub(r2.stats.to_dict())
    assert [_scrub(r) for r in rec1] == [_scrub(r) for r in rec2]
