"""Smoke matrix: every Table 1 analog × paper algorithm × engine family.

This is the 'does the whole catalogue actually run' test — cheap machine
count, shared partition builds, value agreement between the eager and
lazy engines on every cell.
"""

import numpy as np
import pytest

from repro.algorithms import make_program
from repro.bench.configs import default_program_params
from repro.core import LazyBlockAsyncEngine
from repro.graph.datasets import dataset_names
from repro.powergraph import PowerGraphSyncEngine

from repro.bench.harness import get_partitioned, get_prepared_graph

MACHINES = 6
ALGORITHMS = ("kcore", "pagerank", "sssp", "cc")


def _cell(graph_name: str, alg: str):
    params = default_program_params(alg, graph_name)
    prog_a = make_program(alg, **params)
    prog_b = make_program(alg, **params)
    g = get_prepared_graph(
        graph_name, prog_a.requires_symmetric, prog_a.needs_weights
    )
    pg = get_partitioned(g, MACHINES)
    eager = PowerGraphSyncEngine(pg, prog_a).run()
    lazy = LazyBlockAsyncEngine(pg, prog_b).run()
    return eager, lazy


@pytest.mark.parametrize("graph_name", dataset_names())
@pytest.mark.parametrize("alg", ALGORITHMS)
def test_matrix_cell(graph_name, alg):
    eager, lazy = _cell(graph_name, alg)
    assert eager.stats.converged and lazy.stats.converged
    a = np.nan_to_num(eager.values, posinf=1e18)
    b = np.nan_to_num(lazy.values, posinf=1e18)
    if alg == "pagerank":
        assert np.allclose(a, b, atol=5e-2, rtol=5e-2)
    else:
        assert np.array_equal(a, b)
    # the lazy engine never needs more synchronizations
    assert lazy.stats.global_syncs <= eager.stats.global_syncs
    # replicas agree at termination on both engines
    assert eager.replica_max_disagreement < 1e-9
    assert lazy.replica_max_disagreement < 1e-9
