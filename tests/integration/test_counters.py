"""Counter invariants: the measured quantities behind Figs 10–11.

These pin the paper's cost structure: eager Sync performs exactly three
global synchronizations and two communication rounds per superstep;
LazyBlockAsync performs exactly one synchronization per coherency point;
traffic is conserved and consistent with the replica topology.
"""

import numpy as np
import pytest

from repro.algorithms import (
    ConnectedComponentsProgram,
    KCoreProgram,
    PageRankDeltaProgram,
    SSSPProgram,
)
from repro.core import LazyBlockAsyncEngine, LazyVertexAsyncEngine, build_lazy_graph
from repro.powergraph import PowerGraphAsyncEngine, PowerGraphSyncEngine


@pytest.fixture(scope="module")
def pg(er_weighted):
    return build_lazy_graph(er_weighted, 6, seed=1)


@pytest.fixture(scope="module")
def pg_sym(er_symmetric):
    return build_lazy_graph(er_symmetric, 6, seed=1)


class TestSyncEngineCosts:
    def test_three_syncs_two_rounds_per_superstep(self, pg):
        r = PowerGraphSyncEngine(pg, SSSPProgram(0)).run()
        # +1: the final gather barrier that detects convergence
        assert r.stats.global_syncs == 3 * r.stats.supersteps + 1
        assert r.stats.comm_rounds == 2 * r.stats.supersteps + 1

    def test_no_lazy_counters(self, pg):
        r = PowerGraphSyncEngine(pg, SSSPProgram(0)).run()
        assert r.stats.local_iterations == 0
        assert r.stats.coherency_points == 0


class TestLazyEngineCosts:
    def test_one_sync_per_coherency_point(self, pg):
        r = LazyBlockAsyncEngine(pg, SSSPProgram(0)).run()
        assert r.stats.global_syncs == r.stats.coherency_points

    def test_fewer_syncs_than_eager(self, pg):
        sync = PowerGraphSyncEngine(pg, SSSPProgram(0)).run()
        lazy = LazyBlockAsyncEngine(pg, SSSPProgram(0)).run()
        assert lazy.stats.global_syncs < sync.stats.global_syncs

    def test_local_iterations_happen(self, pg):
        r = LazyBlockAsyncEngine(pg, SSSPProgram(0)).run()
        assert r.stats.local_iterations > 0

    def test_never_model_disables_local_stages(self, pg):
        from repro.core import NeverLazyModel

        r = LazyBlockAsyncEngine(
            pg, SSSPProgram(0), interval_model=NeverLazyModel()
        ).run()
        assert r.stats.local_iterations == 0

    def test_mode_switch_counter_present(self, pg):
        r = LazyBlockAsyncEngine(pg, SSSPProgram(0)).run()
        assert "mode_switches" in r.stats.extra


class TestAsyncEngines:
    def test_eager_async_no_global_syncs(self, pg):
        r = PowerGraphAsyncEngine(pg, SSSPProgram(0)).run()
        assert r.stats.global_syncs == 0

    def test_lazy_vertex_no_global_syncs(self, pg):
        r = LazyVertexAsyncEngine(pg, SSSPProgram(0)).run()
        assert r.stats.global_syncs == 0

    def test_async_moves_same_data_plus_probes(self, pg):
        """Eager Async shares Sync's data flow; it additionally pays for
        the termination-detection control probes."""
        from repro.cluster.termination import PROBE_BYTES_PER_MACHINE

        a = PowerGraphAsyncEngine(pg, SSSPProgram(0)).run()
        s = PowerGraphSyncEngine(pg, SSSPProgram(0)).run()
        probes = a.stats.extra["termination_probes"]
        probe_bytes = probes * PROBE_BYTES_PER_MACHINE * pg.num_machines
        assert a.stats.comm_bytes == s.stats.comm_bytes + probe_bytes
        assert probes >= 2


class TestTrafficConsistency:
    def test_bytes_are_message_multiples(self, pg):
        prog = SSSPProgram(0)
        for engine in (PowerGraphSyncEngine, LazyBlockAsyncEngine):
            r = engine(pg, prog).run()
            assert r.stats.comm_bytes == pytest.approx(
                r.stats.comm_messages * prog.delta_bytes
            )

    def test_single_machine_moves_nothing(self, er_weighted):
        pg1 = build_lazy_graph(er_weighted, 1, seed=1)
        for engine in (PowerGraphSyncEngine, LazyBlockAsyncEngine):
            r = engine(pg1, SSSPProgram(0)).run()
            assert r.stats.comm_bytes == 0.0
            assert r.stats.comm_messages == 0

    def test_time_breakdown_adds_up(self, pg):
        r = LazyBlockAsyncEngine(pg, PageRankDeltaProgram()).run()
        assert r.stats.modeled_time_s == pytest.approx(
            r.stats.compute_time_s + r.stats.comm_time_s + r.stats.sync_time_s
        )

    def test_work_counters_positive(self, pg_sym):
        # k=8 actually peels on the ~9-mean-degree symmetric ER graph
        r = LazyBlockAsyncEngine(pg_sym, KCoreProgram(k=8)).run()
        assert r.stats.edge_traversals > 0
        assert r.stats.vertex_updates > 0


class TestLazyTrafficWins:
    @pytest.mark.parametrize("prog_factory", [
        lambda: ConnectedComponentsProgram(),
        lambda: KCoreProgram(k=4),
    ])
    def test_idempotent_or_peeling_traffic_below_eager(self, pg_sym, prog_factory):
        sync = PowerGraphSyncEngine(pg_sym, prog_factory()).run()
        lazy = LazyBlockAsyncEngine(pg_sym, prog_factory()).run()
        assert lazy.stats.comm_bytes < sync.stats.comm_bytes
