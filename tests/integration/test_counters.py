"""Counter invariants: the measured quantities behind Figs 10–11.

These pin the paper's cost structure: eager Sync performs exactly three
global synchronizations and two communication rounds per superstep;
LazyBlockAsync performs exactly one synchronization per coherency point;
traffic is conserved and consistent with the replica topology.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.algorithms import (
    ConnectedComponentsProgram,
    KCoreProgram,
    PageRankDeltaProgram,
    SSSPProgram,
)
from repro.core import LazyBlockAsyncEngine, LazyVertexAsyncEngine, build_lazy_graph
from repro.powergraph import PowerGraphAsyncEngine, PowerGraphSyncEngine
from repro.runtime.registry import engine_specs


@pytest.fixture(scope="module")
def pg(er_weighted):
    return build_lazy_graph(er_weighted, 6, seed=1)


@pytest.fixture(scope="module")
def pg_sym(er_symmetric):
    return build_lazy_graph(er_symmetric, 6, seed=1)


class TestSyncEngineCosts:
    def test_three_syncs_two_rounds_per_superstep(self, pg):
        r = PowerGraphSyncEngine(pg, SSSPProgram(0)).run()
        # +1: the final gather barrier that detects convergence
        assert r.stats.global_syncs == 3 * r.stats.supersteps + 1
        assert r.stats.comm_rounds == 2 * r.stats.supersteps + 1

    def test_no_lazy_counters(self, pg):
        r = PowerGraphSyncEngine(pg, SSSPProgram(0)).run()
        assert r.stats.local_iterations == 0
        assert r.stats.coherency_points == 0


class TestLazyEngineCosts:
    def test_one_sync_per_coherency_point(self, pg):
        r = LazyBlockAsyncEngine(pg, SSSPProgram(0)).run()
        assert r.stats.global_syncs == r.stats.coherency_points

    def test_fewer_syncs_than_eager(self, pg):
        sync = PowerGraphSyncEngine(pg, SSSPProgram(0)).run()
        lazy = LazyBlockAsyncEngine(pg, SSSPProgram(0)).run()
        assert lazy.stats.global_syncs < sync.stats.global_syncs

    def test_local_iterations_happen(self, pg):
        r = LazyBlockAsyncEngine(pg, SSSPProgram(0)).run()
        assert r.stats.local_iterations > 0

    def test_never_model_disables_local_stages(self, pg):
        from repro.core import NeverLazyModel

        r = LazyBlockAsyncEngine(
            pg, SSSPProgram(0), interval_model=NeverLazyModel()
        ).run()
        assert r.stats.local_iterations == 0

    def test_mode_switch_counter_present(self, pg):
        r = LazyBlockAsyncEngine(pg, SSSPProgram(0)).run()
        assert "mode_switches" in r.stats.extra


class TestAsyncEngines:
    def test_eager_async_no_global_syncs(self, pg):
        r = PowerGraphAsyncEngine(pg, SSSPProgram(0)).run()
        assert r.stats.global_syncs == 0

    def test_lazy_vertex_no_global_syncs(self, pg):
        r = LazyVertexAsyncEngine(pg, SSSPProgram(0)).run()
        assert r.stats.global_syncs == 0

    def test_async_moves_same_data_plus_probes(self, pg):
        """Eager Async shares Sync's data flow; it additionally pays for
        the termination-detection control probes."""
        from repro.cluster.termination import PROBE_BYTES_PER_MACHINE

        a = PowerGraphAsyncEngine(pg, SSSPProgram(0)).run()
        s = PowerGraphSyncEngine(pg, SSSPProgram(0)).run()
        probes = a.stats.extra["termination_probes"]
        probe_bytes = probes * PROBE_BYTES_PER_MACHINE * pg.num_machines
        assert a.stats.comm_bytes == s.stats.comm_bytes + probe_bytes
        assert probes >= 2


class TestTrafficConsistency:
    def test_bytes_are_message_multiples(self, pg):
        prog = SSSPProgram(0)
        for engine in (PowerGraphSyncEngine, LazyBlockAsyncEngine):
            r = engine(pg, prog).run()
            assert r.stats.comm_bytes == pytest.approx(
                r.stats.comm_messages * prog.delta_bytes
            )

    def test_single_machine_moves_nothing(self, er_weighted):
        pg1 = build_lazy_graph(er_weighted, 1, seed=1)
        for engine in (PowerGraphSyncEngine, LazyBlockAsyncEngine):
            r = engine(pg1, SSSPProgram(0)).run()
            assert r.stats.comm_bytes == 0.0
            assert r.stats.comm_messages == 0

    def test_time_breakdown_adds_up(self, pg):
        r = LazyBlockAsyncEngine(pg, PageRankDeltaProgram()).run()
        assert r.stats.modeled_time_s == pytest.approx(
            r.stats.compute_time_s + r.stats.comm_time_s + r.stats.sync_time_s
        )

    def test_work_counters_positive(self, pg_sym):
        # k=8 actually peels on the ~9-mean-degree symmetric ER graph
        r = LazyBlockAsyncEngine(pg_sym, KCoreProgram(k=8)).run()
        assert r.stats.edge_traversals > 0
        assert r.stats.vertex_updates > 0


class TestTraceParity:
    """The trace is a faithful second ledger of the same run (ISSUE
    acceptance: summed phase durations == RunStats.modeled_time_s).

    Iterates the engine registry, so any newly-registered engine is
    automatically held to the phase-tiling invariant.
    """

    @pytest.mark.parametrize(
        "engine", [s.name for s in engine_specs()]
    )
    def test_phase_durations_tile_modeled_time(self, pg, engine):
        spec = dict((s.name, s) for s in engine_specs())[engine]
        r = spec.cls(pg, spec.make_program("sssp", source=0), trace=True).run()
        trace = r.trace
        assert trace is not None
        phase_sum = sum(
            s["model_t1"] - s["model_t0"] for s in trace.spans("phase")
        )
        assert phase_sum == pytest.approx(r.stats.modeled_time_s, abs=1e-6)
        assert not trace.untracked, (
            f"{engine} charged model time outside any phase span: "
            f"{trace.untracked}"
        )

    def test_chrome_file_matches_run_stats(self, pg, tmp_path):
        """End-to-end acceptance path: chrome export -> report numbers."""
        from repro.obs import export_trace, load_trace, summarize_trace

        r = LazyBlockAsyncEngine(pg, SSSPProgram(0), trace=True).run()
        path = tmp_path / "t.json"
        export_trace(r.trace, str(path), "chrome")
        summary = summarize_trace(load_trace(str(path)))
        assert summary["total_phase_s"] == pytest.approx(
            r.stats.modeled_time_s, abs=1e-6
        )
        assert summary["totals"]["global_syncs"] == r.stats.global_syncs
        assert summary["totals"]["comm_bytes"] == pytest.approx(
            r.stats.comm_bytes
        )
        assert summary["engine"] == "lazy-block"

    def test_jsonl_and_chrome_agree(self, pg, tmp_path):
        from repro.obs import export_trace, load_trace, summarize_trace

        r = LazyBlockAsyncEngine(pg, SSSPProgram(0), trace=True).run()
        paths = {
            fmt: str(tmp_path / f"t.{fmt}")
            for fmt in ("jsonl", "chrome")
        }
        summaries = {}
        for fmt, path in paths.items():
            export_trace(r.trace, path, fmt)
            summaries[fmt] = summarize_trace(load_trace(path))
        a, b = summaries["jsonl"], summaries["chrome"]
        assert a["total_phase_s"] == pytest.approx(b["total_phase_s"], abs=1e-9)
        assert a["totals"] == b["totals"]
        assert a["decisions"] == b["decisions"]
        assert a["modes"] == b["modes"]

    def test_coherency_instants_match_counters(self, pg):
        r = LazyBlockAsyncEngine(pg, SSSPProgram(0), trace=True).run()
        exchanges = r.trace.instants("coherency-exchange")
        # one instant per non-empty exchange; each carries both priced
        # volumes so Fig 5's protocol choice is auditable from the trace
        assert 0 < len(exchanges) <= r.stats.coherency_points
        for ev in exchanges:
            attrs = ev["attrs"]
            assert attrs["volume_a2a_bytes"] >= attrs["messages"] > 0
            assert attrs["mode"] in ("all_to_all", "mirrors_to_master")


class TestGoldenReport:
    """`repro report` numbers from a hand-written golden trace."""

    GOLDEN = str(Path(__file__).parent.parent / "data" / "golden_trace.jsonl")

    def test_summary_values(self):
        from repro.obs import load_trace, summarize_trace

        summary = summarize_trace(load_trace(self.GOLDEN))
        assert summary["engine"] == "lazy-block"
        assert summary["algorithm"] == "pagerank"
        rows = {row["name"]: row for row in summary["phases"]}
        assert rows["coherency"]["count"] == 2
        assert rows["coherency"]["model_s"] == pytest.approx(0.25)
        assert rows["coherency"]["comm_s"] == pytest.approx(0.17)
        assert rows["coherency"]["sync_s"] == pytest.approx(0.03)
        assert rows["local-computation"]["model_s"] == 0.0
        assert summary["total_phase_s"] == pytest.approx(
            summary["totals"]["modeled_time_s"]
        )
        assert summary["decisions"] == {"total": 2, "lazy_on": 1, "lazy_off": 1}
        assert summary["modes"] == {"all_to_all": 1, "mirrors_to_master": 1}

    def test_cli_report_renders(self, capsys):
        from repro.cli import main

        assert main(["report", self.GOLDEN]) == 0
        out = capsys.readouterr().out
        assert "lazy-block/pagerank" in out
        assert "coherency" in out
        assert "interval rule: 2 decisions" in out
        assert "all_to_all×1" in out


class TestLazyTrafficWins:
    @pytest.mark.parametrize("prog_factory", [
        lambda: ConnectedComponentsProgram(),
        lambda: KCoreProgram(k=4),
    ])
    def test_idempotent_or_peeling_traffic_below_eager(self, pg_sym, prog_factory):
        sync = PowerGraphSyncEngine(pg_sym, prog_factory()).run()
        lazy = LazyBlockAsyncEngine(pg_sym, prog_factory()).run()
        assert lazy.stats.comm_bytes < sync.stats.comm_bytes
